"""Shim so `pip install -e .` works on environments without the `wheel`
package (offline boxes): setuptools' legacy develop path needs setup.py."""
from setuptools import setup

setup()
