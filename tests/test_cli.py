"""Tests for the repro-identify command-line interface."""

import json

import pytest

from repro.cli import main
from repro.netlist import write_bench, write_verilog
from repro.synth.designs import BENCHMARKS


@pytest.fixture(scope="module")
def verilog_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "b03.v"
    path.write_text(write_verilog(BENCHMARKS["b03"]()))
    return str(path)


@pytest.fixture(scope="module")
def bench_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "b03.bench"
    path.write_text(write_bench(BENCHMARKS["b03"]()))
    return str(path)


class TestBasics:
    def test_identify_verilog(self, verilog_path, capsys):
        assert main([verilog_path]) == 0
        out = capsys.readouterr().out
        assert "control-signal technique" in out
        assert "relevant control signals" in out

    def test_bench_format_by_suffix(self, bench_path, capsys):
        assert main([bench_path]) == 0
        assert "words" in capsys.readouterr().out

    def test_baseline_flag(self, verilog_path, capsys):
        assert main([verilog_path, "--baseline"]) == 0
        out = capsys.readouterr().out
        assert "shape hashing [6]" in out
        assert "[via" not in out

    def test_score_flag(self, verilog_path, capsys):
        assert main([verilog_path, "--score"]) == 0
        out = capsys.readouterr().out
        assert "score vs 7 golden words: 85.7% full" in out

    def test_trace_flag(self, verilog_path, capsys):
        assert main([verilog_path, "--trace"]) == 0
        assert "first-level groups" in capsys.readouterr().out

    def test_propagate_flag(self, verilog_path, capsys):
        assert main([verilog_path, "--propagate"]) == 0
        assert "propagation derived" in capsys.readouterr().out


class TestJson:
    def test_json_to_stdout(self, verilog_path, capsys):
        assert main([verilog_path, "--json", "-"]) == 0
        out = capsys.readouterr().out
        payload = json.loads(out[out.index("{"):])
        assert payload["netlist"]["name"] == "b03"
        assert payload["config"]["technique"] == "ours"
        assert any(payload["control_assignments"])

    def test_json_to_file(self, verilog_path, tmp_path, capsys):
        target = tmp_path / "report.json"
        assert main([verilog_path, "--json", str(target)]) == 0
        payload = json.loads(target.read_text())
        assert payload["netlist"]["gates"] > 0
        assert isinstance(payload["words"], list)

    def test_propagated_words_in_json(self, verilog_path, capsys):
        assert main([verilog_path, "--propagate", "--json", "-"]) == 0
        out = capsys.readouterr().out
        payload = json.loads(out[out.index("{"):])
        assert "propagated_words" in payload


class TestErrors:
    def test_missing_file(self, capsys):
        assert main(["/nonexistent/design.v"]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_unparseable_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.v"
        bad.write_text("this is not verilog")
        assert main([str(bad)]) == 2
        assert "cannot parse" in capsys.readouterr().err

    def test_config_flags_forwarded(self, verilog_path, capsys):
        assert main([verilog_path, "--depth", "3",
                     "--max-simultaneous", "1"]) == 0


class TestBackendFlag:
    def test_backend_ours_is_the_default(self, verilog_path, capsys):
        assert main([verilog_path, "--json", "-"]) == 0
        out = capsys.readouterr().out
        report = json.loads(out[out.index("{"):])
        assert report["config"]["backend"] == "ours"
        assert report["config"]["technique"] == "ours"

    def test_backend_base_matches_baseline_flag(self, verilog_path, capsys):
        assert main([verilog_path, "--backend", "base", "--json", "-"]) == 0
        out = capsys.readouterr().out
        by_backend = json.loads(out[out.index("{"):])
        assert main([verilog_path, "--baseline", "--json", "-"]) == 0
        out = capsys.readouterr().out
        by_alias = json.loads(out[out.index("{"):])
        assert by_backend["config"]["backend"] == "base"
        assert (
            by_backend["result_digest"] == by_alias["result_digest"]
        )

    def test_backend_regfeat_runs(self, verilog_path, capsys):
        assert main([verilog_path, "--backend", "regfeat"]) == 0
        assert "feature-vector aggregation" in capsys.readouterr().out

    def test_unknown_backend_exits_2_with_one_line_diagnostic(
        self, verilog_path, capsys
    ):
        assert main([verilog_path, "--backend", "nope"]) == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert "unknown backend 'nope'" in err
        for name in ("ours", "base", "regfeat"):
            assert name in err

    def test_baseline_conflicts_with_other_backend(
        self, verilog_path, capsys
    ):
        assert main(
            [verilog_path, "--baseline", "--backend", "regfeat"]
        ) == 2
        assert "--baseline conflicts" in capsys.readouterr().err

    def test_unknown_kernel_exits_2(self, verilog_path, capsys):
        assert main([verilog_path, "--kernel", "cuda"]) == 2
        assert "unknown kernel" in capsys.readouterr().err

    def test_kernel_flag_lands_in_report(self, verilog_path, capsys):
        assert main(
            [verilog_path, "--kernel", "python", "--json", "-"]
        ) == 0
        out = capsys.readouterr().out
        report = json.loads(out[out.index("{"):])
        assert report["config"]["kernel"] == "python"


class TestScore:
    def test_no_golden_names_exits_2_with_diagnostic(self, tmp_path, capsys):
        """Regression: --score on an unscoreable netlist used to fall
        through to an empty/unhelpful report instead of failing fast."""
        src = (
            "module t (a, b, y);\n"
            "  input a, b;\n"
            "  output y;\n"
            "  NAND2 u1 (.A(a), .B(b), .Y(y));\n"
            "endmodule\n"
        )
        path = tmp_path / "noregs.v"
        path.write_text(src)
        assert main([str(path), "--score"]) == 2
        err = capsys.readouterr().err
        assert "--score needs golden words" in err
        assert len(err.strip().splitlines()) == 1

    def test_scoreable_netlist_still_exits_0(self, verilog_path, capsys):
        assert main([verilog_path, "--score"]) == 0
        assert "score vs" in capsys.readouterr().out


class TestStoreFlag:
    def test_warm_rerun_prints_identical_report(
        self, verilog_path, tmp_path, capsys
    ):
        store = str(tmp_path / "store")
        assert main([verilog_path, "--store", store]) == 0
        cold = capsys.readouterr().out
        assert main([verilog_path, "--store", store]) == 0
        warm = capsys.readouterr().out
        # The cached result carries the original run's timings verbatim,
        # so hit and miss runs print byte-identical reports.
        assert warm == cold

    def test_provenance_lands_in_trace_json(
        self, verilog_path, tmp_path, capsys
    ):
        store = str(tmp_path / "store")
        assert main([verilog_path, "--store", store,
                     "--trace-json", "-"]) == 0
        out = capsys.readouterr().out
        cold = json.loads(out[out.index("{"):])
        assert cold["cache_provenance"]["provenance"] == "miss"
        assert main([verilog_path, "--store", store,
                     "--trace-json", "-"]) == 0
        out = capsys.readouterr().out
        warm = json.loads(out[out.index("{"):])
        assert warm["cache_provenance"]["provenance"] == "hit"
        assert warm["cache_provenance"]["key"] == \
            cold["cache_provenance"]["key"]


class TestResilienceFlags:
    def test_budget_degrades_with_exit_zero(self, verilog_path, capsys):
        assert main([verilog_path, "--budget", "0"]) == 0
        captured = capsys.readouterr()
        assert "words" in captured.out
        assert "DEGRADED" in captured.err
        assert "assignments" in captured.err

    def test_deadline_degrades_with_exit_zero(self, verilog_path, capsys):
        assert main([verilog_path, "--deadline", "1e-9"]) == 0
        captured = capsys.readouterr()
        assert "deadline hit" in captured.err

    def test_unfired_budgets_stay_silent(self, verilog_path, capsys):
        assert main([verilog_path, "--deadline", "3600",
                     "--budget", "1000000"]) == 0
        assert "DEGRADED" not in capsys.readouterr().err

    def test_strict_budget_exits_three(self, verilog_path, capsys):
        assert main([verilog_path, "--budget", "0", "--strict"]) == 3
        assert "error (strict)" in capsys.readouterr().err

    def test_invalid_deadline_exits_two(self, verilog_path, capsys):
        assert main([verilog_path, "--deadline", "0"]) == 2
        assert "error" in capsys.readouterr().err

    def test_failures_land_in_trace_json(self, verilog_path, capsys):
        assert main([verilog_path, "--budget", "0",
                     "--trace-json", "-"]) == 0
        out = capsys.readouterr().out
        payload = json.loads(out[out.index("{"):])
        assert payload["degraded"] is True
        assert payload["failures"]
        assert all(f["kind"] == "assignments" for f in payload["failures"])

    def test_preflight_warning_reported(self, tmp_path, capsys):
        src = (
            "module t (a, y);\n"
            "  input a;\n"
            "  output y;\n"
            "  wire ghost;\n"
            "  NAND2 u1 (.A(a), .B(ghost), .Y(y));\n"
            "endmodule\n"
        )
        path = tmp_path / "float.v"
        path.write_text(src)
        assert main([str(path)]) == 0
        assert "pre-flight [warning]" in capsys.readouterr().err

    def test_strict_preflight_exits_three(self, tmp_path, capsys):
        src = (
            "module t (a, y);\n"
            "  input a;\n"
            "  output y;\n"
            "  wire ghost;\n"
            "  NAND2 u1 (.A(a), .B(ghost), .Y(y));\n"
            "endmodule\n"
        )
        path = tmp_path / "float.v"
        path.write_text(src)
        assert main([str(path), "--strict"]) == 3
        assert "pre-flight" in capsys.readouterr().err

    def test_parse_diagnostics_reach_stderr(self, tmp_path, capsys):
        bad = tmp_path / "bad.v"
        bad.write_text(
            "module t (a, y);\n"
            "  input a;\n"
            "  output y;\n"
            "  FROB2 u1 (.A(a), .Y(y));\n"
            "endmodule\n"
        )
        assert main([str(bad)]) == 2
        err = capsys.readouterr().err
        assert "line 4" in err
        assert "FROB2" in err
