"""Tests for the repro-identify command-line interface."""

import json

import pytest

from repro.cli import main
from repro.netlist import write_bench, write_verilog
from repro.synth.designs import BENCHMARKS


@pytest.fixture(scope="module")
def verilog_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "b03.v"
    path.write_text(write_verilog(BENCHMARKS["b03"]()))
    return str(path)


@pytest.fixture(scope="module")
def bench_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "b03.bench"
    path.write_text(write_bench(BENCHMARKS["b03"]()))
    return str(path)


class TestBasics:
    def test_identify_verilog(self, verilog_path, capsys):
        assert main([verilog_path]) == 0
        out = capsys.readouterr().out
        assert "control-signal technique" in out
        assert "relevant control signals" in out

    def test_bench_format_by_suffix(self, bench_path, capsys):
        assert main([bench_path]) == 0
        assert "words" in capsys.readouterr().out

    def test_baseline_flag(self, verilog_path, capsys):
        assert main([verilog_path, "--baseline"]) == 0
        out = capsys.readouterr().out
        assert "shape hashing [6]" in out
        assert "[via" not in out

    def test_score_flag(self, verilog_path, capsys):
        assert main([verilog_path, "--score"]) == 0
        out = capsys.readouterr().out
        assert "score vs 7 golden words: 85.7% full" in out

    def test_trace_flag(self, verilog_path, capsys):
        assert main([verilog_path, "--trace"]) == 0
        assert "first-level groups" in capsys.readouterr().out

    def test_propagate_flag(self, verilog_path, capsys):
        assert main([verilog_path, "--propagate"]) == 0
        assert "propagation derived" in capsys.readouterr().out


class TestJson:
    def test_json_to_stdout(self, verilog_path, capsys):
        assert main([verilog_path, "--json", "-"]) == 0
        out = capsys.readouterr().out
        payload = json.loads(out[out.index("{"):])
        assert payload["netlist"]["name"] == "b03"
        assert payload["config"]["technique"] == "ours"
        assert any(payload["control_assignments"])

    def test_json_to_file(self, verilog_path, tmp_path, capsys):
        target = tmp_path / "report.json"
        assert main([verilog_path, "--json", str(target)]) == 0
        payload = json.loads(target.read_text())
        assert payload["netlist"]["gates"] > 0
        assert isinstance(payload["words"], list)

    def test_propagated_words_in_json(self, verilog_path, capsys):
        assert main([verilog_path, "--propagate", "--json", "-"]) == 0
        out = capsys.readouterr().out
        payload = json.loads(out[out.index("{"):])
        assert "propagated_words" in payload


class TestErrors:
    def test_missing_file(self, capsys):
        assert main(["/nonexistent/design.v"]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_unparseable_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.v"
        bad.write_text("this is not verilog")
        assert main([str(bad)]) == 2
        assert "cannot parse" in capsys.readouterr().err

    def test_config_flags_forwarded(self, verilog_path, capsys):
        assert main([verilog_path, "--depth", "3",
                     "--max-simultaneous", "1"]) == 0
