"""Unit tests for the dependency-free metrics registry (repro.metrics).

The registry is the observability backbone of ``repro serve`` and
``repro batch --metrics-json``: counters/gauges/histograms with labels,
thread-safe mutation, Prometheus text rendering, and opt-in global
installation.  Exactness under concurrency matters — the serve-smoke CI
job asserts precise counts off these instruments.
"""

import json
import threading

import pytest

from repro import metrics
from repro.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("x_total")
        assert c.value() == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value() == 3.5

    def test_rejects_negative_increments(self):
        c = Counter("x_total")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_labelled_children_are_independent(self):
        c = Counter("req_total", labelnames=("endpoint",))
        c.inc(endpoint="/a")
        c.inc(3, endpoint="/b")
        assert c.value(endpoint="/a") == 1.0
        assert c.value(endpoint="/b") == 3.0

    def test_label_set_must_match_declaration(self):
        c = Counter("req_total", labelnames=("endpoint",))
        with pytest.raises(ValueError):
            c.inc()
        with pytest.raises(ValueError):
            c.inc(endpoint="/a", extra="nope")


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("depth")
        g.set(5)
        g.inc(2)
        g.dec(4)
        assert g.value() == 3.0


class TestHistogram:
    def test_observations_land_in_the_first_covering_bucket(self):
        h = Histogram("t_seconds", buckets=(0.1, 1.0, 10.0))
        h.observe(0.05)
        h.observe(0.5)
        h.observe(99.0)  # beyond the last bound: only +Inf catches it
        assert h.count() == 3
        assert h.sum() == pytest.approx(99.55)
        sample = h.samples()[0]["value"]
        assert sample["buckets"] == {"0.1": 1, "1": 1, "10": 0}

    def test_rendered_buckets_are_cumulative_with_inf(self):
        h = Histogram("t_seconds", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        h.observe(50.0)
        lines = list(h.render_lines())
        assert 't_seconds_bucket{le="0.1"} 1' in lines
        assert 't_seconds_bucket{le="1"} 2' in lines
        assert 't_seconds_bucket{le="+Inf"} 3' in lines
        assert "t_seconds_count 3" in lines

    def test_needs_at_least_one_bucket(self):
        with pytest.raises(ValueError):
            Histogram("t", buckets=())

    def test_default_buckets_cover_stage_to_corpus_scales(self):
        assert DEFAULT_BUCKETS[0] <= 0.001
        assert DEFAULT_BUCKETS[-1] >= 60.0


class TestRegistry:
    def test_get_or_create_returns_the_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a_total") is reg.counter("a_total")

    def test_kind_mismatch_is_an_error(self):
        reg = MetricsRegistry()
        reg.counter("a_total")
        with pytest.raises(ValueError):
            reg.gauge("a_total")

    def test_label_mismatch_is_an_error(self):
        reg = MetricsRegistry()
        reg.counter("a_total", labelnames=("x",))
        with pytest.raises(ValueError):
            reg.counter("a_total", labelnames=("y",))

    def test_render_is_prometheus_text(self):
        reg = MetricsRegistry()
        reg.counter("b_total", "things counted").inc(2)
        reg.gauge("a_gauge").set(1.5)
        text = reg.render()
        assert "# HELP b_total things counted" in text
        assert "# TYPE b_total counter" in text
        assert "\nb_total 2\n" in text
        assert "# TYPE a_gauge gauge" in text
        assert "a_gauge 1.5" in text
        assert text.endswith("\n")

    def test_as_dict_is_json_ready_and_sorted(self):
        reg = MetricsRegistry()
        reg.counter("z_total").inc()
        reg.counter("a_total", labelnames=("k",)).inc(k="v")
        dump = reg.as_dict()
        assert [m["name"] for m in dump] == ["a_total", "z_total"]
        assert dump[0]["samples"] == [{"labels": {"k": "v"}, "value": 1.0}]
        json.dumps(dump)  # must round-trip as JSON

    def test_threaded_increments_are_exact(self):
        """16 threads x 500 increments lose nothing: the store hit/miss
        counters and serve shed counts must be exact, not approximate."""
        reg = MetricsRegistry()
        counter = reg.counter("n_total")
        hist = reg.histogram("h_seconds", buckets=(1.0,))

        def hammer():
            for _ in range(500):
                counter.inc()
                hist.observe(0.5)

        threads = [threading.Thread(target=hammer) for _ in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value() == 16 * 500
        assert hist.count() == 16 * 500


class TestGlobalInstall:
    def teardown_method(self):
        metrics.uninstall()

    def test_off_by_default_install_uninstall(self):
        metrics.uninstall()
        assert metrics.current() is None
        reg = metrics.install()
        assert metrics.current() is reg
        mine = MetricsRegistry()
        assert metrics.install(mine) is mine
        assert metrics.current() is mine
        metrics.uninstall()
        assert metrics.current() is None

    def test_pipeline_publishes_only_when_installed(self):
        """An analysis run publishes stage metrics iff a registry is
        installed; with none installed, nothing breaks and StageTrace
        still carries the timings."""
        import sys, os
        sys.path.insert(0, os.path.dirname(__file__))
        from fixtures import figure1_netlist
        from repro.core import PipelineConfig, identify_words

        netlist, _ = figure1_netlist()
        config = PipelineConfig()
        metrics.uninstall()
        result = identify_words(netlist, config)
        assert result.trace.stage_seconds  # StageTrace unaffected

        reg = metrics.install()
        identify_words(netlist, config)
        analyses = reg.get("repro_analyses_total")
        assert analyses is not None and analyses.value() == 1.0
        stage_hist = reg.get("repro_stage_seconds")
        assert stage_hist is not None
        assert stage_hist.count(stage="grouping") >= 1


class TestConeAndIncrementalMetricNames:
    """Pins the wire names of the cone-cache and incremental metrics.

    Dashboards and the CI batch-cache job key on these exact names; a
    rename is a breaking change and must show up here, not in Grafana.
    """

    def teardown_method(self):
        metrics.uninstall()

    def test_cone_tier_metrics_from_a_cold_then_warm_run(self):
        import sys, os
        sys.path.insert(0, os.path.dirname(__file__))
        from fixtures import figure1_netlist
        from repro.core import PipelineConfig, identify_words
        from repro.core.conecache import ProcessConeCache

        netlist, _ = figure1_netlist()
        config = PipelineConfig()
        tier = ProcessConeCache()
        reg = metrics.install()
        identify_words(netlist, config, cone_cache=[tier])
        identify_words(netlist, config, cone_cache=[tier])

        commits = reg.get("repro_cone_tier_commits_total")
        misses = reg.get("repro_cone_tier_misses_total")
        hits = reg.get("repro_cone_tier_hits_total")
        assert commits is not None and commits.value() > 0
        assert misses is not None and misses.value() > 0
        assert hits is not None and hits.value(tier="process") > 0

    def test_incremental_metrics_from_one_incremental_run(self, tmp_path):
        from repro.api import Session
        from repro.netlist.cells import AND, NAND
        from repro.synth.designs import BENCHMARKS

        base = BENCHMARKS["b03"]()
        edited = base.copy()
        gate = next(
            g for g in edited.gates_in_file_order()
            if not g.is_ff and g.cell.name in ("AND", "OR")
            and len(g.inputs) >= 2
        )
        edited.replace_gate(gate.name, NAND, gate.inputs)

        session = Session(store=str(tmp_path / "store"))
        digest = session.analyze(base).digest
        reg = metrics.install()
        inc = session.analyze_incremental(digest, edited)

        runs = reg.get("repro_incremental_runs_total")
        dirty = reg.get("repro_incremental_dirty_bits_total")
        assert runs is not None and runs.value() == 1.0
        assert dirty is not None and dirty.value() == float(inc.dirty_bits)

    def test_batch_cone_tier_metrics_from_a_published_row(self):
        from repro.batch import _publish_row

        reg = metrics.install()
        _publish_row({
            "cache": "miss",
            "wall_seconds": 0.1,
            "cone_cache": {"hits": 3, "misses": 2, "commits": 2,
                           "hit_rate": 0.6},
        })
        hits = reg.get("repro_batch_cone_tier_hits_total")
        misses = reg.get("repro_batch_cone_tier_misses_total")
        assert hits is not None and hits.value() == 3.0
        assert misses is not None and misses.value() == 2.0
