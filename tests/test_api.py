"""Tests for the stable ``repro.api`` facade (Session / AnalysisReport)."""

import dataclasses
import os
import sys

import pytest

import repro
from repro.api import AnalysisReport, Session
from repro.core import PipelineConfig
from repro.core.baseline import shape_hashing as core_shape_hashing
from repro.core.pipeline import identify_words as core_identify_words
from repro.netlist import write_verilog
from repro.schema import PIPELINE_VERSION, SCHEMA_VERSION
from repro.store import ArtifactStore, result_digest
from repro.synth.designs import BENCHMARKS

sys.path.insert(0, os.path.dirname(__file__))
from fixtures import figure1_netlist  # noqa: E402


@pytest.fixture(scope="module")
def netlist():
    return figure1_netlist()[0]


@pytest.fixture(scope="module")
def design_path(tmp_path_factory, netlist):
    path = tmp_path_factory.mktemp("api") / "fig1.v"
    path.write_text(write_verilog(netlist))
    return str(path)


class TestAnalyze:
    def test_matches_legacy_identify_words(self, netlist):
        report = Session().analyze(netlist)
        legacy = core_identify_words(netlist, PipelineConfig())
        assert report.words == tuple(w.bits for w in legacy.words)
        assert report.singletons == tuple(legacy.singletons)
        assert report.control_signals == legacy.control_signals
        assert report.result_digest == result_digest(legacy)

    @pytest.mark.parametrize("name", ["b03", "b13"])
    def test_benchmark_round_trip_vs_legacy(self, name):
        netlist = BENCHMARKS[name]()
        report = Session().analyze(netlist)
        legacy = core_identify_words(netlist)
        assert report.words == tuple(w.bits for w in legacy.words)
        assert report.result_digest == result_digest(legacy)

    @pytest.mark.slow
    @pytest.mark.parametrize("name", sorted(BENCHMARKS))
    def test_every_benchmark_round_trips_vs_legacy(self, name):
        """Acceptance bar: the facade equals the legacy path everywhere."""
        netlist = BENCHMARKS[name]()
        report = Session().analyze(netlist)
        legacy = core_identify_words(netlist)
        assert report.words == tuple(w.bits for w in legacy.words)
        assert report.result_digest == result_digest(legacy)

    def test_cache_off_without_store(self, netlist):
        report = Session().analyze(netlist)
        assert report.cache == "off"
        assert report.key is None

    def test_path_cold_miss_then_warm_hit(self, design_path, tmp_path):
        session = Session(store=str(tmp_path / "store"))
        cold = session.analyze(design_path)
        warm = session.analyze(design_path)
        assert (cold.cache, warm.cache) == ("miss", "hit")
        assert cold.key == warm.key is not None
        assert warm.words == cold.words
        assert warm.result_digest == cold.result_digest
        assert warm.num_gates == cold.num_gates
        assert warm.design == cold.design == "fig1"

    def test_baseline_session(self, netlist):
        report = Session(baseline=True).analyze(netlist)
        legacy = core_shape_hashing(netlist)
        assert report.words == tuple(w.bits for w in legacy.words)

    def test_baseline_rejects_partial_config(self):
        with pytest.raises(ValueError):
            Session(config=PipelineConfig(allow_partial=True), baseline=True)

    def test_accepts_existing_store_instance(self, design_path, tmp_path):
        store = ArtifactStore(str(tmp_path / "s"))
        session = Session(store=store)
        assert session.store is store
        assert session.analyze(design_path).cache == "miss"


class TestAnalysisReport:
    def test_is_frozen(self, netlist):
        report = Session().analyze(netlist)
        with pytest.raises(dataclasses.FrozenInstanceError):
            report.design = "other"

    def test_as_dict_is_version_stamped(self, netlist):
        payload = Session().analyze(netlist).as_dict()
        assert payload["schema_version"] == SCHEMA_VERSION
        assert payload["pipeline_version"] == PIPELINE_VERSION
        assert payload["result_digest"]

    def test_equality_ignores_result_object(self, netlist):
        first = Session().analyze(netlist)
        second = Session().analyze(netlist)
        assert first.result is not second.result
        assert first == dataclasses.replace(
            second,
            runtime_seconds=first.runtime_seconds,
            trace=first.trace,
        )


class TestAnalyzeMany:
    def test_preserves_input_order(self, design_path, tmp_path):
        b03 = tmp_path / "b03.v"
        b03.write_text(write_verilog(BENCHMARKS["b03"]()))
        session = Session(store=str(tmp_path / "store"))
        reports = session.analyze_many([str(b03), design_path])
        assert [r.design for r in reports] == ["b03", "fig1"]

    def test_multiprocess_matches_serial(self, design_path, tmp_path):
        b03 = tmp_path / "b03.v"
        b03.write_text(write_verilog(BENCHMARKS["b03"]()))
        paths = [str(b03), design_path]
        serial = Session().analyze_many(paths, jobs=1)
        parallel = Session(store=str(tmp_path / "store")).analyze_many(
            paths, jobs=2
        )
        assert [r.design for r in parallel] == [r.design for r in serial]
        assert [r.result_digest for r in parallel] == [
            r.result_digest for r in serial
        ]

    def test_workers_share_the_store(self, design_path, tmp_path):
        session = Session(store=str(tmp_path / "store"))
        session.analyze(design_path)  # prime the cache
        (report,) = session.analyze_many([design_path], jobs=2)
        assert report.cache == "hit"

    def test_accepts_netlists_inline(self, netlist, design_path):
        reports = Session().analyze_many([netlist, design_path])
        assert len(reports) == 2
        assert reports[0].source is None
        assert reports[1].source == design_path

    def test_rejects_bad_jobs(self, design_path):
        with pytest.raises(ValueError):
            Session().analyze_many([design_path], jobs=0)


class TestDeprecatedShims:
    def test_identify_words_warns_and_delegates(self, netlist):
        with pytest.warns(DeprecationWarning, match="Session.analyze"):
            result = repro.identify_words(netlist)
        assert result_digest(result) == result_digest(
            core_identify_words(netlist)
        )

    def test_shape_hashing_warns_and_delegates(self, netlist):
        with pytest.warns(DeprecationWarning, match="baseline=True"):
            result = repro.shape_hashing(netlist)
        assert result_digest(result) == result_digest(
            core_shape_hashing(netlist)
        )

    def test_core_originals_do_not_warn(self, netlist, recwarn):
        core_identify_words(netlist)
        core_shape_hashing(netlist)
        assert not [
            w for w in recwarn if w.category is DeprecationWarning
        ]


class TestAnalyzeIncremental:
    """Incremental re-analysis: byte-identical to from-scratch, with the
    edit diff and cone-cache reuse reported alongside."""

    @staticmethod
    def _one_gate_edit(netlist):
        from repro.netlist.cells import AND, OR

        edited = netlist.copy()
        gate = next(
            g for g in edited.gates_in_file_order()
            if not g.is_ff
            and g.cell.name in ("AND", "OR")
            and len(g.inputs) >= 2
        )
        swapped = OR if gate.cell.name == "AND" else AND
        edited.replace_gate(gate.name, swapped, gate.inputs)
        return edited, gate.name

    def test_requires_a_store(self, netlist):
        with pytest.raises(ValueError, match="store"):
            Session().analyze_incremental("netlist:x", netlist)

    def test_unknown_base_digest_raises_key_error(self, netlist, tmp_path):
        session = Session(store=str(tmp_path / "store"))
        with pytest.raises(KeyError, match="unknown base digest"):
            session.analyze_incremental("netlist:" + "0" * 64, netlist)

    def test_edit_report_and_byte_identity(self, tmp_path):
        base = BENCHMARKS["b03"]()
        edited, edited_gate = self._one_gate_edit(base)
        session = Session(store=str(tmp_path / "store"))
        base_report = session.analyze(base)
        inc = session.analyze_incremental(base_report.digest, edited)

        assert inc.base_digest == base_report.digest
        assert inc.gates_changed == (edited_gate,)
        assert inc.gates_added == () and inc.gates_removed == ()
        assert inc.num_edits == 1
        assert 0 < inc.dirty_bits <= inc.total_bits
        assert inc.total_bits == len(base.register_input_nets())

        scratch = Session(config=session.config).analyze(edited)
        assert inc.report.words == scratch.words
        assert inc.report.singletons == scratch.singletons
        assert inc.report.result_digest == scratch.result_digest

    def test_chaining_through_the_returned_digest(self, tmp_path):
        base = BENCHMARKS["b03"]()
        edited, _ = self._one_gate_edit(base)
        session = Session(store=str(tmp_path / "store"))
        first = session.analyze(base)
        inc = session.analyze_incremental(first.digest, edited)
        # The edited digest is a valid base for the next edit (here: an
        # edit back to the original design).
        back = session.analyze_incremental(inc.digest, base)
        assert back.base_digest == inc.digest
        assert back.report.result_digest == first.result_digest

    def test_as_dict_shape(self, tmp_path):
        base = BENCHMARKS["b03"]()
        edited, _ = self._one_gate_edit(base)
        session = Session(store=str(tmp_path / "store"))
        inc = session.analyze_incremental(
            session.analyze(base).digest, edited
        )
        payload = inc.as_dict()
        assert payload["schema_version"] == SCHEMA_VERSION
        assert set(payload["diff"]) == {
            "gates_added", "gates_removed", "gates_changed",
            "dirty_nets", "dirty_bits", "total_bits",
        }
        assert set(payload["cone_cache"]) == {
            "hits", "misses", "commits", "reuse_rate",
        }
        assert payload["report"]["result_digest"] == inc.report.result_digest
        assert 0.0 <= payload["cone_cache"]["reuse_rate"] <= 1.0

    def test_accepts_text_paths_and_netlists(self, tmp_path):
        base = BENCHMARKS["b03"]()
        edited, _ = self._one_gate_edit(base)
        session = Session(store=str(tmp_path / "store"))
        digest = session.analyze(base).digest
        text = write_verilog(edited)
        path = tmp_path / "edited.v"
        path.write_text(text)
        from_text = session.analyze_incremental(digest, text)
        from_path = session.analyze_incremental(digest, str(path))
        from_netlist = session.analyze_incremental(digest, edited)
        assert (
            from_text.report.result_digest
            == from_path.report.result_digest
            == from_netlist.report.result_digest
        )
