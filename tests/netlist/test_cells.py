"""Unit tests for the cell library."""

import itertools

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.netlist.cells import (
    AND,
    BUF,
    CellLibrary,
    DFF,
    INV,
    LIBRARY,
    MUX,
    NAND,
    NOR,
    OR,
    TIE0,
    TIE1,
    XNOR,
    XOR,
)


class TestEvaluate:
    def test_buf_and_inv(self):
        assert BUF.evaluate([0]) == 0
        assert BUF.evaluate([1]) == 1
        assert INV.evaluate([0]) == 1
        assert INV.evaluate([1]) == 0

    @pytest.mark.parametrize(
        "cell,table",
        [
            (AND, {(0, 0): 0, (0, 1): 0, (1, 0): 0, (1, 1): 1}),
            (NAND, {(0, 0): 1, (0, 1): 1, (1, 0): 1, (1, 1): 0}),
            (OR, {(0, 0): 0, (0, 1): 1, (1, 0): 1, (1, 1): 1}),
            (NOR, {(0, 0): 1, (0, 1): 0, (1, 0): 0, (1, 1): 0}),
            (XOR, {(0, 0): 0, (0, 1): 1, (1, 0): 1, (1, 1): 0}),
            (XNOR, {(0, 0): 1, (0, 1): 0, (1, 0): 0, (1, 1): 1}),
        ],
    )
    def test_two_input_truth_tables(self, cell, table):
        for inputs, expected in table.items():
            assert cell.evaluate(list(inputs)) == expected

    def test_wide_gates(self):
        assert AND.evaluate([1, 1, 1, 1]) == 1
        assert AND.evaluate([1, 1, 0, 1]) == 0
        assert NAND.evaluate([1, 1, 1]) == 0
        assert NOR.evaluate([0, 0, 0]) == 1
        assert XOR.evaluate([1, 1, 1]) == 1

    def test_mux_selects_a_when_sel_zero(self):
        assert MUX.evaluate([0, 1, 0]) == 1
        assert MUX.evaluate([1, 1, 0]) == 0

    def test_constants(self):
        assert TIE0.evaluate([]) == 0
        assert TIE1.evaluate([]) == 1

    def test_dff_evaluates_combinationally(self):
        assert DFF.evaluate([1]) == 1


class TestThreeValued:
    def test_controlling_input_dominates_unknowns(self):
        assert AND.evaluate([0, None]) == 0
        assert NAND.evaluate([None, 0]) == 1
        assert OR.evaluate([1, None]) == 1
        assert NOR.evaluate([None, 1]) == 0

    def test_unknown_when_undetermined(self):
        assert AND.evaluate([1, None]) is None
        assert XOR.evaluate([1, None]) is None
        assert MUX.evaluate([None, 1, 0]) is None

    def test_mux_with_unknown_select_but_equal_data(self):
        assert MUX.evaluate([None, 1, 1]) == 1
        assert MUX.evaluate([None, 0, 0]) == 0


class TestControllingValues:
    def test_and_family(self):
        assert AND.controlling_value == 0
        assert NAND.controlling_value == 0
        assert AND.controlled_output == 0
        assert NAND.controlled_output == 1

    def test_or_family(self):
        assert OR.controlling_value == 1
        assert NOR.controlling_value == 1
        assert OR.controlled_output == 1
        assert NOR.controlled_output == 0

    def test_no_controlling_value(self):
        for cell in (XOR, XNOR, BUF, INV, MUX, DFF, TIE0, TIE1):
            assert cell.controlling_value is None

    @pytest.mark.parametrize("cell", [AND, NAND, OR, NOR])
    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_controlling_value_forces_output(self, cell, n):
        cv = cell.controlling_value
        for other in itertools.product((0, 1), repeat=n - 1):
            inputs = [cv] + list(other)
            assert cell.evaluate(inputs) == cell.controlled_output


class TestBackwardImplication:
    def test_buffer_chain(self):
        assert BUF.backward_implied_input(1) == 1
        assert INV.backward_implied_input(1) == 0
        assert INV.backward_implied_input(0) == 1

    def test_and_or_unique_cases(self):
        assert AND.backward_implied_input(1) == 1
        assert AND.backward_implied_input(0) is None
        assert NAND.backward_implied_input(0) == 1
        assert NAND.backward_implied_input(1) is None
        assert OR.backward_implied_input(0) == 0
        assert NOR.backward_implied_input(1) == 0

    def test_xor_never_implies(self):
        assert XOR.backward_implied_input(0) is None
        assert XNOR.backward_implied_input(1) is None

    @pytest.mark.parametrize("cell", [AND, NAND, OR, NOR, BUF, INV])
    @pytest.mark.parametrize("out", [0, 1])
    def test_implication_soundness(self, cell, out):
        """If backward implication fires, it is the only consistent input."""
        implied = cell.backward_implied_input(out)
        if implied is None:
            return
        n = max(2, cell.min_inputs)
        if cell.max_inputs is not None:
            n = cell.max_inputs
        for inputs in itertools.product((0, 1), repeat=n):
            if cell.evaluate(list(inputs)) == out:
                assert all(v == implied for v in inputs)


class TestArity:
    def test_too_few_inputs_rejected(self):
        with pytest.raises(ValueError):
            AND.evaluate([1])
        with pytest.raises(ValueError):
            MUX.evaluate([1, 0])

    def test_too_many_inputs_rejected(self):
        with pytest.raises(ValueError):
            BUF.evaluate([1, 0])
        with pytest.raises(ValueError):
            TIE0.evaluate([1])


class TestLibrary:
    def test_basic_lookup(self):
        assert LIBRARY.get("NAND") is NAND
        assert LIBRARY.get("nand") is NAND

    def test_sized_names(self):
        assert LIBRARY.get("NAND2") is NAND
        assert LIBRARY.get("NOR3") is NOR
        assert LIBRARY.get("AND4") is AND

    def test_aliases(self):
        assert LIBRARY.get("NOT") is INV
        assert LIBRARY.get("MUX2") is MUX
        assert LIBRARY.get("DFFR") is DFF
        assert LIBRARY.get("GND") is TIE0
        assert LIBRARY.get("VCC") is TIE1

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            LIBRARY.get("FROBNICATOR")

    def test_contains(self):
        assert "NAND3" in LIBRARY
        assert "FROB" not in LIBRARY

    def test_types_enumeration(self):
        names = {c.name for c in LIBRARY.types()}
        assert {"BUF", "INV", "AND", "NAND", "OR", "NOR", "XOR", "XNOR",
                "MUX", "DFF", "TIE0", "TIE1"} == names


@given(st.lists(st.sampled_from([0, 1]), min_size=2, max_size=6))
def test_demorgan_property(bits):
    """NAND(x) == INV(AND(x)) and NOR(x) == INV(OR(x)) for all inputs."""
    assert NAND.evaluate(bits) == INV.evaluate([AND.evaluate(bits)])
    assert NOR.evaluate(bits) == INV.evaluate([OR.evaluate(bits)])


@given(st.lists(st.sampled_from([0, 1]), min_size=2, max_size=6))
def test_xor_parity_property(bits):
    assert XOR.evaluate(bits) == sum(bits) % 2
    assert XNOR.evaluate(bits) == 1 - sum(bits) % 2


@given(
    st.lists(st.sampled_from([0, 1, None]), min_size=2, max_size=5),
    st.sampled_from(["AND", "NAND", "OR", "NOR", "XOR", "XNOR"]),
)
def test_three_valued_is_conservative(bits, cell_name):
    """If X-evaluation returns a value, every completion agrees with it."""
    cell = LIBRARY.get(cell_name)
    result = cell.evaluate(bits)
    if result is None:
        return
    unknown_positions = [i for i, b in enumerate(bits) if b is None]
    for completion in itertools.product((0, 1), repeat=len(unknown_positions)):
        concrete = list(bits)
        for pos, val in zip(unknown_positions, completion):
            concrete[pos] = val
        assert cell.evaluate(concrete) == result
