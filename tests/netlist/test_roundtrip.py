"""Verilog round-trip regression: parse(write(n)) must equal n.

The fuzz oracles lean on serialization as an identity, which previously
did not hold for names outside the plain identifier grammar (the
namespaces real flattening tools emit: ``\\reg[3]``, ``\\U1.U7``,
``\\3$net``).  These tests pin the fixed behaviour, including the
escaped-identifier writer path exercised by hostile anonymization.
"""

from __future__ import annotations

import pytest

from repro.netlist.netlist import Netlist
from repro.netlist.transforms import reorder_gates
from repro.netlist.verilog import (
    VerilogError,
    escape_identifier,
    parse_verilog,
    write_verilog,
)
from repro.synth.anonymize import anonymize
from repro.synth.designs.b03 import build


@pytest.fixture(scope="module")
def b03():
    return build()


class TestEscapeIdentifier:
    def test_plain_names_pass_through(self):
        assert escape_identifier("U17") == "U17"
        assert escape_identifier("count_reg_3") == "count_reg_3"

    def test_keywords_are_escaped(self):
        assert escape_identifier("wire") == "\\wire "
        assert escape_identifier("module") == "\\module "

    def test_hostile_names_are_escaped(self):
        assert escape_identifier("n[3]") == "\\n[3] "
        assert escape_identifier("3$net") == "\\3$net "
        assert escape_identifier("a.b") == "\\a.b "
        assert escape_identifier("bus:7") == "\\bus:7 "

    def test_unwritable_names_are_rejected(self):
        for bad in ("", "has space", "semi;colon", "back\\slash", "a,b",
                    "par(en"):
            with pytest.raises(VerilogError):
                escape_identifier(bad)


class TestRoundTrip:
    def test_plain_netlist(self, b03):
        assert parse_verilog(write_verilog(b03)) == b03

    def test_anonymized_netlist(self, b03):
        plain = anonymize(b03).netlist
        assert parse_verilog(write_verilog(plain)) == plain

    def test_hostile_anonymized_netlist(self, b03):
        hostile = anonymize(b03, naming="hostile").netlist
        assert parse_verilog(write_verilog(hostile)) == hostile

    def test_escaped_ports_survive(self, b03):
        hostile = anonymize(b03, naming="hostile").netlist
        reparsed = parse_verilog(write_verilog(hostile))
        assert reparsed.primary_inputs == hostile.primary_inputs
        assert reparsed.primary_outputs == hostile.primary_outputs

    def test_double_round_trip_is_stable(self, b03):
        hostile = anonymize(b03, naming="hostile").netlist
        once = write_verilog(hostile)
        twice = write_verilog(parse_verilog(once))
        assert once == twice


class TestNetlistEquality:
    def test_equal_to_copy(self, b03):
        assert b03 == b03.copy()

    def test_gate_order_matters(self, b03):
        order = [g.name for g in b03.gates_in_file_order()][::-1]
        reversed_netlist = reorder_gates(b03, order)
        assert reversed_netlist != b03
        assert len(reversed_netlist) == len(b03)

    def test_reorder_identity_is_equal(self, b03):
        order = [g.name for g in b03.gates_in_file_order()]
        assert reorder_gates(b03, order) == b03

    def test_not_equal_to_other_types(self, b03):
        assert b03 != "netlist"
        assert (b03 == object()) is False

    def test_empty_netlists_compare_by_name(self):
        assert Netlist("a") == Netlist("a")
        assert Netlist("a") != Netlist("b")
