"""Tests for generic transforms and netlist validation."""

import pytest

from repro.netlist import NetlistBuilder, stats, validate
from repro.netlist.netlist import Netlist, NetlistError
from repro.netlist.transforms import rewire_consumers, sweep_dead_logic
from repro.netlist.cells import AND, DFF, NAND


class TestRewire:
    def test_consumers_move(self):
        b = NetlistBuilder("t")
        a, c, d = b.inputs("a", "c", "d")
        old = b.nand(a, c)
        new = b.nand(a, d)
        out = b.and_(old, d)
        nl = b.build()
        assert rewire_consumers(nl, old, new) == 1
        assert nl.driver(out).inputs == (new, d)
        assert nl.fanouts(old) == ()

    def test_self_rewire_is_noop(self):
        b = NetlistBuilder("t")
        a, c = b.inputs("a", "c")
        n = b.nand(a, c)
        b.and_(n, c)
        nl = b.build()
        assert rewire_consumers(nl, n, n) == 0

    def test_multiple_occurrences_all_move(self):
        b = NetlistBuilder("t")
        a, c = b.inputs("a", "c")
        old = b.nand(a, c)
        nl = b.build()
        nl.add_gate("g", AND, [old, old], "out")
        rewire_consumers(nl, old, a)
        assert nl.gate("g").inputs == (a, a)

    def test_ff_inputs_rewire_too(self):
        b = NetlistBuilder("t")
        a, c = b.inputs("a", "c")
        old = b.nand(a, c)
        b.dff(old, output="r_reg_0")
        nl = b.build()
        rewire_consumers(nl, old, a)
        assert nl.flip_flops()[0].inputs == (a,)


class TestSweep:
    def test_chain_of_dead_gates(self):
        b = NetlistBuilder("t")
        a, c = b.inputs("a", "c")
        d1 = b.nand(a, c)
        d2 = b.inv(d1)
        d3 = b.inv(d2)  # whole chain dead
        live = b.and_(a, c)
        b.netlist.add_output(live)
        nl = b.build()
        assert sweep_dead_logic(nl) == 3
        assert nl.num_gates == 1

    def test_po_protects(self):
        b = NetlistBuilder("t")
        a, c = b.inputs("a", "c")
        n = b.nand(a, c)
        b.netlist.add_output(n)
        nl = b.build()
        assert sweep_dead_logic(nl) == 0


class TestValidate:
    def test_clean_netlist(self):
        b = NetlistBuilder("t")
        a, c = b.inputs("a", "c")
        b.output(b.nand(a, c), name="y")
        assert validate(b.build()).ok

    def test_undriven_input_detected(self):
        nl = Netlist("t")
        nl.add_input("a")
        nl.add_gate("g", NAND, ["a", "ghost"], "n")
        report = validate(nl)
        assert not report.ok
        assert any("ghost" in p for p in report.problems)

    def test_undriven_output_detected(self):
        nl = Netlist("t")
        nl.add_output("floating")
        assert not validate(nl).ok
        assert validate(nl, require_driven_outputs=False).ok

    def test_combinational_cycle_detected(self):
        nl = Netlist("t")
        nl.add_input("a")
        nl.add_gate("g1", NAND, ["a", "n2"], "n1")
        nl.add_gate("g2", NAND, ["n1", "a"], "n2")
        report = validate(nl)
        assert any("cycle" in p for p in report.problems)

    def test_raise_if_failed(self):
        nl = Netlist("t")
        nl.add_output("floating")
        with pytest.raises(NetlistError):
            validate(nl).raise_if_failed()

    def test_stats_row(self):
        b = NetlistBuilder("demo")
        a, c = b.inputs("a", "c")
        b.dff(b.nand(a, c), output="r_reg_0")
        s = stats(b.build())
        assert (s.num_gates, s.num_ffs) == (2, 1)
        assert "demo" in s.row()


class TestPublicApi:
    def test_top_level_imports(self):
        import repro

        assert callable(repro.identify_words)
        assert callable(repro.shape_hashing)
        assert repro.__version__
