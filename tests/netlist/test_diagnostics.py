"""Parser and validator diagnostics on corrupted netlists.

The hardened Verilog parser recovers from bad statements and reports every
problem (up to ``max_errors``) with 1-based line/column coordinates and the
offending token; :func:`repro.netlist.validate.diagnose` turns structural
corruption into machine-readable :class:`Diagnostic` records the engine's
pre-flight check consumes.
"""

import pytest

from repro.netlist import validate
from repro.netlist.cells import AND, NAND
from repro.netlist.netlist import Netlist
from repro.netlist.validate import (
    KIND_COMBINATIONAL_LOOP,
    KIND_FLOATING_INPUT,
    KIND_MULTI_DRIVEN,
    KIND_UNDRIVEN_OUTPUT,
    diagnose,
)
from repro.netlist.verilog import VerilogError, parse_verilog

GOOD = """\
module t (a, b, y);
  input a;
  input b;
  output y;
  NAND2 u1 (.A(a), .B(b), .Y(y));
endmodule
"""


class TestParserDiagnostics:
    def test_good_source_parses(self):
        nl = parse_verilog(GOOD)
        assert nl.num_gates == 1

    def test_unknown_cell_reports_line_and_token(self):
        bad = GOOD.replace("NAND2 u1", "FROB2 u1")
        with pytest.raises(VerilogError) as info:
            parse_verilog(bad)
        (diag,) = info.value.diagnostics
        assert diag.line == 5
        assert diag.column == 3  # two spaces of indentation
        assert diag.token == "FROB2"
        assert "unknown cell type 'FROB2'" in diag.message
        assert "line 5:3" in diag.describe()
        assert "line 5:3" in str(info.value)

    def test_multiple_errors_collected_in_one_raise(self):
        bad = (
            "module t (a, y);\n"
            "  input a;\n"
            "  output y;\n"
            "  FROB2 u1 (.A(a), .B(a), .Y(n1));\n"
            "  garbage statement here;\n"
            "  NAND2 u2 (.A(n1), .B(a), .Y(y));\n"
            "endmodule\n"
        )
        with pytest.raises(VerilogError) as info:
            parse_verilog(bad)
        diags = info.value.diagnostics
        assert len(diags) == 2
        assert [d.line for d in diags] == [4, 5]
        assert "2 parse error(s)" in str(info.value)

    def test_max_errors_caps_collection(self):
        body = "\n".join(
            f"  FROB2 u{i} (.A(a), .B(a), .Y(n{i}));" for i in range(8)
        )
        bad = f"module t (a);\n  input a;\n{body}\nendmodule\n"
        with pytest.raises(VerilogError) as info:
            parse_verilog(bad, max_errors=3)
        assert len(info.value.diagnostics) == 3
        assert "3+ parse error(s)" in str(info.value)

    def test_max_errors_must_be_positive(self):
        with pytest.raises(ValueError):
            parse_verilog(GOOD, max_errors=0)

    def test_comments_do_not_shift_line_numbers(self):
        bad = GOOD.replace(
            "  input b;", "  /* a\n     multi-line\n     comment */ input b;"
        ).replace("NAND2 u1", "FROB2 u1")
        with pytest.raises(VerilogError) as info:
            parse_verilog(bad)
        (diag,) = info.value.diagnostics
        assert diag.line == 7  # comment added two lines above the instance

    def test_diagnostic_dict_schema(self):
        with pytest.raises(VerilogError) as info:
            parse_verilog(GOOD.replace("NAND2", "FROB2"))
        assert info.value.diagnostics[0].as_dict() == {
            "line": 5,
            "column": 3,
            "message": info.value.diagnostics[0].message,
            "token": "FROB2",
        }

    def test_parse_continues_past_bad_statement(self):
        # The recoverable parser still reports the good gates' nets in
        # the diagnostics of later statements, proving it kept going.
        bad = GOOD.replace("  input b;", "  bogus b;")
        with pytest.raises(VerilogError) as info:
            parse_verilog(bad)
        assert len(info.value.diagnostics) == 1
        assert "unsupported statement" in info.value.diagnostics[0].message


class TestValidatorDiagnostics:
    def test_floating_input_is_a_warning(self):
        nl = Netlist("t")
        nl.add_input("a")
        nl.add_gate("g", NAND, ["a", "ghost"], "n1")
        nl.add_output("n1")
        (diag,) = diagnose(nl)
        assert diag.kind == KIND_FLOATING_INPUT
        assert diag.severity == "warning"
        assert diag.nets == ("ghost",)

    def test_combinational_loop_reports_cycle_nets(self):
        nl = Netlist("t")
        nl.add_input("a")
        nl.add_gate("g1", NAND, ["a", "n2"], "n1")
        nl.add_gate("g2", NAND, ["n1", "a"], "n2")
        nl.add_output("n1")
        diags = diagnose(nl)
        loops = [d for d in diags if d.kind == KIND_COMBINATIONAL_LOOP]
        assert len(loops) == 1
        assert loops[0].severity == "error"
        assert set(loops[0].nets) == {"n1", "n2"}
        assert "cycle" in loops[0].message

    def test_multiply_driven_net_is_an_error(self):
        nl = Netlist("t")
        nl.add_input("a")
        nl.add_gate("g1", AND, ["a", "a"], "n1")
        nl.add_gate("g2", AND, ["a", "a"], "n2")
        nl.add_output("n1")
        # add_gate refuses duplicate drivers, so corrupt the stored gate
        # directly — exactly what a buggy transform would produce.
        nl._gates["g2"].output = "n1"
        diags = diagnose(nl)
        multi = [d for d in diags if d.kind == KIND_MULTI_DRIVEN]
        assert len(multi) == 1
        assert multi[0].severity == "error"
        assert multi[0].nets == ("n1",)
        assert "g1" in multi[0].message and "g2" in multi[0].message

    def test_undriven_output_is_a_warning(self):
        nl = Netlist("t")
        nl.add_input("a")
        nl.add_gate("g", AND, ["a", "a"], "n1")
        nl.add_output("n1")
        nl.add_output("nowhere")
        diags = diagnose(nl)
        kinds = [d.kind for d in diags]
        assert kinds == [KIND_UNDRIVEN_OUTPUT]
        assert diags[0].nets == ("nowhere",)

    def test_clean_netlist_has_no_diagnostics(self):
        nl = Netlist("t")
        nl.add_input("a")
        nl.add_input("b")
        nl.add_gate("g", AND, ["a", "b"], "y")
        nl.add_output("y")
        assert diagnose(nl) == []
        report = validate(nl)
        assert report.ok
        assert report.diagnostics == []

    def test_validate_mirrors_diagnostics(self):
        nl = Netlist("t")
        nl.add_input("a")
        nl.add_gate("g", NAND, ["a", "ghost"], "n1")
        nl.add_output("n1")
        report = validate(nl)
        assert not report.ok
        assert report.problems == [d.message for d in report.diagnostics]
