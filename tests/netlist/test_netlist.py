"""Unit tests for the netlist data model."""

import pytest

from repro.netlist import (
    AND,
    BUF,
    DFF,
    INV,
    NAND,
    Netlist,
    NetlistError,
    NetlistBuilder,
    OR,
    TIE0,
)


@pytest.fixture
def small():
    """x,y -> n1=NAND(x,y); q=DFF(n1); n2=AND(n1,q); PO out=n2."""
    nl = Netlist("small")
    nl.add_input("x")
    nl.add_input("y")
    nl.add_gate("g1", NAND, ["x", "y"], "n1")
    nl.add_gate("ff", DFF, ["n1"], "q")
    nl.add_gate("g2", AND, ["n1", "q"], "n2")
    nl.add_output("n2")
    return nl


class TestConstruction:
    def test_counts(self, small):
        assert small.num_gates == 3
        assert small.num_ffs == 1
        assert small.num_nets == 5

    def test_duplicate_gate_name_rejected(self, small):
        with pytest.raises(NetlistError):
            small.add_gate("g1", AND, ["x", "y"], "other")

    def test_multiple_drivers_rejected(self, small):
        with pytest.raises(NetlistError):
            small.add_gate("g3", AND, ["x", "y"], "n1")

    def test_driving_primary_input_rejected(self, small):
        with pytest.raises(NetlistError):
            small.add_gate("g3", AND, ["n1", "q"], "x")

    def test_input_on_driven_net_rejected(self, small):
        with pytest.raises(NetlistError):
            small.add_input("n1")

    def test_arity_enforced_at_construction(self):
        nl = Netlist()
        nl.add_input("a")
        with pytest.raises(ValueError):
            nl.add_gate("g", AND, ["a"], "out")


class TestQueries:
    def test_driver_and_fanouts(self, small):
        assert small.driver("n1").name == "g1"
        assert small.driver("x") is None
        assert {g.name for g in small.fanouts("n1")} == {"ff", "g2"}
        assert small.fanouts("n2") == ()

    def test_file_order_preserved(self, small):
        assert [g.name for g in small.gates_in_file_order()] == [
            "g1", "ff", "g2",
        ]

    def test_register_nets(self, small):
        assert small.register_output_nets() == {"q"}
        assert small.register_input_nets() == ["n1"]
        assert small.cone_leaf_nets() == {"x", "y", "q"}

    def test_has_net(self, small):
        assert small.has_net("x")
        assert small.has_net("n2")
        assert not small.has_net("nope")


class TestMutation:
    def test_remove_gate_detaches(self, small):
        small.remove_gate("g2")
        assert small.num_gates == 2
        assert small.fanouts("q") == ()
        assert small.driver("n2") is None

    def test_replace_gate_keeps_position(self, small):
        small.replace_gate("g2", OR, ["n1", "q"])
        assert [g.name for g in small.gates_in_file_order()] == [
            "g1", "ff", "g2",
        ]
        assert small.gate("g2").cell is OR
        assert small.driver("n2").name == "g2"

    def test_replace_gate_rejects_taken_output(self, small):
        with pytest.raises(NetlistError):
            small.replace_gate("g2", BUF, ["n1"], output="q")


class TestTopologicalOrder:
    def test_order_respects_dependencies(self, small):
        order = [g.name for g in small.topological_order()]
        assert order.index("g1") < order.index("g2")
        assert order[-1] == "ff"  # flip-flops come last

    def test_cycle_detected(self):
        nl = Netlist()
        nl.add_input("a")
        nl.add_gate("g1", AND, ["a", "n2"], "n1")
        nl.add_gate("g2", AND, ["n1", "a"], "n2")
        with pytest.raises(NetlistError):
            nl.topological_order()

    def test_cycle_through_ff_is_fine(self):
        nl = Netlist()
        nl.add_input("a")
        nl.add_gate("g1", AND, ["a", "q"], "d")
        nl.add_gate("ff", DFF, ["d"], "q")
        order = [g.name for g in nl.topological_order()]
        assert order == ["g1", "ff"]


class TestCopy:
    def test_copy_is_independent(self, small):
        dup = small.copy()
        dup.remove_gate("g2")
        assert small.num_gates == 3
        assert dup.num_gates == 2

    def test_copy_preserves_everything(self, small):
        dup = small.copy("renamed")
        assert dup.name == "renamed"
        assert dup.primary_inputs == small.primary_inputs
        assert dup.primary_outputs == small.primary_outputs
        assert [g.name for g in dup.gates_in_file_order()] == [
            g.name for g in small.gates_in_file_order()
        ]


class TestBuilder:
    def test_expression_style(self):
        b = NetlistBuilder("t")
        a, c = b.inputs("a", "c")
        out = b.inv(b.nand(a, c))
        b.output(out, name="y")
        nl = b.build()
        assert nl.num_gates == 3  # nand, inv, output buf
        assert nl.primary_outputs == ["y"]

    def test_register_word_naming(self):
        b = NetlistBuilder("t")
        bits = b.input_word("d", 3)
        qs = b.register_word(bits, "count")
        assert qs == ["count_reg_0", "count_reg_1", "count_reg_2"]
        assert b.build().num_ffs == 3

    def test_fresh_names_never_collide(self):
        b = NetlistBuilder("t")
        a = b.input("U1")  # occupy the first auto name
        net = b.nand(a, a)
        assert net != "U1"

    def test_constants(self):
        b = NetlistBuilder("t")
        z = b.const0()
        o = b.const1()
        nl = b.build()
        assert nl.driver(z).cell is TIE0
        assert nl.driver(o).cell.name == "TIE1"
