"""Tests for the networkx bridge and the equivalence checker."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netlist import (
    NetlistBuilder,
    check_equivalence,
    cone_overlap,
    fanout_histogram,
    from_networkx,
    logic_levels,
    to_networkx,
)
from repro.synth import Module, Mux, optimize, synthesize, tech_map
from repro.synth.rtl import Const


def sample_netlist():
    b = NetlistBuilder("g")
    a, c, d = b.inputs("a", "c", "d")
    n1 = b.nand(a, c)
    n2 = b.mux(d, n1, a)
    q = b.dff(n2, output="r_reg_0")
    out = b.xor(n2, q)
    b.output(out, name="y")
    return b.build()


class TestNetworkxBridge:
    def test_round_trip_is_lossless(self):
        nl = sample_netlist()
        back = from_networkx(to_networkx(nl))
        assert back.num_gates == nl.num_gates
        assert back.primary_inputs == nl.primary_inputs
        assert back.primary_outputs == nl.primary_outputs
        for gate in nl.gates_in_file_order():
            twin = back.gate(gate.name)
            assert twin.cell.name == gate.cell.name
            assert twin.inputs == gate.inputs

    def test_round_trip_preserves_file_order(self):
        nl = sample_netlist()
        back = from_networkx(to_networkx(nl))
        assert [g.name for g in back.gates_in_file_order()] == [
            g.name for g in nl.gates_in_file_order()
        ]

    def test_edges_follow_signal_flow(self):
        nl = sample_netlist()
        graph = to_networkx(nl)
        n1 = nl.driver("y").inputs[0]  # the xor output net... via buffer
        assert graph.has_edge("a", next(iter(graph.successors("a"))))
        # Every gate input is a predecessor of its output.
        for gate in nl.gates_in_file_order():
            for source in gate.inputs:
                assert graph.has_edge(source, gate.output)

    def test_mux_pin_order_survives(self):
        nl = sample_netlist()
        back = from_networkx(to_networkx(nl))
        mux = next(g for g in back.gates() if g.cell.family == "mux")
        original = next(g for g in nl.gates() if g.cell.family == "mux")
        assert mux.inputs == original.inputs


class TestAnalyses:
    def test_logic_levels(self):
        b = NetlistBuilder("t")
        a = b.input("a")
        n1 = b.inv(a)
        n2 = b.inv(n1)
        n3 = b.inv(n2)
        nl = b.build()
        levels = logic_levels(nl)
        assert levels[a] == 0
        assert levels[n1] == 1 and levels[n3] == 3

    def test_levels_reset_at_registers(self):
        b = NetlistBuilder("t")
        a = b.input("a")
        q = b.dff(b.inv(b.inv(a)), output="r_reg_0")
        n = b.inv(q)
        nl = b.build()
        assert logic_levels(nl)[n] == 1

    def test_fanout_histogram(self):
        b = NetlistBuilder("t")
        a, c = b.inputs("a", "c")
        b.nand(a, c)
        b.nor(a, c)
        b.inv(a)
        nl = b.build()
        histogram = fanout_histogram(nl)
        assert histogram[3] == 1  # net a feeds three gates
        assert histogram[2] == 1  # net c feeds two

    def test_cone_overlap_extremes(self):
        b = NetlistBuilder("t")
        a, c, d, e = b.inputs("a", "c", "d", "e")
        shared = b.nand(a, c)
        n1 = b.inv(shared)
        n2 = b.buf(shared)
        disjoint = b.nand(d, e)
        nl = b.build()
        assert cone_overlap(nl, n1, n2) == 1.0
        assert cone_overlap(nl, n1, disjoint) == 0.0
        assert 0.0 < cone_overlap(nl, n1, shared) < 1.0


class TestEquivalence:
    def test_identical_netlists_equivalent(self):
        nl = sample_netlist()
        result = check_equivalence(nl, nl.copy())
        assert result.equivalent and result.exhaustive

    def test_optimization_is_equivalence_preserving(self):
        m = Module("t")
        a = m.input("a", 4)
        s = m.input("s")
        r = m.register("r", 4)
        r.next = Mux(s, a, Mux(s, a, r.ref()))  # redundant structure
        m.output("o", r.ref() ^ a)
        nl = synthesize(m)
        from repro.synth.lower import lower

        unoptimized = lower(m)
        result = check_equivalence(unoptimized, nl)
        assert result.equivalent, result

    def test_detects_injected_bug(self):
        b1 = NetlistBuilder("t")
        a, c = b1.inputs("a", "c")
        b1.output(b1.and_(a, c), name="y")
        b2 = NetlistBuilder("t")
        a, c = b2.inputs("a", "c")
        b2.output(b2.or_(a, c), name="y")
        result = check_equivalence(b1.build(), b2.build())
        assert not result.equivalent
        assert result.mismatched_net == "po:y"
        assert result.counterexample is not None

    def test_counterexample_actually_distinguishes(self):
        b1 = NetlistBuilder("t")
        a, c = b1.inputs("a", "c")
        b1.output(b1.xor(a, c), name="y")
        b2 = NetlistBuilder("t")
        a, c = b2.inputs("a", "c")
        b2.output(b2.xnor(a, c), name="y")
        result = check_equivalence(b1.build(), b2.build())
        assert result.counterexample  # any vector distinguishes these

    def test_no_shared_observables_raises(self):
        b1 = NetlistBuilder("t")
        a = b1.input("a")
        b1.output(b1.inv(a), name="y1")
        b2 = NetlistBuilder("t")
        a = b2.input("a")
        b2.output(b2.inv(a), name="y2")
        with pytest.raises(ValueError):
            check_equivalence(b1.build(), b2.build())

    def test_random_mode_above_cap(self):
        b = NetlistBuilder("t")
        bits = b.input_word("w", 16)
        out = bits[0]
        for net in bits[1:]:
            out = b.xor(out, net)
        b.output(out, name="y")
        nl = b.build()
        result = check_equivalence(nl, nl.copy(), max_exhaustive_sources=8)
        assert result.equivalent and not result.exhaustive


@given(st.integers(0, 2**31))
@settings(max_examples=10, deadline=None)
def test_synthesis_flow_equivalence_property(seed):
    """lower() vs full synthesize() agree for arbitrary small modules."""
    import random as _random

    rng = _random.Random(seed)
    m = Module("r", reset_input="rst")
    a = m.input("a", 4)
    c = m.input("c", 4)
    r = m.register("r", 4, reset=rng.randrange(16))
    choices = [a, c, a ^ c, a + c, ~a, Mux(a.eq(c), a, c)]
    r.next = rng.choice(choices)
    m.output("o", rng.choice(choices) ^ r.ref())
    from repro.synth.lower import lower

    golden = lower(m)
    revised = synthesize(m)
    assert check_equivalence(golden, revised).equivalent
