"""Tests for fanin-cone extraction, subcircuit cutting and simulation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netlist import (
    NetlistBuilder,
    Simulator,
    cone_gates,
    cone_nets,
    evaluate_combinational,
    exhaustive_inputs,
    extract_cone,
    step,
)
from repro.netlist.cone import extract_subcircuit


def deep_chain(levels):
    """inv chain of `levels` gates ending at net `top`."""
    b = NetlistBuilder("chain")
    net = b.input("a")
    for _ in range(levels):
        net = b.inv(net)
    b.output(net, name="top")
    return b.build(), net


class TestExtractCone:
    def test_depth_limits_expansion(self):
        nl, top = deep_chain(6)
        for depth in range(1, 6):
            cone = extract_cone(nl, top, depth)
            assert cone.depth() == depth

    def test_cone_stops_at_ff_outputs(self):
        b = NetlistBuilder("t")
        a = b.input("a")
        q = b.dff(b.inv(a), output="r_reg_0")
        out = b.nand(q, a)
        nl = b.build()
        cone = extract_cone(nl, out, 4)
        # q is a leaf even though its driver exists.
        leaves = {n.net for n in cone.walk() if n.is_leaf}
        assert "r_reg_0" in leaves
        assert cone.depth() == 1

    def test_shared_gate_expands_per_use(self):
        b = NetlistBuilder("t")
        a, c = b.inputs("a", "c")
        shared = b.nand(a, c)
        out = b.nand(shared, b.inv(shared))
        nl = b.build()
        cone = extract_cone(nl, out, 4)
        # `shared` appears twice in the tree expansion.
        occurrences = [n for n in cone.walk() if n.net == shared]
        assert len(occurrences) == 2

    def test_unknown_net_raises(self):
        nl, _ = deep_chain(2)
        with pytest.raises(KeyError):
            extract_cone(nl, "missing", 4)

    def test_cone_nets_and_gates(self):
        nl, top = deep_chain(3)
        cone = extract_cone(nl, top, 2)
        assert len(cone_gates(cone)) == 2
        names = cone_nets(cone)
        assert top in names
        internal = cone_nets(cone, include_leaves=False)
        assert len(internal) == len(names) - 1


class TestExtractSubcircuit:
    def test_subcircuit_contains_cone_and_boundary_inputs(self):
        b = NetlistBuilder("t")
        a, c, d = b.inputs("a", "c", "d")
        n1 = b.nand(a, c)
        n2 = b.nand(n1, d)
        n3 = b.inv(n2)
        b.output(n3, name="y")
        nl = b.build()
        sub = extract_subcircuit(nl, [n3], depth=2)
        assert n3 in {g.output for g in sub.gates()}
        assert n2 in {g.output for g in sub.gates()}
        # n1 is beyond depth 2 -> becomes a subcircuit input.
        assert n1 in sub.primary_inputs
        assert sub.primary_outputs == [n3]

    def test_shared_budget_reexpansion(self):
        """A gate first seen with a small budget is re-expanded deeper."""
        b = NetlistBuilder("t")
        a = b.input("a")
        chain = a
        for _ in range(3):
            chain = b.inv(chain)
        # root1 sees `chain` at depth 1; root2 sees it at depth 3.
        root1 = b.buf(chain)
        root2 = b.inv(b.inv(chain))
        nl = b.build()
        sub = extract_subcircuit(nl, [root1, root2], depth=4)
        # The full inverter chain must be present (root2's deep view wins).
        assert nl.driver(chain).name in sub

    def test_subcircuit_simulates_like_parent(self):
        b = NetlistBuilder("t")
        a, c = b.inputs("a", "c")
        n1 = b.xor(a, c)
        n2 = b.nand(n1, a)
        b.output(n2, name="y")
        nl = b.build()
        sub = extract_subcircuit(nl, [n2], depth=4)
        for assignment in exhaustive_inputs(["a", "c"]):
            full = evaluate_combinational(nl, assignment)
            cut = evaluate_combinational(sub, assignment)
            assert full[n2] == cut[n2]


class TestSimulation:
    def test_combinational_evaluation(self):
        b = NetlistBuilder("t")
        a, c = b.inputs("a", "c")
        n = b.nand(a, c)
        b.output(n, name="y")
        nl = b.build()
        assert evaluate_combinational(nl, {"a": 1, "c": 1})[n] == 0
        assert evaluate_combinational(nl, {"a": 0, "c": 1})[n] == 1

    def test_unknown_inputs_propagate(self):
        b = NetlistBuilder("t")
        a, c = b.inputs("a", "c")
        n = b.and_(a, c)
        nl = b.build()
        assert evaluate_combinational(nl, {"a": 0})[n] == 0
        assert evaluate_combinational(nl, {"a": 1})[n] is None

    def test_sequential_counter_steps(self):
        # 2-bit counter: b0 toggles, b1 ^= b0.
        b = NetlistBuilder("cnt")
        q0, q1 = "c_reg_0", "c_reg_1"
        d0 = b.inv(q0)
        d1 = b.xor(q0, q1)
        b.dff(d0, output=q0)
        b.dff(d1, output=q1)
        nl = b.build()
        sim = Simulator(nl)
        sim.reset(0)
        seen = []
        for _ in range(4):
            state = sim.clock({})
            seen.append((state[q1], state[q0]))
        assert seen == [(0, 1), (1, 0), (1, 1), (0, 0)]

    def test_step_function_matches_simulator(self):
        b = NetlistBuilder("t")
        a = b.input("a")
        q = "r_reg_0"
        b.dff(b.xor(a, q), output=q)
        nl = b.build()
        state = {q: 0}
        state = step(nl, {"a": 1}, state)
        assert state == {q: 1}
        state = step(nl, {"a": 1}, state)
        assert state == {q: 0}

    def test_peek_reads_combinational_nets(self):
        b = NetlistBuilder("t")
        a = b.input("a")
        n = b.inv(a)
        b.dff(n, output="r_reg_0")
        nl = b.build()
        sim = Simulator(nl)
        sim.clock({"a": 0})
        assert sim.peek(n) == 1
        assert sim.peek("r_reg_0") == 1


@given(st.integers(min_value=1, max_value=8))
def test_inverter_chain_parity(levels):
    nl, top = deep_chain(levels)
    out = evaluate_combinational(nl, {"a": 0})[top]
    assert out == levels % 2
