"""Tests for the structural Verilog and .bench readers/writers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netlist import (
    NetlistBuilder,
    parse_bench,
    parse_verilog,
    write_bench,
    write_verilog,
)
from repro.netlist.bench import BenchError
from repro.netlist.verilog import VerilogError


def example_netlist():
    b = NetlistBuilder("demo")
    x, y, s = b.inputs("x", "y", "s")
    n = b.nand(x, y)
    q = b.dff(n, output="state_reg_0")
    z = b.mux(s, n, q)
    w = b.xor(z, x)
    b.output(w, name="out")
    return b.build()


class TestVerilogRoundTrip:
    def test_write_then_parse_preserves_structure(self):
        nl = example_netlist()
        text = write_verilog(nl)
        back = parse_verilog(text)
        assert back.name == nl.name
        assert back.num_gates == nl.num_gates
        assert back.num_ffs == nl.num_ffs
        assert back.primary_inputs == nl.primary_inputs
        assert back.primary_outputs == nl.primary_outputs
        assert [g.name for g in back.gates_in_file_order()] == [
            g.name for g in nl.gates_in_file_order()
        ]

    def test_round_trip_preserves_connectivity(self):
        nl = example_netlist()
        back = parse_verilog(write_verilog(nl))
        for gate in nl.gates_in_file_order():
            twin = back.gate(gate.name)
            assert twin.cell.name == gate.cell.name
            assert twin.inputs == gate.inputs
            assert twin.output == gate.output


class TestVerilogParsing:
    def test_positional_connections_output_first(self):
        nl = parse_verilog(
            "module m (a, b, y);\n"
            "input a; input b; output y;\n"
            "nand g1 (y, a, b);\n"
            "endmodule\n"
        )
        gate = nl.gate("g1")
        assert gate.output == "y"
        assert gate.inputs == ("a", "b")

    def test_vector_declarations_expand(self):
        nl = parse_verilog(
            "module m (d, y);\n"
            "input [2:0] d; output y;\n"
            "AND3 g (.Z(y), .A(d[0]), .B(d[1]), .C(d[2]));\n"
            "endmodule\n"
        )
        assert nl.primary_inputs == ["d_0", "d_1", "d_2"]
        assert nl.gate("g").inputs == ("d_0", "d_1", "d_2")

    def test_assign_constants_become_ties(self):
        nl = parse_verilog(
            "module m (y);\noutput y;\nwire t;\n"
            "assign t = 1'b1;\nassign y = t;\nendmodule\n"
        )
        assert nl.driver("t").cell.name == "TIE1"
        assert nl.driver("y").cell.name == "BUF"

    def test_comments_stripped(self):
        nl = parse_verilog(
            "// header\nmodule m (a, y); /* block\ncomment */\n"
            "input a; output y;\n"
            "INV g (.Z(y), .A(a)); // trailing\nendmodule\n"
        )
        assert nl.num_gates == 1

    def test_dff_clock_pin_ignored(self):
        nl = parse_verilog(
            "module m (d, clk, q);\ninput d; input clk; output q;\n"
            "DFF r (.Q(q), .D(d), .CK(clk));\nendmodule\n"
        )
        assert nl.gate("r").inputs == ("d",)

    def test_unknown_cell_rejected(self):
        with pytest.raises(VerilogError):
            parse_verilog(
                "module m (a, y);\ninput a; output y;\n"
                "WIDGET g (.Z(y), .A(a));\nendmodule\n"
            )

    def test_missing_output_pin_rejected(self):
        with pytest.raises(VerilogError):
            parse_verilog(
                "module m (a, b);\ninput a; input b;\n"
                "NAND2 g (.A(a), .B(b));\nendmodule\n"
            )

    def test_statement_before_module_rejected(self):
        with pytest.raises(VerilogError):
            parse_verilog("input a;\nmodule m (a);\nendmodule\n")


class TestBench:
    def test_round_trip(self):
        nl = example_netlist()
        # .bench cannot express MUX pin order beyond our convention, but
        # parses what we write.
        text = write_bench(nl)
        back = parse_bench(text)
        assert back.num_gates == nl.num_gates
        assert back.num_ffs == nl.num_ffs
        assert set(back.primary_inputs) == set(nl.primary_inputs)

    def test_parse_classic_format(self):
        nl = parse_bench(
            "# iscas-ish\nINPUT(a)\nINPUT(b)\nOUTPUT(y)\n"
            "n1 = NAND(a, b)\ny = NOT(n1)\ns = DFF(y)\n"
        )
        assert nl.num_gates == 3
        assert nl.driver("y").cell.name == "INV"
        assert nl.register_input_nets() == ["y"]

    def test_bad_line_rejected(self):
        with pytest.raises(BenchError):
            parse_bench("n1 == AND(a, b)\n")

    def test_unknown_gate_rejected(self):
        with pytest.raises(BenchError):
            parse_bench("n1 = FOO(a, b)\n")


# Property: any generated combinational netlist survives the Verilog
# round trip bit-for-bit in structure.
@st.composite
def random_netlists(draw):
    b = NetlistBuilder("rand")
    nets = list(b.inputs("i0", "i1", "i2"))
    n_gates = draw(st.integers(min_value=1, max_value=12))
    for k in range(n_gates):
        kind = draw(st.sampled_from(["nand", "nor", "xor", "inv", "mux"]))
        if kind == "inv":
            nets.append(b.inv(draw(st.sampled_from(nets))))
        elif kind == "mux":
            s, a, c = (draw(st.sampled_from(nets)) for _ in range(3))
            nets.append(b.mux(s, a, c))
        else:
            x, y = draw(st.sampled_from(nets)), draw(st.sampled_from(nets))
            nets.append(getattr(b, kind)(x, y))
    b.output(nets[-1], name="out")
    return b.build()


@given(random_netlists())
@settings(max_examples=40, deadline=None)
def test_verilog_round_trip_property(nl):
    back = parse_verilog(write_verilog(nl))
    assert back.num_gates == nl.num_gates
    for gate in nl.gates_in_file_order():
        twin = back.gate(gate.name)
        assert twin.cell.name == gate.cell.name
        assert twin.inputs == gate.inputs
        assert twin.output == gate.output
