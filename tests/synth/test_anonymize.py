"""Unit tests for netlist anonymization."""

import pytest

from repro.core import identify_words
from repro.netlist import NetlistBuilder, check_equivalence, validate
from repro.synth import anonymize
from repro.synth.designs import BENCHMARKS


def sample():
    b = NetlistBuilder("secret_alu")
    a, c = b.inputs("operand_a", "operand_b")
    n = b.nand(a, c)
    b.dff(n, output="result_reg_0")
    b.output(n, name="carry_flag")
    return b.build()


class TestAnonymize:
    def test_no_original_names_survive(self):
        nl = sample()
        anon = anonymize(nl)
        leaked = set(nl.nets()) & set(anon.netlist.nets())
        assert not leaked

    def test_structure_preserved(self):
        nl = sample()
        anon = anonymize(nl)
        assert anon.netlist.num_gates == nl.num_gates
        assert anon.netlist.num_ffs == nl.num_ffs
        assert validate(anon.netlist).ok
        # Gate (line) order survives: cell sequence is identical.
        assert [g.cell.name for g in anon.netlist.gates_in_file_order()] == [
            g.cell.name for g in nl.gates_in_file_order()
        ]

    def test_translate_and_reverse(self):
        nl = sample()
        anon = anonymize(nl)
        nets = ["operand_a", "carry_flag"]
        assert anon.reverse(anon.translate(nets)) == nets

    def test_prefix(self):
        anon = anonymize(sample(), prefix="x_")
        assert all(
            net.startswith("x_n") for net in anon.netlist.nets()
        )

    def test_identification_results_map_back(self):
        """Words found on the anonymized b03 are the same words."""
        nl = BENCHMARKS["b03"]()
        anon = anonymize(nl)
        original = {w.bit_set for w in identify_words(nl).words}
        mapped = {
            frozenset(anon.reverse(w.bits))
            for w in identify_words(anon.netlist).words
        }
        assert mapped == original
