"""Integration tests over the Table 1 benchmark suite.

Every benchmark netlist must be structurally valid, carry extractable
reference words, and satisfy the paper's qualitative claims (Ours >= Base
everywhere).  The heavyweight quantitative comparison lives in
``benchmarks/test_table1.py``; these tests keep the designs honest during
development at a fraction of the cost by checking the small benchmarks
exhaustively and the big ones structurally.
"""

import pytest

from repro.eval import evaluate, extract_reference_words
from repro.eval.runner import run_benchmark
from repro.netlist import validate
from repro.synth.designs import BENCHMARKS

SMALL = ["b03", "b04", "b05", "b07", "b08", "b11", "b12", "b13"]

_BUILT = {}


def build(name):
    if name not in _BUILT:
        _BUILT[name] = BENCHMARKS[name]()
    return _BUILT[name]


@pytest.mark.parametrize("name", SMALL)
class TestSmallBenchmarks:
    def test_netlist_valid(self, name):
        assert validate(build(name)).ok

    def test_netlist_is_technology_mapped(self, name):
        netlist = build(name)
        assert all(g.cell.family != "mux" for g in netlist.gates())
        for gate in netlist.gates():
            assert len(gate.inputs) <= 4

    def test_reference_words_exist(self, name):
        """Paper: "we only experimented with ITC benchmarks with at least
        5 identified reference words"."""
        words = extract_reference_words(build(name))
        assert len(words) >= 5

    def test_ours_never_worse_than_base(self, name):
        run = run_benchmark(build(name))
        assert run.ours_metrics.num_full >= run.base_metrics.num_full
        assert run.ours_metrics.num_not_found <= run.base_metrics.num_not_found

    def test_deterministic_build(self, name):
        first = BENCHMARKS[name]()
        second = BENCHMARKS[name]()
        assert first.num_gates == second.num_gates
        assert [g.name for g in first.gates_in_file_order()] == [
            g.name for g in second.gates_in_file_order()
        ]


class TestSuiteShape:
    def test_all_twelve_present(self):
        assert list(BENCHMARKS) == [
            "b03", "b04", "b05", "b07", "b08", "b11",
            "b12", "b13", "b14", "b15", "b17", "b18",
        ]

    def test_b03_matches_paper_exactly(self):
        """The walkthrough benchmark reproduces its Table 1 row verbatim."""
        run = run_benchmark(build("b03"))
        row = run.row()
        assert row.num_words == 7
        assert row.avg_word_size == pytest.approx(3.14, abs=0.01)
        assert row.base.pct_full == pytest.approx(71.4, abs=0.1)
        assert row.ours.pct_full == pytest.approx(85.7, abs=0.1)
        assert row.base.fragmentation_rate == pytest.approx(0.67, abs=0.01)
        assert row.ours.fragmentation_rate == 0.0

    def test_b08_needs_pair_assignment(self):
        """b08's 3 control signals include a simultaneous pair."""
        run = run_benchmark(build("b08"))
        assert len(run.ours_result.control_signals) == 3
        sizes = {
            len(a.signals)
            for a in run.ours_result.control_assignments.values()
        }
        assert 2 in sizes  # at least one word needed a pair

    def test_gate_counts_in_paper_order_of_magnitude(self):
        paper_gate_counts = {
            "b03": 122, "b04": 652, "b05": 927, "b07": 383, "b08": 149,
            "b11": 726, "b12": 944, "b13": 289,
        }
        for name, paper in paper_gate_counts.items():
            built = build(name).num_gates
            assert paper / 4 <= built <= paper * 4, (
                f"{name}: {built} gates vs paper {paper}"
            )


class TestBigBenchmarksStructure:
    """b14-b18 are exercised lightly here; fully in benchmarks/."""

    def test_b14_profile_sizes(self):
        from repro.synth.designs.b14 import PROFILE

        assert PROFILE.total_word_bits() == 243

    def test_b17_is_three_cores_plus_glue(self):
        netlist = build("b17")
        prefixes = {g.name.split("_", 1)[0] for g in netlist.gates()}
        assert {"core1", "core2", "core3", "glue"} <= prefixes
        words = extract_reference_words(netlist)
        assert len(words) == 98  # 3 x 32 + 2 glue words

    def test_b18_word_count_matches_paper(self):
        netlist = build("b18")
        words = extract_reference_words(netlist)
        assert len(words) == 212
        assert netlist.num_ffs > 3000


class TestExcludedBenchmarks:
    """The paper's selection rule: "at least 5 identified reference words"."""

    def test_excluded_circuits_fall_below_the_bar(self):
        from repro.synth.designs import EXCLUDED

        for name, build_fn in EXCLUDED.items():
            netlist = build_fn()
            assert validate(netlist).ok, name
            words = extract_reference_words(netlist)
            assert len(words) < 5, (
                f"{name} has {len(words)} reference words; the paper "
                f"excluded it for having fewer than 5"
            )

    def test_excluded_not_in_table1_suite(self):
        from repro.synth.designs import EXCLUDED

        assert not set(EXCLUDED) & set(BENCHMARKS)

    def test_identification_still_runs_on_them(self):
        from repro.synth.designs import EXCLUDED

        for build_fn in EXCLUDED.values():
            run = run_benchmark(build_fn())
            assert run.ours_metrics.num_full >= run.base_metrics.num_full
