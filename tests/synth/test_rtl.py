"""Tests for the RTL IR: construction, width checking, module validation."""

import pytest

from repro.synth import (
    Binary,
    Compare,
    Concat,
    Const,
    InputRef,
    Module,
    Mux,
    Reduce,
    RegRef,
    RtlError,
    Slice,
    Unary,
)


class TestExprConstruction:
    def test_const_range_checked(self):
        Const(3, 2)
        with pytest.raises(RtlError):
            Const(4, 2)
        with pytest.raises(RtlError):
            Const(0, 0)

    def test_const_bit_value(self):
        c = Const(0b1010, 4)
        assert [c.bit_value(i) for i in range(4)] == [0, 1, 0, 1]

    def test_binary_width_mismatch(self):
        a = InputRef("a", 4)
        b = InputRef("b", 5)
        with pytest.raises(RtlError):
            Binary("add", a, b)

    def test_operator_sugar(self):
        a = InputRef("a", 4)
        b = InputRef("b", 4)
        assert (a & b).op == "and"
        assert (a | b).op == "or"
        assert (a ^ b).op == "xor"
        assert (a + b).op == "add"
        assert (a - b).op == "sub"
        assert isinstance(~a, Unary)
        assert a.eq(b).width == 1
        assert a.lt(b).op == "lt"

    def test_unknown_ops_rejected(self):
        a = InputRef("a", 2)
        with pytest.raises(RtlError):
            Binary("mul", a, a)
        with pytest.raises(RtlError):
            Compare("ge", a, a)
        with pytest.raises(RtlError):
            Reduce("nand", a)

    def test_mux_width_rules(self):
        sel = InputRef("s", 1)
        a = InputRef("a", 4)
        b = InputRef("b", 4)
        assert Mux(sel, a, b).width == 4
        with pytest.raises(RtlError):
            Mux(a, a, b)  # wide select
        with pytest.raises(RtlError):
            Mux(sel, a, InputRef("c", 3))

    def test_slice_bounds(self):
        a = InputRef("a", 8)
        assert a.slice(2, 5).width == 4
        assert a.bit(7).width == 1
        with pytest.raises(RtlError):
            a.slice(5, 2)
        with pytest.raises(RtlError):
            a.slice(0, 8)

    def test_concat_width(self):
        a = InputRef("a", 3)
        b = InputRef("b", 5)
        assert Concat((a, b)).width == 8
        with pytest.raises(RtlError):
            Concat(())

    def test_reductions_are_one_bit(self):
        a = InputRef("a", 6)
        assert a.any().width == 1
        assert a.all().op == "and"
        assert a.parity().op == "xor"


class TestModule:
    def test_register_roundtrip(self):
        m = Module("t")
        a = m.input("a", 4)
        r = m.register("r", 4)
        r.next = a
        m.output("o", r.ref())
        m.check()

    def test_missing_next_rejected(self):
        m = Module("t")
        m.register("r", 4)
        with pytest.raises(RtlError):
            m.check()

    def test_width_mismatch_rejected(self):
        m = Module("t")
        a = m.input("a", 3)
        r = m.register("r", 4)
        r.next = Concat((a, Const(0, 1)))
        m.check()
        r.next = a
        with pytest.raises(RtlError):
            m.check()

    def test_unknown_input_ref_rejected(self):
        m = Module("t")
        r = m.register("r", 2)
        r.next = InputRef("ghost", 2)
        with pytest.raises(RtlError):
            m.check()

    def test_unknown_register_ref_rejected(self):
        m = Module("t")
        m.input("a", 2)
        r = m.register("r", 2)
        r.next = RegRef("ghost", 2)
        with pytest.raises(RtlError):
            m.check()

    def test_reset_needs_reset_input(self):
        m = Module("t")  # no reset input declared
        a = m.input("a", 2)
        r = m.register("r", 2, reset=0)
        r.next = a
        with pytest.raises(RtlError):
            m.check()

    def test_reset_value_must_fit(self):
        m = Module("t", reset_input="rst")
        a = m.input("a", 2)
        r = m.register("r", 2, reset=7)
        r.next = a
        with pytest.raises(RtlError):
            m.check()

    def test_duplicate_register_rejected(self):
        m = Module("t")
        m.register("r", 2)
        with pytest.raises(RtlError):
            m.register("r", 3)

    def test_input_redeclared_with_new_width_rejected(self):
        m = Module("t")
        m.input("a", 2)
        m.input("a", 2)  # same width ok
        with pytest.raises(RtlError):
            m.input("a", 3)
