"""Unit tests for the netlist optimization passes."""

import pytest

from repro.netlist import (
    AND,
    BUF,
    INV,
    NAND,
    NetlistBuilder,
    OR,
    evaluate_combinational,
    exhaustive_inputs,
    validate,
)
from repro.synth import (
    cleanup_buffers,
    cleanup_double_inverters,
    fold_constants,
    optimize,
    simplify_mux_constants,
    strash,
)
from repro.synth.optimize import simplify_duplicate_inputs


class TestFoldConstants:
    def test_tie_through_and(self):
        b = NetlistBuilder("t")
        one = b.const1()
        a = b.input("a")
        n = b.and_(one, a)
        out = b.nand(n, a)
        b.output(out, name="y")
        nl = fold_constants(b.build())
        # AND(1, a) collapses to BUF(a).
        assert nl.driver(n).cell.family == "buf"

    def test_controlling_constant_kills_cone(self):
        b = NetlistBuilder("t")
        zero = b.const0()
        a, c = b.inputs("a", "c")
        dead = b.and_(zero, a)
        out = b.or_(dead, c)
        b.output(out, name="y")
        nl = fold_constants(b.build())
        assert nl.driver(dead) is None  # removed with its constant
        assert nl.driver(out).cell.family == "buf"

    def test_no_constants_is_identity(self):
        b = NetlistBuilder("t")
        a, c = b.inputs("a", "c")
        n = b.nand(a, c)
        b.output(n, name="y")
        original = b.build()
        folded = fold_constants(original)
        assert folded.num_gates == original.num_gates


class TestMuxConstants:
    @pytest.mark.parametrize(
        "const_arm,const_val,expected_family",
        [("a", 0, "and"), ("a", 1, "or"), ("b", 0, "and"), ("b", 1, "or")],
    )
    def test_rewrites_preserve_function(self, const_arm, const_val, expected_family):
        b = NetlistBuilder("t")
        s, d = b.inputs("s", "d")
        const = b.const1() if const_val else b.const0()
        if const_arm == "a":
            n = b.mux(s, const, d)
        else:
            n = b.mux(s, d, const)
        b.output(n, name="y")
        nl = b.build()
        reference = {
            tuple(sorted(vals.items())): evaluate_combinational(nl, vals)[n]
            for vals in exhaustive_inputs(["s", "d"])
        }
        assert simplify_mux_constants(nl) == 1
        assert nl.driver(n).cell.family == expected_family
        for vals in exhaustive_inputs(["s", "d"]):
            assert (
                evaluate_combinational(nl, vals)[n]
                == reference[tuple(sorted(vals.items()))]
            )

    def test_both_arms_constant(self):
        b = NetlistBuilder("t")
        s = b.input("s")
        n = b.mux(s, b.const0(), b.const1())  # s ? 1 : 0 == s
        b.output(n, name="y")
        nl = b.build()
        simplify_mux_constants(nl)
        assert nl.driver(n).cell.family == "buf"
        assert not nl.driver(n).cell.inverted


class TestStrash:
    def test_identical_gates_merge(self):
        b = NetlistBuilder("t")
        a, c = b.inputs("a", "c")
        n1 = b.nand(a, c)
        n2 = b.nand(a, c)
        out = b.and_(n1, n2)
        b.output(out, name="y")
        nl = b.build()
        assert strash(nl) == 1
        assert nl.driver(n2) is None
        # The consumer now reads n1 twice.
        assert nl.driver(out).inputs == (n1, n1)

    def test_commutative_inputs_merge(self):
        b = NetlistBuilder("t")
        a, c = b.inputs("a", "c")
        n1 = b.nand(a, c)
        n2 = b.nand(c, a)
        b.and_(n1, n2, output="y")
        b.netlist.add_output("y")
        nl = b.build()
        assert strash(nl) == 1

    def test_mux_input_order_not_commuted(self):
        b = NetlistBuilder("t")
        s, a, c = b.inputs("s", "a", "c")
        n1 = b.mux(s, a, c)
        n2 = b.mux(s, c, a)  # different function!
        b.xor(n1, n2, output="y")
        b.netlist.add_output("y")
        nl = b.build()
        assert strash(nl) == 0

    def test_merges_cascade(self):
        b = NetlistBuilder("t")
        a, c = b.inputs("a", "c")
        n1 = b.nand(a, c)
        n2 = b.nand(a, c)
        m1 = b.inv(n1)
        m2 = b.inv(n2)
        b.and_(m1, m2, output="y")
        b.netlist.add_output("y")
        nl = b.build()
        assert strash(nl) == 2  # second nand AND second inv

    def test_po_duplicate_kept_as_buffer(self):
        b = NetlistBuilder("t")
        a, c = b.inputs("a", "c")
        n1 = b.nand(a, c)
        n2 = b.nand(a, c, output="named_po")
        b.netlist.add_output("named_po")
        b.netlist.add_output(n1)
        nl = b.build()
        strash(nl)
        assert nl.driver("named_po").cell is BUF


class TestCleanups:
    def test_buffer_bypass(self):
        b = NetlistBuilder("t")
        a, c = b.inputs("a", "c")
        buffered = b.buf(a)
        n = b.nand(buffered, c)
        b.netlist.add_output(n)
        nl = b.build()
        assert cleanup_buffers(nl) == 1
        assert nl.driver(n).inputs == (a, c)

    def test_po_buffer_kept(self):
        b = NetlistBuilder("t")
        a = b.input("a")
        b.output(b.inv(a), name="y")  # output() adds a BUF named y
        nl = b.build()
        assert cleanup_buffers(nl) == 0

    def test_double_inverter_collapse(self):
        b = NetlistBuilder("t")
        a, c = b.inputs("a", "c")
        n = b.inv(b.inv(a))
        out = b.nand(n, c)
        b.netlist.add_output(out)
        nl = b.build()
        assert cleanup_double_inverters(nl) == 1
        assert nl.driver(out).inputs == (a, c)

    def test_duplicate_and_inputs_dedupe(self):
        b = NetlistBuilder("t")
        a, c = b.inputs("a", "c")
        n = b.netlist.add_gate("g", AND, [a, a, c], "n")
        b.netlist.add_output("n")
        nl = b.build()
        assert simplify_duplicate_inputs(nl) == 1
        assert nl.gate("g").inputs == (a, c)

    def test_xor_pair_cancels_to_constant(self):
        b = NetlistBuilder("t")
        a = b.input("a")
        b.xor(a, a, output="n")
        b.netlist.add_output("n")
        nl = b.build()
        simplify_duplicate_inputs(nl)
        assert nl.driver("n").cell.name == "TIE0"

    def test_xnor_pair_cancels_to_one(self):
        b = NetlistBuilder("t")
        a = b.input("a")
        b.xnor(a, a, output="n")
        b.netlist.add_output("n")
        nl = b.build()
        simplify_duplicate_inputs(nl)
        assert nl.driver("n").cell.name == "TIE1"

    def test_xor_odd_survivor_becomes_buffer(self):
        b = NetlistBuilder("t")
        a, c = b.inputs("a", "c")
        b.xor(a, a, c, output="n")
        b.netlist.add_output("n")
        nl = b.build()
        simplify_duplicate_inputs(nl)
        gate = nl.driver("n")
        assert gate.cell is BUF or gate.cell.family == "buf"
        assert gate.inputs == (c,)


class TestOptimizePipeline:
    def test_runs_to_fixpoint_and_stays_valid(self):
        b = NetlistBuilder("t")
        a, c = b.inputs("a", "c")
        one = b.const1()
        n1 = b.and_(one, a)
        n2 = b.and_(one, a)  # duplicate after folding
        m = b.mux(c, n1, b.const0())
        out = b.nand(m, n2)
        b.output(out, name="y")
        nl = optimize(b.build())
        assert validate(nl).ok
        # Everything collapses to a couple of gates.
        assert nl.num_gates <= 4

    def test_optimization_preserves_function(self):
        b = NetlistBuilder("t")
        a, c, d = b.inputs("a", "c", "d")
        one = b.const1()
        n = b.mux(d, b.and_(a, one), b.const0())
        out = b.xor(n, b.xor(c, c))
        b.output(out, name="y")
        nl = b.build()
        optimized = optimize(nl.copy())
        for vals in exhaustive_inputs(["a", "c", "d"]):
            expected = evaluate_combinational(nl, vals)["y"]
            assert evaluate_combinational(optimized, vals)["y"] == expected
