"""End-to-end synthesis correctness: netlist == RTL semantics.

The strongest property in the synth test-suite: for random modules and
random multi-cycle stimulus, the synthesized (lowered, optimized, mapped,
reordered) netlist clocked by the gate-level simulator produces exactly
the register values of the word-level RTL interpreter.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netlist import Simulator
from repro.synth import Concat, Const, Module, Mux, SynthesisOptions, synthesize
from repro.synth.interp import initial_state, step_module
from repro.synth.lower import register_bit_nets


def clock_netlist(netlist, module, input_values, gate_state):
    """One gate-level cycle; returns {register: int} after the edge."""
    pin_values = {}
    for name, width in module.inputs.items():
        value = input_values[name]
        if width == 1:
            pin_values[name] = value & 1
        else:
            for i in range(width):
                pin_values[f"{name}_{i}"] = (value >> i) & 1
    state = gate_state.clock(pin_values)
    result = {}
    for name, reg in module.registers.items():
        value = 0
        for i, net in enumerate(register_bit_nets(name, reg.width)):
            bit = state[net]
            assert bit is not None, f"X on {net}"
            value |= bit << i
        result[name] = value
    return result


def run_equivalence(module, stimulus):
    netlist = synthesize(module)
    sim = Simulator(netlist)
    sim.reset(0)
    rtl_state = initial_state(module, 0)
    for input_values in stimulus:
        rtl_state, _ = step_module(module, input_values, rtl_state)
        gate_state = clock_netlist(netlist, module, input_values, sim)
        assert gate_state == rtl_state, (
            f"divergence under {input_values}: RTL {rtl_state} "
            f"vs gates {gate_state}"
        )


class TestHandWrittenModules:
    def test_enable_register(self):
        m = Module("t")
        din = m.input("din", 4)
        en = m.input("en")
        r = m.register("r", 4)
        r.next = Mux(en, din, r.ref())
        m.output("o", r.ref())
        run_equivalence(m, [
            {"din": 5, "en": 1},
            {"din": 9, "en": 0},
            {"din": 2, "en": 1},
        ])

    def test_counter_with_reset(self):
        m = Module("t", reset_input="rst")
        en = m.input("en")
        r = m.register("c", 4, reset=0)
        r.next = Mux(en, r.ref() + Const(1, 4), r.ref())
        m.output("o", r.ref())
        stim = [{"rst": 1, "en": 0}] + [{"rst": 0, "en": 1}] * 17
        run_equivalence(m, stim)

    def test_adder_subtractor(self):
        m = Module("t")
        a = m.input("a", 5)
        b = m.input("b", 5)
        s = m.register("s", 5)
        s.next = a + b
        d = m.register("d", 5)
        d.next = a - b
        m.output("o", s.ref() ^ d.ref())
        run_equivalence(m, [
            {"a": 7, "b": 3}, {"a": 31, "b": 1}, {"a": 0, "b": 17},
            {"a": 16, "b": 16},
        ])

    def test_comparators(self):
        m = Module("t")
        a = m.input("a", 4)
        b = m.input("b", 4)
        r = m.register("r", 3)
        r.next = Concat((a.eq(b), a.ne(b), a.lt(b)))
        m.output("o", r.ref())
        run_equivalence(m, [
            {"a": 3, "b": 3}, {"a": 2, "b": 9}, {"a": 9, "b": 2},
            {"a": 15, "b": 0}, {"a": 0, "b": 0},
        ])

    def test_mux_with_constant_arm(self):
        """Exercises constant folding + mux-constant rewriting."""
        m = Module("t")
        a = m.input("a", 6)
        sel = m.input("sel")
        r = m.register("r", 6)
        r.next = Mux(sel, Const(0b101010, 6), a)
        m.output("o", r.ref())
        run_equivalence(m, [
            {"a": 63, "sel": 0}, {"a": 63, "sel": 1}, {"a": 0, "sel": 1},
        ])

    def test_reductions(self):
        m = Module("t")
        a = m.input("a", 5)
        r = m.register("r", 3)
        r.next = Concat((a.any(), a.all(), a.parity()))
        m.output("o", r.ref())
        run_equivalence(m, [
            {"a": 0}, {"a": 31}, {"a": 7}, {"a": 16},
        ])

    def test_unmapped_flow(self):
        m = Module("t")
        a = m.input("a", 4)
        s = m.input("s")
        r = m.register("r", 4)
        r.next = Mux(s, a, ~r.ref())
        m.output("o", r.ref())
        netlist = synthesize(m, SynthesisOptions(map_technology=False))
        # Muxes survive when mapping is disabled.
        assert any(g.cell.family == "mux" for g in netlist.gates())


# ----------------------------------------------------------------------
# Randomized equivalence.
# ----------------------------------------------------------------------

@st.composite
def random_modules(draw):
    m = Module("rand", reset_input="rst")
    a = m.input("a", 6)
    b = m.input("b", 6)
    en = m.input("en")
    exprs = [a, b, a ^ b]
    for _ in range(draw(st.integers(min_value=1, max_value=5))):
        op = draw(st.sampled_from(["and", "or", "xor", "add", "sub", "mux",
                                   "not", "slice_concat"]))
        x = draw(st.sampled_from(exprs))
        y = draw(st.sampled_from(exprs))
        if op == "not":
            exprs.append(~x)
        elif op == "mux":
            exprs.append(Mux(en, x, y))
        elif op == "slice_concat":
            exprs.append(Concat((x.slice(3, 5), y.slice(0, 2))))
        else:
            combine = {
                "and": lambda: x & y,
                "or": lambda: x | y,
                "xor": lambda: x ^ y,
                "add": lambda: x + y,
                "sub": lambda: x - y,
            }
            exprs.append(combine[op]())
    r1 = m.register("r1", 6, reset=draw(st.integers(min_value=0, max_value=63)))
    r1.next = draw(st.sampled_from(exprs))
    r2 = m.register("r2", 6)
    r2.next = Mux(a.eq(b), draw(st.sampled_from(exprs)), r2.ref())
    m.output("o", r1.ref() ^ r2.ref())
    return m


@given(
    random_modules(),
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=63),
            st.integers(min_value=0, max_value=63),
            st.integers(min_value=0, max_value=1),
            st.integers(min_value=0, max_value=1),
        ),
        min_size=1,
        max_size=5,
    ),
)
@settings(max_examples=25, deadline=None)
def test_random_module_equivalence(module, raw_stimulus):
    stimulus = [
        {"a": a, "b": b, "en": en, "rst": rst}
        for a, b, en, rst in raw_stimulus
    ]
    run_equivalence(module, stimulus)
