"""Unit tests for technology mapping, emission ordering, and flattening."""

import pytest

from repro.netlist import (
    NAND,
    NetlistBuilder,
    evaluate_combinational,
    exhaustive_inputs,
    validate,
)
from repro.synth import (
    absorb_inverters,
    decompose_wide_gates,
    flatten_associative,
    inline_instance,
    map_muxes,
    order_for_emission,
    register_groups,
    tech_map,
)
from repro.netlist.netlist import NetlistError


class TestDecomposeWide:
    def test_wide_nand_becomes_tree_with_nand_root(self):
        b = NetlistBuilder("t")
        ins = b.inputs(*[f"i{k}" for k in range(7)])
        n = b.nand(*ins, output="wide")
        b.netlist.add_output("wide")
        nl = b.build()
        assert decompose_wide_gates(nl, max_arity=4) == 1
        root = nl.driver("wide")
        assert root.cell is NAND
        assert len(root.inputs) <= 4
        # Inner nodes are plain ANDs.
        for net in root.inputs:
            inner = nl.driver(net)
            if inner is not None:
                assert inner.cell.name == "AND"

    def test_function_preserved(self):
        b = NetlistBuilder("t")
        ins = b.inputs(*[f"i{k}" for k in range(6)])
        b.or_(*ins, output="wide")
        b.netlist.add_output("wide")
        nl = b.build()
        reference = {
            tuple(v.items()): evaluate_combinational(nl, v)["wide"]
            for v in exhaustive_inputs(list(ins))
        }
        decompose_wide_gates(nl, max_arity=3)
        for v in exhaustive_inputs(list(ins)):
            assert evaluate_combinational(nl, v)["wide"] == reference[tuple(v.items())]

    def test_narrow_gates_untouched(self):
        b = NetlistBuilder("t")
        a, c = b.inputs("a", "c")
        b.nand(a, c, output="n")
        nl = b.build()
        assert decompose_wide_gates(nl) == 0


class TestMapMuxes:
    def test_mux_becomes_three_nands(self):
        b = NetlistBuilder("t")
        s, a, c = b.inputs("s", "a", "c")
        b.mux(s, a, c, output="m")
        b.netlist.add_output("m")
        nl = b.build()
        assert map_muxes(nl) == 1
        assert all(g.cell.family != "mux" for g in nl.gates())
        assert nl.driver("m").cell is NAND

    def test_select_inverter_shared(self):
        b = NetlistBuilder("t")
        s, a, c, d, e = b.inputs("s", "a", "c", "d", "e")
        b.mux(s, a, c, output="m1")
        b.mux(s, d, e, output="m2")
        b.netlist.add_output("m1")
        b.netlist.add_output("m2")
        nl = b.build()
        map_muxes(nl)
        inverters = [
            g for g in nl.gates()
            if g.cell.name == "INV" and g.inputs == (s,)
        ]
        assert len(inverters) == 1

    def test_function_preserved(self):
        b = NetlistBuilder("t")
        s, a, c = b.inputs("s", "a", "c")
        b.mux(s, a, c, output="m")
        b.netlist.add_output("m")
        nl = b.build()
        reference = {
            tuple(v.items()): evaluate_combinational(nl, v)["m"]
            for v in exhaustive_inputs(["s", "a", "c"])
        }
        map_muxes(nl)
        for v in exhaustive_inputs(["s", "a", "c"]):
            assert evaluate_combinational(nl, v)["m"] == reference[tuple(v.items())]


class TestAssocAndAbsorb:
    def test_and_chain_flattens(self):
        b = NetlistBuilder("t")
        p, q, s = b.inputs("p", "q", "s")
        inner = b.and_(p, q)
        b.and_(inner, s, output="w")
        b.netlist.add_output("w")
        nl = b.build()
        assert flatten_associative(nl) == 1
        assert set(nl.driver("w").inputs) == {p, q, s}

    def test_shared_inner_not_flattened(self):
        b = NetlistBuilder("t")
        p, q, s = b.inputs("p", "q", "s")
        inner = b.and_(p, q)
        b.and_(inner, s, output="w")
        b.or_(inner, s, output="v")  # second consumer of inner
        b.netlist.add_output("w")
        b.netlist.add_output("v")
        nl = b.build()
        assert flatten_associative(nl) == 0

    def test_inv_of_and_becomes_nand(self):
        b = NetlistBuilder("t")
        p, q = b.inputs("p", "q")
        inner = b.and_(p, q)
        b.inv(inner, output="w")
        b.netlist.add_output("w")
        nl = b.build()
        assert absorb_inverters(nl) == 1
        gate = nl.driver("w")
        assert gate.cell is NAND and set(gate.inputs) == {p, q}

    def test_inv_of_nand_becomes_and(self):
        b = NetlistBuilder("t")
        p, q = b.inputs("p", "q")
        inner = b.nand(p, q)
        b.inv(inner, output="w")
        b.netlist.add_output("w")
        nl = b.build()
        assert absorb_inverters(nl) == 1
        assert nl.driver("w").cell.name == "AND"

    def test_figure1_root_shape(self):
        """~(p & q & s) maps to the NAND3 roots of the paper's Figure 1."""
        b = NetlistBuilder("t")
        p, q, s = b.inputs("p", "q", "s")
        inner = b.and_(b.and_(p, q), s)
        b.inv(inner, output="bit")
        b.netlist.add_output("bit")
        nl = tech_map(b.build())
        gate = nl.driver("bit")
        assert gate.cell is NAND and len(gate.inputs) == 3


class TestEmissionOrdering:
    def test_word_roots_become_adjacent(self):
        b = NetlistBuilder("t")
        a, c = b.inputs("a", "c")
        roots = []
        for i in range(3):
            # Interleave cone gates between the roots.
            deep = b.xor(a, c)
            roots.append(b.nand(deep, c))
        for i, root in enumerate(roots):
            b.dff(root, output=f"w_reg_{i}")
        nl = order_for_emission(b.build())
        names = [g.output for g in nl.gates_in_file_order()]
        positions = [names.index(r) for r in roots]
        assert positions == list(range(positions[0], positions[0] + 3))

    def test_ffs_grouped_by_register(self):
        b = NetlistBuilder("t")
        a, c = b.inputs("a", "c")
        b.dff(b.nand(a, c), output="x_reg_0")
        b.dff(b.nor(a, c), output="y_reg_0")
        b.dff(b.nand(c, a), output="x_reg_1")
        nl = order_for_emission(b.build())
        ff_outputs = [g.output for g in nl.flip_flops()]
        assert ff_outputs == ["x_reg_0", "x_reg_1", "y_reg_0"]

    def test_groups_parse_names(self):
        b = NetlistBuilder("t")
        a = b.input("a")
        b.dff(b.inv(a), output="cnt_reg_1")
        b.dff(b.buf(a), output="cnt_reg_0")
        b.dff(b.inv(a), output="odd_name")
        nl = b.build()
        groups = dict(
            (reg, [g.output for g in ffs])
            for reg, ffs in register_groups(nl)
        )
        assert groups["cnt"] == ["cnt_reg_0", "cnt_reg_1"]
        assert groups["odd_name"] == ["odd_name"]

    def test_reordering_preserves_everything_else(self):
        b = NetlistBuilder("t")
        a, c = b.inputs("a", "c")
        n = b.nand(a, c)
        b.dff(n, output="r_reg_0")
        b.output(n, name="y")
        nl = b.build()
        ordered = order_for_emission(nl)
        assert validate(ordered).ok
        assert ordered.num_gates == nl.num_gates
        assert ordered.primary_outputs == nl.primary_outputs


class TestInlineInstance:
    def child(self):
        b = NetlistBuilder("child")
        a, c = b.inputs("a", "c")
        n = b.nand(a, c)
        b.dff(n, output="state_reg_0")
        b.output(n, name="result")
        return b.build()

    def test_nets_and_gates_prefixed(self):
        from repro.netlist import Netlist

        parent = Netlist("top")
        parent.add_input("x")
        outputs = inline_instance(parent, self.child(), "u1", {"a": "x"})
        assert "u1_state_reg_0" in {g.output for g in parent.gates()}
        assert outputs["result"] == "u1_result"
        # Unmapped child input became a prefixed parent input.
        assert "u1_c" in parent.primary_inputs

    def test_register_names_survive_for_reference_extraction(self):
        from repro.eval import extract_reference_words
        from repro.netlist import Netlist

        b = NetlistBuilder("child")
        a, c = b.inputs("a", "c")
        bits = [b.nand(a, c), b.nand(c, a)]
        for i, d in enumerate(bits):
            b.dff(d, output=f"count_reg_{i}")
        child = b.build()
        parent = Netlist("top")
        inline_instance(parent, child, "core3", {})
        words = extract_reference_words(parent)
        assert words[0].register == "core3_count"

    def test_bad_port_rejected(self):
        from repro.netlist import Netlist

        parent = Netlist("top")
        with pytest.raises(NetlistError):
            inline_instance(parent, self.child(), "u1", {"nope": "x"})

    def test_two_instances_coexist(self):
        from repro.netlist import Netlist

        parent = Netlist("top")
        child = self.child()
        inline_instance(parent, child, "u1", {})
        inline_instance(parent, child, "u2", {})
        assert validate(parent, require_driven_outputs=False).ok
        assert parent.num_ffs == 2
