"""Unit tests for scan-chain insertion."""

import pytest

from repro.netlist import NetlistBuilder, Simulator, validate
from repro.netlist.netlist import NetlistError
from repro.synth import order_for_emission
from repro.synth.scan import insert_scan_chain


def small_design():
    b = NetlistBuilder("t")
    a, c = b.inputs("a", "c")
    b.dff(b.nand(a, c), output="r_reg_0")
    b.dff(b.xor(a, c), output="r_reg_1")
    b.dff(b.nor(a, "r_reg_0"), output="s_reg_0")
    b.output("s_reg_0")
    return b.build()


class TestInsertion:
    def test_netlist_stays_valid(self):
        nl = small_design()
        insert_scan_chain(nl)
        assert validate(nl).ok

    def test_ports_created(self):
        nl = small_design()
        spec = insert_scan_chain(nl)
        assert "scan_enable" in nl.primary_inputs
        assert "scan_in" in nl.primary_inputs
        assert spec.scan_out in nl.primary_outputs

    def test_chain_covers_all_ffs(self):
        nl = small_design()
        spec = insert_scan_chain(nl)
        assert len(spec.chain) == 3

    def test_every_d_pin_muxed(self):
        nl = small_design()
        insert_scan_chain(nl)
        for ff in nl.flip_flops():
            driver = nl.driver(ff.inputs[0])
            assert driver.name.startswith("_scan_m")

    def test_single_shared_enable_inverter(self):
        nl = small_design()
        insert_scan_chain(nl)
        inverters = [
            g for g in nl.gates()
            if g.cell.name == "INV" and g.inputs == ("scan_enable",)
        ]
        assert len(inverters) == 1

    def test_no_ffs_rejected(self):
        b = NetlistBuilder("comb")
        a, c = b.inputs("a", "c")
        b.output(b.nand(a, c), name="y")
        with pytest.raises(NetlistError):
            insert_scan_chain(b.build())

    def test_name_collision_rejected(self):
        nl = small_design()
        nl.add_input("scan_enable")
        with pytest.raises(NetlistError):
            insert_scan_chain(nl)


class TestBehaviour:
    def test_functional_mode_unchanged(self):
        """scan_enable=0: the circuit behaves exactly as before."""
        clean = small_design()
        scanned = clean.copy()
        insert_scan_chain(scanned)
        sim_clean = Simulator(clean)
        sim_scan = Simulator(scanned)
        sim_clean.reset(0)
        sim_scan.reset(0)
        for stim in ({"a": 1, "c": 0}, {"a": 1, "c": 1}, {"a": 0, "c": 1}):
            state_clean = sim_clean.clock(stim)
            scan_stim = dict(stim, scan_enable=0, scan_in=0)
            state_scan = sim_scan.clock(scan_stim)
            for net, value in state_clean.items():
                assert state_scan[net] == value

    def test_shift_mode_moves_data_down_the_chain(self):
        """scan_enable=1: the registers form a shift register."""
        nl = small_design()
        spec = insert_scan_chain(nl)
        sim = Simulator(nl)
        sim.reset(0)
        pattern = [1, 0, 1]
        for bit in pattern:
            sim.clock({"a": 0, "c": 0, "scan_enable": 1, "scan_in": bit})
        # After len(chain) shifts the first bit reached the last FF.
        chain_q = [nl.gate(name).output for name in spec.chain]
        values = [sim.state[q] for q in chain_q]
        assert values == list(reversed(pattern))

    def test_reorder_after_scan_keeps_netlist_valid(self):
        nl = small_design()
        insert_scan_chain(nl)
        ordered = order_for_emission(nl)
        assert validate(ordered).ok
        assert ordered.num_gates == nl.num_gates
