"""Unit tests for the RTL reference interpreter."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.synth import Binary, Compare, Concat, Const, Module, Mux, Reduce
from repro.synth.interp import evaluate_expr, initial_state, step_module
from repro.synth.rtl import InputRef, RtlError, Slice, Unary


I8 = InputRef("a", 8)
J8 = InputRef("b", 8)


def ev(expr, a=0, b=0, state=None):
    return evaluate_expr(expr, {"a": a, "b": b}, state or {})


class TestExpressionSemantics:
    def test_const_and_refs(self):
        assert ev(Const(42, 8)) == 42
        assert ev(I8, a=0x5A) == 0x5A

    def test_not_masks_to_width(self):
        assert ev(~I8, a=0) == 0xFF
        assert ev(~I8, a=0xF0) == 0x0F

    @pytest.mark.parametrize("op,fn", [
        ("and", lambda a, b: a & b),
        ("or", lambda a, b: a | b),
        ("xor", lambda a, b: a ^ b),
        ("add", lambda a, b: (a + b) & 0xFF),
        ("sub", lambda a, b: (a - b) & 0xFF),
    ])
    def test_binary_ops(self, op, fn):
        for a, b in [(3, 5), (200, 100), (255, 255), (0, 1)]:
            assert ev(Binary(op, I8, J8), a=a, b=b) == fn(a, b)

    def test_comparisons(self):
        assert ev(Compare("eq", I8, J8), a=7, b=7) == 1
        assert ev(Compare("ne", I8, J8), a=7, b=8) == 1
        assert ev(Compare("lt", I8, J8), a=7, b=8) == 1
        assert ev(Compare("lt", I8, J8), a=8, b=7) == 0

    def test_mux_slice_concat(self):
        sel = Compare("lt", I8, J8)
        assert ev(Mux(sel, I8, J8), a=1, b=2) == 1  # a<b -> then
        assert ev(Slice(I8, 4, 7), a=0xAB) == 0xA
        assert ev(Concat((Slice(I8, 0, 3), Slice(J8, 0, 3))), a=0xF, b=0x3) == 0x3F

    def test_reductions(self):
        assert ev(Reduce("or", I8), a=0) == 0
        assert ev(Reduce("or", I8), a=4) == 1
        assert ev(Reduce("and", I8), a=0xFF) == 1
        assert ev(Reduce("xor", I8), a=0b1011) == 1


class TestStepModule:
    def make_counter(self):
        m = Module("cnt", reset_input="rst")
        en = m.input("en")
        c = m.register("c", 4, reset=0)
        c.next = Mux(en, c.ref() + Const(1, 4), c.ref())
        m.output("value", c.ref())
        return m

    def test_counting(self):
        m = self.make_counter()
        state = initial_state(m)
        for expected in (1, 2, 3):
            state, outputs = step_module(m, {"rst": 0, "en": 1}, state)
            assert state["c"] == expected

    def test_hold(self):
        m = self.make_counter()
        state = {"c": 9}
        state, _ = step_module(m, {"rst": 0, "en": 0}, state)
        assert state["c"] == 9

    def test_synchronous_reset(self):
        m = self.make_counter()
        state = {"c": 9}
        state, _ = step_module(m, {"rst": 1, "en": 1}, state)
        assert state["c"] == 0

    def test_outputs_are_pre_edge(self):
        m = self.make_counter()
        state = {"c": 5}
        _, outputs = step_module(m, {"rst": 0, "en": 1}, state)
        assert outputs["value"] == 5  # combinational view of current state

    def test_wraparound(self):
        m = self.make_counter()
        state = {"c": 15}
        state, _ = step_module(m, {"rst": 0, "en": 1}, state)
        assert state["c"] == 0

    def test_initial_state_masks(self):
        m = self.make_counter()
        assert initial_state(m, 0xFF) == {"c": 0xF}


@given(st.integers(0, 255), st.integers(0, 255))
@settings(max_examples=60)
def test_add_sub_roundtrip_property(a, b):
    total = evaluate_expr(Binary("add", I8, J8), {"a": a, "b": b}, {})
    back = evaluate_expr(
        Binary("sub", InputRef("a", 8), J8), {"a": total, "b": b}, {}
    )
    assert back == a
