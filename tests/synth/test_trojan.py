"""Unit tests for Hardware-Trojan insertion."""

import random

import pytest

from repro.netlist import (
    NetlistBuilder,
    Simulator,
    evaluate_combinational,
    exhaustive_inputs,
    validate,
)
from repro.netlist.netlist import NetlistError
from repro.synth import insert_trojan


def victim_design():
    b = NetlistBuilder("victim")
    a, c = b.inputs("a", "c")
    n1 = b.nand(a, c)
    n2 = b.xor(n1, a)
    regs = []
    for i in range(6):
        regs.append(b.dff(b.xor(n2, a) if i % 2 else b.nand(n1, c),
                          output=f"r{i}_reg_0"))
    out = b.or_(n2, regs[0])
    b.output(out, name="y")
    return b.build(), n1, out


class TestInsertion:
    def test_netlist_stays_valid(self):
        nl, _, _ = victim_design()
        insert_trojan(nl, trigger_width=4, seed=1)
        assert validate(nl).ok

    def test_spec_describes_the_insertion(self):
        nl, _, _ = victim_design()
        spec = insert_trojan(nl, trigger_width=4, seed=1)
        assert len(spec.trigger_nets) == 4
        assert nl.driver(spec.payload_output) is not None
        assert nl.driver(spec.victim_net) is not None

    def test_consumers_rewired_to_payload(self):
        nl, n1, _ = victim_design()
        spec = insert_trojan(nl, victim_net=n1, trigger_width=4, seed=1)
        assert spec.victim_net == n1
        consumers = nl.fanouts(n1)
        # Only the payload XOR still reads the victim directly.
        assert all(g.output == spec.payload_output for g in consumers)

    def test_deterministic_under_seed(self):
        nl1, _, _ = victim_design()
        nl2, _, _ = victim_design()
        s1 = insert_trojan(nl1, trigger_width=4, seed=42)
        s2 = insert_trojan(nl2, trigger_width=4, seed=42)
        assert s1 == s2

    def test_different_seeds_differ(self):
        nl1, _, _ = victim_design()
        nl2, _, _ = victim_design()
        s1 = insert_trojan(nl1, trigger_width=4, seed=1)
        s2 = insert_trojan(nl2, trigger_width=4, seed=2)
        assert s1 != s2

    def test_needs_enough_registers(self):
        b = NetlistBuilder("tiny")
        a = b.input("a")
        b.dff(b.inv(a), output="only_reg_0")
        with pytest.raises(NetlistError):
            insert_trojan(b.build(), trigger_width=4)

    def test_small_footprint(self):
        nl, _, _ = victim_design()
        before = nl.num_gates
        insert_trojan(nl, trigger_width=4, seed=1)
        assert nl.num_gates - before <= 8  # "a few lines of alteration"


class TestTriggerRarity:
    """The rare-trigger contract, checked via the logic simulator.

    A width-``w`` trigger is an AND tree over ``w`` register bits with a
    fixed inversion pattern, so exactly one of the ``2^w`` tap patterns
    fires it: P(fire) = 2^-w under uniform random state.
    """

    @pytest.mark.parametrize("width", [3, 4, 5])
    def test_exactly_one_tap_pattern_fires(self, width):
        nl, _, _ = victim_design()
        spec = insert_trojan(nl, trigger_width=width, seed=9)
        fired = 0
        for assignment in exhaustive_inputs(list(spec.trigger_nets)):
            values = evaluate_combinational(nl, assignment)
            assert values[spec.trigger_output] in (0, 1)
            fired += values[spec.trigger_output]
        assert fired == 1  # exactly 2^-width of the tap space

    def test_firing_rate_matches_two_to_minus_w(self):
        """Empirical firing rate under random stimulus ≈ 2^-w.

        4096 seeded draws at w=4: mean 256 firings, σ ≈ 15.5; the ±5σ
        band is deterministic for the fixed rng seed and would only move
        if the trigger's combinational function changed.
        """
        width, draws = 4, 4096
        nl, _, _ = victim_design()
        spec = insert_trojan(nl, trigger_width=width, seed=5)
        sources = sorted(nl.cone_leaf_nets())
        rng = random.Random(2015)
        fired = 0
        for _ in range(draws):
            vector = {net: rng.randint(0, 1) for net in sources}
            fired += evaluate_combinational(nl, vector)[spec.trigger_output]
        p = 2.0 ** -width
        expected = draws * p
        sigma = (draws * p * (1 - p)) ** 0.5
        assert abs(fired - expected) < 5 * sigma

    def test_design_unchanged_while_trigger_inactive(self):
        """Dormant equivalence: with the trigger at 0, every register
        D-input and primary output computes exactly the clean value, on
        random source vectors (the payload XOR is then the identity)."""
        clean, _, _ = victim_design()
        tampered = clean.copy()
        spec = insert_trojan(tampered, trigger_width=4, seed=7)
        sources = sorted(clean.cone_leaf_nets())
        tampered_d = {
            ff.name: ff.inputs[0] for ff in tampered.flip_flops()
        }
        rng = random.Random(7)
        dormant = 0
        for _ in range(512):
            vector = {net: rng.randint(0, 1) for net in sources}
            tampered_values = evaluate_combinational(tampered, vector)
            if tampered_values[spec.trigger_output] != 0:
                continue
            dormant += 1
            clean_values = evaluate_combinational(clean, vector)
            for ff in clean.flip_flops():
                assert (
                    tampered_values[tampered_d[ff.name]]
                    == clean_values[ff.inputs[0]]
                ), f"register {ff.name} diverges while trigger is cold"
            for net in clean.primary_outputs:
                assert tampered_values[net] == clean_values[net]
        # The trigger is rare, so nearly every draw exercises dormancy.
        assert dormant > 400

    def test_payload_flips_victim_when_trigger_fires(self):
        """When the trigger IS active, the payload inverts the victim —
        the tamper is real, not optimized away."""
        nl, n1, _ = victim_design()
        spec = insert_trojan(nl, victim_net=n1, trigger_width=3, seed=11)
        sources = sorted(nl.cone_leaf_nets())
        rng = random.Random(11)
        flipped = 0
        for _ in range(2048):
            vector = {net: rng.randint(0, 1) for net in sources}
            values = evaluate_combinational(nl, vector)
            if values[spec.trigger_output] != 1:
                continue
            assert (
                values[spec.payload_output] == 1 - values[spec.victim_net]
            )
            flipped += 1
        assert flipped > 0  # w=3 fires ~256 times in 2048 draws


class TestMultiTrojan:
    def test_distinct_prefixes_coexist(self):
        nl, _, _ = victim_design()
        first = insert_trojan(nl, trigger_width=3, seed=1, prefix="_troj0")
        second = insert_trojan(nl, trigger_width=4, seed=2, prefix="_troj1")
        assert not set(first.gates) & set(second.gates)
        assert all(g.startswith("_troj0") for g in first.gates)
        assert all(g.startswith("_troj1") for g in second.gates)
        assert validate(nl).ok

    def test_prefix_collision_raises(self):
        nl, _, _ = victim_design()
        insert_trojan(nl, trigger_width=3, seed=1, prefix="_troj0")
        with pytest.raises(NetlistError, match="prefix"):
            insert_trojan(nl, trigger_width=3, seed=2, prefix="_troj0")

    def test_spec_gates_are_the_inserted_gates(self):
        nl, _, _ = victim_design()
        before = {g.name for g in nl.gates_in_file_order()}
        spec = insert_trojan(nl, trigger_width=4, seed=3)
        after = {g.name for g in nl.gates_in_file_order()}
        assert set(spec.gates) == after - before


class TestDormantBehaviour:
    def test_function_unchanged_while_trigger_cold(self):
        """With the trigger forced inactive the circuit behaves normally."""
        clean, n1, out = victim_design()
        tampered = clean.copy()
        spec = insert_trojan(tampered, victim_net=n1, trigger_width=4, seed=3)

        sim_clean = Simulator(clean)
        sim_tampered = Simulator(tampered)
        # Force a register state where the AND-tree trigger is 0: the
        # trigger inverts odd taps, so all-zero taps make some literal 0.
        sim_clean.reset(0)
        sim_tampered.reset(0)
        compared = 0
        for stimulus in ({"a": 1, "c": 1}, {"a": 0, "c": 1}, {"a": 1, "c": 0}):
            sim_clean.clock(stimulus)
            sim_tampered.clock(stimulus)
            if sim_tampered.peek(spec.trigger_output) == 0:
                assert sim_tampered.peek(out) == sim_clean.peek(out)
                compared += 1
        assert compared > 0  # the rare trigger stayed cold at least once
