"""Unit tests for Hardware-Trojan insertion."""

import pytest

from repro.netlist import NetlistBuilder, Simulator, validate
from repro.netlist.netlist import NetlistError
from repro.synth import insert_trojan


def victim_design():
    b = NetlistBuilder("victim")
    a, c = b.inputs("a", "c")
    n1 = b.nand(a, c)
    n2 = b.xor(n1, a)
    regs = []
    for i in range(6):
        regs.append(b.dff(b.xor(n2, a) if i % 2 else b.nand(n1, c),
                          output=f"r{i}_reg_0"))
    out = b.or_(n2, regs[0])
    b.output(out, name="y")
    return b.build(), n1, out


class TestInsertion:
    def test_netlist_stays_valid(self):
        nl, _, _ = victim_design()
        insert_trojan(nl, trigger_width=4, seed=1)
        assert validate(nl).ok

    def test_spec_describes_the_insertion(self):
        nl, _, _ = victim_design()
        spec = insert_trojan(nl, trigger_width=4, seed=1)
        assert len(spec.trigger_nets) == 4
        assert nl.driver(spec.payload_output) is not None
        assert nl.driver(spec.victim_net) is not None

    def test_consumers_rewired_to_payload(self):
        nl, n1, _ = victim_design()
        spec = insert_trojan(nl, victim_net=n1, trigger_width=4, seed=1)
        assert spec.victim_net == n1
        consumers = nl.fanouts(n1)
        # Only the payload XOR still reads the victim directly.
        assert all(g.output == spec.payload_output for g in consumers)

    def test_deterministic_under_seed(self):
        nl1, _, _ = victim_design()
        nl2, _, _ = victim_design()
        s1 = insert_trojan(nl1, trigger_width=4, seed=42)
        s2 = insert_trojan(nl2, trigger_width=4, seed=42)
        assert s1 == s2

    def test_different_seeds_differ(self):
        nl1, _, _ = victim_design()
        nl2, _, _ = victim_design()
        s1 = insert_trojan(nl1, trigger_width=4, seed=1)
        s2 = insert_trojan(nl2, trigger_width=4, seed=2)
        assert s1 != s2

    def test_needs_enough_registers(self):
        b = NetlistBuilder("tiny")
        a = b.input("a")
        b.dff(b.inv(a), output="only_reg_0")
        with pytest.raises(NetlistError):
            insert_trojan(b.build(), trigger_width=4)

    def test_small_footprint(self):
        nl, _, _ = victim_design()
        before = nl.num_gates
        insert_trojan(nl, trigger_width=4, seed=1)
        assert nl.num_gates - before <= 8  # "a few lines of alteration"


class TestDormantBehaviour:
    def test_function_unchanged_while_trigger_cold(self):
        """With the trigger forced inactive the circuit behaves normally."""
        clean, n1, out = victim_design()
        tampered = clean.copy()
        spec = insert_trojan(tampered, victim_net=n1, trigger_width=4, seed=3)

        sim_clean = Simulator(clean)
        sim_tampered = Simulator(tampered)
        # Force a register state where the AND-tree trigger is 0: the
        # trigger inverts odd taps, so all-zero taps make some literal 0.
        sim_clean.reset(0)
        sim_tampered.reset(0)
        compared = 0
        for stimulus in ({"a": 1, "c": 1}, {"a": 0, "c": 1}, {"a": 1, "c": 0}):
            sim_clean.clock(stimulus)
            sim_tampered.clock(stimulus)
            if sim_tampered.peek(spec.trigger_output) == 0:
                assert sim_tampered.peek(out) == sim_clean.peek(out)
                compared += 1
        assert compared > 0  # the rare trigger stayed cold at least once
