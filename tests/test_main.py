"""Tests for the ``repro`` umbrella CLI and its alias equivalence."""

import json
import os
import sys

import pytest

import repro.batch
import repro.cli
import repro.eval.runner
import repro.fuzz.harness
import repro.serve.server
from repro.main import COMMANDS, main
from repro.netlist import write_verilog
from repro.synth.designs import BENCHMARKS

sys.path.insert(0, os.path.dirname(__file__))
from fixtures import figure1_netlist  # noqa: E402


@pytest.fixture(scope="module")
def design_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("umbrella") / "fig1.v"
    path.write_text(write_verilog(figure1_netlist()[0]))
    return str(path)


class TestDispatch:
    def test_no_args_prints_usage_and_exits_2(self, capsys):
        assert main([]) == 2
        assert "usage: repro <command>" in capsys.readouterr().out

    def test_help_exits_0(self, capsys):
        assert main(["--help"]) == 0
        out = capsys.readouterr().out
        for command in COMMANDS:
            assert command in out

    def test_version(self, capsys):
        assert main(["--version"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("repro ")
        assert "pipeline" in out and "schema" in out

    def test_unknown_command_exits_2(self, capsys):
        assert main(["frobnicate"]) == 2
        assert "unknown command" in capsys.readouterr().err

    def test_subcommands_are_the_alias_entry_points(self):
        """`repro X` and `repro-X` literally share one `main` function."""
        assert COMMANDS["identify"][1]() is repro.cli.main
        assert COMMANDS["table1"][1]() is repro.eval.runner.main
        assert COMMANDS["fuzz"][1]() is repro.fuzz.harness.main
        assert COMMANDS["batch"][1]() is repro.batch.main
        assert COMMANDS["serve"][1]() is repro.serve.server.main

    def test_console_scripts_registered(self):
        import pathlib

        pyproject = pathlib.Path(__file__).parent.parent / "pyproject.toml"
        text = pyproject.read_text()
        assert 'repro = "repro.main:main"' in text
        for alias in (
            "repro-identify", "repro-table1", "repro-fuzz", "repro-serve"
        ):
            assert alias in text


class TestAliasEquivalence:
    def test_identify_spellings_byte_identical(
        self, design_path, tmp_path, capsys
    ):
        """Warm store runs of both spellings print identical reports."""
        store = str(tmp_path / "store")
        assert repro.cli.main([design_path, "--store", store]) == 0
        capsys.readouterr()  # discard the priming (cold) run
        assert repro.cli.main([design_path, "--store", store]) == 0
        alias_out = capsys.readouterr().out
        assert main(["identify", design_path, "--store", store]) == 0
        umbrella_out = capsys.readouterr().out
        assert umbrella_out == alias_out
        assert "words" in alias_out

    def test_identify_spellings_same_json(self, design_path, capsys):
        """Cache-less runs agree on everything but wall-clock timings."""

        def report(argv):
            runner = main if argv[0] == "identify" else repro.cli.main
            assert runner(argv) == 0
            out = capsys.readouterr().out
            start = out.index("{")
            payload = json.loads(out[start:])
            del payload["runtime_seconds"]
            payload["trace"].pop("stage_seconds")
            return payload

        alias = report([design_path, "--json", "-"])
        umbrella = report(["identify", design_path, "--json", "-"])
        assert umbrella == alias

    def test_batch_spelling_shares_exit_codes(self, capsys):
        assert main(["batch"]) == 2
        assert "empty corpus" in capsys.readouterr().err


class TestModuleEntry:
    def test_python_dash_m_repro(self, design_path):
        import subprocess

        env = dict(os.environ)
        src = os.path.join(
            os.path.dirname(os.path.dirname(__file__)), "src"
        )
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "identify", design_path],
            capture_output=True,
            text=True,
            env=env,
        )
        assert proc.returncode == 0
        assert "words" in proc.stdout
