"""Golden-file pinning of every versioned JSON payload the tools emit.

Each machine-readable payload (identify ``--json`` report, ``--trace-json``
trace, eval-journal row, ``AnalysisReport.as_dict``, batch rows/report,
artifact-store envelopes) carries ``schema_version`` /
``pipeline_version`` (see :mod:`repro.schema`).  This module pins the
exact field set of every payload kind against ``tests/golden/schema.json``
so that adding, removing, or renaming a field without bumping
``SCHEMA_VERSION`` fails CI.

After an intentional shape change, bump ``repro.schema.SCHEMA_VERSION``
and regenerate the golden file::

    PYTHONPATH=src python tests/test_schema.py --regen
"""

import json
import os
import sys
import tempfile

from repro.api import Session
from repro.batch import analyze_corpus
from repro.cli import main as identify_main
from repro.eval.report import row_to_dict
from repro.eval.runner import run_benchmark
from repro.metrics import MetricsRegistry
from repro.schema import PIPELINE_VERSION, SCHEMA_VERSION, stamp
from repro.netlist import write_verilog
from repro.serve.service import AnalysisService
from repro.store import ArtifactStore

sys.path.insert(0, os.path.dirname(__file__))
from fixtures import figure1_netlist  # noqa: E402

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden", "schema.json")

BUMP_HINT = (
    "payload shape changed without a schema bump: raise "
    "repro.schema.SCHEMA_VERSION and regenerate the golden file with "
    "`PYTHONPATH=src python tests/test_schema.py --regen`"
)


def current_shapes():
    """Sorted field lists of every payload kind, computed end to end."""
    netlist, _ = figure1_netlist()
    shapes = {}
    with tempfile.TemporaryDirectory(prefix="schema-golden-") as tmp:
        design = os.path.join(tmp, "fig1.v")
        with open(design, "w", encoding="utf-8") as handle:
            handle.write(write_verilog(netlist))
        report_path = os.path.join(tmp, "report.json")
        trace_path = os.path.join(tmp, "trace.json")

        # repro identify --json / --trace-json (optional sections forced
        # on so their fields are pinned too).
        code = identify_main([
            design, "--propagate", "--operators",
            "--json", report_path, "--trace-json", trace_path,
        ])
        assert code == 0
        with open(report_path, encoding="utf-8") as handle:
            report = json.load(handle)
        shapes["identify_json"] = sorted(report)
        shapes["identify_json.netlist"] = sorted(report["netlist"])
        shapes["identify_json.config"] = sorted(report["config"])
        with open(trace_path, encoding="utf-8") as handle:
            trace = json.load(handle)
        shapes["trace_json"] = sorted(trace)
        shapes["trace_json.counters"] = sorted(trace["counters"])
        shapes["trace_json.cache"] = sorted(trace["cache"])

        # Eval-journal row (the Table 1 sweep checkpoint shape).
        row = row_to_dict(run_benchmark(netlist).row())
        shapes["journal_row"] = sorted(row)
        shapes["journal_row.technique"] = sorted(row["ours"])

        # The facade's AnalysisReport and the store's result envelope.
        # The process cone tier is cleared so the cone entries this run
        # derives are committed to the store (a warm process tier from an
        # earlier test in the same pytest process would satisfy the
        # probes and leave the store without a cone envelope to pin).
        from repro.core.conecache import process_cone_cache

        process_cone_cache().clear()
        store_root = os.path.join(tmp, "store")
        session = Session(store=store_root)
        analysis = session.analyze(design)
        payload = analysis.as_dict()
        shapes["analysis_report"] = sorted(payload)
        store = ArtifactStore(store_root)
        envelope = store.get(analysis.key)
        shapes["store_result_envelope"] = sorted(envelope)
        shapes["store_result_payload"] = sorted(envelope["result"])

        # The store's cone-entry envelope (committed by the run above).
        cone_envelopes = [
            e for e in (store.get(key) for key in store.keys())
            if e and e.get("kind") == "cone"
        ]
        assert cone_envelopes, "analysis committed no cone entries"
        shapes["store_cone_envelope"] = sorted(cone_envelopes[0])
        shapes["store_cone_entry"] = sorted(cone_envelopes[0]["entry"])

        # Incremental re-analysis (library payload).
        from repro.netlist.cells import AND

        edited = netlist.copy()
        edited_gate = next(
            g for g in edited.gates_in_file_order()
            if not g.is_ff and g.cell.name == "NAND"
            and len(g.inputs) == 2
        )
        edited.replace_gate(edited_gate.name, AND, edited_gate.inputs)
        incremental = session.analyze_incremental(analysis.digest, edited)
        inc_payload = incremental.as_dict()
        shapes["incremental_report"] = sorted(inc_payload)
        shapes["incremental_report.diff"] = sorted(inc_payload["diff"])
        shapes["incremental_report.cone_cache"] = sorted(
            inc_payload["cone_cache"]
        )

        # Trojan triage: the report payload (CLI --json / serve / store)
        # and its store envelope.
        treport = session.triage(design)
        tpayload = treport.as_dict()
        shapes["triage_report"] = sorted(tpayload)
        shapes["triage_report.config"] = sorted(tpayload["config"])
        shapes["triage_report.gate"] = sorted(tpayload["gates"][0])
        triage_envelopes = [
            e for e in (store.get(key) for key in store.keys())
            if e and e.get("kind") == "triage"
        ]
        assert triage_envelopes, "triage committed no store entry"
        shapes["store_triage_envelope"] = sorted(triage_envelopes[0])

        # repro batch rows and aggregate (--triage adds a row summary).
        batch = analyze_corpus([design], store=store_root)
        shapes["batch_row"] = sorted(batch.rows[0])
        shapes["batch_aggregate"] = sorted(batch.aggregate)
        shapes["batch_report"] = sorted(batch.as_dict())
        triaged_batch = analyze_corpus([design], store=store_root,
                                       triage=True)
        shapes["batch_row.triage"] = sorted(triaged_batch.rows[0]["triage"])

        # The serve response envelopes, through the in-process service
        # (same handler code as the socket path, no port needed).
        with open(design, encoding="utf-8") as handle:
            text = handle.read()
        service = AnalysisService(session, workers=1, queue_size=1)
        try:
            identify = service.call(
                "POST", "/v1/identify", {"verilog": text}
            )
            assert identify.status == 200
            shapes["serve_identify_response"] = sorted(identify.json)
            served_batch = service.call(
                "POST", "/v1/batch", {"netlists": [{"verilog": text}]}
            )
            assert served_batch.status == 200
            shapes["serve_batch_response"] = sorted(served_batch.json)
            shapes["serve_batch_row"] = sorted(served_batch.json["rows"][0])
            shapes["serve_batch_aggregate"] = sorted(
                served_batch.json["aggregate"]
            )
            served_inc = service.call("POST", "/v1/identify", {
                "base_digest": identify.json["digest"],
                "verilog": write_verilog(edited),
            })
            assert served_inc.status == 200
            shapes["serve_identify_incremental_response"] = sorted(
                served_inc.json
            )
            served_triage = service.call(
                "POST", "/v1/triage", {"verilog": text}
            )
            assert served_triage.status == 200
            shapes["serve_triage_response"] = sorted(served_triage.json)
            error = service.call("POST", "/v1/identify", {})
            assert error.status == 400
            shapes["serve_error"] = sorted(error.json)
            invalid = service.call(
                "POST", "/v1/identify", {"verilog": text, "bogus": 1}
            )
            assert invalid.status == 400
            shapes["serve_validation_diagnostic"] = sorted(
                invalid.json["diagnostics"][0]
            )
            health = service.call("GET", "/healthz")
            shapes["serve_healthz"] = sorted(health.json)
            ready = service.call("GET", "/readyz")
            shapes["serve_readyz"] = sorted(ready.json)
        finally:
            service.close()

        # The backend scoreboard payload (`repro scoreboard --json`).
        from repro.eval.scoreboard import run_scoreboard

        scoreboard = run_scoreboard(samples=1, seed=0, triage=True)
        shapes["scoreboard"] = sorted(scoreboard)
        board = next(iter(scoreboard["backends"].values()))
        shapes["scoreboard.backend"] = sorted(board)
        assert board["triage"], "triage run produced no ROC section"
        shapes["scoreboard.backend.triage"] = sorted(board["triage"])

        # The metrics snapshot (`repro batch --metrics-json` / registry).
        registry = MetricsRegistry()
        registry.counter("repro_example_total", "example").inc()
        registry.histogram("repro_example_seconds", "example").observe(0.1)
        dump = stamp({"metrics": registry.as_dict()})
        shapes["metrics_json"] = sorted(dump)
        shapes["metrics_json.metric"] = sorted(dump["metrics"][0])
        shapes["metrics_json.sample"] = sorted(
            dump["metrics"][0]["samples"][0]
        )
    return shapes


def load_golden():
    with open(GOLDEN_PATH, encoding="utf-8") as handle:
        return json.load(handle)


class TestVersionStamps:
    def test_schema_version_is_8(self):
        assert SCHEMA_VERSION == 8

    def test_stamp_prepends_current_versions(self):
        stamped = stamp({"x": 1, "schema_version": 999})
        assert stamped["schema_version"] == SCHEMA_VERSION
        assert stamped["pipeline_version"] == PIPELINE_VERSION
        assert stamped["x"] == 1
        assert list(stamped)[:2] == ["schema_version", "pipeline_version"]

    def test_stamp_does_not_mutate_input(self):
        payload = {"x": 1}
        stamp(payload)
        assert payload == {"x": 1}


class TestGolden:
    def test_golden_tracks_schema_version(self):
        golden = load_golden()
        assert golden["schema_version"] == SCHEMA_VERSION, (
            "SCHEMA_VERSION was bumped: regenerate the golden file with "
            "`PYTHONPATH=src python tests/test_schema.py --regen`"
        )

    def test_every_payload_shape_matches_golden(self):
        golden = load_golden()["shapes"]
        shapes = current_shapes()
        assert sorted(shapes) == sorted(golden), BUMP_HINT
        for kind in sorted(shapes):
            assert shapes[kind] == golden[kind], f"{kind}: {BUMP_HINT}"

    def test_every_top_level_payload_is_stamped(self):
        golden = load_golden()["shapes"]
        for kind in (
            "identify_json",
            "trace_json",
            "journal_row",
            "analysis_report",
            "store_result_envelope",
            "batch_row",
            "batch_report",
            "serve_identify_response",
            "serve_batch_response",
            "triage_report",
            "serve_triage_response",
            "serve_error",
            "serve_healthz",
            "metrics_json",
        ):
            assert "schema_version" in golden[kind], kind
            assert "pipeline_version" in golden[kind], kind

    def test_serve_response_envelope_is_the_analysis_report(self):
        """The identify endpoint answers AnalysisReport.as_dict verbatim:
        clients written against the facade's JSON shape read the serve
        response with zero translation."""
        golden = load_golden()["shapes"]
        assert (
            golden["serve_identify_response"] == golden["analysis_report"]
        )

    def test_serve_triage_envelope_is_the_triage_report(self):
        """/v1/triage likewise answers TriageReport.as_dict verbatim —
        the byte-identity contract starts with an identical field set."""
        golden = load_golden()["shapes"]
        assert golden["serve_triage_response"] == golden["triage_report"]


def _regen() -> None:
    os.makedirs(os.path.dirname(GOLDEN_PATH), exist_ok=True)
    payload = {"schema_version": SCHEMA_VERSION, "shapes": current_shapes()}
    with open(GOLDEN_PATH, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {GOLDEN_PATH} (schema_version {SCHEMA_VERSION})")


if __name__ == "__main__":
    if "--regen" in sys.argv:
        _regen()
    else:
        print(__doc__)
        sys.exit(2)
