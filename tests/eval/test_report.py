"""Tests for the JSON/CSV report exports."""

import csv
import io
import json

import pytest

from repro.eval import rows_from_json, rows_to_csv, rows_to_json
from repro.eval.table import BenchmarkRow, TechniqueRow


def sample_rows():
    def tech(name, full):
        return TechniqueRow(name, full, 0.25, 10.0, 1.5, 3)

    return [
        BenchmarkRow("b03", 122, 156, 30, 7, 3.14,
                     tech("Base", 71.4), tech("Ours", 85.7)),
        BenchmarkRow("b04", 652, 729, 66, 9, 7.33,
                     tech("Base", 77.8), tech("Ours", 88.9)),
    ]


class TestJson:
    def test_round_trip(self):
        rows = sample_rows()
        back = rows_from_json(rows_to_json(rows))
        assert back == rows

    def test_structure(self):
        payload = json.loads(rows_to_json(sample_rows()))
        assert payload[0]["benchmark"] == "b03"
        assert payload[0]["ours"]["pct_full"] == 85.7
        assert payload[1]["base"]["num_control_signals"] == 3

    def test_deterministic(self):
        rows = sample_rows()
        assert rows_to_json(rows) == rows_to_json(rows)


class TestCsv:
    def test_two_lines_per_benchmark(self):
        text = rows_to_csv(sample_rows())
        parsed = list(csv.DictReader(io.StringIO(text)))
        assert len(parsed) == 4
        assert parsed[0]["technique"] == "Base"
        assert parsed[1]["technique"] == "Ours"
        assert parsed[1]["benchmark"] == "b03"

    def test_values_survive(self):
        parsed = list(csv.DictReader(io.StringIO(rows_to_csv(sample_rows()))))
        assert float(parsed[1]["pct_full"]) == pytest.approx(85.7)
        assert int(parsed[0]["gates"]) == 122


class TestRunnerIntegration:
    def test_runner_writes_files(self, tmp_path, capsys):
        from repro.eval.runner import main

        json_path = tmp_path / "rows.json"
        csv_path = tmp_path / "rows.csv"
        assert main(["b03", "--json", str(json_path),
                     "--csv", str(csv_path)]) == 0
        rows = rows_from_json(json_path.read_text())
        assert rows[0].name == "b03"
        assert "benchmark" in csv_path.read_text().splitlines()[0]
