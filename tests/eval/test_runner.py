"""Tests for the experiment runner and its CLI."""

import sys

import pytest

sys.path.insert(0, "tests")

from fixtures import figure1_netlist

from repro.eval.runner import (
    DEFAULT_JOURNAL,
    load_journal,
    main,
    run_benchmark,
    run_table1,
)


class TestRunBenchmark:
    def test_produces_consistent_row(self):
        nl, bits = figure1_netlist()
        run = run_benchmark(nl)
        row = run.row()
        assert row.name == "fig1"
        assert row.num_words == len(run.reference) == 1
        assert row.ours.pct_full == 100.0
        assert row.base.pct_full == 0.0
        assert row.ours.num_control_signals == 1
        assert row.base.num_control_signals == 0

    def test_runtime_columns_populated(self):
        nl, _ = figure1_netlist()
        row = run_benchmark(nl).row()
        assert row.base.time_seconds >= 0
        assert row.ours.time_seconds >= 0


class TestRunTable1:
    def test_selected_benchmarks(self):
        rows = run_table1(["b03"])
        assert len(rows) == 1
        assert rows[0].name == "b03"

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(KeyError):
            run_table1(["b99"])


class TestJournal:
    def test_rows_checkpoint_as_they_complete(self, tmp_path):
        journal = str(tmp_path / "t1.jsonl")
        rows = run_table1(["b03", "b04"], journal=journal)
        completed = load_journal(journal)
        assert sorted(completed) == ["b03", "b04"]
        assert completed["b03"] == rows[0]

    def test_resume_skips_completed_benchmarks(self, tmp_path):
        journal = str(tmp_path / "t1.jsonl")
        run_table1(["b03"], journal=journal)
        ran = []
        rows = run_table1(
            ["b03", "b04"],
            on_run=lambda name, run: ran.append(name),
            journal=journal,
            resume=True,
        )
        assert ran == ["b04"]  # b03 came from the journal, not a re-run
        assert [r.name for r in rows] == ["b03", "b04"]
        assert sorted(load_journal(journal)) == ["b03", "b04"]

    def test_fresh_sweep_restarts_the_journal(self, tmp_path):
        journal = str(tmp_path / "t1.jsonl")
        run_table1(["b03", "b04"], journal=journal)
        run_table1(["b03"], journal=journal)  # no resume: start over
        assert sorted(load_journal(journal)) == ["b03"]

    def test_torn_final_line_is_dropped(self, tmp_path):
        journal = tmp_path / "t1.jsonl"
        run_table1(["b03", "b04"], journal=str(journal))
        text = journal.read_text()
        journal.write_text(text[: len(text) - 20])  # kill mid-append
        completed = load_journal(str(journal))
        assert sorted(completed) == ["b03"]

    def test_missing_journal_is_empty(self, tmp_path):
        assert load_journal(str(tmp_path / "nope.jsonl")) == {}


class TestCli:
    def test_main_prints_table(self, capsys):
        assert main(["b03"]) == 0
        out = capsys.readouterr().out
        assert "b03" in out
        assert "Ours" in out

    def test_main_accepts_depth(self, capsys):
        assert main(["b03", "--depth", "3"]) == 0

    def test_main_journal_and_resume(self, tmp_path, capsys):
        journal = str(tmp_path / "t1.jsonl")
        assert main(["b03", "--journal", journal]) == 0
        assert main(["b03", "b04", "--journal", journal, "--resume"]) == 0
        assert sorted(load_journal(journal)) == ["b03", "b04"]

    def test_resume_defaults_the_journal_path(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.chdir(tmp_path)
        assert main(["b03", "--resume"]) == 0
        assert sorted(load_journal(DEFAULT_JOURNAL)) == ["b03"]

    def test_budget_flags_degrade_instead_of_crashing(self, capsys):
        assert main(["b03", "--budget", "0", "--deadline", "3600"]) == 0
        assert "b03" in capsys.readouterr().out

    def test_console_script_registered(self):
        import tomllib

        with open("pyproject.toml", "rb") as handle:
            project = tomllib.load(handle)
        assert (
            project["project"]["scripts"]["repro-table1"]
            == "repro.eval.runner:main"
        )
