"""Tests for the experiment runner and its CLI."""

import sys

import pytest

sys.path.insert(0, "tests")

from fixtures import figure1_netlist

from repro.eval.runner import main, run_benchmark, run_table1


class TestRunBenchmark:
    def test_produces_consistent_row(self):
        nl, bits = figure1_netlist()
        run = run_benchmark(nl)
        row = run.row()
        assert row.name == "fig1"
        assert row.num_words == len(run.reference) == 1
        assert row.ours.pct_full == 100.0
        assert row.base.pct_full == 0.0
        assert row.ours.num_control_signals == 1
        assert row.base.num_control_signals == 0

    def test_runtime_columns_populated(self):
        nl, _ = figure1_netlist()
        row = run_benchmark(nl).row()
        assert row.base.time_seconds >= 0
        assert row.ours.time_seconds >= 0


class TestRunTable1:
    def test_selected_benchmarks(self):
        rows = run_table1(["b03"])
        assert len(rows) == 1
        assert rows[0].name == "b03"

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(KeyError):
            run_table1(["b99"])


class TestCli:
    def test_main_prints_table(self, capsys):
        assert main(["b03"]) == 0
        out = capsys.readouterr().out
        assert "b03" in out
        assert "Ours" in out

    def test_main_accepts_depth(self, capsys):
        assert main(["b03", "--depth", "3"]) == 0

    def test_console_script_registered(self):
        import tomllib

        with open("pyproject.toml", "rb") as handle:
            project = tomllib.load(handle)
        assert (
            project["project"]["scripts"]["repro-table1"]
            == "repro.eval.runner:main"
        )
