"""Tests for the triage ROC scoring in `repro scoreboard --triage`."""

import json

import pytest

from repro.eval.scoreboard import _roc_auc, render_scoreboard, run_scoreboard


class TestRocAuc:
    def test_perfect_separation(self):
        assert _roc_auc([0.9, 0.8], {"0.100000": 3}) == 1.0

    def test_inverted_separation(self):
        assert _roc_auc([0.1], {"0.900000": 4}) == 0.0

    def test_all_ties_is_chance(self):
        assert _roc_auc([0.5], {"0.500000": 2}) == 0.5

    def test_mixed_is_the_exact_mann_whitney_value(self):
        # one win (vs 0.5), one loss (vs 0.9) → 0.5; then tie-half credit
        assert _roc_auc([0.7], {"0.500000": 1, "0.900000": 1}) == 0.5
        assert _roc_auc(
            [0.7], {"0.500000": 1, "0.700000": 1, "0.900000": 2}
        ) == pytest.approx((1.0 + 0.5) / 4)

    def test_empty_class_is_undefined_not_zero(self):
        assert _roc_auc([], {"0.500000": 1}) is None
        assert _roc_auc([0.5], {}) is None


class TestTriageCampaign:
    def test_triage_board_folds_an_roc_section(self, tmp_path):
        journal = str(tmp_path / "sb.jsonl")
        payload = run_scoreboard(
            samples=2, seed=0, backends=("ours",), journal=journal,
            triage=True,
        )
        assert payload["triage"] is True
        board = payload["backends"]["ours"]["triage"]
        assert board["samples"] == 2
        assert board["trojan_gates"] > 0
        assert 0.0 <= board["auc"] <= 1.0
        assert 0.0 <= board["top_decile_rate"] <= 1.0
        rendered = render_scoreboard(payload)
        assert "trojan triage" in rendered

    def test_journal_resume_is_byte_identical(self, tmp_path):
        journal = str(tmp_path / "sb.jsonl")
        first = run_scoreboard(
            samples=2, seed=0, backends=("ours",), journal=journal,
            triage=True,
        )
        resumed = run_scoreboard(
            samples=2, seed=0, backends=("ours",), journal=journal,
            triage=True,
        )
        assert (
            json.dumps(resumed, sort_keys=True)
            == json.dumps(first, sort_keys=True)
        )

    def test_rows_journaled_without_triage_are_rescored(self, tmp_path):
        journal = str(tmp_path / "sb.jsonl")
        plain = run_scoreboard(
            samples=1, seed=0, backends=("ours",), journal=journal,
        )
        assert plain["triage"] is False
        assert plain["backends"]["ours"]["triage"] is None
        upgraded = run_scoreboard(
            samples=1, seed=0, backends=("ours",), journal=journal,
            triage=True,
        )
        assert upgraded["backends"]["ours"]["triage"] is not None
