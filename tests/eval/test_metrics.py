"""Tests for the Table 1 accuracy metrics (Section 3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.words import IdentificationResult, Word
from repro.eval.metrics import (
    FULL,
    NOT_FOUND,
    PARTIAL,
    EvaluationMetrics,
    evaluate,
)
from repro.eval.reference import ReferenceWord


def result_with(words, singletons=()):
    r = IdentificationResult()
    r.words = [Word(tuple(w)) for w in words]
    r.singletons = list(singletons)
    return r


def ref(*bits):
    return ReferenceWord("w", tuple(bits))


class TestClassification:
    def test_fully_found_exact(self):
        metrics = evaluate([ref("a", "b", "c")], result_with([("a", "b", "c")]))
        assert metrics.outcomes[0].status == FULL
        assert metrics.pct_full == 100.0

    def test_fully_found_with_extra_bits(self):
        """Extra bits in the generated word do not disqualify (paper def)."""
        metrics = evaluate(
            [ref("a", "b")], result_with([("x", "a", "b", "y")])
        )
        assert metrics.outcomes[0].status == FULL

    def test_not_found_when_all_bits_apart(self):
        metrics = evaluate(
            [ref("a", "b", "c")],
            result_with([("a", "x"), ("b", "y")], singletons=["c"]),
        )
        assert metrics.outcomes[0].status == NOT_FOUND
        assert metrics.pct_not_found == 100.0

    def test_partial_when_some_bits_together(self):
        metrics = evaluate(
            [ref("a", "b", "c")],
            result_with([("a", "b")], singletons=["c"]),
        )
        outcome = metrics.outcomes[0]
        assert outcome.status == PARTIAL
        assert outcome.fragments == 2
        assert outcome.fragmentation_rate == pytest.approx(2 / 3)

    def test_paper_example_eight_bit_two_pieces(self):
        """"An 8-bit reference word split into two 4-bit generated words
        would be fragmented into two pieces" — normalized 0.25."""
        bits = [f"b{i}" for i in range(8)]
        metrics = evaluate(
            [ReferenceWord("w", tuple(bits))],
            result_with([tuple(bits[:4]), tuple(bits[4:])]),
        )
        assert metrics.outcomes[0].fragmentation_rate == pytest.approx(0.25)

    def test_loose_bits_count_as_fragments(self):
        metrics = evaluate(
            [ref("a", "b", "c", "d")],
            result_with([("a", "b")], singletons=["c"]),  # d nowhere
        )
        assert metrics.outcomes[0].fragments == 3


class TestAggregates:
    def test_mixed_population(self):
        refs = [ref("a", "b"), ReferenceWord("v", ("c", "d", "z")),
                ReferenceWord("u", ("e", "f"))]
        result = result_with(
            [("a", "b"), ("c", "d")], singletons=["z", "e", "f"]
        )
        metrics = evaluate(refs, result)
        assert metrics.num_full == 1
        assert metrics.num_partial == 1
        assert metrics.num_not_found == 1
        assert metrics.pct_full == pytest.approx(100 / 3)
        assert metrics.pct_not_found == pytest.approx(100 / 3)

    def test_fragmentation_only_over_partials(self):
        """"An average fragmentation of 0 indicates there were no
        partially-found words"."""
        metrics = evaluate([ref("a", "b")], result_with([("a", "b")]))
        assert metrics.fragmentation_rate == 0.0

    def test_empty_reference(self):
        metrics = evaluate([], result_with([]))
        assert metrics.pct_full == 0.0
        assert metrics.num_reference_words == 0


@given(
    st.lists(
        st.integers(min_value=2, max_value=10), min_size=1, max_size=6
    ),
    st.randoms(use_true_random=False),
)
@settings(max_examples=50, deadline=None)
def test_status_partition_property(widths, rng):
    """Every reference word lands in exactly one of the three states, and
    fragmentation rates are within (0, 1] for partials."""
    refs = []
    all_bits = []
    for w_index, width in enumerate(widths):
        bits = tuple(f"w{w_index}b{i}" for i in range(width))
        refs.append(ReferenceWord(f"w{w_index}", bits))
        all_bits.extend(bits)
    shuffled = list(all_bits)
    rng.shuffle(shuffled)
    words, singletons = [], []
    i = 0
    while i < len(shuffled):
        size = rng.randint(1, 4)
        chunk = shuffled[i : i + size]
        if len(chunk) == 1:
            singletons.append(chunk[0])
        else:
            words.append(tuple(chunk))
        i += size
    metrics = evaluate(refs, result_with(words, singletons))
    assert metrics.num_full + metrics.num_partial + metrics.num_not_found == len(refs)
    for outcome in metrics.outcomes:
        if outcome.status == PARTIAL:
            assert 0 < outcome.fragmentation_rate <= 1
            assert 2 <= outcome.fragments
        if outcome.status == FULL:
            assert outcome.fragmentation_rate == 0.0
