"""Tests for golden-reference extraction and Table 1 rendering."""

import pytest

from repro.eval import (
    ReferenceWord,
    average_row,
    average_word_size,
    extract_reference_words,
    render_table,
)
from repro.eval.table import BenchmarkRow, TechniqueRow
from repro.netlist import NetlistBuilder


def netlist_with_registers():
    b = NetlistBuilder("t")
    a, c = b.inputs("a", "c")
    d_bits = [b.nand(a, c), b.nand(c, a), b.xor(a, c)]
    for i, d in enumerate(d_bits):
        b.dff(d, output=f"count_reg_{i}")
    b.dff(b.inv(a), output="mode_reg")      # single-bit register
    b.dff(b.nor(a, c), output="plainq")     # non-conventional name
    return b.build(), d_bits


class TestReferenceExtraction:
    def test_registers_grouped_by_name(self):
        nl, d_bits = netlist_with_registers()
        words = extract_reference_words(nl)
        assert len(words) == 1
        assert words[0].register == "count"
        assert words[0].bits == tuple(d_bits)

    def test_bits_are_d_inputs_not_q_outputs(self):
        """Paper: "these words are the input nets to the flip-flops"."""
        nl, d_bits = netlist_with_registers()
        word = extract_reference_words(nl)[0]
        assert not any(bit.startswith("count_reg") for bit in word.bits)

    def test_single_bit_registers_excluded(self):
        nl, _ = netlist_with_registers()
        registers = {w.register for w in extract_reference_words(nl)}
        assert "mode" not in registers

    def test_min_width_configurable(self):
        nl, _ = netlist_with_registers()
        words = extract_reference_words(nl, min_width=4)
        assert words == []

    def test_bits_ordered_by_index(self):
        b = NetlistBuilder("t")
        a, c = b.inputs("a", "c")
        d2 = b.nand(a, c)
        d0 = b.nor(a, c)
        b.dff(d2, output="w_reg_2")  # declared out of order
        b.dff(d0, output="w_reg_0")
        nl = b.build()
        word = extract_reference_words(nl)[0]
        assert word.bits == (d0, d2)

    def test_average_word_size(self):
        words = [ReferenceWord("a", ("x", "y")), ReferenceWord("b", ("z", "w", "v"))]
        assert average_word_size(words) == pytest.approx(2.5)
        assert average_word_size([]) == 0.0


def make_row(name, base_full, ours_full):
    def tech(tech_name, full):
        return TechniqueRow(tech_name, full, 0.2, 10.0, 1.0, 2)

    return BenchmarkRow(
        name=name, num_gates=100, num_nets=120, num_ffs=30,
        num_words=10, avg_word_size=3.0,
        base=tech("Base", base_full), ours=tech("Ours", ours_full),
    )


class TestTable:
    def test_average_row_means(self):
        rows = [make_row("x", 50.0, 70.0), make_row("y", 70.0, 90.0)]
        avg = average_row(rows)
        assert avg.base.pct_full == pytest.approx(60.0)
        assert avg.ours.pct_full == pytest.approx(80.0)
        # Control signals are summed, as in the paper's table footer style.
        assert avg.ours.num_control_signals == 4

    def test_average_of_nothing_raises(self):
        with pytest.raises(ValueError):
            average_row([])

    def test_render_contains_both_techniques(self):
        text = render_table([make_row("b03", 60.0, 80.0)])
        assert "Base" in text and "Ours" in text
        assert "b03" in text
        assert "Average" in text

    def test_render_without_average(self):
        text = render_table([make_row("b03", 60.0, 80.0)], include_average=False)
        assert "Average" not in text

    def test_render_is_aligned(self):
        text = render_table([make_row("b03", 60.0, 80.0)])
        lines = [l for l in text.splitlines() if l and not l.startswith("-")]
        header = lines[0]
        assert header.index("Full%") > header.index("Tech")
