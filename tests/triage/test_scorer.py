"""Unit tests for the Trojan-triage anomaly scorer (DESIGN.md §16)."""

import os
import sys

import pytest

from repro.core.pipeline import identify_words
from repro.synth import insert_trojan
from repro.synth.anonymize import anonymize
from repro.synth.designs import BENCHMARKS
from repro.triage import TriageConfig, TriageResult, triage_netlist

sys.path.insert(0, os.path.dirname(os.path.dirname(__file__)))
from fixtures import figure1_netlist  # noqa: E402


@pytest.fixture(scope="module")
def figure1_triage():
    netlist, _ = figure1_netlist()
    result = identify_words(netlist)
    return netlist, result, triage_netlist(netlist, result)


class TestRanking:
    def test_every_gate_scored_exactly_once(self, figure1_triage):
        netlist, _, triage = figure1_triage
        names = [gate.name for gate in netlist.gates_in_file_order()]
        assert sorted(s.gate for s in triage.scores) == sorted(names)
        assert triage.num_gates == len(names)

    def test_sorted_by_score_then_file_position(self, figure1_triage):
        _, _, triage = figure1_triage
        keys = [(-s.score, s.position) for s in triage.scores]
        assert keys == sorted(keys)

    def test_scores_bounded_and_round_trip_stable(self, figure1_triage):
        _, _, triage = figure1_triage
        for entry in triage.scores:
            assert 0.0 <= entry.score <= 1.0
            assert round(entry.score, 6) == entry.score
            for _, value in entry.features:
                assert round(value, 6) == value

    def test_deterministic(self, figure1_triage):
        netlist, result, triage = figure1_triage
        again = triage_netlist(netlist, result)
        assert again.digest() == triage.digest()
        assert again.as_dict() == triage.as_dict()

    def test_hostile_rename_cannot_move_a_score(self, figure1_triage):
        """The scorer is name-free: anonymizing every net/gate name into
        escaped-identifier shapes leaves the (position, score) sequence
        untouched (the fuzz oracle re-checks this per campaign sample)."""
        netlist, _, triage = figure1_triage
        hostile = anonymize(netlist, naming="hostile").netlist
        renamed = triage_netlist(hostile, identify_words(hostile))
        assert (
            [(s.position, s.score) for s in renamed.scores]
            == [(s.position, s.score) for s in triage.scores]
        )

    def test_injected_trojan_ranks_in_the_top_decile(self):
        netlist = BENCHMARKS["b13"]()
        spec = insert_trojan(netlist, trigger_width=4, seed=2015)
        triage = triage_netlist(netlist, identify_words(netlist))
        decile = {
            s.gate for s in triage.top(max(1, triage.num_gates // 10))
        }
        assert set(spec.gates) <= decile
        for gate in spec.gates:
            assert triage.rank_of(gate) is not None


class TestConfig:
    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError, match="weight_mix"):
            TriageConfig(weight_mix=-0.1)

    def test_decay_outside_unit_interval_rejected(self):
        with pytest.raises(ValueError, match="neighbor_decay"):
            TriageConfig(neighbor_decay=1.5)

    def test_negative_rounds_rejected(self):
        with pytest.raises(ValueError, match="neighbor_rounds"):
            TriageConfig(neighbor_rounds=-1)

    def test_threshold_drives_num_flagged(self, figure1_triage):
        netlist, result, _ = figure1_triage
        triage = triage_netlist(
            netlist, result, TriageConfig(threshold=0.0)
        )
        assert triage.num_flagged == triage.num_gates
        strict = triage_netlist(
            netlist, result, TriageConfig(threshold=2.0)
        )
        assert strict.num_flagged == 0


class TestPayload:
    def test_from_dict_round_trips_the_digest(self, figure1_triage):
        _, _, triage = figure1_triage
        rebuilt = TriageResult.from_dict(triage.as_dict())
        assert rebuilt.digest() == triage.digest()
        assert rebuilt.as_dict() == triage.as_dict()

    def test_truncated_payload_refuses_reconstruction(self, figure1_triage):
        _, _, triage = figure1_triage
        with pytest.raises(ValueError):
            TriageResult.from_dict(triage.as_dict(top=2))

    def test_top_truncates_gates_not_counters(self, figure1_triage):
        _, _, triage = figure1_triage
        payload = triage.as_dict(top=3)
        assert len(payload["gates"]) == 3
        assert payload["num_gates"] == triage.num_gates
        assert payload["triage_digest"] == triage.digest()
