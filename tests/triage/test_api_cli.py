"""Session-facade and CLI tests for `repro triage`."""

import json
import os
import sys

import pytest

from repro.api import Session
from repro.exitcodes import EXIT_OK, EXIT_USAGE
from repro.netlist import write_verilog
from repro.schema import SCHEMA_VERSION
from repro.triage import TriageConfig
from repro.triage.cli import main as triage_main

sys.path.insert(0, os.path.dirname(os.path.dirname(__file__)))
from fixtures import figure1_netlist  # noqa: E402


@pytest.fixture()
def design(tmp_path):
    netlist, _ = figure1_netlist()
    path = tmp_path / "fig1.v"
    path.write_text(write_verilog(netlist))
    return str(path)


class TestSession:
    def test_storeless_run_reports_cache_off(self):
        netlist, _ = figure1_netlist()
        report = Session().triage(netlist)
        assert report.cache == "off"
        assert report.key is None
        assert report.triage.num_gates == netlist.num_gates

    def test_store_misses_then_hits(self, tmp_path, design):
        session = Session(store=str(tmp_path / "store"))
        cold = session.triage(design)
        assert cold.cache == "miss"
        warm = session.triage(design)
        assert warm.cache == "hit"
        assert warm.as_dict() == cold.as_dict()

    def test_text_and_path_share_digests_and_bytes(self, tmp_path, design):
        """A served body and a CLI file run on the same bytes are one
        cache entry and one payload."""
        store = str(tmp_path / "store")
        from_path = Session(store=store).triage(design)
        with open(design, encoding="utf-8") as handle:
            text = handle.read()
        from_text = Session(store=store).triage_text(text)
        assert from_text.digest == from_path.digest
        assert from_text.cache == "hit"
        assert from_text.as_dict() == from_path.as_dict()

    def test_triage_digest_answers_committed_bodies_only(
        self, tmp_path, design
    ):
        session = Session(store=str(tmp_path / "store"))
        assert session.triage_digest("file:" + "0" * 64) is None
        first = session.triage(design)
        by_digest = session.triage_digest(first.digest)
        assert by_digest is not None
        assert by_digest.as_dict() == first.as_dict()

    def test_storeless_session_has_no_digest_lookup(self):
        assert Session().triage_digest("file:" + "0" * 64) is None

    def test_config_re_keys_the_ranking_cache(self, tmp_path, design):
        session = Session(store=str(tmp_path / "store"))
        default = session.triage(design)
        tuned = session.triage(
            design, triage_config=TriageConfig(threshold=0.9)
        )
        assert tuned.cache == "miss"
        assert tuned.key != default.key
        assert session.triage(
            design, triage_config=TriageConfig(threshold=0.9)
        ).cache == "hit"


class TestCli:
    def test_json_payload_is_the_report_dict(self, tmp_path, design):
        out = tmp_path / "triage.json"
        assert triage_main([design, "--json", str(out)]) == EXIT_OK
        payload = json.loads(out.read_text())
        assert payload["schema_version"] == SCHEMA_VERSION
        assert payload["backend"] == "ours"
        assert payload["triage_digest"].startswith("triage:")
        assert payload == Session().triage(design).as_dict()

    def test_top_truncates_the_emitted_ranking(self, tmp_path, design):
        out = tmp_path / "triage.json"
        assert triage_main(
            [design, "--top", "2", "--json", str(out)]
        ) == EXIT_OK
        payload = json.loads(out.read_text())
        assert len(payload["gates"]) == 2
        assert payload["num_gates"] > 2

    def test_bad_jobs_is_a_usage_error(self, design):
        assert triage_main([design, "--jobs", "0"]) == EXIT_USAGE

    def test_unreadable_file_is_a_usage_error(self, tmp_path):
        assert triage_main([str(tmp_path / "missing.v")]) == EXIT_USAGE
