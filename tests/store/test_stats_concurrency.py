"""StoreStats under concurrency: counts must be exact, not approximate.

Before the serve thread pool existed the stats were bare int increments
on a single thread; `repro serve` reads one store from ``--workers``
threads at once, so a lost update would make the hit/miss counters (and
the ``repro_store_*_total`` metrics built on them) drift.  These tests
hammer one committed key from many threads and assert the *exact* total.
"""

import threading

from repro import metrics
from repro.store import ArtifactStore, cache_key

READERS = 12
READS_PER_THREAD = 200


def _committed_store(tmp_path):
    store = ArtifactStore(str(tmp_path / "store"))
    key = cache_key("file:" + "a" * 64, "config")
    store.put(key, "result", {"payload": "x" * 64})
    store.stats.hits = 0  # drop any setup-side noise (single-threaded here)
    store.stats.misses = 0
    return store, key


class TestConcurrentReaders:
    def test_hit_count_is_exact_across_reader_threads(self, tmp_path):
        store, key = _committed_store(tmp_path)
        barrier = threading.Barrier(READERS)

        def read():
            barrier.wait()
            for _ in range(READS_PER_THREAD):
                assert store.get(key) is not None

        threads = [threading.Thread(target=read) for _ in range(READERS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert store.stats.hits == READERS * READS_PER_THREAD
        assert store.stats.misses == 0

    def test_mixed_hits_and_misses_stay_exact(self, tmp_path):
        store, key = _committed_store(tmp_path)
        missing = cache_key("file:" + "b" * 64, "config")
        barrier = threading.Barrier(READERS)

        def read():
            barrier.wait()
            for _ in range(READS_PER_THREAD):
                store.get(key)
                store.get(missing)

        threads = [threading.Thread(target=read) for _ in range(READERS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert store.stats.hits == READERS * READS_PER_THREAD
        assert store.stats.misses == READERS * READS_PER_THREAD

    def test_bump_publishes_to_the_installed_registry(self, tmp_path):
        registry = metrics.install()
        try:
            store, key = _committed_store(tmp_path)
            store.get(key)
            store.get(key)
            hits = registry.get("repro_store_hits_total")
            assert hits is not None and hits.value() == 2.0
        finally:
            metrics.uninstall()
