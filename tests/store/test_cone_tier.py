"""Tests for the store-backed cone-cache tier and its key discipline.

Three concerns live here: (1) every :class:`PipelineConfig` field must be
classified as cone-fingerprint or cone-neutral — the partition test fails
the moment someone adds a config knob without deciding whether it can
change a subgroup outcome; (2) :class:`StoreConeTier` round-trips entries
through the ``cone:`` digest space, self-healing anything corrupt; (3)
the disk store's batched writes enforce the LRU cap once per batch with
the batch's own keys protected.
"""

import json
import os
import sys

import pytest

from repro.core import PipelineConfig, identify_words
from repro.core.conecache import ProcessConeCache, cone_fingerprint
from repro.store import (
    ArtifactStore,
    CONE_FINGERPRINT_FIELDS,
    CONE_NEUTRAL_FIELDS,
    StoreConeTier,
    cone_cache_key,
    result_digest,
)
from repro.store.serialize import (
    UnserializableResult,
    cone_entry_from_dict,
    cone_entry_to_dict,
)

sys.path.insert(0, os.path.dirname(os.path.dirname(__file__)))
from fixtures import figure1_netlist  # noqa: E402

ENTRY = {"runs": [2, 1], "assignment": {"n4": 0}, "tried": 3,
         "infeasible": 1}
FP = cone_fingerprint(PipelineConfig())


@pytest.fixture()
def store(tmp_path):
    return ArtifactStore(str(tmp_path / "store"))


class TestFingerprintDiscipline:
    def test_every_config_field_is_classified(self):
        """Adding a PipelineConfig field without classifying it as
        cone-fingerprint or cone-neutral must fail loudly: an
        unclassified result-affecting field would let stale entries
        replay under configs they were never computed for."""
        declared = set(CONE_FINGERPRINT_FIELDS) | set(CONE_NEUTRAL_FIELDS)
        actual = set(PipelineConfig.__dataclass_fields__)
        assert declared == actual, (
            "classify new PipelineConfig fields in "
            "repro.core.conecache.CONE_FINGERPRINT_FIELDS or "
            f"CONE_NEUTRAL_FIELDS: {sorted(declared ^ actual)}"
        )

    def test_the_two_classes_are_disjoint(self):
        overlap = set(CONE_FINGERPRINT_FIELDS) & set(CONE_NEUTRAL_FIELDS)
        assert not overlap

    def test_fingerprint_is_canonical_json_of_declared_fields(self):
        fields = json.loads(cone_fingerprint(PipelineConfig()))
        assert set(fields) == set(CONE_FINGERPRINT_FIELDS)


class TestConeEntrySerialization:
    def test_round_trip_normalizes_types(self):
        payload = cone_entry_to_dict(ENTRY)
        assert cone_entry_from_dict(payload) == ENTRY
        assert cone_entry_from_dict(json.loads(json.dumps(payload))) == ENTRY

    @pytest.mark.parametrize("entry", [
        {"runs": [0], "assignment": None, "tried": 0, "infeasible": 0},
        {"runs": [1], "assignment": {"n0": 2}, "tried": 0, "infeasible": 0},
        {"runs": [1], "assignment": None, "tried": -1, "infeasible": 0},
        {"runs": "x", "assignment": None, "tried": 0, "infeasible": 0},
        {"assignment": None, "tried": 0, "infeasible": 0},
    ])
    def test_malformed_entries_are_refused(self, entry):
        with pytest.raises(UnserializableResult):
            cone_entry_to_dict(entry)


class TestStoreConeTier:
    def test_round_trip_and_key_space(self, store):
        tier = store.cone_tier()
        assert isinstance(tier, StoreConeTier)
        tier.commit_many({"cone:abc": ENTRY}, FP)
        assert tier.probe_many(["cone:abc"], FP) == {"cone:abc": ENTRY}
        assert tier.probe_many(["cone:missing"], FP) == {}
        key = cone_cache_key("cone:abc", FP)
        assert store.get(key)["kind"] == "cone"

    def test_fingerprint_scopes_the_key(self, store):
        tier = store.cone_tier()
        tier.commit_many({"cone:abc": ENTRY}, FP)
        other = cone_fingerprint(PipelineConfig(depth=3))
        assert tier.probe_many(["cone:abc"], other) == {}

    def test_cone_neutral_config_change_still_hits(self, store):
        """Two runs differing only in cone-neutral fields (jobs, strict,
        deadline) address the same entries."""
        tier = store.cone_tier()
        tier.commit_many({"cone:abc": ENTRY}, FP)
        neutral = cone_fingerprint(
            PipelineConfig(jobs=4, strict=True, deadline_s=9.0)
        )
        assert neutral == FP
        assert tier.probe_many(["cone:abc"], neutral) == {
            "cone:abc": ENTRY
        }

    def test_key_accepts_config_or_fingerprint(self):
        assert cone_cache_key("cone:abc", PipelineConfig()) == (
            cone_cache_key("cone:abc", FP)
        )

    def test_corrupt_entry_is_healed_to_a_miss(self, store):
        tier = store.cone_tier()
        tier.commit_many({"cone:abc": ENTRY}, FP)
        key = cone_cache_key("cone:abc", FP)
        path = store._path(key)
        envelope = json.load(open(path))
        envelope["entry"]["runs"] = [0, -3]
        with open(path, "w") as handle:
            json.dump(envelope, handle)
        healed_before = store.stats.healed
        assert tier.probe_many(["cone:abc"], FP) == {}
        assert store.stats.healed == healed_before + 1
        assert not os.path.exists(path)

    def test_digest_mismatch_inside_envelope_is_healed(self, store):
        tier = store.cone_tier()
        tier.commit_many({"cone:abc": ENTRY}, FP)
        key = cone_cache_key("cone:abc", FP)
        path = store._path(key)
        envelope = json.load(open(path))
        envelope["digest"] = "cone:other"
        with open(path, "w") as handle:
            json.dump(envelope, handle)
        assert tier.probe_many(["cone:abc"], FP) == {}
        assert not os.path.exists(path)

    def test_unserializable_commit_is_skipped_not_fatal(self, store):
        tier = store.cone_tier()
        bad = {"runs": [0], "assignment": None, "tried": 0, "infeasible": 0}
        tier.commit_many({"cone:bad": bad, "cone:good": ENTRY}, FP)
        assert tier.probe_many(["cone:bad", "cone:good"], FP) == {
            "cone:good": ENTRY
        }


class TestBatchedStoreOps:
    def test_get_many_bumps_stats_once_per_batch(self, store):
        store.put("a" * 8, "cone", {"x": 1})
        store.put("b" * 8, "cone", {"x": 2})
        before_hits, before_misses = store.stats.hits, store.stats.misses
        found = store.get_many(["a" * 8, "a" * 8, "b" * 8, "c" * 8])
        assert set(found) == {"a" * 8, "b" * 8}
        assert store.stats.hits == before_hits + 2
        assert store.stats.misses == before_misses + 1

    def test_put_many_enforces_the_cap_once_protecting_the_batch(
        self, tmp_path
    ):
        store = ArtifactStore(str(tmp_path / "s"), max_bytes=1)
        old_key, batch = "f" * 8, [
            (f"{i:08d}", "cone", {"payload": "y" * 64}) for i in range(5)
        ]
        store.put(old_key, "cone", {"payload": "x" * 64})
        evictions_before = store.stats.evictions
        store.put_many(batch)
        # The batch's own writes survive; older entries are the victims.
        for key, _, _ in batch:
            assert store.get(key) is not None
        assert store.get(old_key) is None
        assert store.stats.evictions == evictions_before + 1

    def test_approximate_size_resyncs_on_eviction_scan(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "s"), max_bytes=10_000)
        store.put_many(
            [(f"{i:08d}", "cone", {"payload": "z" * 16}) for i in range(3)]
        )
        # Another process shrinking the store drifts the running total;
        # a forced scan resyncs it with the directory truth.
        store._evict()
        assert store._approx_bytes == store.total_bytes()
        assert store._puts_since_rescan == 0

    def test_uncapped_store_never_scans_on_put(self, store, monkeypatch):
        calls = []
        original = ArtifactStore._evict
        monkeypatch.setattr(
            ArtifactStore, "_evict",
            lambda self, keep=(): calls.append(keep) or original(
                self, keep
            ),
        )
        store.put("a" * 8, "cone", {"x": 1})
        store.put_many([("b" * 8, "cone", {"x": 2})])
        assert calls == []


class TestEngineStoreIntegration:
    def _same(self, a, b):
        assert a.words == b.words
        assert a.singletons == b.singletons
        assert a.control_assignments == b.control_assignments
        assert a.trace.counter_dict() == b.trace.counter_dict()
        assert result_digest(a) == result_digest(b)

    def test_store_attaches_the_cone_tier_by_default(self, store):
        """identify_words(store=...) wires [process, store] tiers: a
        fresh process (simulated with a cold private chain) still hits
        the entries a previous run persisted."""
        from repro.core.conecache import process_cone_cache

        process_cone_cache().clear()  # other tests may have warmed it
        netlist, _ = figure1_netlist()
        config = PipelineConfig()
        plain = identify_words(netlist, config)
        cold = identify_words(netlist, config, store=store)
        assert cold.trace.cache.cone_tier_commits > 0

        # New process: an empty process tier, the same store.
        warm = identify_words(
            netlist, config,
            cone_cache=[ProcessConeCache(), store.cone_tier()],
        )
        self._same(plain, cold)
        self._same(plain, warm)
        assert warm.trace.cache.cone_tier_store_hits > 0
        assert warm.trace.cache.cone_tier_misses == 0
