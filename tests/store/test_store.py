"""Tests for the content-addressed artifact store (repro.store)."""

import json
import multiprocessing
import os

import pytest

from repro.core import PipelineConfig, identify_words
from repro.store import (
    ArtifactStore,
    cache_key,
    config_fingerprint,
    file_digest,
    netlist_digest,
    result_digest,
    result_from_dict,
    result_to_dict,
)
from repro.store.serialize import UnserializableResult

import sys
sys.path.insert(0, os.path.dirname(os.path.dirname(__file__)))
from fixtures import figure1_netlist  # noqa: E402


@pytest.fixture()
def netlist():
    return figure1_netlist()[0]


@pytest.fixture()
def store(tmp_path):
    return ArtifactStore(str(tmp_path / "store"))


class TestKeys:
    def test_netlist_digest_is_content_addressed(self, netlist):
        assert netlist_digest(netlist) == netlist_digest(netlist.copy())
        renamed = netlist.copy("other_top")
        assert netlist_digest(netlist) != netlist_digest(renamed)

    def test_file_and_netlist_digest_spaces_are_disjoint(
        self, netlist, tmp_path
    ):
        from repro.netlist import write_verilog

        path = tmp_path / "n.v"
        path.write_text(write_verilog(netlist))
        assert file_digest(str(path)).startswith("file:")
        assert netlist_digest(netlist).startswith("netlist:")

    def test_fingerprint_excludes_execution_only_knobs(self):
        base = PipelineConfig()
        assert config_fingerprint(base) == config_fingerprint(
            PipelineConfig(jobs=8, strict=True, deadline_s=1000.0)
        )

    def test_fingerprint_covers_result_affecting_knobs(self):
        base = PipelineConfig()
        for variant in (
            PipelineConfig(depth=5),
            PipelineConfig(max_simultaneous=3),
            PipelineConfig(allow_partial=False),
            PipelineConfig(grouping="registers"),
            PipelineConfig(max_assignments=7),
            PipelineConfig(preflight=True),
        ):
            assert config_fingerprint(base) != config_fingerprint(variant)

    def test_kind_separates_namespaces(self):
        assert cache_key("d", "c", kind="result") != cache_key(
            "d", "c", kind="netlist"
        )


class TestSerialize:
    def test_result_roundtrip_is_lossless(self, netlist):
        result = identify_words(netlist, PipelineConfig())
        restored = result_from_dict(result_to_dict(result))
        assert [w.bits for w in restored.words] == [
            w.bits for w in result.words
        ]
        assert restored.singletons == result.singletons
        assert restored.control_assignments == result.control_assignments
        assert restored.trace.counter_dict() == result.trace.counter_dict()
        assert restored.trace.cache.as_dict() == result.trace.cache.as_dict()
        assert result_digest(restored) == result_digest(result)

    def test_degraded_results_are_refused(self, netlist):
        result = identify_words(netlist, PipelineConfig())
        result.trace.deadline_hit = True
        with pytest.raises(UnserializableResult):
            result_to_dict(result)


class TestStoreBasics:
    def test_probe_miss_then_commit_then_hit(self, store, netlist):
        config = PipelineConfig()
        assert store.probe(netlist, config) is None
        result = identify_words(netlist, config, store=store)
        assert result.trace.cache_provenance["provenance"] == "miss"
        cached = identify_words(netlist, config, store=store)
        assert cached.trace.cache_provenance["provenance"] == "hit"
        assert result_digest(cached) == result_digest(result)
        assert cached.trace.counter_dict() == result.trace.counter_dict()

    def test_changing_depth_must_miss(self, store, netlist):
        identify_words(netlist, PipelineConfig(depth=4), store=store)
        other = identify_words(netlist, PipelineConfig(depth=5), store=store)
        assert other.trace.cache_provenance["provenance"] == "miss"
        # One result entry per depth (cone entries ride along in their
        # own `cone` kind and don't collide with the result space).
        results = [
            key for key in store.keys()
            if store.get(key)["kind"] == "result"
        ]
        assert len(results) == 2

    def test_jobs_hits_the_serial_entry(self, store, netlist):
        identify_words(netlist, PipelineConfig(jobs=1), store=store)
        parallel = identify_words(
            netlist, PipelineConfig(jobs=4), store=store
        )
        assert parallel.trace.cache_provenance["provenance"] == "hit"

    def test_degraded_run_is_not_committed(self, store, netlist):
        config = PipelineConfig(deadline_s=1e-9)
        degraded = identify_words(netlist, config, store=store)
        assert degraded.trace.degraded
        assert len(store) == 0

    def test_netlist_artifact_roundtrip(self, store, netlist):
        digest = netlist_digest(netlist)
        store.commit_netlist(digest, netlist)
        restored = store.probe_netlist(digest)
        assert restored == netlist


class TestSelfHealing:
    def _single_entry_path(self, store):
        (key,) = store.keys()
        return store._path(key), key

    def test_truncated_entry_is_a_miss_and_healed(self, store, netlist):
        config = PipelineConfig()
        identify_words(netlist, config, store=store)
        path, _key = self._single_entry_path(store)
        payload = open(path, encoding="utf-8").read()
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(payload[: len(payload) // 2])  # torn write
        assert store.probe(netlist, config) is None
        assert store.stats.healed == 1
        assert not os.path.exists(path)
        # The next analysis recomputes and rewrites the entry.
        rewritten = identify_words(netlist, config, store=store)
        assert rewritten.trace.cache_provenance["provenance"] == "miss"
        assert store.probe(netlist, config) is not None

    def test_garbage_json_is_a_miss_and_healed(self, store, netlist):
        config = PipelineConfig()
        identify_words(netlist, config, store=store)
        path, _ = self._single_entry_path(store)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{not json")
        assert store.probe(netlist, config) is None
        assert not os.path.exists(path)

    def test_wrong_key_content_is_rejected(self, store, netlist):
        config = PipelineConfig()
        identify_words(netlist, config, store=store)
        path, key = self._single_entry_path(store)
        envelope = json.loads(open(path, encoding="utf-8").read())
        envelope["key"] = "0" * 64  # foreign entry copied into place
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(envelope, handle)
        assert store.get(key) is None

    def test_pipeline_version_mismatch_is_a_miss(self, store, netlist):
        config = PipelineConfig()
        identify_words(netlist, config, store=store)
        path, key = self._single_entry_path(store)
        envelope = json.loads(open(path, encoding="utf-8").read())
        envelope["pipeline_version"] = "0.0.1"
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(envelope, handle)
        assert store.get(key) is None


class TestLRU:
    def _put(self, store, name, mtime):
        key = cache_key(f"digest-{name}", "cfg")
        store.put(key, "result", {"payload": "x" * 512})
        os.utime(store._path(key), (mtime, mtime))
        return key

    def test_oldest_read_entries_evicted_first(self, tmp_path):
        store = ArtifactStore(str(tmp_path), max_bytes=4096)
        old = self._put(store, "old", 1_000)
        mid = self._put(store, "mid", 2_000)
        new = self._put(store, "new", 3_000)
        assert store.total_bytes() <= 4096
        # Grow past the cap: eviction removes the LRU entry ("old").
        big = cache_key("digest-big", "cfg")
        store.put(big, "result", {"payload": "y" * 2048})
        keys = set(store.keys())
        assert big in keys  # the just-written entry is never evicted
        assert old not in keys
        assert store.stats.evictions >= 1
        assert store.total_bytes() <= 4096
        assert {mid, new} & keys  # newer entries survive before older ones

    def test_read_refreshes_lru_position(self, tmp_path):
        store = ArtifactStore(str(tmp_path), max_bytes=3000)
        old = self._put(store, "old", 1_000)
        mid = self._put(store, "mid", 2_000)
        store.get(old)  # bump: "old" becomes most-recently-used
        store.put(
            cache_key("digest-big", "cfg"), "result",
            {"payload": "y" * 1500},
        )
        keys = set(store.keys())
        assert old in keys
        assert mid not in keys

    def test_unbounded_store_never_evicts(self, store):
        for index in range(20):
            store.put(cache_key(f"d{index}", "c"), "result", {"n": index})
        assert len(store) == 20
        assert store.stats.evictions == 0


def _hammer_writer(root: str, key: str, marker: int, rounds: int) -> None:
    writer = ArtifactStore(root)
    for _ in range(rounds):
        writer.put(key, "result", {"marker": marker, "pad": "z" * 256})


class TestConcurrency:
    def test_two_processes_writing_the_same_key(self, tmp_path):
        """Two processes hammer one key while the parent reads it.

        Lockless contract: every read observes either a miss or one
        writer's complete envelope — never a torn or mixed entry.
        """
        root = str(tmp_path / "shared")
        store = ArtifactStore(root)
        key = cache_key("contended", "cfg")
        workers = [
            multiprocessing.Process(
                target=_hammer_writer, args=(root, key, marker, 200)
            )
            for marker in (1, 2)
        ]
        for proc in workers:
            proc.start()
        observed = set()
        try:
            while any(proc.is_alive() for proc in workers):
                envelope = store.get(key)
                if envelope is not None:
                    assert envelope["key"] == key
                    assert envelope["pad"] == "z" * 256
                    observed.add(envelope["marker"])
        finally:
            for proc in workers:
                proc.join(timeout=30)
        for proc in workers:
            assert proc.exitcode == 0
        final = store.get(key)
        assert final is not None and final["marker"] in (1, 2)
        assert observed <= {1, 2}
        assert store.stats.healed == 0  # atomic writes: nothing torn

    def test_two_processes_committing_same_analysis(self, tmp_path, netlist):
        """Concurrent identical commits are benign (last-replace-wins)."""
        from repro.netlist import write_verilog

        root = str(tmp_path / "shared")
        path = tmp_path / "design.v"
        path.write_text(write_verilog(netlist))
        workers = [
            multiprocessing.Process(
                target=_analyze_in_child, args=(root, str(path))
            )
            for _ in range(2)
        ]
        for proc in workers:
            proc.start()
        for proc in workers:
            proc.join(timeout=60)
            assert proc.exitcode == 0
        session_store = ArtifactStore(root)
        config = PipelineConfig()
        from repro.store import file_digest as fdigest

        cached = session_store.probe_result(fdigest(str(path)), config)
        assert cached is not None


def _analyze_in_child(root: str, path: str) -> None:
    from repro.api import Session

    report = Session(store=root).analyze(path)
    assert report.cache in ("hit", "miss")
