"""/v1/triage contract tests: the byte-identity guarantee plus the
standard validation envelope, through the in-process service (the same
handler code the socket path runs)."""

import json
import os
import sys

import pytest

from repro.api import Session
from repro.netlist import write_verilog
from repro.serve.service import AnalysisService
from repro.triage.cli import main as triage_main

sys.path.insert(0, os.path.dirname(os.path.dirname(__file__)))
from fixtures import figure1_netlist  # noqa: E402


@pytest.fixture()
def verilog_text():
    netlist, _ = figure1_netlist()
    return write_verilog(netlist)


@pytest.fixture()
def service(tmp_path):
    service = AnalysisService(
        Session(store=str(tmp_path / "store")), workers=2, queue_size=4
    )
    yield service
    service.close()


class TestByteIdentity:
    def test_response_is_byte_identical_to_the_cli_json(
        self, tmp_path, verilog_text
    ):
        """The contract DESIGN.md §16 promises: `/v1/triage` on some
        bytes answers exactly `repro triage --json` on the same bytes —
        compared as *bytes*, against the canonical serve serialization."""
        design = tmp_path / "fig1.v"
        design.write_text(verilog_text)
        report = tmp_path / "cli.json"
        store = str(tmp_path / "store")
        assert triage_main(
            [str(design), "--store", store, "--json", str(report)]
        ) == 0
        canonical = json.dumps(
            json.loads(report.read_text()), sort_keys=True
        ).encode("utf-8")

        service = AnalysisService(
            Session(store=store), workers=1, queue_size=1
        )
        try:
            warm = service.call(
                "POST", "/v1/triage", {"verilog": verilog_text}
            )
        finally:
            service.close()
        assert warm.status == 200
        assert warm.body == canonical

    def test_cold_warm_and_storeless_agree(self, service, verilog_text):
        cold = service.call("POST", "/v1/triage", {"verilog": verilog_text})
        warm = service.call("POST", "/v1/triage", {"verilog": verilog_text})
        assert cold.status == warm.status == 200
        assert cold.body == warm.body
        storeless = AnalysisService(Session(), workers=1, queue_size=1)
        try:
            bare = storeless.call(
                "POST", "/v1/triage", {"verilog": verilog_text}
            )
        finally:
            storeless.close()
        assert bare.body == cold.body

    def test_process_pool_answers_the_thread_pool_bytes(
        self, tmp_path, verilog_text
    ):
        store = str(tmp_path / "store")
        threaded = AnalysisService(
            Session(store=store), workers=1, queue_size=1, pool="thread"
        )
        try:
            expected = threaded.call(
                "POST", "/v1/triage", {"verilog": verilog_text}
            )
        finally:
            threaded.close()
        forked = AnalysisService(
            Session(store=store), workers=1, queue_size=1, pool="process"
        )
        try:
            response = forked.call(
                "POST", "/v1/triage", {"verilog": verilog_text}
            )
        finally:
            forked.close()
        assert response.status == 200
        assert response.body == expected.body

    def test_digest_lookup_answers_the_text_bytes(
        self, service, verilog_text
    ):
        posted = service.call(
            "POST", "/v1/triage", {"verilog": verilog_text}
        )
        assert posted.status == 200
        by_digest = service.call(
            "POST", "/v1/triage", {"digest": posted.json["digest"]}
        )
        assert by_digest.status == 200
        assert by_digest.body == posted.body


class TestRequestSurface:
    def test_top_truncates_without_touching_counters(
        self, service, verilog_text
    ):
        full = service.call(
            "POST", "/v1/triage", {"verilog": verilog_text}
        ).json
        cut = service.call(
            "POST", "/v1/triage", {"verilog": verilog_text, "top": 3}
        ).json
        assert len(cut["gates"]) == 3
        assert cut["num_gates"] == full["num_gates"]
        assert cut["triage_digest"] == full["triage_digest"]

    def test_threshold_re_tunes_flagging(self, service, verilog_text):
        strict = service.call(
            "POST", "/v1/triage",
            {"verilog": verilog_text, "threshold": 2.0},
        ).json
        assert strict["num_flagged"] == 0
        assert strict["config"]["threshold"] == 2.0

    def test_validation_envelope_names_every_bad_field(
        self, service, verilog_text
    ):
        response = service.call("POST", "/v1/triage", {
            "verilog": verilog_text,
            "bogus": 1,
            "top": True,
            "threshold": "hot",
        })
        assert response.status == 400
        payload = response.json
        assert payload["error"] == "invalid_request"
        fields = sorted(d["field"] for d in payload["diagnostics"])
        assert fields == ["bogus", "threshold", "top"]
        for diag in payload["diagnostics"]:
            assert set(diag) == {"field", "severity", "message"}

    def test_verilog_and_digest_together_rejected(
        self, service, verilog_text
    ):
        response = service.call("POST", "/v1/triage", {
            "verilog": verilog_text, "digest": "file:" + "0" * 64,
        })
        assert response.status == 400

    def test_unknown_digest_is_404(self, service):
        response = service.call(
            "POST", "/v1/triage", {"digest": "file:" + "0" * 64}
        )
        assert response.status == 404
        assert response.json["error"] == "unknown_digest"

    def test_get_is_method_not_allowed(self, service):
        assert service.call("GET", "/v1/triage").status == 405
