"""In-process tests of the serve request handling (no sockets).

`AnalysisService.call` exercises the exact routing/admission/worker code
the TCP layer feeds, so everything here — status mapping, digest lookups,
backpressure, drain semantics — holds verbatim for the socket path
(covered separately in test_server.py).
"""

import json
import os
import sys
import threading
import time

import pytest

from repro.api import Session
from repro.metrics import MetricsRegistry
from repro.netlist import write_verilog
from repro.schema import SCHEMA_VERSION
from repro.serve.service import AnalysisService

sys.path.insert(0, os.path.dirname(os.path.dirname(__file__)))
from fixtures import figure1_netlist  # noqa: E402


@pytest.fixture()
def verilog_text():
    netlist, _ = figure1_netlist()
    return write_verilog(netlist)


@pytest.fixture()
def service(tmp_path):
    session = Session(store=str(tmp_path / "store"))
    service = AnalysisService(session, workers=2, queue_size=4)
    yield service
    service.close()


class TestIdentify:
    def test_round_trip_matches_the_library_call(self, service, verilog_text):
        response = service.call(
            "POST", "/v1/identify", {"verilog": verilog_text}
        )
        assert response.status == 200
        served = response.json
        direct = service.session.analyze(
            figure1_netlist()[0]
        )
        assert served["result_digest"] == direct.result_digest
        assert served["words"] == [list(b) for b in direct.words]
        assert served["schema_version"] == SCHEMA_VERSION

    def test_post_hits_entries_committed_by_the_cli_path(
        self, tmp_path, verilog_text
    ):
        """Cross-path cache sharing (DESIGN.md §11): a POST of the exact
        bytes `repro identify --store` already analyzed is a hit, via
        the engine's canonical netlist digest."""
        from repro.cli import main as cli_main

        design = tmp_path / "fig1.v"
        design.write_text(verilog_text)
        store = str(tmp_path / "store")
        assert cli_main([str(design), "--store", store]) == 0

        # preflight=True matches the identify CLI's fingerprint — the
        # same config `repro serve` boots with (server.main).
        from repro.core import PipelineConfig

        session = Session(config=PipelineConfig(preflight=True), store=store)
        service = AnalysisService(session, workers=1, queue_size=1)
        try:
            response = service.call(
                "POST", "/v1/identify", {"verilog": verilog_text}
            )
        finally:
            service.close()
        assert response.status == 200
        assert response.json["cache"] == "hit"

    def test_repeat_post_hits_the_shared_store(self, service, verilog_text):
        first = service.call("POST", "/v1/identify", {"verilog": verilog_text})
        second = service.call("POST", "/v1/identify", {"verilog": verilog_text})
        assert first.json["cache"] == "miss"
        assert second.json["cache"] == "hit"
        assert second.json["result_digest"] == first.json["result_digest"]

    def test_digest_lookup_after_a_post(self, service, verilog_text):
        posted = service.call(
            "POST", "/v1/identify", {"verilog": verilog_text}
        ).json
        by_digest = service.call(
            "POST", "/v1/identify", {"digest": posted["digest"]}
        )
        assert by_digest.status == 200
        assert by_digest.json["result_digest"] == posted["result_digest"]

    def test_unknown_digest_is_404(self, service):
        response = service.call(
            "POST", "/v1/identify", {"digest": "file:" + "0" * 64}
        )
        assert response.status == 404
        assert response.json["error"] == "unknown_digest"

    def test_request_needs_exactly_one_source(self, service, verilog_text):
        neither = service.call("POST", "/v1/identify", {})
        both = service.call(
            "POST", "/v1/identify",
            {"verilog": verilog_text, "digest": "file:" + "0" * 64},
        )
        assert neither.status == 400
        assert both.status == 400

    def test_unparseable_netlist_is_400(self, service):
        response = service.call(
            "POST", "/v1/identify", {"verilog": "garbage((("}
        )
        assert response.status == 400
        assert response.json["error"] == "bad_netlist"

    def test_malformed_json_is_400(self, service):
        import asyncio

        response = asyncio.run(
            service.handle("POST", "/v1/identify", b"{nope")
        )
        assert response.status == 400
        assert response.json["error"] == "bad_json"

    def test_strict_deadline_is_408(self, service, verilog_text):
        response = service.call(
            "POST",
            "/v1/identify",
            {"verilog": verilog_text, "deadline_s": 1e-9, "strict": True},
        )
        assert response.status == 408
        assert response.json["error"] == "deadline"

    def test_lax_deadline_degrades_instead(self, service, verilog_text):
        response = service.call(
            "POST",
            "/v1/identify",
            {"verilog": verilog_text, "deadline_s": 1e-9, "strict": False},
        )
        assert response.status == 200
        assert response.json["trace"]["degraded"] is True


class TestBatch:
    def test_rows_and_aggregate(self, service, verilog_text, tmp_path):
        journal = tmp_path / "journal.jsonl"
        service.journal = str(journal)
        response = service.call(
            "POST",
            "/v1/batch",
            {"netlists": [{"verilog": verilog_text}] * 2},
        )
        assert response.status == 200
        payload = response.json
        assert len(payload["rows"]) == 2
        assert payload["aggregate"]["designs"] == 2
        with open(journal, encoding="utf-8") as handle:
            lines = [json.loads(line) for line in handle if line.strip()]
        assert len(lines) == 2
        assert lines[0]["design"] == payload["rows"][0]["design"]

    def test_empty_list_is_400(self, service):
        response = service.call("POST", "/v1/batch", {"netlists": []})
        assert response.status == 400


class TestRouting:
    def test_health_ready_metrics(self, service):
        health = service.call("GET", "/healthz")
        assert health.status == 200 and health.json["status"] == "ok"
        ready = service.call("GET", "/readyz")
        assert ready.status == 200 and ready.json["status"] == "ready"
        metrics = service.call("GET", "/metrics")
        assert metrics.status == 200
        assert metrics.content_type.startswith("text/plain")
        text = metrics.body.decode("utf-8")
        assert "repro_serve_requests_total" in text

    def test_unknown_route_is_404(self, service):
        assert service.call("GET", "/nope").status == 404

    def test_wrong_methods_are_405(self, service):
        assert service.call("POST", "/healthz").status == 405
        assert service.call("GET", "/v1/identify").status == 405

    def test_request_metrics_accumulate(self, verilog_text, tmp_path):
        registry = MetricsRegistry()
        session = Session(store=str(tmp_path / "store"))
        service = AnalysisService(session, registry=registry)
        try:
            service.call("POST", "/v1/identify", {"verilog": verilog_text})
            service.call("GET", "/healthz")
        finally:
            service.close()
        requests = registry.get("repro_serve_requests_total")
        assert requests.value(endpoint="/v1/identify", status="200") == 1.0
        assert requests.value(endpoint="/healthz", status="200") == 1.0
        latency = registry.get("repro_serve_request_seconds")
        assert latency.count(endpoint="/v1/identify") == 1


class TestAdmissionControl:
    def test_burst_beyond_capacity_sheds_429_never_500(self, tmp_path,
                                                       verilog_text):
        """workers=1 + queue=1 and a held worker: a burst of 6 gets
        exactly its two admissible requests served and the rest shed."""
        registry = MetricsRegistry()
        session = Session(store=str(tmp_path / "store"))
        service = AnalysisService(
            session, workers=1, queue_size=1, hold_s=0.3, registry=registry
        )
        statuses = []
        lock = threading.Lock()

        def post():
            response = service.call(
                "POST", "/v1/identify", {"verilog": verilog_text}
            )
            with lock:
                statuses.append(response.status)

        try:
            threads = [threading.Thread(target=post) for _ in range(6)]
            for t in threads:
                t.start()
                time.sleep(0.02)  # deterministic arrival order
            for t in threads:
                t.join()
        finally:
            service.close()
        assert sorted(statuses) == [200, 200, 429, 429, 429, 429]
        assert registry.get("repro_serve_shed_total").value() == 4.0

    def test_draining_service_refuses_new_work(self, service, verilog_text):
        service.begin_drain()
        ready = service.call("GET", "/readyz")
        assert ready.status == 503 and ready.json["status"] == "draining"
        identify = service.call(
            "POST", "/v1/identify", {"verilog": verilog_text}
        )
        assert identify.status == 503
        assert identify.json["error"] == "draining"
        # healthz still answers: the process is alive, just not admitting.
        assert service.call("GET", "/healthz").status == 200
        assert service.drained()


class TestIdentifyIncremental:
    @staticmethod
    def _edited_text():
        from repro.netlist.cells import AND, NAND

        netlist, _ = figure1_netlist()
        gate = next(
            g for g in netlist.gates_in_file_order()
            if not g.is_ff and g.cell.name == "NAND" and len(g.inputs) == 2
        )
        edited = netlist.copy()
        edited.replace_gate(gate.name, AND, gate.inputs)
        return write_verilog(edited), gate.name

    def test_incremental_round_trip(self, service, verilog_text):
        base = service.call(
            "POST", "/v1/identify", {"verilog": verilog_text}
        )
        assert base.status == 200
        edited_text, edited_gate = self._edited_text()
        response = service.call("POST", "/v1/identify", {
            "base_digest": base.json["digest"],
            "verilog": edited_text,
        })
        assert response.status == 200
        body = response.json
        assert body["base_digest"] == base.json["digest"]
        assert body["diff"]["gates_changed"] == [edited_gate]
        assert body["diff"]["dirty_bits"] <= body["diff"]["total_bits"]
        assert 0.0 <= body["cone_cache"]["reuse_rate"] <= 1.0
        assert body["schema_version"] == SCHEMA_VERSION
        # Byte-identical to a from-scratch request for the edited text.
        scratch = service.call(
            "POST", "/v1/identify", {"verilog": edited_text}
        )
        assert (
            body["report"]["result_digest"]
            == scratch.json["result_digest"]
        )
        assert body["report"]["words"] == scratch.json["words"]

    def test_unknown_base_digest_is_404(self, service, verilog_text):
        response = service.call("POST", "/v1/identify", {
            "base_digest": "netlist:" + "0" * 64,
            "verilog": verilog_text,
        })
        assert response.status == 404
        assert response.json["error"] == "unknown_digest"

    def test_incremental_without_store_is_400(self, verilog_text):
        service = AnalysisService(Session(), workers=1, queue_size=2)
        try:
            response = service.call("POST", "/v1/identify", {
                "base_digest": "netlist:" + "0" * 64,
                "verilog": verilog_text,
            })
            assert response.status == 400
            assert response.json["error"] == "no_store"
        finally:
            service.close()

    def test_incremental_needs_the_edited_source(self, service,
                                                 verilog_text):
        base = service.call(
            "POST", "/v1/identify", {"verilog": verilog_text}
        )
        response = service.call("POST", "/v1/identify", {
            "base_digest": base.json["digest"],
        })
        assert response.status == 400


class TestValidation:
    """Pins the 400 body shape: the uniform error envelope plus
    field-level Diagnostic-style records (DESIGN.md §15)."""

    def test_error_envelope_shape(self, service, verilog_text):
        response = service.call(
            "POST", "/v1/identify", {"verilog": verilog_text, "bogus": 1}
        )
        assert response.status == 400
        body = response.json
        assert body["error"] == "invalid_request"
        assert body["detail"] == "1 invalid field(s)"
        assert set(body) == {
            "schema_version", "pipeline_version",
            "error", "detail", "diagnostics",
        }

    def test_diagnostic_record_shape(self, service, verilog_text):
        response = service.call(
            "POST", "/v1/identify", {"verilog": verilog_text, "bogus": 1}
        )
        (diag,) = response.json["diagnostics"]
        assert set(diag) == {"field", "severity", "message"}
        assert diag["field"] == "bogus"
        assert diag["severity"] == "error"
        assert "unknown field" in diag["message"]

    def test_unknown_backend_diagnostic(self, service, verilog_text):
        response = service.call(
            "POST", "/v1/identify",
            {"verilog": verilog_text, "backend": "nope"},
        )
        assert response.status == 400
        (diag,) = response.json["diagnostics"]
        assert diag["field"] == "backend"
        assert "unknown backend 'nope'" in diag["message"]
        for name in ("ours", "base", "regfeat"):
            assert name in diag["message"]

    def test_unknown_kernel_diagnostic(self, service, verilog_text):
        response = service.call(
            "POST", "/v1/identify",
            {"verilog": verilog_text, "kernel": "cuda"},
        )
        assert response.status == 400
        (diag,) = response.json["diagnostics"]
        assert diag["field"] == "kernel"
        assert "unknown kernel" in diag["message"]

    def test_bad_types_collected_not_shortcircuited(self, service,
                                                    verilog_text):
        response = service.call("POST", "/v1/identify", {
            "verilog": verilog_text,
            "deadline_s": True,     # bool is not a number here
            "strict": "yes",
        })
        assert response.status == 400
        body = response.json
        assert body["detail"] == "2 invalid field(s)"
        fields = {d["field"] for d in body["diagnostics"]}
        assert fields == {"deadline_s", "strict"}

    def test_batch_item_diagnostics_carry_the_item_prefix(self, service,
                                                          verilog_text):
        response = service.call("POST", "/v1/batch", {"netlists": [
            {"verilog": verilog_text},
            {"verilog": verilog_text, "oops": 1},
        ]})
        assert response.status == 400
        (diag,) = response.json["diagnostics"]
        assert diag["field"] == "netlists[1].oops"

    def test_batch_unknown_backend_is_400(self, service, verilog_text):
        response = service.call("POST", "/v1/batch", {
            "netlists": [{"verilog": verilog_text}],
            "backend": "nope",
        })
        assert response.status == 400
        assert response.json["error"] == "invalid_request"


class TestRequestBackend:
    """Per-request backend/kernel selection on both POST endpoints."""

    def test_identify_backend_lands_in_response(self, service,
                                                verilog_text):
        response = service.call(
            "POST", "/v1/identify",
            {"verilog": verilog_text, "backend": "regfeat"},
        )
        assert response.status == 200
        assert response.json["backend"] == "regfeat"

    def test_base_request_matches_base_server(self, tmp_path,
                                              verilog_text):
        from repro.core import PipelineConfig

        ours_service = AnalysisService(
            Session(store=str(tmp_path / "a")), workers=1, queue_size=2
        )
        base_service = AnalysisService(
            Session(
                config=PipelineConfig(backend="base"),
                store=str(tmp_path / "b"),
            ),
            workers=1, queue_size=2,
        )
        try:
            overridden = ours_service.call(
                "POST", "/v1/identify",
                {"verilog": verilog_text, "backend": "base"},
            )
            native = base_service.call(
                "POST", "/v1/identify", {"verilog": verilog_text}
            )
        finally:
            ours_service.close()
            base_service.close()
        assert overridden.status == native.status == 200
        assert (
            overridden.json["result_digest"]
            == native.json["result_digest"]
        )

    def test_batch_rows_carry_the_backend(self, service, verilog_text):
        response = service.call("POST", "/v1/batch", {
            "netlists": [{"verilog": verilog_text}],
            "backend": "base",
        })
        assert response.status == 200
        assert response.json["rows"][0]["backend"] == "base"

    def test_request_kernel_is_digest_neutral(self, service, verilog_text):
        default = service.call(
            "POST", "/v1/identify", {"verilog": verilog_text}
        )
        pinned = service.call(
            "POST", "/v1/identify",
            {"verilog": verilog_text, "kernel": "python"},
        )
        assert default.status == pinned.status == 200
        assert (
            default.json["result_digest"] == pinned.json["result_digest"]
        )
