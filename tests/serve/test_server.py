"""Socket-layer tests: a real ``repro serve`` subprocess on a TCP port.

These pin the operational contract of DESIGN.md §11 end to end — the
HTTP framing, the ServeClient, and the graceful-shutdown sequence: on
SIGTERM ``/readyz`` flips to 503 *first* (while the listener is still
up), the in-flight request finishes and ships its response, and only
then does the listener close and the process exit 0.
"""

import os
import re
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.netlist import write_verilog
from repro.serve.client import ServeClient, ServeError

sys.path.insert(0, os.path.dirname(os.path.dirname(__file__)))
from fixtures import figure1_netlist  # noqa: E402

BANNER = re.compile(r"listening on http://([\d.]+):(\d+)")


def _spawn(*extra_args):
    """Start `repro serve` on a free port; returns (process, client)."""
    env = dict(os.environ)
    src = os.path.join(
        os.path.dirname(os.path.dirname(os.path.dirname(__file__))), "src"
    )
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.serve", "--port", "0", *extra_args],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    deadline = time.monotonic() + 15
    banner = ""
    while time.monotonic() < deadline:
        banner = process.stdout.readline()
        if banner:
            break
        if process.poll() is not None:
            raise RuntimeError("server died before printing its banner")
    match = BANNER.search(banner)
    if match is None:
        process.kill()
        raise RuntimeError(f"unexpected banner: {banner!r}")
    # max_retries=0: these tests assert on raw statuses (429 bursts,
    # 503 during drain); the client's transient-retry layer would mask
    # exactly what they observe.
    client = ServeClient(
        match.group(1), int(match.group(2)), timeout=30, max_retries=0
    )
    ready = client.wait_ready(timeout=10)
    assert ready, f"server not ready: {ready.reason} ({ready.detail})"
    return process, client


def _terminate(process, timeout=15):
    """SIGTERM and reap; returns the exit code."""
    if process.poll() is None:
        process.send_signal(signal.SIGTERM)
    try:
        process.wait(timeout=timeout)
    except subprocess.TimeoutExpired:
        process.kill()
        process.wait()
        pytest.fail("server did not drain within the timeout")
    return process.returncode


@pytest.fixture()
def verilog_text():
    netlist, _ = figure1_netlist()
    return write_verilog(netlist)


class TestSocketRoundTrip:
    def test_identify_over_tcp_matches_the_library(self, tmp_path,
                                                   verilog_text):
        design = tmp_path / "fig1.v"
        design.write_text(verilog_text)
        process, client = _spawn("--store", str(tmp_path / "store"))
        try:
            status, report = client.identify_path(str(design))
            assert status == 200
            from repro.api import Session

            direct = Session().analyze(figure1_netlist()[0])
            assert report["result_digest"] == direct.result_digest

            # Same bytes again: served from the shared artifact store.
            status, again = client.identify(verilog=verilog_text)
            assert status == 200 and again["cache"] == "hit"
            assert client.metric_value("repro_store_hits_total") >= 1

            status, health = client.healthz()
            assert status == 200 and health["status"] == "ok"
            assert client.readyz()[0] == 200
            assert "repro_serve_requests_total" in client.metrics()
        finally:
            assert _terminate(process) == 0

    def test_batch_over_tcp_with_journal(self, tmp_path, verilog_text):
        journal = tmp_path / "journal.jsonl"
        process, client = _spawn("--journal", str(journal))
        try:
            status, payload = client.batch(
                [{"verilog": verilog_text}, {"verilog": verilog_text}]
            )
            assert status == 200
            assert payload["aggregate"]["designs"] == 2
            assert len(journal.read_text().strip().splitlines()) == 2
        finally:
            assert _terminate(process) == 0


class TestGracefulShutdown:
    def test_sigterm_finishes_in_flight_and_refuses_new_work(
        self, verilog_text
    ):
        """The drain sequence, observed from outside: readyz flips to
        503 while a held request is still executing, that request still
        completes with 200, and the process exits 0."""
        process, client = _spawn("--workers", "1", "--hold-s", "1.0")
        result = {}

        def held_post():
            result["response"] = client.identify(verilog=verilog_text)

        poster = threading.Thread(target=held_post)
        poster.start()
        time.sleep(0.3)  # the request is now held inside its worker
        process.send_signal(signal.SIGTERM)
        time.sleep(0.2)

        # Drain has begun but the listener is still up: readyz answers
        # 503 and new analysis work is refused, all over live TCP.
        status, body = client.readyz()
        assert status == 503 and body["status"] == "draining"
        refused_status, refused = client.identify(verilog=verilog_text)
        assert refused_status == 503 and refused["error"] == "draining"

        # The in-flight request still completes and ships its report.
        poster.join(timeout=30)
        status, report = result["response"]
        assert status == 200 and report["words"]

        # Already signalled once: a graceful drain exits 0 on its own —
        # a second SIGTERM would request the force path (exit 1).
        assert process.wait(timeout=15) == 0
        banner = process.stdout.read()
        assert "drained cleanly" in banner

        # Fully drained: the port no longer accepts connections.
        with pytest.raises(ServeError):
            client.healthz()

    def test_load_shedding_under_burst(self, verilog_text):
        """workers=1, queue=1, held workers: a burst of 6 concurrent
        posts yields exactly 2 successes and 4 sheds — and zero 500s."""
        process, client = _spawn(
            "--workers", "1", "--queue-size", "1", "--hold-s", "0.4"
        )
        statuses = []
        lock = threading.Lock()

        def post():
            status, _ = client.identify(verilog=verilog_text)
            with lock:
                statuses.append(status)

        try:
            threads = [threading.Thread(target=post) for _ in range(6)]
            for t in threads:
                t.start()
                time.sleep(0.03)
            for t in threads:
                t.join()
            assert sorted(statuses) == [200, 200, 429, 429, 429, 429]
            assert client.metric_value("repro_serve_shed_total") == 4
        finally:
            assert _terminate(process) == 0
