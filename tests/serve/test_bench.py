"""Pins the shape of the ``BENCH_serve.json`` load-benchmark report.

``scripts/serve_smoke.py --bench`` emits whatever
:func:`repro.serve.bench.build_report` builds; CI archives that file, so
its shape is part of the schema surface (v6).  This suite feeds the
builder synthetic sweep data and asserts every promised field — anybody
reshaping the report must update these expectations *and* bump
``SCHEMA_VERSION``.
"""

from __future__ import annotations

import pytest

from repro.schema import SCHEMA_VERSION
from repro.serve.bench import build_report, percentile, summarize_latencies


class TestPercentile:
    def test_nearest_rank_is_deterministic(self):
        values = [0.5, 0.1, 0.9, 0.3, 0.7]
        assert percentile(values, 50) == 0.5
        assert percentile(values, 100) == 0.9
        # Nearest-rank: p99 of five samples is the 5th order statistic.
        assert percentile(values, 99) == 0.9
        # ... and p1 is the 1st.
        assert percentile(values, 1) == 0.1

    def test_single_sample_answers_every_quantile(self):
        assert percentile([0.25], 50) == 0.25
        assert percentile([0.25], 99) == 0.25

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            percentile([], 50)

    def test_out_of_range_q_rejected(self):
        with pytest.raises(ValueError, match="q must be"):
            percentile([1.0], 0)
        with pytest.raises(ValueError, match="q must be"):
            percentile([1.0], 101)


class TestSummarize:
    def test_summary_keys(self):
        summary = summarize_latencies([0.2, 0.1, 0.4, 0.3])
        assert sorted(summary) == ["max", "mean", "p50", "p90", "p99"]
        assert summary["p50"] == 0.2
        assert summary["p90"] == summary["p99"] == summary["max"] == 0.4
        assert summary["mean"] == pytest.approx(0.25)

    def test_empty_sweep_reports_zeros(self):
        assert summarize_latencies([]) == {
            "p50": 0.0, "p90": 0.0, "p99": 0.0, "mean": 0.0, "max": 0.0,
        }


def _sweeps():
    return [
        {"workers": 1, "latencies_s": [0.5] * 10, "errors": 0,
         "elapsed_s": 5.0},
        {"workers": 2, "latencies_s": [0.4] * 14, "errors": 0,
         "elapsed_s": 5.0},
        {"workers": 4, "latencies_s": [0.3] * 20, "errors": 1,
         "elapsed_s": 5.0},
    ]


class TestBuildReport:
    def test_report_shape(self):
        report = build_report("b13", "process", 6, _sweeps(), cpu_count=1)
        # stamp() provenance plus the bench payload proper.
        assert report["schema_version"] == SCHEMA_VERSION
        assert report["bench"] == "serve_load"
        assert report["design"] == "b13"
        assert report["pool"] == "process"
        assert report["concurrency"] == 6
        assert report["cpu_count"] == 1
        assert len(report["sweeps"]) == 3
        for row in report["sweeps"]:
            assert sorted(row) == [
                "elapsed_s", "errors", "latency_s", "req_per_s",
                "requests", "workers",
            ]
            assert sorted(row["latency_s"]) == [
                "max", "mean", "p50", "p90", "p99",
            ]
        first, last = report["sweeps"][0], report["sweeps"][-1]
        assert first == {
            "workers": 1, "requests": 10, "errors": 0, "elapsed_s": 5.0,
            "req_per_s": 2.0,
            "latency_s": {"p50": 0.5, "p90": 0.5, "p99": 0.5,
                          "mean": 0.5, "max": 0.5},
        }
        assert last["errors"] == 1
        # scaling = last req/s over first req/s: (20/5) / (10/5) = 2.
        assert report["scaling"] == pytest.approx(2.0)

    def test_scaling_needs_two_sweeps(self):
        report = build_report("b13", "thread", 1, _sweeps()[:1], cpu_count=1)
        assert report["scaling"] is None

    def test_cpu_count_defaults_to_host(self):
        report = build_report("b13", "thread", 1, _sweeps())
        assert report["cpu_count"] >= 1
