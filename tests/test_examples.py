"""Smoke tests: every example script runs and tells its story."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "golden reference words" in out
    assert "shape hashing [6]" in out
    assert "control-signal technique" in out


def test_quickstart_trace():
    out = run_example("quickstart.py", "--trace")
    assert "stage trace (Figure 2)" in out
    assert "control signals found (Sec 2.4)" in out


def test_figure1_case_study():
    out = run_example("figure1_case_study.py")
    assert "U201 (feasible values (0,))" in out
    assert "{U215, U216, U217}" in out
    assert "shape hashing [6] : ['{U215, U216}']" in out


def test_trojan_hunt():
    out = run_example("trojan_hunt.py")
    assert "adversary inserts a Trojan" in out
    assert "trojan nets absorbed into architectural words: 0/" in out


def test_compare_baseline():
    out = run_example("compare_baseline.py", "b03")
    assert "b03" in out
    assert "FULL" in out


def test_compare_baseline_list():
    out = run_example("compare_baseline.py", "--list")
    assert "b03" in out and "b18" in out


def test_full_reverse_engineering():
    out = run_example("full_reverse_engineering.py")
    assert "step 1 — word identification" in out
    assert "step 2 — word propagation" in out
    assert "step 3 — operator recognition" in out
    assert "'add'" in out and "(verified)" in out
