"""Mutation smoke test: the oracles must catch known-bad pipelines.

Five plausible pipeline bugs are injected one at a time behind the
test-only hooks in :mod:`repro.fuzz.mutations`; the oracle suite must
flag at least four of the five on a small fixed corpus (ISSUE acceptance
threshold).  In practice all five are caught — the assertion leaves one
mutation of slack so an unrelated pipeline improvement that legitimately
changes one bug's visibility does not break the build, while any real
oracle regression (which typically blinds several) still fails.
"""

from __future__ import annotations

import pytest

from repro.fuzz.generator import generate, sample_seed
from repro.fuzz.mutations import MUTATION_NAMES, apply_mutation
from repro.fuzz.oracles import DEFAULT_ORACLES, run_oracles

#: Corpus indices used for the smoke: index 0 alone catches every
#: mutation today; index 1 is headroom against generator drift.
_SMOKE_INDICES = (0, 1)


@pytest.fixture(scope="module")
def corpus():
    return [generate(sample_seed(0, index)) for index in _SMOKE_INDICES]


def _caught(samples) -> bool:
    for sample in samples:
        verdicts = run_oracles(sample)
        if any(not v.passed for v in verdicts):
            return True
    return False


def test_mutation_names_are_stable():
    assert set(MUTATION_NAMES) == {
        "no-controls",
        "singles-only",
        "overeager-propagation",
        "unstable-parallel-merge",
        "name-sensitive-grouping",
    }


def test_kernel_oracle_is_registered():
    # Every fuzz campaign must differentially check the array kernel
    # against the python reference on each sample.
    assert "kernel" in {name for name, _ in DEFAULT_ORACLES}


def test_unknown_mutation_rejected():
    with pytest.raises(ValueError, match="unknown mutation"):
        with apply_mutation("nope"):
            pass


def test_clean_corpus_passes(corpus):
    for sample in corpus:
        assert all(v.passed for v in run_oracles(sample))


def test_oracles_catch_injected_bugs(corpus):
    caught = {}
    for name in MUTATION_NAMES:
        with apply_mutation(name):
            caught[name] = _caught(corpus)
    missed = [name for name, hit in caught.items() if not hit]
    assert len(caught) - len(missed) >= 4, (
        f"oracles caught only {len(caught) - len(missed)}/5 mutations; "
        f"missed: {missed}"
    )


def test_mutations_restore_the_pipeline(corpus):
    # After every context manager exits, the unmutated pipeline must be
    # back: the clean corpus passes again.
    for name in MUTATION_NAMES:
        with apply_mutation(name):
            pass
    assert all(v.passed for v in run_oracles(corpus[0]))
