"""Harness behaviour: campaigns, shrinking, reproducers, CLI contract."""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.fuzz.generator import GeneratorConfig, plan_sample, sample_seed
from repro.fuzz.harness import (
    HarnessConfig,
    main,
    run_campaign,
    shrink_failure,
)
from repro.fuzz.mutations import apply_mutation


def _config(tmp_path: Path, **overrides) -> HarnessConfig:
    defaults = dict(seed=0, samples=4, output_dir=tmp_path / "failures")
    defaults.update(overrides)
    return HarnessConfig(**defaults)


class TestCampaign:
    def test_clean_campaign_passes(self, tmp_path):
        report = run_campaign(_config(tmp_path))
        assert report.passed
        assert len(report.results) == 4
        assert not report.failures
        assert not (tmp_path / "failures").exists()

    def test_digest_is_deterministic(self, tmp_path):
        first = run_campaign(_config(tmp_path))
        second = run_campaign(_config(tmp_path))
        assert first.digest() == second.digest()

    def test_digest_depends_on_seed(self, tmp_path):
        a = run_campaign(_config(tmp_path, seed=0, samples=2))
        b = run_campaign(_config(tmp_path, seed=1, samples=2))
        assert a.digest() != b.digest()

    def test_single_index_mode(self, tmp_path):
        report = run_campaign(_config(tmp_path, index=3))
        assert [r.index for r in report.results] == [3]
        assert report.results[0].seed == sample_seed(0, 3)

    def test_time_budget_stops_early(self, tmp_path):
        report = run_campaign(_config(tmp_path, time_budget=0.0))
        assert report.stopped_early
        assert not report.passed
        assert not report.results

    def test_mutated_campaign_fails_and_emits_reproducer(self, tmp_path):
        with apply_mutation("no-controls"):
            report = run_campaign(_config(tmp_path, samples=1))
        assert not report.passed
        (record,) = report.failures
        assert record.reproducer is not None
        assert (record.reproducer / "original.v").exists()
        assert (record.reproducer / "shrunk.v").exists()
        payload = json.loads((record.reproducer / "report.json").read_text())
        assert payload["campaign_seed"] == 0
        assert payload["failed_oracles"]
        assert payload["rerun"].startswith("repro-fuzz --seed 0 --index 0")
        assert record.shrunk_gates <= record.sample.num_gates


class TestShrinking:
    def test_shrink_reduces_a_failing_plan(self):
        plan = plan_sample(sample_seed(0, 0))
        with apply_mutation("no-controls"):
            shrunk, builds = shrink_failure(
                plan, ["expectation"], depth=4, max_builds=60,
            )
        assert builds > 0
        assert len(shrunk.words) < len(plan.words)

    def test_shrink_keeps_plan_when_nothing_fails(self):
        # With no mutation the watched oracle passes everywhere, so no
        # edit is accepted and the original plan survives.
        plan = plan_sample(sample_seed(0, 0))
        shrunk, _ = shrink_failure(
            plan, ["expectation"], depth=4, max_builds=30,
        )
        assert shrunk == plan


class TestCli:
    def test_clean_run_exit_zero(self, tmp_path, capsys):
        code = main([
            "--seed", "0", "--samples", "2", "--quiet",
            "--out", str(tmp_path / "out"),
        ])
        assert code == 0
        assert "PASS" in capsys.readouterr().out

    def test_mutate_caught_exit_zero(self, tmp_path, capsys):
        code = main([
            "--seed", "0", "--samples", "1", "--quiet",
            "--mutate", "no-controls", "--out", str(tmp_path / "out"),
        ])
        assert code == 0
        assert "caught" in capsys.readouterr().out

    def test_usage_error_exit_two(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["--samples", "0"])
        assert excinfo.value.code == 2


@pytest.mark.fuzz
def test_nightly_campaign(tmp_path):
    """The seeded nightly sweep (200 samples by default).

    Runs only under ``-m fuzz``; CI's nightly job sets FUZZ_SAMPLES /
    FUZZ_SEED and uploads ``fuzz_failures/`` when this fails.
    """
    samples = int(os.environ.get("FUZZ_SAMPLES", "200"))
    seed = int(os.environ.get("FUZZ_SEED", "0"))
    out = Path(os.environ.get("FUZZ_OUT", "fuzz_failures"))
    report = run_campaign(
        HarnessConfig(seed=seed, samples=samples, output_dir=out),
        log=print,
    )
    print(report.summary())
    assert report.passed, report.summary()
