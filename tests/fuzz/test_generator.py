"""Generator invariants: determinism, ground truth, plan serialization."""

from __future__ import annotations

import pytest

from repro.fuzz.generator import (
    BASE_FULL_REGIMES,
    OURS_FULL_REGIMES,
    REGIMES,
    GeneratorConfig,
    SamplePlan,
    build_sample,
    generate,
    plan_sample,
    sample_seed,
)


class TestSampleSeed:
    def test_deterministic(self):
        assert sample_seed(0, 7) == sample_seed(0, 7)

    def test_decorrelated_across_indices(self):
        seeds = {sample_seed(0, i) for i in range(100)}
        assert len(seeds) == 100

    def test_decorrelated_across_campaigns(self):
        assert sample_seed(0, 1) != sample_seed(1, 0)


class TestPlan:
    def test_plan_is_deterministic(self):
        assert plan_sample(1234) == plan_sample(1234)

    def test_plan_round_trips_through_dict(self):
        for index in range(5):
            plan = plan_sample(sample_seed(3, index))
            assert SamplePlan.from_dict(plan.as_dict()) == plan

    def test_word_count_respects_config(self):
        config = GeneratorConfig(min_words=2, max_words=3)
        for index in range(10):
            plan = plan_sample(sample_seed(0, index), config)
            assert 2 <= len(plan.words) <= 3
            # One separator per word keeps neighbouring words apart.
            assert len(plan.separators) == len(plan.words)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            GeneratorConfig(min_width=1)
        with pytest.raises(ValueError):
            GeneratorConfig(max_width=20, bus_width=16)
        with pytest.raises(ValueError):
            GeneratorConfig(min_words=5, max_words=3)
        with pytest.raises(ValueError):
            GeneratorConfig(regime_weights=(("bogus", 1.0),))


class TestBuild:
    def test_build_is_deterministic(self):
        a = generate(sample_seed(0, 2))
        b = generate(sample_seed(0, 2))
        assert a.netlist == b.netlist
        assert a.truth == b.truth

    def test_truth_bits_are_ff_d_inputs(self):
        sample = generate(sample_seed(0, 1))
        d_inputs = {ff.inputs[0] for ff in sample.netlist.flip_flops()}
        for word in sample.truth:
            assert word.bits, f"{word.register} has no bits"
            for bit in word.bits:
                assert bit in d_inputs

    def test_truth_covers_every_planned_word(self):
        plan = plan_sample(sample_seed(0, 4))
        sample = build_sample(plan)
        assert {w.register for w in sample.truth} == {
            w.name for w in plan.words
        }

    def test_expectation_labels_follow_regime(self):
        sample = generate(sample_seed(0, 5))
        for word in sample.truth:
            assert word.regime in REGIMES
            assert word.expect_ours == (
                "full" if word.regime in OURS_FULL_REGIMES else "any"
            )
            assert word.expect_base == (
                "full" if word.regime in BASE_FULL_REGIMES else "any"
            )

    def test_regime_mix_across_corpus(self):
        regimes = set()
        for index in range(15):
            sample = generate(sample_seed(0, index))
            regimes.update(w.regime for w in sample.truth)
        # A healthy corpus exercises most regimes, including the two
        # families the expectation oracle watches.
        assert "data" in regimes
        assert regimes & {"counter", "selected", "alternating", "crossed"}
        assert len(regimes) >= 6

    def test_shrunk_plan_still_builds(self):
        from dataclasses import replace

        plan = plan_sample(sample_seed(0, 3))
        smaller = replace(
            plan,
            words=plan.words[:1],
            separators=plan.separators[:1],
            decoys=(),
            datapath_rounds=0,
        )
        sample = build_sample(smaller)
        assert len(sample.truth) == 1
