"""Generator invariants: determinism, ground truth, plan serialization."""

from __future__ import annotations

import pytest

from repro.fuzz.generator import (
    BASE_FULL_REGIMES,
    OURS_FULL_REGIMES,
    REGIMES,
    GeneratorConfig,
    SamplePlan,
    build_sample,
    generate,
    plan_sample,
    sample_seed,
)


class TestSampleSeed:
    def test_deterministic(self):
        assert sample_seed(0, 7) == sample_seed(0, 7)

    def test_decorrelated_across_indices(self):
        seeds = {sample_seed(0, i) for i in range(100)}
        assert len(seeds) == 100

    def test_decorrelated_across_campaigns(self):
        assert sample_seed(0, 1) != sample_seed(1, 0)


class TestPlan:
    def test_plan_is_deterministic(self):
        assert plan_sample(1234) == plan_sample(1234)

    def test_plan_round_trips_through_dict(self):
        for index in range(5):
            plan = plan_sample(sample_seed(3, index))
            assert SamplePlan.from_dict(plan.as_dict()) == plan

    def test_word_count_respects_config(self):
        config = GeneratorConfig(min_words=2, max_words=3)
        for index in range(10):
            plan = plan_sample(sample_seed(0, index), config)
            assert 2 <= len(plan.words) <= 3
            # One separator per word keeps neighbouring words apart.
            assert len(plan.separators) == len(plan.words)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            GeneratorConfig(min_width=1)
        with pytest.raises(ValueError):
            GeneratorConfig(max_width=20, bus_width=16)
        with pytest.raises(ValueError):
            GeneratorConfig(min_words=5, max_words=3)
        with pytest.raises(ValueError):
            GeneratorConfig(regime_weights=(("bogus", 1.0),))


class TestBuild:
    def test_build_is_deterministic(self):
        a = generate(sample_seed(0, 2))
        b = generate(sample_seed(0, 2))
        assert a.netlist == b.netlist
        assert a.truth == b.truth

    def test_truth_bits_are_ff_d_inputs(self):
        sample = generate(sample_seed(0, 1))
        d_inputs = {ff.inputs[0] for ff in sample.netlist.flip_flops()}
        for word in sample.truth:
            assert word.bits, f"{word.register} has no bits"
            for bit in word.bits:
                assert bit in d_inputs

    def test_truth_covers_every_planned_word(self):
        plan = plan_sample(sample_seed(0, 4))
        sample = build_sample(plan)
        assert {w.register for w in sample.truth} == {
            w.name for w in plan.words
        }

    def test_expectation_labels_follow_regime(self):
        sample = generate(sample_seed(0, 5))
        for word in sample.truth:
            assert word.regime in REGIMES
            assert word.expect_ours == (
                "full" if word.regime in OURS_FULL_REGIMES else "any"
            )
            assert word.expect_base == (
                "full" if word.regime in BASE_FULL_REGIMES else "any"
            )

    def test_regime_mix_across_corpus(self):
        regimes = set()
        for index in range(15):
            sample = generate(sample_seed(0, index))
            regimes.update(w.regime for w in sample.truth)
        # A healthy corpus exercises most regimes, including the two
        # families the expectation oracle watches.
        assert "data" in regimes
        assert regimes & {"counter", "selected", "alternating", "crossed"}
        assert len(regimes) >= 6

    def test_shrunk_plan_still_builds(self):
        from dataclasses import replace

        plan = plan_sample(sample_seed(0, 3))
        smaller = replace(
            plan,
            words=plan.words[:1],
            separators=plan.separators[:1],
            decoys=(),
            datapath_rounds=0,
        )
        sample = build_sample(smaller)
        assert len(sample.truth) == 1


class TestTrojanArming:
    def test_default_config_stays_clean(self):
        sample = generate(sample_seed(0, 0))
        assert sample.trojan_specs == ()
        assert sample.trojan_gates == ()

    def test_armed_samples_carry_ground_truth_gates(self):
        from repro.netlist import validate

        config = GeneratorConfig(trojan_rate=1.0)
        sample = generate(sample_seed(0, 0), config)
        assert sample.trojan_specs
        gates = {g.name for g in sample.netlist.gates_in_file_order()}
        for name in sample.trojan_gates:
            assert name in gates
        assert validate(sample.netlist).ok

    def test_armed_build_is_deterministic(self):
        config = GeneratorConfig(trojan_rate=1.0)
        a = generate(sample_seed(0, 1), config)
        b = generate(sample_seed(0, 1), config)
        assert a.netlist == b.netlist
        assert a.trojan_specs == b.trojan_specs

    def test_multi_trojan_prefixes_are_disjoint(self):
        config = GeneratorConfig(trojan_rate=1.0, max_trojans=2)
        for index in range(6):
            sample = generate(sample_seed(0, index), config)
            if len(sample.trojan_specs) < 2:
                continue
            sets = [set(spec.gates) for spec in sample.trojan_specs]
            assert not sets[0] & sets[1]
            return
        pytest.skip("no two-trojan sample in the first 6 seeds")

    def test_tainted_words_are_demoted_to_any(self):
        """A word combinationally downstream of a payload splice can no
        longer be held to its regime's expectation — the tamper
        legitimately changes its cones."""
        config = GeneratorConfig(trojan_rate=1.0)
        clean_config = GeneratorConfig()
        for index in range(6):
            armed = generate(sample_seed(0, index), config)
            clean = generate(sample_seed(0, index), clean_config)
            expect_clean = {w.register: w.expect_ours for w in clean.truth}
            demoted = [
                w.register for w in armed.truth
                if w.expect_ours == "any"
                and expect_clean[w.register] == "full"
            ]
            if demoted:
                return
        pytest.skip("no demoted word in the first 6 seeds")
