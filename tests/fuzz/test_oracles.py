"""Oracle-suite behaviour on clean samples and synthetic failures."""

from __future__ import annotations

import pytest

from repro.fuzz.generator import generate, sample_seed
from repro.fuzz.oracles import (
    DEFAULT_ORACLES,
    OracleContext,
    OracleVerdict,
    run_oracles,
    verify_reductions,
)


@pytest.fixture(scope="module")
def sample():
    return generate(sample_seed(0, 0))


class TestSuite:
    def test_clean_sample_passes_all_oracles(self, sample):
        verdicts = run_oracles(sample)
        assert [v.oracle for v in verdicts] == [n for n, _ in DEFAULT_ORACLES]
        failing = [v for v in verdicts if not v.passed]
        assert not failing, failing

    def test_verdicts_serialize(self, sample):
        verdict = run_oracles(sample, DEFAULT_ORACLES[:1])[0]
        payload = verdict.as_dict()
        assert payload == {
            "oracle": verdict.oracle,
            "passed": verdict.passed,
            "detail": verdict.detail,
        }

    def test_crashing_oracle_is_a_failure(self, sample):
        def boom(ctx):
            raise RuntimeError("kaput")

        verdicts = run_oracles(sample, [("boom", boom)])
        assert verdicts == [OracleVerdict(
            "boom", False, "oracle crashed: RuntimeError: kaput"
        )]

    def test_context_caches_pipeline_runs(self, sample):
        ctx = OracleContext(sample)
        assert ctx.ours is ctx.ours
        assert ctx.base is ctx.base


class TestVerifyReductions:
    def test_committed_reductions_verify(self):
        # Scan the corpus for a sample whose pipeline committed at least
        # one assignment, so the check is exercised for real.
        for index in range(10):
            sample = generate(sample_seed(0, index))
            ctx = OracleContext(sample)
            if any(
                a.assignments for a in ctx.ours.control_assignments.values()
            ):
                problems = verify_reductions(sample.netlist, ctx.ours)
                assert problems == []
                return
        pytest.fail("no corpus sample committed a control assignment")


class TestTriageOracle:
    def test_triage_oracle_is_registered(self):
        assert "triage" in [name for name, _ in DEFAULT_ORACLES]

    def test_trojan_armed_sample_passes_all_oracles(self):
        """The full suite holds on an armed sample: tainted words are
        demoted so expectation oracles stay valid, and the triage oracle
        proves the ranking deterministic and rename-invariant."""
        from repro.fuzz.generator import GeneratorConfig

        armed = generate(sample_seed(0, 0), GeneratorConfig(trojan_rate=1.0))
        assert armed.trojan_specs
        verdicts = run_oracles(armed)
        failing = [v for v in verdicts if not v.passed]
        assert not failing, failing
