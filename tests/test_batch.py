"""Tests for the ``repro batch`` corpus orchestrator (repro.batch)."""

import json
import os
import sys

import pytest

from repro.batch import (
    analyze_corpus,
    _itc99_names,
    main,
)
from repro.core import PipelineConfig
from repro.netlist import write_verilog
from repro.schema import SCHEMA_VERSION
from repro.synth.designs import BENCHMARKS

sys.path.insert(0, os.path.dirname(__file__))
from fixtures import figure1_netlist  # noqa: E402


@pytest.fixture(scope="module")
def corpus(tmp_path_factory):
    """Two small designs, the second duplicated under another name."""
    root = tmp_path_factory.mktemp("corpus")
    b03 = root / "b03.v"
    b03.write_text(write_verilog(BENCHMARKS["b03"]()))
    fig1 = root / "fig1.v"
    fig1.write_text(write_verilog(figure1_netlist()[0]))
    dup = root / "fig1_copy.v"
    dup.write_text(fig1.read_text())
    return [str(b03), str(fig1), str(dup)]


class TestAnalyzeCorpus:
    def test_cold_then_warm_is_byte_identical(self, corpus, tmp_path):
        store = str(tmp_path / "store")
        cold = analyze_corpus(corpus, store=store)
        warm = analyze_corpus(corpus, store=store)
        assert cold.aggregate["cache_hits"] < len(corpus)
        assert warm.aggregate["cache_hits"] == len(corpus)
        assert warm.aggregate["hit_rate"] == 1.0
        assert (
            warm.aggregate["corpus_digest"] == cold.aggregate["corpus_digest"]
        )
        for before, after in zip(cold.rows, warm.rows):
            assert after["result_digest"] == before["result_digest"]
            assert after["words"] == before["words"]

    def test_duplicate_content_shares_cache_entry(self, corpus, tmp_path):
        report = analyze_corpus(corpus, store=str(tmp_path / "store"))
        fig1, dup = report.rows[1], report.rows[2]
        assert fig1["digest"] == dup["digest"]
        assert dup["cache"] == "hit"  # second occurrence reuses the first
        assert dup["result_digest"] == fig1["result_digest"]

    def test_multiprocess_matches_serial(self, corpus, tmp_path):
        serial = analyze_corpus(corpus, jobs=1)
        parallel = analyze_corpus(
            corpus, store=str(tmp_path / "store"), jobs=2
        )
        assert (
            parallel.aggregate["corpus_digest"]
            == serial.aggregate["corpus_digest"]
        )
        assert [row["path"] for row in parallel.rows] == [
            row["path"] for row in serial.rows
        ]

    def test_rows_come_back_in_input_order(self, corpus):
        report = analyze_corpus(list(reversed(corpus)))
        assert [row["path"] for row in report.rows] == list(reversed(corpus))

    def test_score_rows(self, corpus):
        report = analyze_corpus(corpus[:2], score=True)
        for row in report.rows:
            assert row["score"] is not None
            assert 0.0 <= row["score"]["pct_full"] <= 100.0

    def test_uncached_run_has_no_store(self, corpus):
        report = analyze_corpus(corpus[:1])
        assert report.rows[0]["cache"] == "off"
        assert report.aggregate["cache_hits"] == 0


class TestJournalResume:
    def test_resume_restores_journaled_rows(self, corpus, tmp_path):
        journal = str(tmp_path / "batch.jsonl")
        first = analyze_corpus(corpus, journal=journal)
        resumed = analyze_corpus(corpus, journal=journal, resume=True)
        assert all(row["cache"] == "journal" for row in resumed.rows)
        assert (
            resumed.aggregate["corpus_digest"]
            == first.aggregate["corpus_digest"]
        )

    def test_changed_file_invalidates_its_journal_row(self, tmp_path):
        fig1 = tmp_path / "fig1.v"
        fig1.write_text(write_verilog(figure1_netlist()[0]))
        journal = str(tmp_path / "batch.jsonl")
        analyze_corpus([str(fig1)], journal=journal)
        fig1.write_text(write_verilog(BENCHMARKS["b03"]()))
        resumed = analyze_corpus([str(fig1)], journal=journal, resume=True)
        assert resumed.rows[0]["cache"] != "journal"
        assert resumed.rows[0]["design"] == "b03"

    def test_fresh_run_restarts_the_journal(self, corpus, tmp_path):
        journal = str(tmp_path / "batch.jsonl")
        analyze_corpus(corpus[:1], journal=journal)
        analyze_corpus(corpus[1:2], journal=journal)  # no resume: truncate
        with open(journal, encoding="utf-8") as handle:
            entries = [json.loads(line) for line in handle]
        assert [entry["path"] for entry in entries] == [corpus[1]]


class TestTriage:
    def test_rows_carry_a_triage_summary(self, corpus, tmp_path):
        store = str(tmp_path / "store")
        report = analyze_corpus(corpus, store=store, triage=True)
        for row in report.rows:
            summary = row["triage"]
            assert set(summary) == {
                "backend", "num_flagged", "threshold",
                "triage_digest", "top",
            }
            assert summary["backend"] == "ours"
            assert summary["triage_digest"].startswith("triage:")
            assert summary["top"]
        # identical bytes → identical rankings
        fig1, dup = report.rows[1], report.rows[2]
        assert (
            fig1["triage"]["triage_digest"]
            == dup["triage"]["triage_digest"]
        )

    def test_plain_rows_carry_none_and_stay_cache_compatible(
        self, corpus, tmp_path
    ):
        store = str(tmp_path / "store")
        analyze_corpus(corpus, store=store, triage=True)
        plain = analyze_corpus(corpus, store=store)
        assert all(row["triage"] is None for row in plain.rows)
        # the triage run warmed the ordinary result cache
        assert plain.aggregate["hit_rate"] == 1.0

    def test_resume_refuses_rows_journaled_without_triage(
        self, corpus, tmp_path
    ):
        journal = str(tmp_path / "batch.jsonl")
        analyze_corpus(corpus, journal=journal)
        resumed = analyze_corpus(
            corpus, journal=journal, resume=True, triage=True
        )
        assert all(row["cache"] != "journal" for row in resumed.rows)
        assert all(row["triage"] is not None for row in resumed.rows)
        # and once triaged rows are journaled, resume restores them
        again = analyze_corpus(
            corpus, journal=journal, resume=True, triage=True
        )
        assert all(row["cache"] == "journal" for row in again.rows)
        assert [row["triage"] for row in again.rows] == [
            row["triage"] for row in resumed.rows
        ]


class TestCli:
    def test_empty_corpus_exits_2(self, capsys):
        assert main([]) == 2
        assert "empty corpus" in capsys.readouterr().err

    def test_missing_file_exits_2(self, capsys):
        assert main(["/nonexistent/x.v"]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_bad_jobs_exits_2(self, corpus, capsys):
        assert main([corpus[0], "--jobs", "0"]) == 2

    def test_end_to_end_with_report(self, corpus, tmp_path, capsys):
        store = str(tmp_path / "store")
        report_path = str(tmp_path / "report.json")
        assert main(corpus + ["--store", store]) == 0
        first = capsys.readouterr().out
        assert "corpus digest" in first
        assert main(corpus + ["--store", store, "--report", report_path]) == 0
        second = capsys.readouterr().out
        assert f"{len(corpus)} hits" in second
        with open(report_path, encoding="utf-8") as handle:
            payload = json.load(handle)
        assert payload["schema_version"] == SCHEMA_VERSION
        assert payload["aggregate"]["hit_rate"] == 1.0

    def test_metrics_json_dump(self, corpus, tmp_path, capsys):
        """--metrics-json writes a stamped registry snapshot counting
        exactly the corpus rows that ran."""
        from repro import metrics

        metrics.uninstall()  # the flag must install its own registry
        metrics_path = str(tmp_path / "metrics.json")
        try:
            assert main(
                corpus + ["--quiet", "--metrics-json", metrics_path]
            ) == 0
        finally:
            metrics.uninstall()
        with open(metrics_path, encoding="utf-8") as handle:
            payload = json.load(handle)
        assert payload["schema_version"] == SCHEMA_VERSION
        by_name = {m["name"]: m for m in payload["metrics"]}
        rows = by_name["repro_batch_rows_total"]["samples"]
        assert sum(s["value"] for s in rows) == len(corpus)
        assert "repro_batch_row_seconds" in by_name

    def test_corpus_dir_globs_designs(self, corpus, tmp_path, capsys):
        directory = os.path.dirname(corpus[0])
        assert main(["--corpus-dir", directory, "--quiet"]) == 0
        out = capsys.readouterr().out
        assert f"{len(corpus)} designs" in out


class TestItc99:
    def test_roster_is_the_table1_dozen(self):
        names = _itc99_names()
        assert len(names) == 12
        assert names == sorted(names)
        assert set(names) == set(BENCHMARKS)

    def test_materializes_small_subset(self, tmp_path, monkeypatch):
        # Restrict the roster so the test does not synthesize b17/b18.
        import repro.batch as batch

        monkeypatch.setattr(batch, "_itc99_names", lambda: ["b03"])
        paths = batch.itc99_corpus(str(tmp_path))
        assert [os.path.basename(p) for p in paths] == ["b03.v"]
        assert os.path.exists(paths[0])
        before = os.path.getmtime(paths[0])
        assert batch.itc99_corpus(str(tmp_path)) == paths  # reuses the file
        assert os.path.getmtime(paths[0]) == before
