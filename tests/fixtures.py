"""Shared netlist fixtures for the test-suite.

`figure1_netlist` reconstructs the structure of the paper's Figure 1: a
3-bit word whose bits each have two structurally similar second-level
subtrees (selecting CODA0/CODA1 register bits via shared control U202/U255)
and one dissimilar subtree fed by shared control signals U201 and U221.
Assigning U201 its controlling value 0 removes every dissimilar subtree and
makes the three fanin cones fully similar.
"""

from __future__ import annotations

from repro.netlist import NetlistBuilder


def figure1_netlist():
    """Build the Figure-1-like circuit; returns (netlist, word_bits).

    ``word_bits`` are the three D-input nets (the paper's U215, U216, U217)
    in file order.
    """
    b = NetlistBuilder("fig1")
    mode, busy, enable, sel = b.inputs("mode", "busy", "enable", "sel")
    # Source registers (their outputs are fanin-cone leaves).
    coda0 = [b.dff(b.input(f"d0_{i}"), output=f"CODA0_REG_{i}") for i in range(3)]
    coda1 = [b.dff(b.input(f"d1_{i}"), output=f"CODA1_REG_{i}") for i in range(3)]
    ru2 = [b.dff(b.input(f"d2_{i}"), output=f"RU2_REG_{i}") for i in range(3)]
    ru3 = [b.dff(b.input(f"d3_{i}"), output=f"RU3_REG_{i}") for i in range(3)]

    # Shared control cone (the red circle of Figure 1).
    u223 = b.nor(mode, busy, output="U223")
    u201 = b.inv(u223, output="U201")
    u221 = b.nand(u223, enable, output="U221")
    # Controls of the similar subtrees (U202 / U255 in the paper).
    u202 = b.inv(sel, output="U202")
    u255 = b.buf(sel, output="U255")

    # Similar subtrees for each bit.
    sim_a = [b.nand(u202, coda0[i]) for i in range(3)]
    sim_b = [b.nand(u255, coda1[i]) for i in range(3)]
    # Dissimilar subtrees: bits 0 and 1 share one shape, bit 2 another;
    # all three contain both U201 and U221.
    diss = []
    for i in range(2):
        w = b.nand(u221, ru2[i])
        diss.append(b.nand(u201, w))
    x2 = b.nor(u221, ru3[2])
    diss.append(b.nand(u201, x2))

    # Word roots on adjacent lines (the paper's U215, U216, U217).
    bits = [
        b.nand(sim_a[i], sim_b[i], diss[i], output=f"U21{5 + i}")
        for i in range(3)
    ]
    b.register_word(bits, "result")
    for i in range(3):
        b.output(f"result_reg_{i}")
    return b.build(), bits
