"""Serve-path chaos: torn responses, stalls, and the client retry policy.

Two layers under test.  The :class:`ServeClient` retry contract is
pinned against a scripted in-process HTTP server (exact attempt counts,
no real sleeps to speak of): bounded attempts, jittered exponential
backoff, retry *only* on transport errors and 429/503 — never on other
4xx.  Then the ``serve.response.reset`` / ``serve.response.delay``
fault sites are exercised against a real ``repro serve`` subprocess,
showing the retrying client rides through both.
"""

import http.server
import json
import os
import re
import signal
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro.faults import FaultPlan
from repro.serve.client import ReadyStatus, ServeClient, ServeError

REPO = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
)
BANNER = re.compile(r"listening on http://([\d.]+):(\d+)")


# ----------------------------------------------------------------------
# a scripted origin: answers each request with the next status in line
# ----------------------------------------------------------------------

class _ScriptedHandler(http.server.BaseHTTPRequestHandler):
    def _answer(self):
        server = self.server
        with server.lock:
            server.hits += 1
            index = min(server.hits - 1, len(server.script) - 1)
        status = server.script[index]
        body = json.dumps({"status": status}).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    do_GET = _answer
    do_POST = _answer

    def log_message(self, *args):
        pass


@pytest.fixture
def scripted():
    """A live HTTP server answering a scripted status sequence.

    Yields ``(client_factory, server)``; set ``server.script`` before
    calling, read ``server.hits`` after.
    """
    server = http.server.ThreadingHTTPServer(
        ("127.0.0.1", 0), _ScriptedHandler
    )
    server.script = [200]
    server.hits = 0
    server.lock = threading.Lock()
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()

    def client(**kwargs):
        kwargs.setdefault("backoff_base", 0.001)
        kwargs.setdefault("backoff_cap", 0.01)
        return ServeClient(
            "127.0.0.1", server.server_address[1], timeout=5, **kwargs
        )

    yield client, server
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


def _free_port_with_nothing_listening():
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


class TestRetryPolicy:
    def test_connection_errors_retry_bounded_then_raise(self):
        client = ServeClient(
            "127.0.0.1", _free_port_with_nothing_listening(),
            max_retries=2, backoff_base=0.001, backoff_cap=0.01,
        )
        with pytest.raises(ServeError, match="after 3 attempts"):
            client.request("GET", "/healthz")
        assert client.last_attempts == 3  # 1 try + 2 retries, no more
        assert client.last_retries == 2

    def test_429_is_retried_then_surfaced(self, scripted):
        make, server = scripted
        server.script = [429]
        client = make(max_retries=2)
        status, body = client.request("GET", "/v1/identify")
        assert status == 429  # the last answer, not an exception
        assert client.last_attempts == 3
        assert server.hits == 3

    def test_503_then_success_recovers(self, scripted):
        make, server = scripted
        server.script = [503, 503, 200]
        client = make(max_retries=3)
        status, body = client.request("GET", "/readyz")
        assert status == 200
        assert client.last_attempts == 3
        assert server.hits == 3

    @pytest.mark.parametrize("status", [400, 404, 422])
    def test_other_4xx_never_retried(self, scripted, status):
        make, server = scripted
        server.script = [status]
        client = make(max_retries=5)
        answered, _ = client.request("POST", "/v1/identify", {"bad": 1})
        assert answered == status
        assert client.last_attempts == 1  # the request is wrong; once
        assert server.hits == 1

    def test_max_retries_zero_disables_retries(self, scripted):
        make, server = scripted
        server.script = [503]
        client = make(max_retries=0)
        status, _ = client.request("GET", "/readyz")
        assert status == 503
        assert server.hits == 1

    def test_backoff_is_exponential_capped_and_seeded(self):
        client = ServeClient(
            port=1, backoff_base=0.05, backoff_cap=2.0, retry_seed=7
        )
        twin = ServeClient(
            port=1, backoff_base=0.05, backoff_cap=2.0, retry_seed=7
        )
        sleeps = [client.backoff_s(i) for i in range(8)]
        # Jitter is deterministic per seed…
        assert sleeps == [twin.backoff_s(i) for i in range(8)]
        # …and every draw stays inside the jitter window of the
        # exponential ceiling, which never exceeds the cap.
        for index, value in enumerate(sleeps):
            ceiling = min(2.0, 0.05 * (2 ** index))
            assert 0.5 * ceiling <= value < ceiling
        other = ServeClient(
            port=1, backoff_base=0.05, backoff_cap=2.0, retry_seed=8
        )
        assert sleeps != [other.backoff_s(i) for i in range(8)]

    def test_negative_max_retries_rejected(self):
        with pytest.raises(ValueError):
            ServeClient(max_retries=-1)


class TestWaitReadyReasons:
    def test_nothing_listening_reports_connection_refused(self):
        client = ServeClient(
            "127.0.0.1", _free_port_with_nothing_listening(),
            backoff_base=0.001,
        )
        status = client.wait_ready(timeout=0.3, interval=0.05)
        assert not status
        assert isinstance(status, ReadyStatus)
        assert status.reason == "connection_refused"
        assert status.detail

    def test_answering_but_unready_reports_not_ready(self, scripted):
        make, server = scripted
        server.script = [503]
        client = make()
        status = client.wait_ready(timeout=0.3, interval=0.05)
        assert not status
        assert status.reason == "not_ready"
        assert "503" in status.detail

    def test_ready_is_truthy_with_reason(self, scripted):
        make, server = scripted
        server.script = [200]
        status = make().wait_ready(timeout=2)
        assert status
        assert status.reason == "ready"


# ----------------------------------------------------------------------
# the real socket layer under injected response faults
# ----------------------------------------------------------------------

def _spawn_server(plan=None, *extra_args):
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        os.path.join(REPO, "src") + os.pathsep + env.get("PYTHONPATH", "")
    )
    if plan is not None:
        env.update(plan.to_env())
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.serve", "--port", "0", *extra_args],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=env,
    )
    banner = process.stdout.readline()
    match = BANNER.search(banner)
    if match is None:
        process.kill()
        raise RuntimeError(f"no banner from repro serve: {banner!r}")
    return process, match.group(1), int(match.group(2))


def _terminate(process):
    if process.poll() is None:
        process.send_signal(signal.SIGTERM)
    return process.wait(timeout=30)


class TestInjectedResponseFaults:
    def test_connection_reset_mid_response_is_retried_through(self):
        plan = FaultPlan.from_spec(
            "serve.response.reset:nth=1,match=/healthz"
        )
        process, host, port = _spawn_server(plan)
        try:
            client = ServeClient(
                host, port, timeout=10,
                max_retries=3, backoff_base=0.01, backoff_cap=0.1,
            )
            assert client.wait_ready(timeout=15)
            status, body = client.healthz()
            assert status == 200 and body["status"] == "ok"
            assert client.last_attempts >= 2  # the first answer was torn
        finally:
            assert _terminate(process) == 0

    def test_delay_past_client_timeout_is_retried_through(self):
        plan = FaultPlan.from_spec(
            "serve.response.delay:nth=1,match=/healthz,delay=5"
        )
        process, host, port = _spawn_server(plan)
        try:
            client = ServeClient(
                host, port, timeout=1.0,
                max_retries=3, backoff_base=0.01, backoff_cap=0.1,
            )
            assert client.wait_ready(timeout=15)
            started = time.monotonic()
            status, body = client.healthz()
            assert status == 200 and body["status"] == "ok"
            assert client.last_attempts >= 2  # attempt 1 timed out
            # Bounded: we never sat out the full injected 5s stall.
            assert time.monotonic() - started < 5
        finally:
            assert _terminate(process) == 0

    def test_read_timeout_is_configurable_and_reported(self):
        process, host, port = _spawn_server(None, "--read-timeout", "7.5")
        try:
            client = ServeClient(host, port, timeout=10)
            assert client.wait_ready(timeout=15)
            status, health = client.healthz()
            assert status == 200
            assert health["read_timeout_seconds"] == 7.5
        finally:
            assert _terminate(process) == 0

    def test_readyz_reports_store_mode(self, tmp_path):
        process, host, port = _spawn_server(
            None, "--store", str(tmp_path / "store")
        )
        try:
            client = ServeClient(host, port, timeout=10)
            assert client.wait_ready(timeout=15)
            status, ready = client.readyz()
            assert status == 200
            assert ready["store_mode"] == "ok"
        finally:
            assert _terminate(process) == 0

    def test_readyz_store_mode_off_without_store(self):
        process, host, port = _spawn_server(None)
        try:
            client = ServeClient(host, port, timeout=10)
            assert client.wait_ready(timeout=15)
            assert client.readyz()[1]["store_mode"] == "off"
        finally:
            assert _terminate(process) == 0
