"""Disk-store chaos: injected EIO/ENOSPC/torn writes (DESIGN.md §13).

The invariant under every storage fault is the same: the *analysis* is
never wrong and never dies — a failing cache degrades to a slower cache
(or no cache), every swallowed error is counted by operation, and a
burst of real errors flips the store into an explicit, reported
write-bypass mode instead of hammering a failing disk.
"""

import pytest

from repro import faults
from repro.api import Session
from repro.faults import FaultPlan
from repro.store import ArtifactStore


@pytest.fixture
def fig1(corpus):
    return corpus[1]


def _clean_digest(path, tmp_path):
    """The fault-free answer for ``path`` (its own throwaway store)."""
    session = Session(store=str(tmp_path / "clean-store"))
    return session.analyze(path).result_digest


class TestReadFaults:
    def test_eio_on_read_degrades_to_miss_not_wrong_answer(
        self, fig1, tmp_path
    ):
        expected = _clean_digest(fig1, tmp_path)
        store = ArtifactStore(str(tmp_path / "store"))
        Session(store=store).analyze(fig1)  # warm the cache

        faults.install(FaultPlan.from_spec("store.read:always"))
        report = Session(store=store).analyze(fig1)
        assert report.result_digest == expected  # byte-identical
        assert report.cache == "miss"  # recomputed, not served corrupt
        assert store.stats.read_errors > 0  # and the errors were counted

    def test_torn_write_is_healed_by_the_next_reader(self, fig1, tmp_path):
        expected = _clean_digest(fig1, tmp_path)
        store = ArtifactStore(str(tmp_path / "store"))
        faults.install(FaultPlan.from_spec("store.truncate:always"))
        Session(store=store).analyze(fig1)  # every entry published torn
        faults.uninstall()

        reader = ArtifactStore(str(tmp_path / "store"))
        report = Session(store=reader).analyze(fig1)
        assert report.result_digest == expected
        assert report.cache == "miss"  # torn entries are misses…
        assert reader.stats.healed > 0  # …and are unlinked on sight


class TestWriteFaults:
    def test_enospc_never_fails_the_analysis(self, fig1, tmp_path):
        expected = _clean_digest(fig1, tmp_path)
        store = ArtifactStore(str(tmp_path / "store"))
        faults.install(FaultPlan.from_spec("store.write:always"))
        report = Session(store=store).analyze(fig1)
        assert report.result_digest == expected
        assert store.stats.write_errors > 0
        assert len(store) == 0  # nothing landed, nothing torn


class TestDegradedMode:
    def test_error_burst_flips_to_write_bypass(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "store"), degraded_after=3)
        faults.install(FaultPlan.from_spec("store.write:always"))
        for n in range(3):
            assert store.mode == "ok"
            store.put(f"{n:064x}", "result", {"n": n})
        assert store.degraded
        assert store.mode == "degraded"
        assert store.degraded_reason.startswith("io_error_burst:")
        assert "threshold 3" in store.degraded_reason

        # Past the flip: writes are bypassed (counted, not attempted),
        # so the error count stops growing.
        faults.uninstall()
        errors_at_flip = store.stats.io_errors
        store.put("f" * 64, "result", {"n": 99})
        assert store.stats.bypassed_puts == 1
        assert store.stats.io_errors == errors_at_flip
        assert len(store) == 0

    def test_degraded_store_still_answers_reads(self, fig1, tmp_path):
        """Write-bypass is not read-off: entries that made it to disk
        before the flip keep serving hits."""
        root = str(tmp_path / "store")
        store = ArtifactStore(root, degraded_after=1)
        Session(store=store).analyze(fig1)  # committed while healthy
        faults.install(FaultPlan.from_spec("store.write:always"))
        store.put("a" * 64, "result", {})  # trips the breaker
        faults.uninstall()
        assert store.degraded
        report = Session(store=store).analyze(fig1)
        assert report.cache == "hit"

    def test_not_found_races_never_trip_the_breaker(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "store"), degraded_after=1)
        store._touch("0" * 64)  # utime on a key that was never written
        assert store.stats.touch_errors == 1  # suppressed and counted…
        assert not store.degraded  # …but lockless races are not disk rot

    def test_zero_disables_the_breaker(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "store"), degraded_after=0)
        faults.install(FaultPlan.from_spec("store.write:always"))
        for n in range(50):
            store.put(f"{n:064x}", "result", {})
        assert not store.degraded
        assert store.stats.write_errors == 50

    def test_stats_expose_every_error_counter(self, tmp_path):
        stats = ArtifactStore(str(tmp_path / "store")).stats.as_dict()
        for name in (
            "read_errors", "write_errors", "touch_errors", "heal_errors",
            "evict_errors", "scan_errors", "io_errors", "bypassed_puts",
        ):
            assert name in stats
