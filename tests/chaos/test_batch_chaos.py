"""Batch-orchestrator chaos: crashed/hung workers, killed runs.

Pins the acceptance contract of DESIGN.md §13: a corpus run survives
worker-process deaths by rebuilding the pool and retrying the rows that
were in flight; a row failing twice is quarantined with a structured
reason; the aggregate reports ``degraded``; the CLI exits
:data:`repro.batch.EXIT_DEGRADED`; and a run killed outright resumes
from its journal without recomputing or duplicating completed rows.

A note on determinism: a worker crash breaks the *pool*, so rows that
were merely in flight alongside the crashing row also burn an attempt.
The tests therefore pin exactly what the contract guarantees — at least
``N - 2`` rows after two crashes, byte-identity of every surviving row,
structured reasons on every quarantined one — rather than racy claims
about which collateral rows finished first.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro import faults
from repro.batch import EXIT_DEGRADED, analyze_corpus, main
from repro.eval.runner import load_journal_entries
from repro.faults import FaultPlan

REPO = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
)


def _fault_env(plan):
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        os.path.join(REPO, "src") + os.pathsep + env.get("PYTHONPATH", "")
    )
    env.update(plan.to_env())
    return env


class TestWorkerCrashRecovery:
    def test_two_worker_crashes_still_complete_enough_rows(
        self, corpus, tmp_path
    ):
        """The headline acceptance: two injected worker crashes, and the
        run still completes with >= N-2 rows, every surviving row
        byte-identical to a fault-free run and every lost row carrying
        a structured quarantine reason."""
        clean = analyze_corpus(corpus, store=str(tmp_path / "clean"))
        expected = {row["path"]: row["result_digest"] for row in clean.rows}

        state = str(tmp_path / "fault-state")
        # fig1_copy is last in the corpus, so with jobs=2 it only starts
        # once a worker has finished (and recorded) an earlier row —
        # the crash can never wipe out the whole round.
        faults.install(FaultPlan.from_spec(
            "batch.worker.crash:first=2,match=fig1_copy", state_dir=state
        ))
        report = analyze_corpus(
            corpus, store=str(tmp_path / "store"), jobs=2
        )
        agg = report.aggregate
        assert agg["designs"] >= len(corpus) - 2
        assert agg["degraded"] is True  # fig1_copy crashed both attempts
        assert "worker_crash" in agg["quarantine_reasons"]
        for row in report.rows:
            if row.get("quarantined"):
                assert row["reason"]["type"] == "worker_crash"
                assert row["reason"]["attempts"] == 2
            else:
                assert row["result_digest"] == expected[row["path"]]
        # The schedule was exactly consumed: fig1_copy was called twice
        # globally across the pool and its rebuild (one byte per call
        # in the cross-process counter file), not twice per worker.
        counter = os.path.join(state, "batch_worker_crash.calls")
        assert os.path.getsize(counter) == 2

        # The schedule is finite: a rerun over the same store recovers
        # every row and matches the fault-free digest exactly.
        recovered = analyze_corpus(
            corpus, store=str(tmp_path / "store"), jobs=2
        )
        assert recovered.aggregate["designs"] == len(corpus)
        assert not recovered.aggregate["degraded"]
        assert (
            recovered.aggregate["corpus_digest"]
            == clean.aggregate["corpus_digest"]
        )

    def test_row_crashing_twice_is_quarantined_with_reason(self, corpus):
        faults.install(FaultPlan.from_spec("batch.worker.crash:always"))
        report = analyze_corpus(corpus, jobs=2)
        agg = report.aggregate
        assert agg["degraded"] is True
        assert agg["designs"] == 0
        assert agg["quarantined"] == len(corpus)
        assert agg["quarantine_reasons"] == ["worker_crash"]
        for row in report.rows:
            assert row["quarantined"] is True
            assert row["reason"]["type"] == "worker_crash"
            assert row["reason"]["attempts"] == 2
            assert row["digest"]  # still identifies the input file

    def test_degraded_run_exits_with_the_documented_code(
        self, corpus, tmp_path, capsys
    ):
        faults.install(FaultPlan.from_spec("batch.worker.crash:always"))
        report_path = str(tmp_path / "report.json")
        code = main([
            *corpus, "--jobs", "2", "--quiet", "--report", report_path,
        ])
        assert code == EXIT_DEGRADED
        assert "DEGRADED" in capsys.readouterr().err
        with open(report_path, encoding="utf-8") as handle:
            payload = json.load(handle)
        assert payload["aggregate"]["degraded"] is True

    def test_quarantine_does_not_leak_into_the_corpus_digest(
        self, corpus, tmp_path
    ):
        """A degraded run's digest covers its *successful* rows, so runs
        that succeeded on the same subset remain comparable.  (Inline
        path: an unparseable file burns its retry and is quarantined as
        a row_error — no pool, fully deterministic.)"""
        broken = tmp_path / "broken.v"
        broken.write_text("this is not ((verilog")
        degraded = analyze_corpus(corpus + [str(broken)])
        agg = degraded.aggregate
        assert agg["degraded"] is True
        assert agg["quarantined"] == 1
        assert agg["quarantine_reasons"] == ["row_error"]
        assert agg["designs"] == len(corpus)

        clean = analyze_corpus(corpus)
        assert agg["corpus_digest"] == clean.aggregate["corpus_digest"]


class TestHungWorkerWatchdog:
    def test_hang_is_killed_and_retried_within_the_deadline(
        self, corpus, tmp_path
    ):
        faults.install(FaultPlan.from_spec(
            "batch.worker.hang:nth=1,delay=300",
            state_dir=str(tmp_path / "fault-state"),
        ))
        started = time.monotonic()
        report = analyze_corpus(corpus, jobs=2, row_timeout=2.0)
        elapsed = time.monotonic() - started
        # No hang past the deadline: the watchdog killed the wedged
        # worker long before the injected 300s sleep finished.
        assert elapsed < 120
        assert report.aggregate["designs"] == len(corpus)
        assert not report.aggregate["degraded"]


class TestJournalResumeAfterKill:
    def test_sigkill_mid_run_resumes_without_recompute_or_duplicates(
        self, corpus, tmp_path
    ):
        """Kill -9 a batch after its fast rows land in the journal, tear
        the final line, then resume: completed rows are restored (not
        recomputed), the torn line is ignored, and no path is journaled
        twice."""
        journal = str(tmp_path / "batch.journal.jsonl")
        store = str(tmp_path / "store")
        # b03 (the slow row) hangs, so the journal deterministically
        # holds exactly the two fast rows when we kill the process.
        plan = FaultPlan.from_spec(
            "batch.worker.hang:always,match=b03,delay=60",
            state_dir=str(tmp_path / "fault-state"),
        )
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.batch", *corpus, "--jobs", "2",
             "--store", store, "--journal", journal, "--quiet"],
            env=_fault_env(plan),
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                if os.path.exists(journal):
                    with open(journal, encoding="utf-8") as handle:
                        if len(handle.read().splitlines()) >= 2:
                            break
                time.sleep(0.05)
            else:
                pytest.fail("journal never saw the fast rows")
        finally:
            process.send_signal(signal.SIGKILL)
            process.wait(timeout=30)

        completed_before = load_journal_entries(journal, key="path")
        assert len(completed_before) >= 2
        # A crash can also tear the last line mid-write; simulate the
        # worst case explicitly.
        with open(journal, "a", encoding="utf-8") as handle:
            handle.write('{"path": "torn-en')

        report = analyze_corpus(
            corpus, store=store, journal=journal, resume=True
        )
        assert report.aggregate["designs"] == len(corpus)
        assert not report.aggregate["degraded"]
        by_path = {row["path"]: row for row in report.rows}
        for path in completed_before:
            assert by_path[path]["cache"] == "journal"  # not recomputed

        # Resume appended only the missing rows: every path appears
        # exactly once among the valid journal lines.
        paths = []
        with open(journal, encoding="utf-8") as handle:
            for line in handle:
                try:
                    paths.append(json.loads(line)["path"])
                except ValueError:
                    continue  # the torn line
        assert sorted(paths) == sorted(corpus)
