"""Shared fixtures for the chaos suite (DESIGN.md §13).

Every test here installs a :class:`repro.faults.FaultPlan` and asserts
the stack either recovers byte-identically or degrades with a
machine-readable reason.  The autouse fixture guarantees no plan (or
metrics registry) leaks between tests — a leaked ``always`` rule would
poison every later store/batch test in the run.
"""

import os
import sys

import pytest

from repro import faults
from repro import metrics
from repro.netlist import write_verilog
from repro.synth.designs import BENCHMARKS

sys.path.insert(0, os.path.dirname(os.path.dirname(__file__)))
from fixtures import figure1_netlist  # noqa: E402


@pytest.fixture(autouse=True)
def clean_globals():
    faults.uninstall()
    metrics.uninstall()
    yield
    faults.uninstall()
    metrics.uninstall()


@pytest.fixture(scope="module")
def corpus(tmp_path_factory):
    """Three small designs (one duplicated), same shape as test_batch."""
    root = tmp_path_factory.mktemp("chaos-corpus")
    b03 = root / "b03.v"
    b03.write_text(write_verilog(BENCHMARKS["b03"]()))
    fig1 = root / "fig1.v"
    fig1.write_text(write_verilog(figure1_netlist()[0]))
    dup = root / "fig1_copy.v"
    dup.write_text(fig1.read_text())
    return [str(b03), str(fig1), str(dup)]
