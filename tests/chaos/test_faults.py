"""The fault-injection registry itself (repro.faults).

Determinism is the whole point: a chaos run must be replayable, so
every schedule is pinned as a pure function of (plan, call index, seed)
and counters are shown to be global across plan instances that share a
``state_dir`` — the property that makes "crash the first two worker
calls" mean two crashes *total* across a process pool.
"""

import pytest

from repro import faults, metrics
from repro.faults import (
    ENV_SEED,
    ENV_SPEC,
    ENV_STATE,
    FaultError,
    FaultPlan,
    FaultRule,
)


class TestSpecParsing:
    def test_round_trip(self):
        spec = (
            "store.write:nth=3;"
            "batch.worker.hang:always,match=b13,delay=2.5"
        )
        plan = FaultPlan.from_spec(spec, seed=7)
        assert plan.to_spec() == spec
        assert plan.seed == 7
        again = FaultPlan.from_spec(plan.to_spec(), seed=7)
        assert again.to_spec() == spec

    def test_unknown_site_fails_loudly(self):
        with pytest.raises(FaultError, match="unknown fault site"):
            FaultPlan.from_spec("store.wrtie:always")

    def test_unknown_trigger_fails_loudly(self):
        with pytest.raises(FaultError, match="unknown trigger"):
            FaultPlan.from_spec("store.read:sometimes")

    def test_unknown_option_fails_loudly(self):
        with pytest.raises(FaultError, match="unknown option"):
            FaultPlan.from_spec("store.read:always,jitter=3")

    def test_nth_needs_positive_integer(self):
        with pytest.raises(FaultError):
            FaultRule("store.read", "nth", 0)

    def test_prob_needs_probability(self):
        with pytest.raises(FaultError):
            FaultRule("store.read", "prob", 1.5)

    def test_empty_spec_rejected(self):
        with pytest.raises(FaultError, match="empty"):
            FaultPlan.from_spec("  ;  ")


class TestSchedules:
    def test_nth_fires_exactly_once(self):
        plan = FaultPlan.from_spec("store.read:nth=3")
        decisions = [plan.fire("store.read") for _ in range(6)]
        assert decisions == [False, False, True, False, False, False]
        assert plan.fired == {"store.read": 1}

    def test_first_fires_then_goes_quiet(self):
        plan = FaultPlan.from_spec("batch.worker.crash:first=2")
        decisions = [plan.fire("batch.worker.crash") for _ in range(5)]
        assert decisions == [True, True, False, False, False]

    def test_every_fires_periodically(self):
        plan = FaultPlan.from_spec("store.write:every=3")
        decisions = [plan.fire("store.write") for _ in range(7)]
        assert decisions == [False, False, True, False, False, True, False]

    def test_match_restricts_and_does_not_advance_counters(self):
        plan = FaultPlan.from_spec("store.read:nth=2,match=abc")
        assert plan.fire("store.read", "zzz") is False  # no count
        assert plan.fire("store.read", "abc-1") is False  # index 1
        assert plan.fire("store.read", "x-abc") is True  # index 2
        assert plan.fired == {"store.read": 1}

    def test_unlisted_site_never_fires(self):
        plan = FaultPlan.from_spec("store.read:always")
        assert plan.fire("store.write", "anything") is False
        assert plan.fired == {}

    def test_prob_is_a_pure_function_of_seed_and_index(self):
        first = FaultPlan.from_spec("serve.response.reset:prob=0.5", seed=42)
        second = FaultPlan.from_spec("serve.response.reset:prob=0.5", seed=42)
        a = [first.fire("serve.response.reset") for _ in range(200)]
        b = [second.fire("serve.response.reset") for _ in range(200)]
        assert a == b  # replayable
        assert 0.3 < sum(a) / len(a) < 0.7  # actually probabilistic
        other = FaultPlan.from_spec("serve.response.reset:prob=0.5", seed=43)
        c = [other.fire("serve.response.reset") for _ in range(200)]
        assert a != c  # the seed matters


class TestCrossProcessState:
    def test_state_dir_makes_counting_global(self, tmp_path):
        """Two plan instances sharing a state_dir share one schedule —
        the single-process analogue of a worker pool."""
        state = str(tmp_path / "state")
        spec = "batch.worker.crash:first=2"
        worker_a = FaultPlan.from_spec(spec, state_dir=state)
        worker_b = FaultPlan.from_spec(spec, state_dir=state)
        assert worker_a.fire("batch.worker.crash") is True  # global #1
        assert worker_b.fire("batch.worker.crash") is True  # global #2
        assert worker_a.fire("batch.worker.crash") is False  # global #3
        assert worker_b.fire("batch.worker.crash") is False  # global #4

    def test_without_state_dir_counting_is_per_instance(self):
        spec = "batch.worker.crash:first=1"
        worker_a = FaultPlan.from_spec(spec)
        worker_b = FaultPlan.from_spec(spec)
        assert worker_a.fire("batch.worker.crash") is True
        assert worker_b.fire("batch.worker.crash") is True  # restarts


class TestInstallation:
    def test_install_current_uninstall(self):
        plan = FaultPlan.from_spec("store.read:always")
        assert faults.current() is None
        faults.install(plan)
        assert faults.current() is plan
        assert faults.fire("store.read", "k") is True
        faults.uninstall()
        assert faults.current() is None
        assert faults.fire("store.read", "k") is False

    def test_env_round_trip(self, monkeypatch, tmp_path):
        """to_env() in the parent reinstalls the same plan in a child
        (here: the same process after an uninstall)."""
        state = str(tmp_path / "state")
        plan = FaultPlan.from_spec(
            "store.write:nth=2", seed=9, state_dir=state
        )
        for name, value in plan.to_env().items():
            monkeypatch.setenv(name, value)
        faults.uninstall()  # forget, then rediscover from the env
        rediscovered = faults.current()
        assert rediscovered is not None
        assert rediscovered.to_spec() == plan.to_spec()
        assert rediscovered.seed == 9
        assert rediscovered.state_dir == state
        # Both instances count against the same files.
        assert plan.fire("store.write") is False  # global index 1
        assert faults.fire("store.write") is True  # global index 2

    def test_env_names_are_stable(self):
        # Pinned: these are an external interface (CI, drills, operators).
        assert (ENV_SPEC, ENV_SEED, ENV_STATE) == (
            "REPRO_FAULTS", "REPRO_FAULTS_SEED", "REPRO_FAULTS_STATE"
        )

    def test_injections_are_counted_in_metrics(self):
        registry = metrics.install()
        plan = faults.install(FaultPlan.from_spec("store.read:always"))
        plan.fire("store.read")
        plan.fire("store.read")
        counter = registry.counter(
            "repro_fault_injected_total",
            "Faults injected by the installed FaultPlan, by site",
            labelnames=("site",),
        )
        assert counter.value(site="store.read") == 2.0

    def test_as_dict_reports_what_fired(self):
        plan = FaultPlan.from_spec("store.read:nth=1", seed=3)
        plan.fire("store.read")
        summary = plan.as_dict()
        assert summary["spec"] == "store.read:nth=1"
        assert summary["seed"] == 3
        assert summary["fired"] == {"store.read": 1}
