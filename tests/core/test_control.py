"""Tests for relevant control-signal identification (Section 2.4)."""

import sys

import pytest

sys.path.insert(0, "tests")

from fixtures import figure1_netlist

from repro.core import (
    find_control_signals,
    form_subgroups,
    signature_of,
)
from repro.netlist import NetlistBuilder


def figure1_subgroup():
    nl, bits = figure1_netlist()
    sigs = [signature_of(nl, b) for b in bits]
    groups = form_subgroups(sigs)
    assert len(groups) == 1
    return nl, groups[0]


class TestFigure1:
    def test_exactly_u201_and_u221_found(self):
        """The paper's walkthrough: common nets minus dominated ones."""
        _, subgroup = figure1_subgroup()
        candidates = find_control_signals(subgroup)
        assert [c.net for c in candidates] == ["U201", "U221"]

    def test_u223_dominated_by_u201(self):
        """U223 is common to all dissimilar subtrees but feeds U201."""
        _, subgroup = figure1_subgroup()
        nets = {c.net for c in find_control_signals(subgroup)}
        assert "U223" not in nets

    def test_values_are_controlling_values(self):
        _, subgroup = figure1_subgroup()
        by_net = {c.net: c.values for c in find_control_signals(subgroup)}
        assert by_net["U201"] == (0,)  # feeds NANDs only
        assert by_net["U221"] == (0, 1)  # feeds a NAND and a NOR

    def test_similar_subtree_controls_excluded(self):
        """U202/U255 select within *matching* subtrees: never candidates."""
        _, subgroup = figure1_subgroup()
        nets = {c.net for c in find_control_signals(subgroup)}
        assert "U202" not in nets and "U255" not in nets


class TestEdgeCases:
    def test_fully_matched_subgroup_has_no_candidates(self):
        b = NetlistBuilder("t")
        sel = b.input("sel")
        nsel = b.inv(sel)
        bits = []
        for i in range(3):
            r = b.input(f"r{i}")
            x = b.input(f"x{i}")
            bits.append(b.nand(b.nand(nsel, r), b.nand(sel, x)))
        nl = b.build()
        groups = form_subgroups([signature_of(nl, n) for n in bits])
        assert groups[0].fully_matched
        assert find_control_signals(groups[0]) == []

    def test_no_common_nets_yields_nothing(self):
        """Dissimilar subtrees with disjoint logic (adder-carry style)."""
        b = NetlistBuilder("t")
        shared_in = b.input("s")
        ns = b.inv(shared_in)
        bits = []
        for i in range(2):
            r = b.input(f"r{i}")
            common = b.nand(ns, r)
            if i == 0:
                diss = b.nand(b.input("a0"), b.input("a1"))
            else:
                diss = b.nand(b.input("a2"), b.nor(b.input("a3"), b.input("a4")))
            bits.append(b.nand(common, diss))
        nl = b.build()
        groups = form_subgroups([signature_of(nl, n) for n in bits])
        assert groups[0].partially_matched
        assert find_control_signals(groups[0]) == []

    def test_xor_only_feeds_are_dropped(self):
        """A common net feeding only parity gates has no controlling value."""
        b = NetlistBuilder("t")
        c = b.input("c")
        e = b.input("e")
        ns = b.inv(b.input("s"))
        bits = []
        for i in range(2):
            r = b.input(f"r{i}")
            common = b.nand(ns, r)
            if i == 0:
                diss = b.xor(e, b.input("d0"))
            else:
                diss = b.xor(e, b.xnor(c, b.input("d1")))
            bits.append(b.nand(common, diss))
        nl = b.build()
        groups = form_subgroups([signature_of(nl, n) for n in bits])
        candidates = find_control_signals(groups[0])
        assert all(cand.net != e for cand in candidates)

    def test_discovery_order_is_deterministic(self):
        _, subgroup = figure1_subgroup()
        first = [c.net for c in find_control_signals(subgroup)]
        second = [c.net for c in find_control_signals(subgroup)]
        assert first == second
