"""Tests of the pluggable identification-backend registry.

Pins the contracts DESIGN.md §15 promises:

- the registry's contents, resolution errors, and re-registration rules;
- ``PipelineConfig`` normalization — ``backend="base"`` and
  ``allow_partial=False`` are two spellings of one strategy and must
  produce identical configs *and* identical store fingerprints;
- dispatch purity — resolving ``"ours"`` through the registry is
  byte-identical to running the staged engine directly;
- fingerprint discipline — backend (name + version) is in the store
  fingerprint, kernel is not, so store keys are disjoint across
  backends and shared across kernels;
- the ``regfeat`` aggregator's output shape (valid partition over the
  candidate FF D nets, deterministic, provenance-stamped);
- backend × kernel matrix parity for ``ours`` on ITC99 designs.
"""

import json
import os

import pytest

from repro.core import backends
from repro.core.backends import (
    BackendSpec,
    UnknownBackendError,
    backend_names,
    register,
    resolve,
)
from repro.core.kernels import KERNEL_ENV, numpy_available, resolve_kernel
from repro.core.pipeline import PipelineConfig, identify_words
from repro.core.stages import AnalysisEngine
from repro.store import ArtifactStore, result_digest
from repro.store.keys import (
    FINGERPRINT_FIELDS,
    cache_key,
    config_fingerprint,
    netlist_digest,
)
from repro.store.serialize import result_from_dict, result_to_dict
from repro.synth.designs import BENCHMARKS

import os as _os
import sys as _sys

_sys.path.insert(0, _os.path.dirname(_os.path.dirname(__file__)))
from fixtures import figure1_netlist  # noqa: E402


@pytest.fixture(scope="module")
def netlist():
    return figure1_netlist()[0]


class TestRegistry:
    def test_builtins_are_registered(self):
        assert backend_names() == ("ours", "base", "regfeat")

    def test_specs_carry_version_and_capabilities(self):
        ours = resolve("ours")
        assert ours.version == "1.0.0"
        assert "control-signals" in ours.capabilities
        base = resolve("base")
        assert "full-matching" in base.capabilities
        regfeat = resolve("regfeat")
        assert "feature-aggregation" in regfeat.capabilities

    def test_unknown_backend_error_lists_registered_names(self):
        with pytest.raises(UnknownBackendError) as excinfo:
            resolve("nope")
        assert excinfo.value.name == "nope"
        assert excinfo.value.known == backend_names()
        message = str(excinfo.value)
        for name in backend_names():
            assert name in message

    def test_unknown_backend_error_is_a_value_error(self):
        with pytest.raises(ValueError):
            resolve("nope")

    def test_resolve_rejects_non_strings(self):
        with pytest.raises(UnknownBackendError):
            resolve(7)
        with pytest.raises(UnknownBackendError):
            resolve(None)

    def test_reregistering_identical_spec_is_idempotent(self):
        spec = resolve("ours")
        register(spec)  # no error
        assert resolve("ours") is spec

    def test_reregistering_different_spec_is_rejected(self):
        ours = resolve("ours")
        clash = BackendSpec(
            name="ours",
            version="9.9.9",
            description="impostor",
            capabilities=ours.capabilities,
            fingerprint_fields=ours.fingerprint_fields,
            runner=ours.runner,
        )
        with pytest.raises(ValueError, match="already registered"):
            register(clash)
        assert resolve("ours") is ours


class TestConfigNormalization:
    def test_base_and_allow_partial_false_are_one_config(self):
        by_backend = PipelineConfig(backend="base")
        by_flag = PipelineConfig(allow_partial=False)
        assert by_backend == by_flag
        assert by_backend.backend == "base"
        assert by_flag.backend == "base"
        assert not by_backend.allow_partial
        assert config_fingerprint(by_backend) == config_fingerprint(by_flag)

    def test_backend_base_forces_allow_partial_off(self):
        config = PipelineConfig(backend="base", allow_partial=True)
        assert not config.allow_partial

    def test_unknown_backend_raises_value_error(self):
        with pytest.raises(ValueError, match="registered backends"):
            PipelineConfig(backend="nope")

    def test_unknown_kernel_raises_value_error(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            PipelineConfig(kernel="cuda")

    def test_valid_kernels_accepted(self):
        for kernel in (None, "python", "auto"):
            assert PipelineConfig(kernel=kernel).kernel == kernel


class TestDispatchParity:
    def test_registry_ours_is_byte_identical_to_direct_engine(self, netlist):
        config = PipelineConfig()
        via_registry = identify_words(netlist, config)
        direct = AnalysisEngine(config).run(netlist)
        assert result_digest(via_registry) == result_digest(direct)
        assert (
            via_registry.trace.counter_dict() == direct.trace.counter_dict()
        )

    def test_trace_backend_stamped_per_backend(self, netlist):
        for name in backend_names():
            result = identify_words(netlist, PipelineConfig(backend=name))
            assert result.trace.backend == name

    def test_trace_backend_survives_serialization(self, netlist):
        result = identify_words(netlist, PipelineConfig(backend="regfeat"))
        restored = result_from_dict(result_to_dict(result))
        assert restored.trace.backend == "regfeat"

    def test_backend_outside_counter_dict(self, netlist):
        """Provenance must not leak into the digest-bearing counters."""
        result = identify_words(netlist, PipelineConfig())
        assert "backend" not in result.trace.counter_dict()


class TestRegfeat:
    def test_valid_partition_over_candidate_nets(self, netlist):
        result = identify_words(netlist, PipelineConfig(backend="regfeat"))
        candidates = {ff.inputs[0] for ff in netlist.flip_flops()}
        seen = set()
        for word in result.all_generated_words():
            for bit in word.bits:
                assert bit not in seen, f"{bit} emitted twice"
                seen.add(bit)
                assert netlist.has_net(bit)
        assert seen == candidates

    def test_deterministic(self, netlist):
        config = PipelineConfig(backend="regfeat")
        first = identify_words(netlist, config)
        second = identify_words(netlist, config)
        assert result_digest(first) == result_digest(second)

    def test_counters_populated(self, netlist):
        result = identify_words(netlist, PipelineConfig(backend="regfeat"))
        counters = result.trace.counter_dict()
        assert counters["num_candidate_nets"] > 0
        assert counters["num_groups"] > 0
        assert set(result.trace.stage_seconds) == {
            "features", "pairing", "emission",
        }


class TestFingerprintDiscipline:
    def test_backend_is_a_fingerprint_field(self):
        assert "backend" in FINGERPRINT_FIELDS
        assert "kernel" not in FINGERPRINT_FIELDS

    def test_fingerprints_differ_across_backends(self):
        prints = {
            name: config_fingerprint(PipelineConfig(backend=name))
            for name in backend_names()
        }
        assert len(set(prints.values())) == len(prints)

    def test_backend_version_joins_the_fingerprint(self):
        fields = json.loads(config_fingerprint(PipelineConfig()))
        assert fields["backend"] == "ours"
        assert fields["backend_version"] == resolve("ours").version

    def test_kernel_is_fingerprint_neutral(self):
        explicit = config_fingerprint(PipelineConfig(kernel="python"))
        default = config_fingerprint(PipelineConfig())
        assert explicit == default

    def test_store_keys_disjoint_across_backends(self, netlist, tmp_path):
        """One design, three backends, three distinct store entries."""
        store = ArtifactStore(str(tmp_path / "store"))
        digest = netlist_digest(netlist)
        keys = {}
        for name in backend_names():
            config = PipelineConfig(backend=name)
            identify_words(netlist, config, store=store)
            keys[name] = cache_key(digest, config)
        assert len(set(keys.values())) == len(keys)
        # and each backend's probe answers with its own words
        for name in backend_names():
            config = PipelineConfig(backend=name)
            cached = store.probe(netlist, config)
            assert cached is not None
            assert cached.trace.backend == name


#: Three small-but-real ITC99 designs for the matrix sweep.
_MATRIX_DESIGNS = ("b03", "b04", "b13")


class TestBackendKernelMatrix:
    """``ours`` must be byte-identical across every kernel spelling."""

    @pytest.mark.parametrize("design", _MATRIX_DESIGNS)
    def test_ours_parity_across_kernel_selection(self, design):
        if not numpy_available():
            pytest.skip("array kernel needs numpy")
        netlist = BENCHMARKS[design]()
        digests = {}
        previous = os.environ.get(KERNEL_ENV)
        try:
            # config-selected python / array (env cleared)
            os.environ.pop(KERNEL_ENV, None)
            for kernel in ("python", "array"):
                result = identify_words(
                    netlist, PipelineConfig(kernel=kernel)
                )
                assert result.trace.kernel == kernel
                digests[f"config:{kernel}"] = result_digest(result)
            # env-selected python / array (config silent)
            for kernel in ("python", "array"):
                os.environ[KERNEL_ENV] = kernel
                result = identify_words(netlist, PipelineConfig())
                assert result.trace.kernel == kernel
                digests[f"env:{kernel}"] = result_digest(result)
        finally:
            if previous is None:
                os.environ.pop(KERNEL_ENV, None)
            else:
                os.environ[KERNEL_ENV] = previous
        assert len(set(digests.values())) == 1, digests

    def test_config_kernel_beats_env(self):
        netlist = BENCHMARKS["b03"]()
        previous = os.environ.get(KERNEL_ENV)
        try:
            os.environ[KERNEL_ENV] = "array" if numpy_available() else "python"
            result = identify_words(netlist, PipelineConfig(kernel="python"))
            assert result.trace.kernel == "python"
        finally:
            if previous is None:
                os.environ.pop(KERNEL_ENV, None)
            else:
                os.environ[KERNEL_ENV] = previous

    def test_resolve_kernel_contract(self):
        assert resolve_kernel("python") == "python"
        assert resolve_kernel(None) in ("python", "array")
        auto = resolve_kernel("auto")
        assert auto == ("array" if numpy_available() else "python")
