"""Differential tests pinning the array signature kernel to the python path.

The array kernel (``repro.core.kernels``) re-implements the hot analysis
passes — level-table precompute, bulk signatures, cone net-set
intersection, reduction re-hash dirty flags — as vectorized passes over
flat integer arrays.  Its whole correctness contract is *byte identity*:
``REPRO_KERNEL=array`` must produce the same result digest (words,
singletons, control assignments, stage counters) as
``REPRO_KERNEL=python`` on every input.  This suite pins that contract
three ways:

1. differentially, on all twelve ITC99 designs;
2. by re-running the ``jobs=N ≡ jobs=1`` and cache-on ≡ cache-off
   determinism oracles under the array kernel;
3. with Hypothesis properties on the kernel's building blocks — the CSR
   table round-trips the driver index, bitset intersection agrees with
   set semantics, dirty flags agree with the memoized ``support()``, and
   level-key views agree with the recursive key path — on randomly
   generated sequential designs (duplicate fanins included, which is
   exactly where the subtree-interning fast path must back off).
"""

from __future__ import annotations

import os

import pytest

pytest.importorskip("numpy")
pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st

from repro.core import kernels
from repro.core.context import AnalysisContext
from repro.core.pipeline import PipelineConfig, identify_words
from repro.netlist.builder import NetlistBuilder
from repro.store import ArtifactStore, result_digest
from repro.synth.designs import BENCHMARKS

settings.register_profile(
    "tier1", settings(derandomize=True, deadline=None, max_examples=30)
)
settings.register_profile(
    "nightly", settings(derandomize=True, deadline=None, max_examples=250)
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "tier1"))

#: The big designs cost ~1 s per kernel; everything else is instant.
_DIFFERENTIAL_DESIGNS = sorted(BENCHMARKS)


def _context(netlist, kernel: str, depth: int = 4) -> AnalysisContext:
    """An :class:`AnalysisContext` forced onto one kernel."""
    previous = os.environ.get(kernels.KERNEL_ENV)
    os.environ[kernels.KERNEL_ENV] = kernel
    try:
        return AnalysisContext(netlist, depth)
    finally:
        if previous is None:
            os.environ.pop(kernels.KERNEL_ENV, None)
        else:
            os.environ[kernels.KERNEL_ENV] = previous


class TestKernelSwitch:
    def test_auto_prefers_array_when_numpy_imports(self, monkeypatch):
        monkeypatch.delenv(kernels.KERNEL_ENV, raising=False)
        assert kernels.active_kernel() == "array"

    def test_explicit_values(self, monkeypatch):
        monkeypatch.setenv(kernels.KERNEL_ENV, "python")
        assert kernels.active_kernel() == "python"
        monkeypatch.setenv(kernels.KERNEL_ENV, "array")
        assert kernels.active_kernel() == "array"

    def test_unknown_kernel_rejected(self, monkeypatch):
        monkeypatch.setenv(kernels.KERNEL_ENV, "cuda")
        with pytest.raises(kernels.KernelError, match="cuda"):
            kernels.active_kernel()

    def test_trace_records_the_kernel(self, monkeypatch):
        netlist = BENCHMARKS["b03"]()
        monkeypatch.setenv(kernels.KERNEL_ENV, "array")
        arr = identify_words(netlist, PipelineConfig())
        monkeypatch.setenv(kernels.KERNEL_ENV, "python")
        py = identify_words(netlist, PipelineConfig())
        assert arr.trace.kernel == "array"
        assert py.trace.kernel == "python"
        assert "kernel" in arr.trace.as_dict()
        # The kernel is provenance, not a result property: it must stay
        # outside the digested counters.
        assert "kernel" not in arr.trace.counter_dict()


class TestDifferential:
    @pytest.mark.parametrize("name", _DIFFERENTIAL_DESIGNS)
    def test_byte_identical_on_itc99(self, name, monkeypatch):
        netlist = BENCHMARKS[name]()
        monkeypatch.setenv(kernels.KERNEL_ENV, "python")
        py = identify_words(netlist, PipelineConfig())
        monkeypatch.setenv(kernels.KERNEL_ENV, "array")
        arr = identify_words(netlist, PipelineConfig())
        assert py.trace.kernel == "python"
        assert arr.trace.kernel == "array"
        assert result_digest(arr) == result_digest(py), (
            f"array kernel diverged from python reference on {name}"
        )
        assert arr.trace.counter_dict() == py.trace.counter_dict()

    def test_jobs_parity_under_array_kernel(self, monkeypatch):
        monkeypatch.setenv(kernels.KERNEL_ENV, "array")
        netlist = BENCHMARKS["b12"]()
        serial = identify_words(netlist, PipelineConfig(jobs=1))
        parallel = identify_words(netlist, PipelineConfig(jobs=4))
        assert result_digest(parallel) == result_digest(serial)
        assert parallel.trace.counter_dict() == serial.trace.counter_dict()

    def test_cache_parity_under_array_kernel(self, tmp_path, monkeypatch):
        monkeypatch.setenv(kernels.KERNEL_ENV, "array")
        netlist = BENCHMARKS["b11"]()
        config = PipelineConfig()
        bare = identify_words(netlist, config)
        store = ArtifactStore(str(tmp_path / "store"))
        cold = identify_words(netlist, config, store=store)
        warm = identify_words(netlist, config, store=store)
        assert warm.trace.cache_provenance.get("provenance") == "hit"
        digests = {
            result_digest(bare), result_digest(cold), result_digest(warm)
        }
        assert len(digests) == 1


# ----------------------------------------------------------------------
# property tests over the kernel building blocks
# ----------------------------------------------------------------------

_CELLS = ("inv", "and_", "nand", "or_", "nor", "xor")


@st.composite
def random_designs(draw):
    """Small random sequential netlists: ``(netlist, nets)``.

    Gates draw fanins with replacement, so the same net can feed one gate
    twice — the case where the array kernel's subtree interning must fall
    back to fresh objects.  A sprinkle of flip-flops exercises the cone
    boundary (leafish) classification.
    """
    b = NetlistBuilder("prop")
    nets = list(b.inputs("pa", "pb", "pc", "pd"))
    num_gates = draw(st.integers(min_value=3, max_value=14))
    for _ in range(num_gates):
        kind = draw(st.sampled_from(_CELLS + ("dff", "dff")))
        if kind == "dff":
            nets.append(b.dff(draw(st.sampled_from(nets))))
        elif kind == "inv":
            nets.append(b.inv(draw(st.sampled_from(nets))))
        else:
            width = draw(st.integers(min_value=2, max_value=3))
            fanin = [draw(st.sampled_from(nets)) for _ in range(width)]
            nets.append(getattr(b, kind)(*fanin))
    netlist = b.netlist
    for net in nets[4:]:
        if not netlist.fanouts(net):
            netlist.add_output(net)
    return netlist, nets


class TestCSRProperties:
    @given(random_designs())
    def test_table_round_trips_the_driver_index(self, design):
        netlist, _ = design
        boundary = netlist.cone_leaf_nets()
        table = kernels.NetTable.build(netlist, boundary)
        # The table interns exactly the driver-reachable universe: every
        # driven net plus every gate fanin, each exactly once.  (A primary
        # input no gate consumes stays outside — no analysis pass can
        # reach it, and the kernel's callers all probe via index.get.)
        reachable = {net for net, _ in netlist.drivers()}
        for gate in netlist.gates():
            reachable.update(gate.inputs)
        assert sorted(table.names) == sorted(reachable)
        assert all(table.index[name] == i for i, name in enumerate(table.names))
        # Driven rows reproduce the driving gate, fanin order preserved.
        for net, gate in netlist.drivers():
            i = table.index[net]
            assert table.gate_of[i] is gate
            assert table.cell_names[table.cell_of[i]] == gate.cell.name
            assert [table.names[c] for c in table.children[i]] == list(
                gate.inputs
            )
            assert table.leafish[i] == (gate.is_ff or net in boundary)
        # Undriven nets are childless leaves with no cell.
        for i, name in enumerate(table.names):
            if netlist.driver(name) is None:
                assert table.children[i] == ()
                assert table.leafish[i]
                assert table.cell_of[i] < 0
        # Eligible rows are the precompute worklist, in drivers() order.
        expected = [
            net
            for net, gate in netlist.drivers()
            if not gate.is_ff and net not in boundary
        ]
        assert [table.names[i] for i in table.eligible] == expected
        # The CSR arrays flatten exactly the eligible children rows.
        flat = [c for i in table.eligible for c in table.children[i]]
        assert table.e_indices.tolist() == flat
        counts = [len(table.children[i]) for i in table.eligible]
        indptr = [0]
        for count in counts:
            indptr.append(indptr[-1] + count)
        assert table.e_indptr.tolist() == indptr

    @given(random_designs(), st.integers(min_value=0, max_value=4), st.data())
    def test_bitset_intersection_matches_set_semantics(
        self, design, levels, data
    ):
        netlist, nets = design
        roots = data.draw(
            st.lists(st.sampled_from(nets), min_size=1, max_size=4)
        )
        ctx_array = _context(netlist, "array")
        ctx_python = _context(netlist, "python")
        common = ctx_array.common_cone_nets(roots, levels)
        assert common is not None, "every net is in the table index"
        expected = set(ctx_python.cone_nets(roots[0], levels))
        for root in roots[1:]:
            expected &= ctx_python.cone_nets(root, levels)
        assert common == expected

    @given(random_designs(), st.integers(min_value=1, max_value=4), st.data())
    def test_dirty_flags_match_support(self, design, depth, data):
        netlist, nets = design
        values = data.draw(
            st.sets(st.sampled_from(nets), min_size=1, max_size=3)
        )
        ctx = _context(netlist, "python", depth=depth)
        table = kernels.NetTable.build(netlist, netlist.cone_leaf_nets())
        # Mirror production: assigned nets outside the table index feed no
        # gate, so they cannot dirty any key and are dropped up front.
        ids = [
            i
            for i in (table.index.get(net) for net in values)
            if i is not None
        ]
        flags = kernels.dirty_flags(table, ids, depth)
        assert len(flags) == depth + 1
        for name in table.names:
            i = table.index[name]
            for level in range(depth + 1):
                expected = not ctx.support(name, level).isdisjoint(values)
                assert flags[level][i] == expected, (
                    f"dirty flag for ({name}, {level}) with {sorted(values)}"
                )

    @given(random_designs())
    def test_level_views_match_recursive_keys(self, design):
        netlist, _ = design
        depth = 4
        ctx_array = _context(netlist, "array", depth=depth)
        ctx_python = _context(netlist, "python", depth=depth)
        ctx_array.precompute_keys()
        for level in range(1, depth):
            view = ctx_array._level_keys[level]
            assert type(view) is kernels.LevelKeyView
            for name in netlist.nets():
                in_view = view.get(name)
                if in_view is not None:
                    assert in_view == ctx_python.key(name, level)

    @given(random_designs())
    def test_bulk_signatures_match_python_signatures(self, design):
        netlist, _ = design
        candidates = netlist.register_input_nets()
        ctx_array = _context(netlist, "array")
        ctx_python = _context(netlist, "python")
        ctx_array.precompute_keys()
        bulk = ctx_array.signatures(candidates)
        reference = [ctx_python.signature(net) for net in candidates]
        assert len(bulk) == len(reference)
        for ours, theirs in zip(bulk, reference):
            assert ours.net == theirs.net
            assert ours.root_type == theirs.root_type
            assert ours.sorted_keys == theirs.sorted_keys
            assert [s.root_net for s in ours.subtrees] == [
                s.root_net for s in theirs.subtrees
            ]
            assert [s.key for s in ours.subtrees] == [
                s.key for s in theirs.subtrees
            ]
            # Within one signature the subtree objects must be distinct
            # (Subgroup.finalize maps leftovers by id()).
            assert len({id(s) for s in ours.subtrees}) == len(ours.subtrees)
