"""Unit tests for the result datatypes."""

import pytest

from repro.core import ControlAssignment, IdentificationResult, StageTrace, Word


class TestWord:
    def test_basic_properties(self):
        w = Word(("a", "b", "c"))
        assert w.width == 3
        assert "b" in w
        assert "z" not in w
        assert w.bit_set == frozenset({"a", "b", "c"})
        assert str(w) == "{a, b, c}"

    def test_order_preserved_but_equality_ordered(self):
        assert Word(("a", "b")) != Word(("b", "a"))
        assert Word(("a", "b")).bit_set == Word(("b", "a")).bit_set

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            Word(("a", "b", "a"))

    def test_hashable_as_dict_key(self):
        d = {Word(("a", "b")): 1}
        assert d[Word(("a", "b"))] == 1


class TestControlAssignment:
    def test_of_sorts_deterministically(self):
        a = ControlAssignment.of({"z": 1, "a": 0})
        b = ControlAssignment.of({"a": 0, "z": 1})
        assert a == b
        assert a.signals == ("a", "z")
        assert a.as_dict() == {"a": 0, "z": 1}

    def test_str_format(self):
        a = ControlAssignment.of({"U201": 0, "U221": 1})
        assert str(a) == "U201=0, U221=1"


class TestIdentificationResult:
    def test_control_signals_deduplicated_in_order(self):
        result = IdentificationResult()
        w1, w2 = Word(("a", "b")), Word(("c", "d"))
        result.words = [w1, w2]
        result.control_assignments = {
            w1: ControlAssignment.of({"s1": 0, "s2": 1}),
            w2: ControlAssignment.of({"s2": 1, "s3": 0}),
        }
        assert result.control_signals == ("s1", "s2", "s3")

    def test_word_of(self):
        result = IdentificationResult()
        result.words = [Word(("a", "b"))]
        result.singletons = ["c"]
        assert result.word_of("a").bits == ("a", "b")
        assert result.word_of("c") is None

    def test_all_generated_words_wraps_singletons(self):
        result = IdentificationResult()
        result.words = [Word(("a", "b"))]
        result.singletons = ["c", "d"]
        generated = result.all_generated_words()
        assert len(generated) == 3
        assert Word(("c",)) in generated


class TestStageTrace:
    def test_lines_cover_every_counter(self):
        trace = StageTrace()
        assert len(trace.lines()) == 8
        trace.num_groups = 5
        assert any("5" in line for line in trace.lines())
