"""Tests for the functional bit-symmetry refinement."""

import pytest

from repro.core import Word, identify_words
from repro.core.functional import (
    functional_signature,
    refine_result,
    refine_words,
)
from repro.netlist import NetlistBuilder


class TestSignatures:
    def test_identical_functions_match(self):
        b = NetlistBuilder("t")
        bits = []
        for i in range(3):
            x = b.input(f"x{i}")
            y = b.input(f"y{i}")
            bits.append(b.nand(x, y))
        nl = b.build()
        signatures = {functional_signature(nl, bit) for bit in bits}
        assert len(signatures) == 1

    def test_different_functions_differ(self):
        b = NetlistBuilder("t")
        x, y = b.inputs("x", "y")
        n_and = b.and_(x, y)
        n_or = b.or_(x, y)
        nl = b.build()
        assert functional_signature(nl, n_and) != functional_signature(nl, n_or)

    def test_sharing_pattern_detected(self):
        """Same tree shape, different input sharing: AND(x, ~x) is the
        constant 0 while AND(x, ~y) is not — hash keys cannot tell them
        apart, simulation can."""
        b = NetlistBuilder("t")
        x, y = b.inputs("x", "y")
        degenerate = b.and_(x, b.inv(x))
        genuine = b.and_(x, b.inv(y))
        nl = b.build()
        sig_degenerate = functional_signature(nl, degenerate)
        assert set(sig_degenerate) == {0}
        assert sig_degenerate != functional_signature(nl, genuine)

    def test_deterministic_under_seed(self):
        b = NetlistBuilder("t")
        x, y = b.inputs("x", "y")
        n = b.xor(x, y)
        nl = b.build()
        assert functional_signature(nl, n, seed=7) == functional_signature(
            nl, n, seed=7
        )
        # Different seeds may produce different vectors (not asserted
        # unequal: 16 coin flips can collide) but must stay valid.
        assert len(functional_signature(nl, n, seed=8)) == 16


class TestRefineWords:
    def test_clean_word_untouched(self):
        b = NetlistBuilder("t")
        bits = [b.nand(b.input(f"x{i}"), b.input(f"y{i}")) for i in range(4)]
        nl = b.build()
        refinement = refine_words(nl, [Word(tuple(bits))])
        assert refinement.split_words == []
        assert refinement.words[0].bits == tuple(bits)

    def test_degenerate_bit_split_off(self):
        b = NetlistBuilder("t")
        bits = []
        for i in range(3):
            x = b.input(f"x{i}")
            y = b.input(f"y{i}")
            bits.append(b.and_(x, b.inv(y)))
        x3 = b.input("x3")
        bits.append(b.and_(x3, b.inv(x3)))  # constant 0, same shape
        nl = b.build()
        refinement = refine_words(nl, [Word(tuple(bits))])
        assert len(refinement.split_words) == 1
        assert refinement.words[0].bits == tuple(bits[:3])
        assert refinement.demoted_bits == [bits[3]]

    def test_two_signature_classes_become_two_words(self):
        b = NetlistBuilder("t")
        and_bits = [b.and_(b.input(f"a{i}"), b.input(f"c{i}")) for i in range(2)]
        or_bits = [b.or_(b.input(f"d{i}"), b.input(f"e{i}")) for i in range(2)]
        nl = b.build()
        mixed = Word(tuple(and_bits + or_bits))
        refinement = refine_words(nl, [mixed])
        bit_sets = {w.bit_set for w in refinement.words}
        assert frozenset(and_bits) in bit_sets
        assert frozenset(or_bits) in bit_sets


class TestRefineResult:
    def test_pipeline_words_survive_refinement(self):
        """On honest identification output the refinement is a no-op."""
        import sys

        sys.path.insert(0, "tests")
        from fixtures import figure1_netlist

        nl, bits = figure1_netlist()
        result = identify_words(nl)
        refined = refine_result(nl, result)
        word = refined.words and next(
            (w for w in refined.words if bits[0] in w.bits), None
        )
        assert word is not None
        assert set(bits) <= set(word.bits)
        # Control-assignment metadata survives for surviving words.
        assert word in refined.control_assignments
