"""Tests for control-signal provenance (naming what controls compute)."""

import pytest

from repro.core import Word, identify_words, propagate_words
from repro.core.explain import explain_control_signal, explain_controls
from repro.netlist import NetlistBuilder
from repro.synth import Const, Module, Mux, synthesize


def comparator_design():
    """sel = (a == b) drives a selected register."""
    b = NetlistBuilder("t")
    a_bits = b.input_word("a", 4)
    b_bits = b.input_word("b", 4)
    same = [b.xnor(x, y) for x, y in zip(a_bits, b_bits)]
    eq01 = b.and_(same[0], same[1])
    eq23 = b.and_(same[2], same[3])
    eq = b.and_(eq01, eq23)
    b.netlist.add_output(eq)
    return b.build(), a_bits, b_bits, eq


class TestEqualityRecognition:
    def test_eq_tree_recognized(self):
        nl, a, bb, eq = comparator_design()
        words = [Word(tuple(a)), Word(tuple(bb))]
        explanation = explain_control_signal(nl, eq, words)
        assert explanation.kind == "eq"
        assert explanation.verified
        assert {w.bit_set for w in explanation.operands} == {
            frozenset(a), frozenset(bb)
        }

    def test_ne_recognized(self):
        nl, a, bb, eq = comparator_design()
        ne = None
        # Rebuild with an inverter on top.
        b = NetlistBuilder("t")
        a_bits = b.input_word("a", 4)
        b_bits = b.input_word("b", 4)
        same = [b.xnor(x, y) for x, y in zip(a_bits, b_bits)]
        eq_net = b.and_(b.and_(same[0], same[1]), b.and_(same[2], same[3]))
        ne = b.inv(eq_net)
        b.netlist.add_output(ne)
        nl = b.build()
        words = [Word(tuple(a_bits)), Word(tuple(b_bits))]
        assert explain_control_signal(nl, ne, words).kind == "ne"

    def test_reductions_recognized(self):
        b = NetlistBuilder("t")
        w = b.input_word("w", 4)
        any_net = b.or_(b.or_(w[0], w[1]), b.or_(w[2], w[3]))
        all_net = b.and_(b.and_(w[0], w[1]), b.and_(w[2], w[3]))
        b.netlist.add_output(any_net)
        b.netlist.add_output(all_net)
        nl = b.build()
        words = [Word(tuple(w))]
        assert explain_control_signal(nl, any_net, words).kind == "any"
        assert explain_control_signal(nl, all_net, words).kind == "all"

    def test_unrelated_signal_is_unknown(self):
        nl, a, bb, eq = comparator_design()
        words = [Word(tuple(a)), Word(tuple(bb))]
        # A raw input bit is no function of the words.
        assert explain_control_signal(nl, a[0], words).kind == "unknown"

    def test_wrong_function_rejected(self):
        """A parity tree must not verify as equality."""
        b = NetlistBuilder("t")
        a_bits = b.input_word("a", 4)
        b_bits = b.input_word("b", 4)
        diff = [b.xor(x, y) for x, y in zip(a_bits, b_bits)]
        parity = b.xor(b.xor(diff[0], diff[1]), b.xor(diff[2], diff[3]))
        b.netlist.add_output(parity)
        nl = b.build()
        words = [Word(tuple(a_bits)), Word(tuple(b_bits))]
        explanation = explain_control_signal(nl, parity, words)
        assert explanation.kind not in ("eq", "ne")


class TestEndToEndProvenance:
    def test_identified_control_explained_as_comparator(self):
        """Full loop: synthesize a design whose select is (a == b), run
        identification + propagation, then name the discovered control."""
        m = Module("t", reset_input="rst")
        a = m.input("a", 4)
        c = m.input("c", 4)
        d = m.input("d", 6)
        e = m.input("e", 6)
        sel = a.eq(c)
        r = m.register("r", 6)
        from repro.synth.rtl import Concat

        r.next = Mux(sel, d, Mux(a.lt(c), e,
                                 Concat((d.slice(0, 3), Const(0, 2)))))
        m.output("o", r.ref())
        nl = synthesize(m)

        result = identify_words(nl)
        assert result.control_signals  # something was discovered
        grown = propagate_words(nl, result.words)
        # Add the input words (an analyst knows the ports).
        words = list(grown.words)
        words.append(Word(tuple(f"a_{i}" for i in range(4))))
        words.append(Word(tuple(f"c_{i}" for i in range(4))))
        explanations = explain_controls(nl, result.control_signals, words)
        description = " | ".join(e.describe() for e in explanations)
        kinds = {e.kind for e in explanations}
        assert kinds & {"eq", "ne"}, description
