"""Tests for datapath-operator identification over recovered words."""

import pytest

from repro.core import Word
from repro.core.modules import identify_operators
from repro.netlist import NetlistBuilder


def word_of(nets):
    return Word(tuple(nets))


class TestBitwise:
    def build(self, op):
        b = NetlistBuilder("t")
        a_bits = b.input_word("a", 4)
        b_bits = b.input_word("b", 4)
        out = [getattr(b, op)(x, y) for x, y in zip(a_bits, b_bits)]
        for net in out:
            b.netlist.add_output(net)
        return b.build(), a_bits, b_bits, out

    @pytest.mark.parametrize("op,kind", [
        ("and_", "and"), ("or_", "or"), ("xor", "xor"),
        ("nand", "nand"), ("nor", "nor"), ("xnor", "xnor"),
    ])
    def test_two_operand_ops(self, op, kind):
        nl, a, bb, out = self.build(op)
        words = [word_of(a), word_of(bb), word_of(out)]
        matches = identify_operators(nl, words)
        match = next(m for m in matches if m.output.bits == tuple(out))
        assert match.kind == kind
        assert {w.bit_set for w in match.inputs} == {
            frozenset(a), frozenset(bb)
        }
        assert match.verified

    def test_inverter_array(self):
        b = NetlistBuilder("t")
        a_bits = b.input_word("a", 3)
        out = [b.inv(x) for x in a_bits]
        for net in out:
            b.netlist.add_output(net)
        nl = b.build()
        matches = identify_operators(nl, [word_of(a_bits), word_of(out)])
        match = next(m for m in matches if m.output.bits == tuple(out))
        assert match.kind == "not" and match.verified

    def test_broadcast_scalar_operand(self):
        b = NetlistBuilder("t")
        en = b.input("en")
        a_bits = b.input_word("a", 4)
        out = [b.and_(en, x) for x in a_bits]
        for net in out:
            b.netlist.add_output(net)
        nl = b.build()
        matches = identify_operators(nl, [word_of(a_bits), word_of(out)])
        match = next(m for m in matches if m.output.bits == tuple(out))
        assert match.kind == "and"
        assert match.scalar == en
        assert match.inputs[0].bit_set == frozenset(a_bits)

    def test_misaligned_bits_rejected(self):
        b = NetlistBuilder("t")
        a_bits = b.input_word("a", 3)
        b_bits = b.input_word("b", 3)
        # bit 1 crossed: not a clean word op.
        out = [
            b.and_(a_bits[0], b_bits[0]),
            b.and_(a_bits[2], b_bits[1]),
            b.and_(a_bits[1], b_bits[2]),
        ]
        for net in out:
            b.netlist.add_output(net)
        nl = b.build()
        matches = identify_operators(
            nl, [word_of(a_bits), word_of(b_bits), word_of(out)]
        )
        assert all(m.output.bits != tuple(out) or not m.verified
                   for m in matches)


class TestMuxRow:
    def test_mapped_mux_recognized_and_verified(self):
        b = NetlistBuilder("t")
        s = b.input("s")
        ns = b.inv(s)
        a_bits = b.input_word("a", 4)
        b_bits = b.input_word("b", 4)
        out = []
        for x, y in zip(a_bits, b_bits):
            arm_a = b.nand(ns, x)
            arm_b = b.nand(s, y)
            out.append(b.nand(arm_a, arm_b))
        for net in out:
            b.netlist.add_output(net)
        nl = b.build()
        matches = identify_operators(
            nl, [word_of(a_bits), word_of(b_bits), word_of(out)]
        )
        match = next(m for m in matches if m.output.bits == tuple(out))
        assert match.kind == "mux"
        assert match.verified
        assert {w.bit_set for w in match.inputs} == {
            frozenset(a_bits), frozenset(b_bits)
        }


class TestAdder:
    def ripple(self, b, a_bits, b_bits, sub=False):
        from repro.synth.lower import Lowering
        from repro.synth.rtl import Binary, InputRef, Module

        # Reuse the production lowering for the arithmetic.
        m = Module("addsub")
        a = m.input("a", len(a_bits))
        bb = m.input("b", len(b_bits))
        op = Binary("sub" if sub else "add", a, bb)
        m.output("s", op)
        return m

    def test_adder_detected_and_verified(self):
        from repro.synth import synthesize, SynthesisOptions

        module = self.ripple(None, range(5), range(5))
        nl = synthesize(module, SynthesisOptions(map_technology=False))
        a = [f"a_{i}" for i in range(5)]
        bb = [f"b_{i}" for i in range(5)]
        out = [f"s_{i}" for i in range(5)]
        matches = identify_operators(
            nl, [word_of(a), word_of(bb), word_of(out)]
        )
        match = next(m for m in matches if m.output.bits == tuple(out))
        assert match.kind == "add"
        assert match.verified

    def test_subtractor_detected(self):
        from repro.synth import synthesize, SynthesisOptions

        module = self.ripple(None, range(5), range(5), sub=True)
        nl = synthesize(module, SynthesisOptions(map_technology=False))
        a = [f"a_{i}" for i in range(5)]
        bb = [f"b_{i}" for i in range(5)]
        out = [f"s_{i}" for i in range(5)]
        matches = identify_operators(
            nl, [word_of(a), word_of(bb), word_of(out)]
        )
        match = next(m for m in matches if m.output.bits == tuple(out))
        assert match.kind == "sub"
        assert match.verified
        # Operand order matters for subtraction: a - b.
        assert match.inputs[0].bits == tuple(a)


class TestReporting:
    def test_describe_mentions_verification(self):
        b = NetlistBuilder("t")
        a_bits = b.input_word("a", 2)
        b_bits = b.input_word("b", 2)
        out = [b.xor(x, y) for x, y in zip(a_bits, b_bits)]
        for net in out:
            b.netlist.add_output(net)
        nl = b.build()
        matches = identify_operators(
            nl, [word_of(a_bits), word_of(b_bits), word_of(out)]
        )
        text = next(
            m for m in matches if m.output.bits == tuple(out)
        ).describe()
        assert "xor" in text and "verified" in text

    def test_register_words_skipped(self):
        b = NetlistBuilder("t")
        a_bits = b.input_word("a", 2)
        qs = b.register_word(a_bits, "r")
        nl = b.build()
        matches = identify_operators(nl, [word_of(qs)])
        assert matches == []
