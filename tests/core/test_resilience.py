"""Resilience layer: budgets, fault-isolated workers, graceful degradation.

The contract under test (ISSUE 2 / DESIGN.md §8):

* a budget that fires degrades one subgroup — or, for the wall-clock
  deadline, the remainder of the run — while partial words still come out
  and the reason lands on the trace;
* a crashing subgroup worker is retried once serially and otherwise
  quarantined without corrupting sibling results;
* ``strict=True`` re-raises instead of degrading;
* when no budget fires, results stay byte-identical — including between
  ``jobs=1`` and ``jobs=4``.
"""

import sys
import time

import pytest

sys.path.insert(0, "tests")

from fixtures import figure1_netlist

from repro.core import PipelineConfig, identify_words
from repro.core.resilience import (
    BudgetExceeded,
    Deadline,
    DeadlineExceeded,
    PreflightError,
    RunBudget,
    SubgroupFailure,
)
from repro.netlist.cells import NAND
from repro.netlist.netlist import Netlist
from repro.synth.designs import BENCHMARKS


def _snapshot(result):
    """Everything the determinism contract covers, as plain data."""
    return {
        "words": [w.bits for w in result.words],
        "singletons": list(result.singletons),
        "assignments": {
            w.bits: a.assignments
            for w, a in result.control_assignments.items()
        },
        "counters": result.trace.counter_dict(),
        "failures": [f.as_dict() for f in result.trace.failures],
    }


def _partial_indices(netlist):
    """Task indices of the reduction-searched subgroups of ``netlist``."""
    seen = []

    def spy(task):
        seen.append(task.index)

    identify_words(netlist, PipelineConfig(fault_hook=spy))
    return seen


# ----------------------------------------------------------------------
# primitives
# ----------------------------------------------------------------------

class TestPrimitives:
    def test_deadline_after_none_is_none(self):
        assert Deadline.after(None) is None
        assert Deadline.after(10.0).seconds == 10.0

    def test_deadline_expiry(self):
        assert not Deadline(3600).expired()
        assert Deadline(1e-9).expired()
        with pytest.raises(DeadlineExceeded):
            Deadline(1e-9).check("here")
        Deadline(3600).check("here")  # no raise

    def test_budget_inactive_by_default(self):
        budget = RunBudget()
        assert not budget.active
        assert budget.stop_reason() is None
        assert budget.stop_reason(assignments_tried=10**9) is None
        budget.check("anywhere")  # no raise

    def test_stop_reasons(self):
        budget = RunBudget(max_assignments=5)
        assert budget.stop_reason(4) is None
        assert budget.stop_reason(5) == "assignments"
        budget.abort.set()
        assert budget.stop_reason(0) == "aborted"

    def test_deadline_reason(self):
        budget = RunBudget(deadline=Deadline(1e-9))
        assert budget.stop_reason() == "deadline"
        assert budget.expired()
        with pytest.raises(BudgetExceeded) as info:
            budget.check("stage x")
        assert info.value.reason == "deadline"

    def test_failure_dict_schema(self):
        failure = SubgroupFailure(
            index=3,
            bits=("a", "b"),
            stage="reduction",
            kind="error",
            detail="boom",
            retried=True,
            assignments_tried=7,
        )
        assert failure.as_dict() == {
            "index": 3,
            "bits": ["a", "b"],
            "stage": "reduction",
            "kind": "error",
            "detail": "boom",
            "retried": True,
            "assignments_tried": 7,
        }
        assert "subgroup 3" in failure.describe()

    def test_config_validation(self):
        with pytest.raises(ValueError):
            PipelineConfig(deadline_s=0)
        with pytest.raises(ValueError):
            PipelineConfig(max_assignments=-1)
        with pytest.raises(ValueError):
            PipelineConfig(max_cone_gates=0)


# ----------------------------------------------------------------------
# budgets degrade, never crash
# ----------------------------------------------------------------------

class TestBudgets:
    def test_assignment_budget_keeps_partial_words(self):
        netlist = BENCHMARKS["b03"]()
        result = identify_words(
            netlist, PipelineConfig(max_assignments=0)
        )
        assert result.words  # partial words still emitted
        assert result.trace.degraded
        assert {f.kind for f in result.trace.failures} == {"assignments"}
        assert all(
            f.assignments_tried == 0 for f in result.trace.failures
        )
        assert result.trace.num_assignments_tried == 0

    def test_cone_gate_cap_quarantines_oversized_subgroups(self):
        netlist = BENCHMARKS["b03"]()
        result = identify_words(netlist, PipelineConfig(max_cone_gates=1))
        assert result.words
        assert {f.kind for f in result.trace.failures} == {"cone_gates"}

    def test_expired_deadline_still_returns_a_result(self):
        netlist = BENCHMARKS["b03"]()
        result = identify_words(netlist, PipelineConfig(deadline_s=1e-9))
        assert result.trace.deadline_hit
        assert result.trace.degraded
        # The run-level failure names the first skipped stage.
        run_level = [f for f in result.trace.failures if f.index == -1]
        assert run_level and run_level[0].kind == "deadline"
        assert run_level[0].stage == "grouping"

    def test_deadline_mid_reduction_yields_partial_words(self):
        netlist = BENCHMARKS["b03"]()
        clean = identify_words(netlist, PipelineConfig())

        def burn(task):
            # First searched subgroup burns the whole deadline: the run
            # expires *inside* the reduction stage.
            time.sleep(0.08)

        result = identify_words(
            netlist, PipelineConfig(deadline_s=0.05, fault_hook=burn)
        )
        assert result.words  # partial words, not an empty crash
        assert result.trace.deadline_hit
        kinds = {f.kind for f in result.trace.failures}
        assert "deadline" in kinds
        # Fully-matched subgroups never entered the search: their words
        # survive verbatim.
        clean_full = set(w.bits for w in clean.words) - {
            w.bits for w in clean.control_assignments
        }
        assert clean_full <= set(w.bits for w in result.words)

    def test_unfired_budgets_are_byte_identical(self):
        netlist = BENCHMARKS["b03"]()
        clean = identify_words(netlist, PipelineConfig())
        loose = identify_words(
            netlist,
            PipelineConfig(
                deadline_s=3600.0,
                max_assignments=10**9,
                max_cone_gates=10**9,
                jobs=4,
            ),
        )
        assert _snapshot(loose) == _snapshot(clean)
        assert not loose.trace.degraded

    def test_strict_budget_raises(self):
        netlist = BENCHMARKS["b03"]()
        with pytest.raises(BudgetExceeded) as info:
            identify_words(
                netlist, PipelineConfig(max_assignments=0, strict=True)
            )
        assert info.value.reason == "assignments"

    def test_strict_deadline_raises(self):
        netlist = BENCHMARKS["b03"]()
        with pytest.raises(BudgetExceeded) as info:
            identify_words(
                netlist, PipelineConfig(deadline_s=1e-9, strict=True)
            )
        assert info.value.reason == "deadline"


# ----------------------------------------------------------------------
# fault-isolated workers
# ----------------------------------------------------------------------

class TestFaultIsolation:
    def test_crash_is_quarantined_without_corrupting_siblings(self):
        netlist = BENCHMARKS["b03"]()
        clean = identify_words(netlist, PipelineConfig())
        victim = _partial_indices(netlist)[0]

        def boom(task):
            if task.index == victim:
                raise RuntimeError("injected fault")

        result = identify_words(netlist, PipelineConfig(fault_hook=boom))
        failures = result.trace.failures
        assert [f.index for f in failures] == [victim]
        assert failures[0].kind == "error"
        assert failures[0].retried  # the serial retry ran first
        assert "injected fault" in failures[0].detail
        # Every word not unlocked by the quarantined subgroup survives.
        assert set(w.bits for w in clean.words) - {
            w.bits for w in clean.control_assignments
        } <= set(w.bits for w in result.words)

    def test_transient_crash_is_healed_by_the_retry(self):
        netlist = BENCHMARKS["b03"]()
        clean = identify_words(netlist, PipelineConfig())
        victim = _partial_indices(netlist)[0]
        calls = {"n": 0}

        def flaky(task):
            if task.index == victim:
                calls["n"] += 1
                if calls["n"] == 1:
                    raise RuntimeError("transient")

        result = identify_words(netlist, PipelineConfig(fault_hook=flaky))
        assert calls["n"] == 2
        assert not result.trace.failures
        assert _snapshot(result)["words"] == _snapshot(clean)["words"]

    def test_quarantine_is_deterministic_across_jobs(self):
        netlist = BENCHMARKS["b03"]()
        victim = _partial_indices(netlist)[0]

        def boom(task):
            if task.index == victim:
                raise RuntimeError("injected fault")

        serial = identify_words(
            netlist, PipelineConfig(fault_hook=boom, jobs=1)
        )
        parallel = identify_words(
            netlist, PipelineConfig(fault_hook=boom, jobs=4)
        )
        assert _snapshot(parallel) == _snapshot(serial)

    def test_strict_crash_propagates(self):
        netlist = BENCHMARKS["b03"]()
        victim = _partial_indices(netlist)[0]

        def boom(task):
            if task.index == victim:
                raise RuntimeError("injected fault")

        with pytest.raises(RuntimeError, match="injected fault"):
            identify_words(
                netlist, PipelineConfig(fault_hook=boom, strict=True)
            )

    def test_keyboard_interrupt_cancels_parallel_run(self):
        # Ctrl-C in a worker propagates out of the pool instead of
        # hanging on unfinished futures; the abort event drains siblings.
        netlist = BENCHMARKS["b03"]()
        victim = _partial_indices(netlist)[0]

        def interrupt(task):
            if task.index == victim:
                raise KeyboardInterrupt

        started = time.monotonic()
        with pytest.raises(KeyboardInterrupt):
            identify_words(
                netlist, PipelineConfig(fault_hook=interrupt, jobs=4)
            )
        assert time.monotonic() - started < 30.0


# ----------------------------------------------------------------------
# pre-flight validation
# ----------------------------------------------------------------------

class TestPreflight:
    @staticmethod
    def _floating_input_netlist():
        nl = Netlist("t")
        nl.add_input("a")
        nl.add_gate("g", NAND, ["a", "ghost"], "n1")
        nl.add_output("n1")
        return nl

    def test_preflight_records_diagnostics(self):
        result = identify_words(
            self._floating_input_netlist(),
            PipelineConfig(preflight=True),
        )
        assert result.trace.preflight
        kinds = {d["kind"] for d in result.trace.preflight}
        assert "floating-input" in kinds

    def test_preflight_off_by_default(self):
        result = identify_words(
            self._floating_input_netlist(), PipelineConfig()
        )
        assert result.trace.preflight == []

    def test_strict_preflight_raises(self):
        with pytest.raises(PreflightError) as info:
            identify_words(
                self._floating_input_netlist(),
                PipelineConfig(preflight=True, strict=True),
            )
        assert info.value.diagnostics

    def test_clean_netlist_passes_strict_preflight(self):
        netlist, _bits = figure1_netlist()
        result = identify_words(
            netlist, PipelineConfig(preflight=True, strict=True)
        )
        assert result.trace.preflight == []
        assert result.words
