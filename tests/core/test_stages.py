"""Staged engine: degenerate-subgroup guards and parallel determinism.

The ISSUE-level contract of ``PipelineConfig.jobs`` is that parallelism
reorders *execution only*: words, singletons, control assignments, and
every trace counter must be byte-identical to the serial run.  The
degenerate-partition guards cover subgroups the reduction search can hand
back empty or fragmented.
"""

import sys

import pytest

sys.path.insert(0, "tests")

from fixtures import figure1_netlist

from repro.core import PipelineConfig, identify_words
from repro.core.hashkey import BitSignature
from repro.core.pipeline import _emit_partition, _partition_score
from repro.core.stages import AnalysisEngine, default_stages
from repro.core.words import IdentificationResult
from repro.synth.designs import BENCHMARKS


def sig(net):
    return BitSignature(net, "AND2", (), ("$", "$"))


class TestPartitionScore:
    def test_empty_partition_scores_lowest(self):
        assert _partition_score([]) == (0, 0)
        assert _partition_score([]) < _partition_score([[sig("a")]])

    def test_prefers_larger_best_word(self):
        two = [[sig("a"), sig("b")]]
        one = [[sig("a")], [sig("b")]]
        assert _partition_score(two) > _partition_score(one)

    def test_breaks_ties_on_fewer_fragments(self):
        tight = [[sig("a"), sig("b")]]
        loose = [[sig("a"), sig("b")], [sig("c")]]
        assert _partition_score(tight) > _partition_score(loose)


class TestEmitPartition:
    def test_empty_partition_emits_nothing(self):
        result = IdentificationResult()
        _emit_partition([], None, result)
        assert result.words == []
        assert result.singletons == []

    def test_empty_runs_are_skipped(self):
        result = IdentificationResult()
        _emit_partition([[], [sig("a")], []], None, result)
        assert result.words == []
        assert result.singletons == ["a"]

    def test_all_singleton_runs(self):
        result = IdentificationResult()
        _emit_partition([[sig("a")], [sig("b")]], None, result)
        assert result.words == []
        assert result.singletons == ["a", "b"]


class TestDegenerateSubgroups:
    def test_empty_signature_list_forms_no_subgroups(self):
        from repro.core.matching import form_subgroups

        assert form_subgroups([]) == []

    def test_all_leaf_bits_become_singletons(self):
        # Bits with no expandable driver never chain.
        leaves = [BitSignature(f"n{i}", None, (), ()) for i in range(4)]
        from repro.core.matching import form_subgroups

        subgroups = form_subgroups(leaves)
        assert all(len(s.signatures) == 1 for s in subgroups)

    def test_stage_graph_shape(self):
        names = [stage.name for stage in default_stages()]
        assert names == [
            "grouping",
            "signatures",
            "matching",
            "control",
            "reduction",
            "emission",
        ]


class TestEngineTrace:
    def test_stage_seconds_cover_every_stage(self):
        netlist, _bits = figure1_netlist()
        result = identify_words(netlist, PipelineConfig())
        assert list(result.trace.stage_seconds) == [
            "grouping",
            "signatures",
            "matching",
            "control",
            "reduction",
            "emission",
        ]
        assert all(t >= 0.0 for t in result.trace.stage_seconds.values())

    def test_trace_dict_schema(self):
        netlist, _bits = figure1_netlist()
        result = identify_words(netlist, PipelineConfig(jobs=2))
        dumped = result.trace.as_dict()
        assert set(dumped) == {
            "counters",
            "backend",
            "jobs",
            "kernel",
            "stage_seconds",
            "cache",
            "degraded",
            "deadline_hit",
            "failures",
            "preflight",
            "cache_provenance",
        }
        assert dumped["jobs"] == 2
        assert dumped["kernel"] in ("python", "array")
        assert dumped["cache_provenance"] == {}  # no store attached
        # A clean run carries an empty resilience record.
        assert dumped["degraded"] is False
        assert dumped["deadline_hit"] is False
        assert dumped["failures"] == []
        assert dumped["preflight"] == []

    def test_depth_mismatch_rejected(self):
        from repro.core.context import AnalysisContext

        netlist, _bits = figure1_netlist()
        engine = AnalysisEngine(PipelineConfig(depth=4))
        with pytest.raises(ValueError):
            engine.run(netlist, AnalysisContext(netlist, depth=3))


def _snapshot(result):
    """Everything the determinism contract covers, as plain data."""
    return {
        "words": [w.bits for w in result.words],
        "singletons": list(result.singletons),
        "assignments": {
            w.bits: a.assignments
            for w, a in result.control_assignments.items()
        },
        "counters": result.trace.counter_dict(),
        "cache": result.trace.cache.as_dict(),
    }


class TestParallelDeterminism:
    @pytest.mark.parametrize("name", ["b03", "b12"])
    def test_jobs4_matches_jobs1_on_itc99(self, name):
        netlist = BENCHMARKS[name]()
        serial = identify_words(netlist, PipelineConfig(jobs=1))
        parallel = identify_words(netlist, PipelineConfig(jobs=4))
        assert _snapshot(parallel) == _snapshot(serial)

    def test_jobs_does_not_leak_into_counters(self):
        netlist = BENCHMARKS["b03"]()
        serial = identify_words(netlist, PipelineConfig(jobs=1))
        parallel = identify_words(netlist, PipelineConfig(jobs=4))
        assert serial.trace.jobs == 1
        assert parallel.trace.jobs == 4
        assert parallel.trace.counter_dict() == serial.trace.counter_dict()

    def test_jobs_validation(self):
        with pytest.raises(ValueError):
            PipelineConfig(jobs=0)
