"""Tests for word propagation (the WordRev-style downstream stage)."""

import sys

import pytest

sys.path.insert(0, "tests")

from fixtures import figure1_netlist

from repro.core import Word, identify_words
from repro.core.propagation import propagate_words
from repro.netlist import NetlistBuilder


def bitwise_pipeline():
    """in_a, in_b -> AND word -> INV word -> registered."""
    b = NetlistBuilder("t")
    a_bits = b.input_word("in_a", 4)
    b_bits = b.input_word("in_b", 4)
    and_bits = [b.and_(x, y) for x, y in zip(a_bits, b_bits)]
    inv_bits = [b.inv(x) for x in and_bits]
    b.register_word(inv_bits, "res")
    return b.build(), a_bits, b_bits, and_bits, inv_bits


class TestForward:
    def test_consumer_array_forms_word(self):
        nl, a, bb, and_bits, inv_bits = bitwise_pipeline()
        seed = Word(tuple(a))
        result = propagate_words(nl, [seed])
        found = {w.bit_set for w in result.words}
        assert frozenset(and_bits) in found

    def test_propagates_through_inverters(self):
        """INV layers are transparent: the AND word does not stop there."""
        nl, a, bb, and_bits, inv_bits = bitwise_pipeline()
        result = propagate_words(nl, [Word(tuple(a))])
        found = {w.bit_set for w in result.words}
        # inv_bits are reached because _through_buffers_forward walks the
        # single-fanout inverter chain before looking for consumers; here
        # the inverters feed flip-flops, so propagation stops at and_bits.
        assert frozenset(and_bits) in found

    def test_ambiguous_fanout_not_guessed(self):
        b = NetlistBuilder("t")
        a_bits = b.input_word("a", 3)
        c = b.input("c")
        # Each bit feeds TWO nand consumers: alignment ambiguous.
        row1 = [b.nand(x, c) for x in a_bits]
        row2 = [b.nand(x, b.inv(c)) for x in a_bits]
        for n in row1 + row2:
            b.netlist.add_output(n)
        nl = b.build()
        result = propagate_words(nl, [Word(tuple(a_bits))])
        assert result.derived == []

    def test_reduction_tree_not_a_word(self):
        b = NetlistBuilder("t")
        a_bits = b.input_word("a", 2)
        tree = b.and_(a_bits[0], a_bits[1])  # both bits converge
        b.netlist.add_output(tree)
        nl = b.build()
        result = propagate_words(nl, [Word(tuple(a_bits))])
        assert result.derived == []


class TestBackward:
    def test_source_words_recovered(self):
        nl, a, bb, and_bits, inv_bits = bitwise_pipeline()
        seed = Word(tuple(and_bits))
        result = propagate_words(nl, [seed])
        found = {w.bit_set for w in result.words}
        assert frozenset(a) in found
        assert frozenset(bb) in found

    def test_shared_control_excluded(self):
        b = NetlistBuilder("t")
        en = b.input("en")
        d_bits = b.input_word("d", 4)
        gated = [b.nand(en, x) for x in d_bits]
        for n in gated:
            b.netlist.add_output(n)
        nl = b.build()
        result = propagate_words(nl, [Word(tuple(gated))])
        found = {w.bit_set for w in result.words}
        assert frozenset(d_bits) in found
        assert all(en not in w.bits for w in result.derived)

    def test_mixed_driver_types_stop(self):
        b = NetlistBuilder("t")
        a, c = b.inputs("a", "c")
        w0 = b.nand(a, c)
        w1 = b.nor(a, c)
        nl = b.build()
        result = propagate_words(nl, [Word((w0, w1))])
        assert result.derived == []


class TestFixpoint:
    def test_figure1_recovers_source_register_words(self):
        """Propagating from the identified 3-bit word reaches the CODA
        source registers through the mux arms."""
        nl, bits = figure1_netlist()
        identified = identify_words(nl)
        result = propagate_words(nl, identified.words)
        found = {frozenset(w.bits) for w in result.words}
        coda0 = frozenset({f"CODA0_REG_{i}" for i in range(3)})
        coda1 = frozenset({f"CODA1_REG_{i}" for i in range(3)})
        assert coda0 in found
        assert coda1 in found

    def test_rounds_bounded(self):
        nl, a, bb, and_bits, _ = bitwise_pipeline()
        result = propagate_words(nl, [Word(tuple(a))], max_rounds=1)
        assert result.rounds <= 1

    def test_overlapping_candidates_rejected(self):
        nl, a, bb, and_bits, _ = bitwise_pipeline()
        overlapping_seed = Word((a[0], a[1]))
        full_seed = Word(tuple(a))
        result = propagate_words(nl, [full_seed, overlapping_seed])
        # The second seed overlaps the first: dropped.
        assert len([w for w in result.words if a[0] in w.bits]) == 1

    def test_seeds_not_counted_as_derived(self):
        nl, a, *_ = bitwise_pipeline()
        result = propagate_words(nl, [Word(tuple(a))])
        assert Word(tuple(a)).bit_set not in {
            w.bit_set for w in result.derived
        }
