"""Tests for hash keys and bit signatures (Section 2.3 data structures)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SignatureIndex, hash_key, signature_of
from repro.core.hashkey import LEAF_TOKEN
from repro.netlist import NetlistBuilder, extract_cone


def two_bit_pair(swap_fanins=False):
    """Two structurally identical bits, optionally with permuted fanins."""
    b = NetlistBuilder("t")
    a, c, d, e = b.inputs("a", "c", "d", "e")
    x1 = b.nand(a, c)
    y1 = b.nand(x1, d)
    x2 = b.nand(c, d)
    y2 = b.nand(e, x2) if swap_fanins else b.nand(x2, e)
    return b.build(), y1, y2


class TestHashKey:
    def test_leaf_token_for_inputs(self):
        b = NetlistBuilder("t")
        a = b.input("a")
        nl = b.build()
        assert hash_key(extract_cone(nl, a, 4)) == LEAF_TOKEN

    def test_gate_types_recorded_not_names(self):
        nl, y1, y2 = two_bit_pair()
        k1 = hash_key(extract_cone(nl, y1, 4))
        k2 = hash_key(extract_cone(nl, y2, 4))
        assert k1 == k2  # different nets, same shape

    def test_fanin_order_is_canonicalized(self):
        nl, y1, y2 = two_bit_pair(swap_fanins=True)
        k1 = hash_key(extract_cone(nl, y1, 4))
        k2 = hash_key(extract_cone(nl, y2, 4))
        assert k1 == k2

    def test_different_gate_types_differ(self):
        b = NetlistBuilder("t")
        a, c = b.inputs("a", "c")
        n1 = b.nand(a, c)
        n2 = b.nor(a, c)
        nl = b.build()
        assert hash_key(extract_cone(nl, n1, 4)) != hash_key(
            extract_cone(nl, n2, 4)
        )

    def test_depth_truncation_equalizes_deep_structure(self):
        """Beyond the depth budget, different logic looks identical."""
        b = NetlistBuilder("t")
        a, c = b.inputs("a", "c")
        deep1 = b.nand(b.nand(b.nand(b.xor(a, c), c), a), c)
        deep2 = b.nand(b.nand(b.nand(b.and_(a, c), c), a), c)
        nl = b.build()
        assert hash_key(extract_cone(nl, deep1, 3)) == hash_key(
            extract_cone(nl, deep2, 3)
        )
        assert hash_key(extract_cone(nl, deep1, 4)) != hash_key(
            extract_cone(nl, deep2, 4)
        )


class TestSignature:
    def test_signature_decomposes_subtrees(self):
        b = NetlistBuilder("t")
        a, c, d = b.inputs("a", "c", "d")
        s1 = b.nand(a, c)
        s2 = b.inv(d)
        root = b.nand(s1, s2)
        nl = b.build()
        sig = signature_of(nl, root)
        assert sig.root_type == "NAND2"
        assert len(sig.subtrees) == 2
        assert {s.root_net for s in sig.subtrees} == {s1, s2}
        assert sig.sorted_keys == tuple(sorted(sig.sorted_keys))

    def test_leaf_signature(self):
        b = NetlistBuilder("t")
        a = b.input("a")
        q = b.dff(b.inv(a), output="r_reg_0")
        nl = b.build()
        sig = signature_of(nl, q)  # register output: a cone boundary
        assert sig.is_leaf
        assert sig.full_key() == LEAF_TOKEN

    def test_root_type_includes_arity(self):
        b = NetlistBuilder("t")
        a, c, d = b.inputs("a", "c", "d")
        n2 = b.nand(a, c)
        n3 = b.nand(a, c, d)
        nl = b.build()
        assert signature_of(nl, n2).root_type == "NAND2"
        assert signature_of(nl, n3).root_type == "NAND3"

    def test_full_key_matches_cone_hash(self):
        nl, y1, _ = two_bit_pair()
        sig = signature_of(nl, y1, 4)
        assert sig.full_key() == hash_key(extract_cone(nl, y1, 4))

    def test_lazy_cone_matches_eager_extraction(self):
        nl, y1, _ = two_bit_pair()
        sig = signature_of(nl, y1, 4)
        for subtree in sig.subtrees:
            assert hash_key(subtree.cone) == subtree.key


class TestSignatureIndex:
    def test_index_matches_signature_of(self):
        nl, y1, y2 = two_bit_pair()
        index = SignatureIndex(nl, 4)
        for net in (y1, y2):
            direct = signature_of(nl, net, 4)
            indexed = index.signature(net)
            assert indexed.root_type == direct.root_type
            assert indexed.sorted_keys == direct.sorted_keys

    def test_memoization_shares_overlapping_cones(self):
        nl, y1, y2 = two_bit_pair()
        index = SignatureIndex(nl, 4)
        index.signature(y1)
        before = len(index._keys)
        index.signature(y1)  # fully cached second time
        assert len(index._keys) == before

    def test_invalid_depth_rejected(self):
        nl, _, _ = two_bit_pair()
        with pytest.raises(ValueError):
            SignatureIndex(nl, 0)


@st.composite
def random_tree_netlists(draw):
    """Random cone-shaped logic; returns (netlist, root_net, depth)."""
    b = NetlistBuilder("rand")
    nets = list(b.inputs("i0", "i1", "i2", "i3"))
    for _ in range(draw(st.integers(min_value=2, max_value=14))):
        op = draw(st.sampled_from(["nand", "nor", "and_", "or_", "xor", "inv"]))
        if op == "inv":
            nets.append(b.inv(draw(st.sampled_from(nets))))
        else:
            x, y = draw(st.sampled_from(nets)), draw(st.sampled_from(nets))
            if x == y:
                continue
            nets.append(getattr(b, op)(x, y))
    return b.build(), nets[-1], draw(st.integers(min_value=1, max_value=5))


@given(random_tree_netlists())
@settings(max_examples=60, deadline=None)
def test_index_key_equals_tree_hash_key(case):
    """The memoized key must equal the tree-expansion key everywhere."""
    nl, root, depth = case
    index = SignatureIndex(nl, depth)
    assert index.key(root, depth) == hash_key(extract_cone(nl, root, depth))
