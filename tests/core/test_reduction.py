"""Tests for constant propagation and circuit reduction (Section 2.5).

The headline property: for every input assignment *consistent with* the
control-signal constants, the reduced netlist computes exactly the values
the original does.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    InfeasibleAssignment,
    propagate_constants,
    reduce_netlist,
    sweep_dead_logic,
)
from repro.netlist import (
    NetlistBuilder,
    evaluate_combinational,
    exhaustive_inputs,
    validate,
)


class TestPropagation:
    def test_forward_through_controlling_value(self):
        b = NetlistBuilder("t")
        a, c = b.inputs("a", "c")
        n = b.nand(a, c)
        m = b.nand(n, b.input("d"))
        nl = b.build()
        values = propagate_constants(nl, {a: 0})
        assert values[n] == 1  # NAND with controlling 0
        assert m not in values  # 1 is non-controlling for the next NAND

    def test_forward_full_evaluation(self):
        b = NetlistBuilder("t")
        a, c = b.inputs("a", "c")
        n = b.xor(a, c)
        nl = b.build()
        values = propagate_constants(nl, {a: 1, c: 1})
        assert values[n] == 0

    def test_backward_through_inverter_chain(self):
        b = NetlistBuilder("t")
        a = b.input("a")
        n1 = b.inv(a)
        n2 = b.inv(n1)
        nl = b.build()
        values = propagate_constants(nl, {n2: 1})
        assert values == {n2: 1, n1: 0, a: 1}

    def test_backward_unique_and_implication(self):
        b = NetlistBuilder("t")
        a, c = b.inputs("a", "c")
        n = b.and_(a, c)
        nl = b.build()
        values = propagate_constants(nl, {n: 1})
        assert values[a] == 1 and values[c] == 1

    def test_backward_ambiguous_does_not_fire(self):
        b = NetlistBuilder("t")
        a, c = b.inputs("a", "c")
        n = b.and_(a, c)
        nl = b.build()
        values = propagate_constants(nl, {n: 0})
        assert a not in values and c not in values

    def test_conflict_raises_infeasible(self):
        b = NetlistBuilder("t")
        a = b.input("a")
        n = b.inv(a)
        nl = b.build()
        with pytest.raises(InfeasibleAssignment):
            propagate_constants(nl, {a: 1, n: 1})

    def test_tie_cells_are_implicit_seeds(self):
        b = NetlistBuilder("t")
        one = b.const1()
        a = b.input("a")
        n = b.and_(one, a)
        nl = b.build()
        values = propagate_constants(nl, {})
        assert values[one] == 1
        assert n not in values  # still depends on a

    def test_assignment_fighting_tie_raises(self):
        b = NetlistBuilder("t")
        zero = b.const0()
        nl = b.build()
        with pytest.raises(InfeasibleAssignment):
            propagate_constants(nl, {zero: 1})

    def test_non_boolean_assignment_rejected(self):
        b = NetlistBuilder("t")
        a = b.input("a")
        nl = b.build()
        with pytest.raises(ValueError):
            propagate_constants(nl, {a: 2})


class TestReduce:
    def test_figure1_style_subtree_removal(self):
        """Assigning the control to 0 removes the dissimilar NAND subtree."""
        b = NetlistBuilder("t")
        ctrl, r, s, t = b.inputs("ctrl", "r", "s", "t")
        diss = b.nand(ctrl, r)
        sim = b.nand(s, t)
        root = b.nand(sim, diss, b.input("u"))
        b.output(root, name="y")
        nl = b.build()
        red = reduce_netlist(nl, {ctrl: 0})
        gate = red.netlist.driver(root)
        assert diss not in gate.inputs
        assert len(gate.inputs) == 2  # NAND3 became NAND2

    def test_single_input_gate_becomes_inverter(self):
        b = NetlistBuilder("t")
        a, c = b.inputs("a", "c")
        n = b.nand(a, c)
        b.output(n, name="y")
        nl = b.build()
        red = reduce_netlist(nl, {a: 1})
        gate = red.netlist.driver(n)
        assert gate.cell.name == "INV"
        assert gate.inputs == (c,)

    def test_and_becomes_buffer(self):
        b = NetlistBuilder("t")
        a, c = b.inputs("a", "c")
        n = b.and_(a, c)
        b.output(n, name="y")
        nl = b.build()
        red = reduce_netlist(nl, {a: 1})
        assert red.netlist.driver(n).cell.name == "BUF"

    def test_xor_parity_flip(self):
        b = NetlistBuilder("t")
        a, c, d = b.inputs("a", "c", "d")
        n = b.xor(a, c, d)
        b.output(n, name="y")
        nl = b.build()
        red = reduce_netlist(nl, {a: 1})
        gate = red.netlist.driver(n)
        assert gate.cell.name == "XNOR"  # dropped 1 inverts parity
        red0 = reduce_netlist(nl, {a: 0})
        assert red0.netlist.driver(n).cell.name == "XOR"

    def test_mux_select_assignment(self):
        b = NetlistBuilder("t")
        s, a, c = b.inputs("s", "a", "c")
        n = b.mux(s, a, c)
        b.output(n, name="y")
        nl = b.build()
        red = reduce_netlist(nl, {s: 0})
        gate = red.netlist.driver(n)
        assert gate.cell.name == "BUF" and gate.inputs == (a,)

    def test_ff_d_pin_gets_tie(self):
        b = NetlistBuilder("t")
        a, c = b.inputs("a", "c")
        n = b.and_(a, c)
        b.dff(n, output="r_reg_0")
        nl = b.build()
        red = reduce_netlist(nl, {a: 0})  # n becomes constant 0
        driver = red.netlist.driver(n)
        assert driver is not None and driver.cell.name == "TIE0"

    def test_assigned_po_gets_tie(self):
        b = NetlistBuilder("t")
        a = b.input("a")
        n = b.inv(a)
        b.netlist.add_output(n)
        nl = b.build()
        red = reduce_netlist(nl, {a: 0})
        assert red.netlist.driver(n).cell.name == "TIE1"

    def test_reduced_netlist_is_valid(self):
        b = NetlistBuilder("t")
        a, c, d = b.inputs("a", "c", "d")
        n1 = b.nand(a, c)
        n2 = b.nor(n1, d)
        n3 = b.xor(n2, a)
        b.output(n3, name="y")
        nl = b.build()
        red = reduce_netlist(nl, {a: 0})
        assert validate(red.netlist).ok


class TestSweep:
    def test_dead_cone_removed(self):
        b = NetlistBuilder("t")
        a, c = b.inputs("a", "c")
        live = b.nand(a, c)
        dead = b.nor(b.inv(a), c)
        b.output(live, name="y")
        nl = b.build()
        removed = sweep_dead_logic(nl)
        assert removed == 2
        assert nl.driver(dead) is None

    def test_ff_fanin_is_live(self):
        b = NetlistBuilder("t")
        a, c = b.inputs("a", "c")
        n = b.nand(a, c)
        b.dff(n, output="r_reg_0")
        nl = b.build()
        assert sweep_dead_logic(nl) == 0


# ----------------------------------------------------------------------
# The semantic preservation property.
# ----------------------------------------------------------------------

@st.composite
def reduction_cases(draw):
    b = NetlistBuilder("rand")
    inputs = list(b.inputs("i0", "i1", "i2", "i3"))
    nets = list(inputs)
    for _ in range(draw(st.integers(min_value=3, max_value=15))):
        op = draw(st.sampled_from(
            ["nand", "nor", "and_", "or_", "xor", "xnor", "inv", "mux"]
        ))
        if op == "inv":
            nets.append(b.inv(draw(st.sampled_from(nets))))
        elif op == "mux":
            s, x, y = (draw(st.sampled_from(nets)) for _ in range(3))
            nets.append(b.mux(s, x, y))
        else:
            x = draw(st.sampled_from(nets))
            y = draw(st.sampled_from(nets))
            if x == y:
                continue
            nets.append(getattr(b, op)(x, y))
    root = nets[-1]
    b.netlist.add_output(root)
    seed_input = draw(st.sampled_from(inputs))
    seed_value = draw(st.sampled_from([0, 1]))
    return b.build(), root, seed_input, seed_value


@given(reduction_cases())
@settings(max_examples=80, deadline=None)
def test_reduction_preserves_function(case):
    """Reduced circuit == original circuit on all consistent inputs."""
    nl, root, seed_input, seed_value = case
    reduced = reduce_netlist(nl, {seed_input: seed_value})
    free = [i for i in nl.primary_inputs if i != seed_input]
    for assignment in exhaustive_inputs(free):
        assignment[seed_input] = seed_value
        original = evaluate_combinational(nl, assignment)[root]
        new_values = evaluate_combinational(reduced.netlist, assignment)
        result = new_values.get(root, reduced.values.get(root))
        assert result == original
