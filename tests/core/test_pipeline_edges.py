"""Targeted tests for pipeline edge cases and guard rails."""

import pytest

from repro.core import (
    ControlAssignment,
    PipelineConfig,
    identify_words,
    shape_hashing,
)
from repro.core.control import ControlSignalCandidate
from repro.core.pipeline import _assignments
from repro.netlist import NetlistBuilder, Netlist


class TestAssignmentEnumeration:
    def cands(self, spec):
        return [ControlSignalCandidate(net, values) for net, values in spec]

    def test_singles_before_pairs(self):
        candidates = self.cands([("a", (0,)), ("b", (1,))])
        order = list(_assignments(candidates, 2))
        assert order == [{"a": 0}, {"b": 1}, {"a": 0, "b": 1}]

    def test_value_products_enumerated(self):
        candidates = self.cands([("a", (0, 1))])
        assert list(_assignments(candidates, 2)) == [{"a": 0}, {"a": 1}]

    def test_budget_caps_subset_size(self):
        candidates = self.cands([("a", (0,)), ("b", (0,)), ("c", (0,))])
        sizes = {len(a) for a in _assignments(candidates, 2)}
        assert sizes == {1, 2}
        sizes = {len(a) for a in _assignments(candidates, 3)}
        assert 3 in sizes

    def test_empty_candidates(self):
        assert list(_assignments([], 2)) == []


class TestGuardRails:
    def test_max_control_signals_caps_search(self):
        """A partial subgroup with many candidates only explores the cap."""
        b = NetlistBuilder("t")
        controls = [b.inv(b.input(f"c{i}")) for i in range(12)]
        # Bits share one subtree; the dissimilar subtrees contain many
        # common nets that all become candidates.
        sel = b.inv(b.input("sel"))
        bits = []
        for i in range(2):
            common = b.nand(sel, b.input(f"r{i}"))
            tangle = b.nand(*controls[:4], output=None)
            if i:
                diss = b.nand(tangle, b.nor(controls[4], b.input(f"x{i}")))
            else:
                diss = b.nand(tangle, b.nand(controls[4], b.input(f"x{i}")))
            bits.append(b.nand(common, diss))
        nl = b.build()
        config = PipelineConfig(max_control_signals=2)
        result = identify_words(nl, config)
        # Bounded work: the trace can't have tried more than the cap's
        # worth of assignments (2 singles x values + 1 pair x values).
        assert result.trace.num_assignments_tried <= 8

    def test_empty_netlist(self):
        nl = Netlist("empty")
        result = identify_words(nl)
        assert result.words == [] and result.singletons == []

    def test_purely_combinational_netlist(self):
        b = NetlistBuilder("comb")
        a, c = b.inputs("a", "c")
        n1 = b.nand(a, c)
        n2 = b.nand(c, a)
        b.netlist.add_output(n1)
        b.netlist.add_output(n2)
        result = identify_words(b.build())
        assert result.word_of(n1) is not None  # words need no registers

    def test_all_ff_netlist(self):
        """Registers chained directly: nothing combinational to group."""
        b = NetlistBuilder("t")
        net = b.input("a")
        for i in range(4):
            net = b.dff(net, output=f"s{i}_reg_0")
        result = identify_words(b.build())
        assert result.words == []

    def test_single_gate(self):
        b = NetlistBuilder("t")
        a, c = b.inputs("a", "c")
        b.output(b.nand(a, c), name="y")
        result = identify_words(b.build())
        assert result.words == []


class TestControlAssignmentBookkeeping:
    def test_infeasible_assignments_are_skipped_not_fatal(self):
        """A control signal tied to a constant yields an infeasible
        assignment; the pipeline must move on, not crash."""
        b = NetlistBuilder("t")
        one = b.const1()
        sel = b.inv(b.input("sel"))
        bits = []
        for i in range(2):
            common = b.nand(sel, b.input(f"r{i}"))
            # The "control" net is the constant-one: assigning 0 conflicts.
            if i:
                diss = b.nand(one, b.nor(b.input("e"), b.input(f"x{i}")))
            else:
                diss = b.nand(one, b.nand(b.input("e"), b.input(f"x{i}")))
            bits.append(b.nand(common, diss))
        nl = b.build()
        result = identify_words(nl)  # must not raise
        assert result.runtime_seconds >= 0
