"""Property-based invariants of the identification pipeline.

These hypothesis tests state the contracts the rest of the repository
relies on, over randomly generated netlists:

* the identified words always partition the candidate nets (no bit in two
  words),
* the baseline's words are always refinements of Ours' words ("our
  technique never performs worse than the base case"),
* identification is deterministic,
* identification never crashes on structurally valid netlists (the
  robustness property a tool needs before it meets real designs).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PipelineConfig, identify_words, shape_hashing
from repro.netlist import NetlistBuilder, validate


@st.composite
def random_sequential_netlists(draw):
    """Random mapped-looking netlists with registers and shared controls."""
    b = NetlistBuilder("rand")
    nets = list(b.inputs(*[f"i{k}" for k in range(draw(st.integers(2, 5)))]))
    # A couple of "control" nets with high fanout.
    controls = [
        b.inv(draw(st.sampled_from(nets)))
        for _ in range(draw(st.integers(1, 2)))
    ]
    nets.extend(controls)
    n_gates = draw(st.integers(min_value=4, max_value=25))
    for _ in range(n_gates):
        op = draw(st.sampled_from(
            ["nand", "nor", "and_", "or_", "xor", "inv"]
        ))
        if op == "inv":
            nets.append(b.inv(draw(st.sampled_from(nets))))
            continue
        use_control = draw(st.booleans())
        x = draw(st.sampled_from(controls if use_control else nets))
        y = draw(st.sampled_from(nets))
        if x == y:
            continue
        nets.append(getattr(b, op)(x, y))
    # Register a run of recent nets so there are candidate word bits.
    n_regs = draw(st.integers(min_value=2, max_value=6))
    for i, net in enumerate(nets[-n_regs:]):
        try:
            b.dff(net, output=f"r_reg_{i}")
        except Exception:
            pass
    b.netlist.add_output(nets[-1])
    return b.build()


@given(random_sequential_netlists())
@settings(max_examples=40, deadline=None)
def test_words_partition_candidates(netlist):
    result = identify_words(netlist)
    seen = set()
    for word in result.all_generated_words():
        for bit in word.bits:
            assert bit not in seen, f"bit {bit} in two words"
            seen.add(bit)


@given(random_sequential_netlists())
@settings(max_examples=40, deadline=None)
def test_ours_refines_base(netlist):
    """Every baseline word is contained in exactly one of Ours' words."""
    base = shape_hashing(netlist)
    ours = identify_words(netlist)
    for base_word in base.words:
        containing = ours.word_of(base_word.bits[0])
        assert containing is not None, (
            f"base word {base_word} lost entirely"
        )
        assert set(base_word.bits) <= set(containing.bits)


@given(random_sequential_netlists())
@settings(max_examples=25, deadline=None)
def test_identification_is_deterministic(netlist):
    first = identify_words(netlist)
    second = identify_words(netlist)
    assert [w.bits for w in first.words] == [w.bits for w in second.words]
    assert first.singletons == second.singletons
    assert first.control_signals == second.control_signals


@given(
    random_sequential_netlists(),
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=1, max_value=3),
)
@settings(max_examples=25, deadline=None)
def test_never_crashes_across_configs(netlist, depth, max_simultaneous):
    assert validate(netlist).ok
    config = PipelineConfig(depth=depth, max_simultaneous=max_simultaneous)
    result = identify_words(netlist, config)
    assert result.runtime_seconds >= 0
