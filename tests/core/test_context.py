"""AnalysisContext: cache identity, reference-implementation equivalence.

The context is pure bookkeeping — it must produce exactly what the
reference implementations in :mod:`repro.core.hashkey` and
:mod:`repro.netlist.cone` produce, only faster.  Every test here pins one
of those equivalences or one of the identity-sharing guarantees the other
stages rely on.
"""

import sys

import pytest

sys.path.insert(0, "tests")
from fixtures import figure1_netlist

from repro.core.context import AnalysisContext
from repro.core.hashkey import (
    LEAF_TOKEN,
    SignatureIndex,
    hash_key,
    signature_of,
)
from repro.core.reduction import reduce_netlist
from repro.netlist import NetlistBuilder
from repro.netlist.cone import cone_nets as walk_cone_nets
from repro.netlist.cone import extract_cone
from repro.synth.designs import BENCHMARKS


@pytest.fixture(scope="module")
def b03():
    return BENCHMARKS["b03"]()


@pytest.fixture(scope="module")
def fig1():
    netlist, _word_bits = figure1_netlist()
    return netlist


def candidate_bits(netlist):
    return netlist.register_input_nets()


class TestConeCache:
    def test_cone_matches_extract_cone(self, fig1):
        context = AnalysisContext(fig1)
        for bit in candidate_bits(fig1):
            fresh = extract_cone(fig1, bit, context.depth)
            assert context.cone(bit).net == fresh.net
            assert hash_key(context.cone(bit)) == hash_key(fresh)

    def test_repeated_cone_is_same_object(self, fig1):
        context = AnalysisContext(fig1)
        bit = candidate_bits(fig1)[0]
        assert context.cone(bit) is context.cone(bit)

    def test_shared_subtrees_are_shared_objects(self, b03):
        context = AnalysisContext(b03)
        nodes = {}
        duplicates = 0
        for bit in candidate_bits(b03):
            for node in context.cone(bit).walk():
                if node.net in nodes and nodes[node.net] is node:
                    duplicates += 1
                nodes[node.net] = node
        # DAG sharing: at least some node reached from two cones is the
        # same object (b03's bits share fanin logic).
        assert duplicates > 0

    def test_cone_hit_counters_move(self, fig1):
        context = AnalysisContext(fig1)
        bit = candidate_bits(fig1)[0]
        context.cone(bit)
        misses = context.stats.cone_misses
        context.cone(bit)
        assert context.stats.cone_hits == 1
        assert context.stats.cone_misses == misses


class TestKeyEquivalence:
    def test_key_matches_signature_index(self, b03):
        context = AnalysisContext(b03)
        index = SignatureIndex(b03)
        for bit in candidate_bits(b03):
            for levels in range(0, context.depth):
                assert context.key(bit, levels) == index.key(bit, levels)

    def test_precompute_matches_recursive(self, b03):
        recursive = AnalysisContext(b03)
        bulk = AnalysisContext(b03)
        bulk.precompute_keys()
        for net, _gate in b03.drivers():
            for levels in range(1, bulk.depth):
                assert bulk.key(net, levels) == recursive.key(net, levels)

    def test_precompute_is_idempotent(self, fig1):
        context = AnalysisContext(fig1)
        context.precompute_keys()
        misses = context.stats.key_misses
        context.precompute_keys()
        assert context.stats.key_misses == misses

    def test_node_hash_key_matches_module_hash_key(self, fig1):
        context = AnalysisContext(fig1)
        for bit in candidate_bits(fig1):
            cone = context.cone(bit)
            assert context.hash_key(cone) == hash_key(cone)
            for node in cone.walk():
                assert context.hash_key(node) == hash_key(node)


class TestSignatureEquivalence:
    def test_signature_matches_reference(self, b03):
        context = AnalysisContext(b03)
        for bit in candidate_bits(b03):
            expected = signature_of(b03, bit)
            got = context.signature(bit)
            assert got.net == expected.net
            assert got.root_type == expected.root_type
            assert got.sorted_keys == expected.sorted_keys
            assert [s.root_net for s in got.subtrees] == [
                s.root_net for s in expected.subtrees
            ]
            assert [s.key for s in got.subtrees] == [
                s.key for s in expected.subtrees
            ]

    def test_signature_matches_reference_after_precompute(self, b03):
        context = AnalysisContext(b03)
        context.precompute_keys()
        for bit in candidate_bits(b03):
            expected = signature_of(b03, bit)
            got = context.signature(bit)
            assert got.root_type == expected.root_type
            assert got.sorted_keys == expected.sorted_keys

    def test_signature_subtree_cones_resolve(self, fig1):
        context = AnalysisContext(fig1)
        for bit in candidate_bits(fig1):
            for subtree in context.signature(bit).subtrees:
                cone = subtree.cone
                assert cone.net == subtree.root_net
                assert context.hash_key(cone) == subtree.key


class TestConeNets:
    def test_matches_cone_walk(self, b03):
        context = AnalysisContext(b03)
        levels = context.depth - 1
        for bit in candidate_bits(b03):
            driver = b03.driver(bit)
            if driver is None or driver.is_ff:
                continue
            for child in driver.inputs:
                expected = walk_cone_nets(context.cone(child, levels))
                assert context.cone_nets(child, levels) == expected

    def test_leaf_is_singleton(self, fig1):
        context = AnalysisContext(fig1)
        pi = fig1.primary_inputs[0]
        assert context.cone_nets(pi, 3) == frozenset((pi,))


class TestParentInheritance:
    def test_child_reads_parent_keys(self, fig1):
        parent = AnalysisContext(fig1)
        parent.precompute_keys()
        child = AnalysisContext(fig1, parent=parent)
        bit = next(
            b for b in candidate_bits(fig1)
            if fig1.driver(b) is not None and not fig1.driver(b).is_ff
        )
        net = fig1.driver(bit).inputs[0]
        expected = parent.key(net, parent.depth - 1)
        assert child.key(net, child.depth - 1) == expected
        assert child.stats.key_shared_hits >= 1

    def test_child_never_writes_parent(self, fig1):
        parent = AnalysisContext(fig1)
        child = AnalysisContext(fig1, parent=parent)
        for bit in candidate_bits(fig1):
            child.signature(bit)
        assert not parent._keys
        assert not parent._signatures


class TestSignaturesAfterReduction:
    def _netlist_with_control(self):
        # Two bits that differ only through a gate controlled by net "sel".
        builder = NetlistBuilder("ctrl")
        builder.inputs("a0", "a1", "b0", "b1", "sel")
        builder.and_("a0", "b0", output="p0")
        builder.and_("a1", "b1", output="p1")
        builder.or_("p0", "sel", output="q0")
        builder.xor("q0", "b0", output="d0")
        builder.xor("p1", "b1", output="d1")
        builder.dff("d0", output="r0")
        builder.dff("d1", output="r1")
        return builder.build()

    def test_matches_fresh_index_on_reduced(self):
        netlist = self._netlist_with_control()
        context = AnalysisContext(netlist)
        bits = candidate_bits(netlist)
        for bit in bits:  # warm the unreduced caches
            context.signature(bit)
        reduced = reduce_netlist(netlist, {"sel": 0})
        got = context.signatures_after_reduction(
            reduced.netlist, reduced.values, bits
        )
        fresh = SignatureIndex(reduced.netlist, context.depth)
        for sig, bit in zip(got, bits):
            expected = fresh.signature(bit)
            assert sig.net == expected.net
            assert sig.root_type == expected.root_type
            assert sig.sorted_keys == expected.sorted_keys

    def test_untouched_bits_reuse_unreduced_signatures(self):
        netlist = self._netlist_with_control()
        context = AnalysisContext(netlist)
        bits = candidate_bits(netlist)
        originals = {bit: context.signature(bit) for bit in bits}
        reduced = reduce_netlist(netlist, {"sel": 0})
        got = context.signatures_after_reduction(
            reduced.netlist, reduced.values, bits
        )
        # d1's cone never sees "sel": its signature object is reused.
        by_net = {sig.net: sig for sig in got}
        assert by_net["d1"] is originals["d1"]
        assert context.stats.reduced_keys_reused > 0

    def test_depth_validation(self, fig1):
        with pytest.raises(ValueError):
            AnalysisContext(fig1, depth=0)
