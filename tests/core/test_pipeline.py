"""Integration tests for the full identification pipeline (Figure 2)."""

import sys

import pytest

sys.path.insert(0, "tests")

from fixtures import figure1_netlist

from repro.core import (
    PipelineConfig,
    Word,
    baseline_config,
    identify_words,
    shape_hashing,
)
from repro.netlist import NetlistBuilder


class TestFigure1EndToEnd:
    def test_ours_finds_the_three_bit_word(self):
        nl, bits = figure1_netlist()
        result = identify_words(nl)
        assert result.word_of(bits[0]) is not None
        assert set(bits) <= set(result.word_of(bits[0]).bits)

    def test_base_fragments_the_word(self):
        nl, bits = figure1_netlist()
        result = shape_hashing(nl)
        word = result.word_of(bits[0])
        assert word is not None and bits[2] not in word.bits
        assert bits[2] in result.singletons

    def test_control_assignment_recorded(self):
        nl, bits = figure1_netlist()
        result = identify_words(nl)
        word = result.word_of(bits[0])
        assignment = result.control_assignments[word]
        assert assignment.as_dict() == {"U201": 0}
        assert result.control_signals == ("U201",)

    def test_trace_counts_stages(self):
        nl, _ = figure1_netlist()
        trace = identify_words(nl).trace
        assert trace.num_groups >= 1
        assert trace.num_partially_matched_subgroups == 1
        assert trace.num_control_signal_candidates == 2
        assert trace.num_assignments_tried >= 1
        assert trace.num_reductions_that_matched == 1
        assert len(trace.lines()) == 8

    def test_runtime_recorded(self):
        nl, _ = figure1_netlist()
        assert identify_words(nl).runtime_seconds > 0


class TestNeverWorseThanBaseline:
    """The paper: "our technique never performs worse than the base case"."""

    def test_every_base_word_is_contained_in_an_ours_word(self):
        nl, _ = figure1_netlist()
        base = shape_hashing(nl)
        ours = identify_words(nl)
        for base_word in base.words:
            containing = ours.word_of(base_word.bits[0])
            assert containing is not None
            assert set(base_word.bits) <= set(containing.bits)


class TestConfig:
    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            PipelineConfig(depth=0)

    def test_invalid_simultaneous(self):
        with pytest.raises(ValueError):
            PipelineConfig(max_simultaneous=0)

    def test_invalid_grouping(self):
        with pytest.raises(ValueError):
            PipelineConfig(grouping="psychic")

    def test_baseline_requires_no_partial(self):
        nl, _ = figure1_netlist()
        with pytest.raises(ValueError):
            shape_hashing(nl, PipelineConfig())

    def test_baseline_config_factory(self):
        config = baseline_config(depth=3)
        assert not config.allow_partial
        assert config.depth == 3

    def test_pair_assignment_disabled_with_max_one(self):
        """With max_simultaneous=1 the Figure 1 variant that needs a pair
        must stay fragmented."""
        nl, bits = figure1_netlist()
        # Figure 1 heals with a single signal; sanity: config still works.
        result = identify_words(nl, PipelineConfig(max_simultaneous=1))
        assert result.word_of(bits[0]) is not None

    def test_register_grouping_mode(self):
        nl, bits = figure1_netlist()
        result = identify_words(nl, PipelineConfig(grouping="registers"))
        # D nets of the result register are adjacent in FF order too.
        word = result.word_of(bits[0])
        assert word is not None


class TestShallowDepth:
    def test_depth_one_groups_by_root_only(self):
        """At depth 1 every subtree is a leaf: full matches everywhere."""
        nl, bits = figure1_netlist()
        result = identify_words(nl, PipelineConfig(depth=1))
        word = result.word_of(bits[0])
        assert word is not None
        assert set(bits) <= set(word.bits)


class TestWordsAndResults:
    def test_word_rejects_duplicates(self):
        with pytest.raises(ValueError):
            Word(("a", "a"))

    def test_all_generated_words_includes_singletons(self):
        nl, _ = figure1_netlist()
        result = identify_words(nl)
        generated = result.all_generated_words()
        assert len(generated) == len(result.words) + len(result.singletons)

    def test_partition_is_disjoint(self):
        nl, _ = figure1_netlist()
        result = identify_words(nl)
        seen = set()
        for word in result.all_generated_words():
            for bit in word.bits:
                assert bit not in seen
                seen.add(bit)
