"""Hypothesis property tests for the pipeline's structural invariants.

Three load-bearing claims, checked on randomly generated circuits instead
of hand-picked fixtures:

1. ``hash_key`` equality implies structural isomorphism of the expanded
   cones (the key is a *canonical form*, not just a hash — the matching
   stage treats key equality as proof of similarity, so a collision would
   silently merge dissimilar bits).
2. Stage-1 grouping yields a partition: no candidate net appears twice,
   and every grouped net is a flip-flop D input of the netlist.
3. Constant-assignment reduction preserves every observable function on
   all source vectors consistent with the assignment (Section 2.5's only
   semantics-touching step).

All tests run with ``derandomize=True`` so the tier-1 suite stays
deterministic; the fuzz harness covers the randomized frontier.
"""

from __future__ import annotations

import itertools
import os

import pytest

pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st

from repro.core.grouping import group_by_adjacency, root_type_of
from repro.core.hashkey import hash_key
from repro.core.reduction import InfeasibleAssignment, reduce_netlist
from repro.fuzz.generator import GeneratorConfig, generate, sample_seed
from repro.netlist.builder import NetlistBuilder
from repro.netlist.cone import ConeNode, extract_cone
from repro.netlist.simulate import evaluate_combinational

# Tier-1 keeps the example budget small and deterministic; the nightly
# workflow widens it via HYPOTHESIS_PROFILE=nightly.
settings.register_profile(
    "tier1", settings(derandomize=True, deadline=None, max_examples=30)
)
settings.register_profile(
    "nightly", settings(derandomize=True, deadline=None, max_examples=250)
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "tier1"))
SETTINGS = settings()

_CELLS = ("inv", "buf", "and_", "nand", "or_", "nor", "xor")


@st.composite
def random_netlists(draw):
    """Small random combinational netlists over four primary inputs.

    Returns ``(netlist, nets)`` where ``nets`` lists every net in creation
    order (inputs first) — a pool for drawing roots and assignments.
    """
    b = NetlistBuilder("prop")
    nets = list(b.inputs("pa", "pb", "pc", "pd"))
    num_gates = draw(st.integers(min_value=3, max_value=10))
    for _ in range(num_gates):
        cell = draw(st.sampled_from(_CELLS))
        if cell in ("inv", "buf"):
            fanin = [draw(st.sampled_from(nets))]
        else:
            width = draw(st.integers(min_value=2, max_value=3))
            fanin = [draw(st.sampled_from(nets)) for _ in range(width)]
        method = getattr(b, cell, None)
        if method is None:  # or_ / and_ naming differences
            method = getattr(b, cell.rstrip("_"))
        nets.append(method(*fanin))
    # Every sink-less net becomes an output so nothing is trivially dead.
    for net in nets[4:]:
        if not b.netlist.fanouts(net):
            b.netlist.add_output(net)
    return b.netlist, nets


def _isomorphic(a: ConeNode, b: ConeNode) -> bool:
    """Tree isomorphism under child permutation, by explicit backtracking.

    Deliberately *not* implemented by comparing canonical strings — that
    is what :func:`hash_key` does, and this is its independent check.
    """
    if a.is_leaf or b.is_leaf:
        return a.is_leaf and b.is_leaf
    if a.gate_type != b.gate_type or len(a.children) != len(b.children):
        return False
    for permutation in itertools.permutations(range(len(b.children))):
        if all(
            _isomorphic(child, b.children[permutation[i]])
            for i, child in enumerate(a.children)
        ):
            return True
    return False


class TestHashKeyIsomorphism:
    @SETTINGS
    @given(random_netlists(), st.data())
    def test_equal_keys_imply_isomorphic_cones(self, built, data):
        netlist, nets = built
        internal = [n for n in nets[4:]]
        root_a = data.draw(st.sampled_from(internal), label="root_a")
        root_b = data.draw(st.sampled_from(internal), label="root_b")
        cone_a = extract_cone(netlist, root_a, depth=3)
        cone_b = extract_cone(netlist, root_b, depth=3)
        if hash_key(cone_a) == hash_key(cone_b):
            assert _isomorphic(cone_a, cone_b), (
                f"hash_key collision: {root_a} and {root_b} share a key "
                f"but their cones are not isomorphic"
            )

    @SETTINGS
    @given(random_netlists(), st.data())
    def test_isomorphic_cones_share_keys(self, built, data):
        # The converse: the canonical form must not distinguish
        # permutation-equivalent cones.
        netlist, nets = built
        internal = [n for n in nets[4:]]
        root = data.draw(st.sampled_from(internal), label="root")
        cone = extract_cone(netlist, root, depth=3)
        assert hash_key(cone) == hash_key(_mirror(cone))


def _mirror(node: ConeNode) -> ConeNode:
    """The same cone with every node's children reversed."""
    return ConeNode(
        net=node.net,
        gate=node.gate,
        children=tuple(_mirror(child) for child in reversed(node.children)),
    )


class TestGroupingPartition:
    @SETTINGS
    @given(st.integers(min_value=0, max_value=2**16))
    def test_grouping_is_a_partition_of_adjacent_runs(self, seed):
        sample = generate(
            sample_seed(seed, 0),
            GeneratorConfig(min_words=2, max_words=4),
        )
        netlist = sample.netlist
        positions = netlist.file_positions()
        seen = set()
        for group in group_by_adjacency(netlist):
            assert len(group) >= 2, "grouping emitted a singleton run"
            types = set()
            for net in group:
                assert net not in seen, f"net {net} grouped twice"
                seen.add(net)
                driver = netlist.driver(net)
                assert driver is not None and driver.cell.combinational, (
                    f"grouped net {net} has no combinational driver"
                )
                types.add(root_type_of(driver))
            assert len(types) == 1, (
                f"group mixes root types {sorted(types)}"
            )
            slots = [positions[netlist.driver(net).name] for net in group]
            assert slots == list(range(slots[0], slots[0] + len(slots))), (
                "group members are not adjacent netlist lines"
            )


class TestReductionPreservesFunction:
    @SETTINGS
    @given(random_netlists(), st.data())
    def test_consistent_vectors_agree(self, built, data):
        netlist, nets = built
        internal = [n for n in nets[4:]]
        count = data.draw(
            st.integers(min_value=1, max_value=min(2, len(internal))),
            label="num_assigned",
        )
        assigned = {}
        for i in range(count):
            net = data.draw(st.sampled_from(internal), label=f"net{i}")
            assigned[net] = data.draw(
                st.integers(min_value=0, max_value=1), label=f"value{i}"
            )
        try:
            reduced = reduce_netlist(netlist, assigned).netlist
        except InfeasibleAssignment:
            # Contradictory seed values — the pipeline skips these too.
            return
        sources = list(netlist.primary_inputs)
        observable = [
            n for n in netlist.primary_outputs if n not in assigned
        ]
        for bits in itertools.product((0, 1), repeat=len(sources)):
            vector = dict(zip(sources, bits))
            original = evaluate_combinational(netlist, vector)
            if any(original.get(n) != v for n, v in assigned.items()):
                continue  # inconsistent with the assignment
            after = evaluate_combinational(reduced, vector)
            for net in observable:
                assert original[net] == after[net], (
                    f"reduction under {assigned} changed {net}: "
                    f"{original[net]} -> {after[net]}"
                )
