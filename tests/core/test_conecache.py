"""Unit tests for the tiered canonical-cone cache (repro.core.conecache).

The cone cache replays reduction-search outcomes across runs, processes,
and designs (DESIGN.md §12).  Everything here is correctness-critical:
an unsound canonical digest would silently replay the wrong assignment,
so the digest tests pin isomorphism-invariance and structure-sensitivity
directly, and the end-to-end tests assert cone-cache-on ≡ cone-cache-off
byte identity on the paper's Figure-1 circuit.
"""

import os
import sys

import pytest

from repro.core import PipelineConfig, identify_words
from repro.core.conecache import (
    CanonicalCone,
    ConeCacheChain,
    ConeCacheTier,
    ProcessConeCache,
    canonicalize_subgroup,
    cone_fingerprint,
    process_cone_cache,
    valid_cone_entry,
)
from repro.core.control import ControlSignalCandidate
from repro.core.words import CacheStats
from repro.netlist import NetlistBuilder
from repro.store import result_digest

sys.path.insert(0, os.path.dirname(os.path.dirname(__file__)))
from fixtures import figure1_netlist  # noqa: E402


def _tree(prefix):
    """A 2-bit subcircuit: per bit, NAND(ctl, INV(leaf)); nets named
    with ``prefix`` so two calls differ in every name."""
    b = NetlistBuilder(prefix)
    ctl = b.input(f"{prefix}_ctl")
    bits = []
    for i in range(2):
        leaf = b.input(f"{prefix}_leaf{i}")
        inv = b.inv(leaf, output=f"{prefix}_inv{i}")
        bits.append(b.nand(ctl, inv, output=f"{prefix}_bit{i}"))
    netlist = b.build()
    candidates = [ControlSignalCandidate(net=ctl, values=(0,))]
    return netlist, bits, candidates


class TestCanonicalDigest:
    def test_digest_is_invariant_under_renaming(self):
        """Two structurally identical subgroups with disjoint net-name
        universes share one canonical digest (the cross-design case)."""
        a = canonicalize_subgroup(*_tree("alpha"))
        b = canonicalize_subgroup(*_tree("zz"))
        assert a is not None and b is not None
        assert a.digest == b.digest
        assert a.digest.startswith("cone:")

    def test_id_maps_are_inverse_and_local(self):
        netlist, bits, candidates = _tree("alpha")
        cone = canonicalize_subgroup(netlist, bits, candidates)
        assert cone.net_of == {v: k for k, v in cone.id_of.items()}
        # The candidate control net is part of the traversal.
        assert candidates[0].net in cone.id_of

    def test_digest_changes_with_structure(self):
        netlist, bits, candidates = _tree("alpha")
        base = canonicalize_subgroup(netlist, bits, candidates)
        edited = netlist.copy()
        gate = edited.driver(bits[0])
        from repro.netlist.cells import NOR

        edited.replace_gate(gate.name, NOR, gate.inputs)
        assert (
            canonicalize_subgroup(edited, bits, candidates).digest
            != base.digest
        )

    def test_symmetric_bits_may_commute_asymmetric_ones_must_not(self):
        """Reversing the bits of a fully symmetric tree relabels it onto
        itself (same digest — sound, the bits are interchangeable), but
        structurally distinct bits must keep their order in the digest."""
        netlist, bits, candidates = _tree("alpha")
        symmetric = canonicalize_subgroup(netlist, bits, candidates)
        assert (
            canonicalize_subgroup(
                netlist, list(reversed(bits)), candidates
            ).digest
            == symmetric.digest
        )

        b = NetlistBuilder("asym")
        ctl = b.input("ctl")
        shallow = b.nand(ctl, b.input("leaf0"), output="bit0")
        deep = b.nand(ctl, b.inv(b.input("leaf1")), output="bit1")
        asym = b.build()
        cands = [ControlSignalCandidate(net=ctl, values=(0,))]
        assert (
            canonicalize_subgroup(asym, [shallow, deep], cands).digest
            != canonicalize_subgroup(asym, [deep, shallow], cands).digest
        )

    def test_digest_covers_the_candidate_value_list(self):
        netlist, bits, candidates = _tree("alpha")
        base = canonicalize_subgroup(netlist, bits, candidates)
        widened = canonicalize_subgroup(netlist, bits, [
            ControlSignalCandidate(net=candidates[0].net, values=(0, 1))
        ])
        assert base.digest != widened.digest

    def test_unknown_candidate_net_refuses_to_canonicalize(self):
        """A candidate outside the traversal aborts digesting (an
        unsound digest is worse than a missed cache)."""
        netlist, bits, _ = _tree("alpha")
        foreign = [ControlSignalCandidate(net="not_in_cone", values=(0,))]
        assert canonicalize_subgroup(netlist, bits, foreign) is None


class TestValidConeEntry:
    def test_accepts_a_well_formed_entry(self):
        entry = {
            "runs": [2, 1],
            "assignment": {"n3": 0},
            "tried": 2,
            "infeasible": 1,
        }
        assert valid_cone_entry(entry, 3)
        assert valid_cone_entry(
            {"runs": [3], "assignment": None, "tried": 0, "infeasible": 0},
            3,
        )

    @pytest.mark.parametrize("entry", [
        "nope",
        {"runs": [2], "assignment": None, "tried": 0, "infeasible": 0},
        {"runs": [2, 0, 1], "assignment": None, "tried": 0, "infeasible": 0},
        {"runs": [3], "assignment": {"n1": 2}, "tried": 0, "infeasible": 0},
        {"runs": [3], "assignment": None, "tried": -1, "infeasible": 0},
        {"runs": [3], "assignment": None, "tried": 0},
    ])
    def test_rejects_malformed_entries(self, entry):
        assert not valid_cone_entry(entry, 3)


class TestProcessConeCache:
    def test_round_trip_is_fingerprint_scoped(self):
        tier = ProcessConeCache()
        entry = {"runs": [1], "assignment": None, "tried": 0,
                 "infeasible": 0}
        tier.commit_many({"cone:a": entry}, "fp1")
        assert tier.probe_many(["cone:a"], "fp1") == {"cone:a": entry}
        assert tier.probe_many(["cone:a"], "fp2") == {}
        assert tier.probe_many(["cone:b"], "fp1") == {}

    def test_lru_evicts_least_recently_probed(self):
        tier = ProcessConeCache(max_entries=2)
        e = {"runs": [1], "assignment": None, "tried": 0, "infeasible": 0}
        tier.commit_many({"cone:a": e, "cone:b": e}, "fp")
        tier.probe_many(["cone:a"], "fp")  # refresh a; b is now oldest
        tier.commit_many({"cone:c": e}, "fp")
        assert len(tier) == 2
        assert tier.probe_many(["cone:b"], "fp") == {}
        assert set(tier.probe_many(["cone:a", "cone:c"], "fp")) == {
            "cone:a", "cone:c"
        }

    def test_clear_and_cap_validation(self):
        tier = ProcessConeCache(max_entries=1)
        e = {"runs": [1], "assignment": None, "tried": 0, "infeasible": 0}
        tier.commit_many({"cone:a": e}, "fp")
        tier.clear()
        assert len(tier) == 0
        with pytest.raises(ValueError):
            ProcessConeCache(max_entries=0)

    def test_process_singleton_is_shared(self):
        assert process_cone_cache() is process_cone_cache()


class _DictTier(ConeCacheTier):
    """A minimal in-memory tier for chain tests."""

    def __init__(self, name):
        self.name = name
        self.entries = {}

    def probe_many(self, digests, fingerprint):
        return {
            d: self.entries[(fingerprint, d)]
            for d in digests
            if (fingerprint, d) in self.entries
        }

    def commit_many(self, entries, fingerprint):
        for digest, entry in entries.items():
            self.entries[(fingerprint, digest)] = entry


class TestConeCacheChain:
    ENTRY = {"runs": [1], "assignment": None, "tried": 0, "infeasible": 0}

    def test_probe_promotes_store_hits_into_earlier_tiers(self):
        fast, slow = _DictTier("process"), _DictTier("store")
        slow.commit_many({"cone:a": self.ENTRY}, cone_fingerprint(
            PipelineConfig()))
        chain = ConeCacheChain(
            cone_fingerprint(PipelineConfig()), [fast, slow]
        )
        assert chain.probe_many(["cone:a"]) == {"cone:a": self.ENTRY}
        assert chain.hits == {"process": 0, "store": 1}
        # Promoted: the second probe is answered by the first tier.
        assert chain.probe_many(["cone:a"]) == {"cone:a": self.ENTRY}
        assert chain.hits == {"process": 1, "store": 1}

    def test_accounting_is_per_request_not_per_digest(self):
        """A design instantiating one cone three times records three
        answered searches — that is what its hit rate means."""
        tier = _DictTier("process")
        tier.commit_many({"cone:a": self.ENTRY}, "fp")
        chain = ConeCacheChain("fp", [tier])
        found = chain.probe_many(["cone:a", "cone:a", "cone:a", "cone:b"])
        assert set(found) == {"cone:a"}
        assert chain.hits == {"process": 3}
        assert chain.misses == 1

    def test_commit_writes_through_every_tier(self):
        fast, slow = _DictTier("process"), _DictTier("store")
        chain = ConeCacheChain("fp", [fast, slow])
        chain.commit_many({"cone:a": self.ENTRY})
        chain.commit_many({})  # no-op, not counted
        assert chain.commits == 1
        assert fast.probe_many(["cone:a"], "fp")
        assert slow.probe_many(["cone:a"], "fp")

    def test_add_to_maps_tier_names_onto_cache_stats(self):
        chain = ConeCacheChain("fp", [_DictTier("process"),
                                      _DictTier("store")])
        chain.hits = {"process": 2, "store": 3}
        chain.misses = 4
        chain.commits = 5
        stats = CacheStats()
        chain.add_to(stats)
        assert stats.cone_tier_process_hits == 2
        assert stats.cone_tier_store_hits == 3
        assert stats.cone_tier_misses == 4
        assert stats.cone_tier_commits == 5


class TestConeFingerprint:
    def test_neutral_fields_do_not_change_the_fingerprint(self):
        assert cone_fingerprint(PipelineConfig()) == cone_fingerprint(
            PipelineConfig(jobs=8, strict=True, deadline_s=1.0,
                           max_cone_gates=10)
        )

    def test_fingerprint_fields_do_change_it(self):
        base = cone_fingerprint(PipelineConfig())
        assert base != cone_fingerprint(PipelineConfig(depth=3))
        assert base != cone_fingerprint(PipelineConfig(max_simultaneous=1))


class TestEndToEnd:
    """Cone caching must be invisible in the output (the determinism
    contract) and visible only in the CacheStats tier counters."""

    def _same(self, a, b):
        assert a.words == b.words
        assert a.singletons == b.singletons
        assert a.control_assignments == b.control_assignments
        assert a.trace.counter_dict() == b.trace.counter_dict()
        assert result_digest(a) == result_digest(b)

    def test_cone_cache_on_equals_off_and_warm_run_replays(self):
        netlist, _ = figure1_netlist()
        config = PipelineConfig()
        plain = identify_words(netlist, config)
        tier = ProcessConeCache()
        cold = identify_words(netlist, config, cone_cache=[tier])
        warm = identify_words(netlist, config, cone_cache=[tier])
        self._same(plain, cold)
        self._same(plain, warm)
        assert cold.trace.cache.cone_tier_commits > 0
        assert cold.trace.cache.cone_tier_process_hits == 0
        assert warm.trace.cache.cone_tier_process_hits > 0
        assert warm.trace.cache.cone_tier_misses == 0

    def test_renamed_design_hits_the_same_tier(self):
        """Isomorphic designs with different net names share entries —
        the cross-design promise, in miniature."""
        netlist, _ = figure1_netlist()
        renamed = netlist.copy("other_top")
        config = PipelineConfig()
        tier = ProcessConeCache()
        identify_words(netlist, config, cone_cache=[tier])
        warm = identify_words(renamed, config, cone_cache=[tier])
        assert warm.trace.cache.cone_tier_process_hits > 0
        assert warm.trace.cache.cone_tier_misses == 0

    def test_fault_hook_disables_cone_caching(self):
        netlist, _ = figure1_netlist()
        calls = []
        config = PipelineConfig(fault_hook=lambda site: calls.append(site))
        tier = ProcessConeCache()
        result = identify_words(netlist, config, cone_cache=[tier])
        assert len(tier) == 0
        assert result.trace.cache.cone_tier_commits == 0

    def test_cone_cache_false_opts_out(self):
        netlist, _ = figure1_netlist()
        result = identify_words(netlist, PipelineConfig(), cone_cache=False)
        stats = result.trace.cache
        assert stats.cone_tier_commits == 0
        assert stats.cone_tier_misses == 0
