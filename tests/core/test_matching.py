"""Tests for grouping (Section 2.2) and partial matching (Section 2.3)."""

import pytest

from repro.core import (
    MatchKind,
    compare_bits,
    form_subgroups,
    group_by_adjacency,
    group_register_inputs,
    root_type_of,
    signature_of,
)
from repro.core.matching import _merge_compare
from repro.netlist import NetlistBuilder


class TestMergeCompare:
    def test_identical_lists_fully_match(self):
        matched, a, b = _merge_compare(["k1", "k2"], ["k1", "k2"])
        assert matched == ["k1", "k2"]
        assert a == [] and b == []

    def test_disjoint_lists(self):
        matched, a, b = _merge_compare(["a"], ["b"])
        assert matched == []
        assert a == ["a"] and b == ["b"]

    def test_duplicates_pair_one_to_one(self):
        matched, a, b = _merge_compare(["k", "k", "k"], ["k"])
        assert matched == ["k"]
        assert a == ["k", "k"] and b == []

    def test_interleaved(self):
        matched, a, b = _merge_compare(["a", "c", "e"], ["b", "c", "d"])
        assert matched == ["c"]
        assert a == ["a", "e"] and b == ["b", "d"]


def build_group(n_full=2, n_partial=1, n_other=1):
    """Bits with shared subtree X plus per-class second subtrees."""
    b = NetlistBuilder("t")
    sel = b.input("sel")
    nsel = b.inv(sel)
    bits = []
    for i in range(n_full):
        r = b.input(f"rf{i}")
        shared = b.nand(nsel, r)           # key X
        extra = b.nand(sel, b.input(f"xf{i}"))  # key Y
        bits.append(b.nand(shared, extra))
    for i in range(n_partial):
        r = b.input(f"rp{i}")
        shared = b.nand(nsel, r)           # key X again
        extra = b.nor(sel, b.input(f"xp{i}"))   # key Z (differs)
        bits.append(b.nand(shared, extra))
    for i in range(n_other):
        r = b.input(f"ro{i}")
        bits.append(b.nor(b.inv(r), b.input(f"xo{i}")))  # NOR root
    return b.build(), bits


class TestCompareBits:
    def test_full_match(self):
        nl, bits = build_group(n_full=2, n_partial=0, n_other=0)
        s0, s1 = (signature_of(nl, n) for n in bits)
        assert compare_bits(s0, s1).kind == MatchKind.FULL

    def test_partial_match(self):
        nl, bits = build_group(n_full=1, n_partial=1, n_other=0)
        s0, s1 = (signature_of(nl, n) for n in bits)
        outcome = compare_bits(s0, s1)
        assert outcome.kind == MatchKind.PARTIAL
        assert len(outcome.matched_keys) == 1
        assert len(outcome.unmatched_a) == 1
        assert len(outcome.unmatched_b) == 1

    def test_root_type_mismatch_is_none(self):
        nl, bits = build_group(n_full=1, n_partial=0, n_other=1)
        s0, s1 = (signature_of(nl, n) for n in bits)
        assert compare_bits(s0, s1).kind == MatchKind.NONE

    def test_leaf_only_overlap_not_partial(self):
        """Sharing only anonymous leaves must not count as partial."""
        b = NetlistBuilder("t")
        x1 = b.nand(b.input("a"), b.nand(b.input("c"), b.input("d")))
        x2 = b.nand(b.input("e"), b.nor(b.input("f"), b.input("g")))
        nl = b.build()
        s1, s2 = signature_of(nl, x1), signature_of(nl, x2)
        # Both have one "$" subtree; the structured subtrees differ.
        assert compare_bits(s1, s2).kind == MatchKind.NONE

    def test_leaf_bits_never_match(self):
        b = NetlistBuilder("t")
        a, c = b.inputs("a", "c")
        n = b.nand(a, c)
        nl = b.build()
        assert compare_bits(
            signature_of(nl, a), signature_of(nl, n)
        ).kind == MatchKind.NONE


class TestFormSubgroups:
    def test_full_chain_single_subgroup(self):
        nl, bits = build_group(n_full=3, n_partial=0, n_other=0)
        sigs = [signature_of(nl, n) for n in bits]
        groups = form_subgroups(sigs)
        assert len(groups) == 1
        assert groups[0].fully_matched

    def test_partial_chain_records_dissimilar_subtrees(self):
        nl, bits = build_group(n_full=2, n_partial=1, n_other=0)
        sigs = [signature_of(nl, n) for n in bits]
        groups = form_subgroups(sigs)
        assert len(groups) == 1
        sg = groups[0]
        assert sg.partially_matched and not sg.fully_matched
        # Every bit has exactly one subtree outside the common multiset.
        assert all(len(v) == 1 for v in sg.dissimilar.values())

    def test_partial_disabled_for_baseline(self):
        nl, bits = build_group(n_full=2, n_partial=1, n_other=0)
        sigs = [signature_of(nl, n) for n in bits]
        groups = form_subgroups(sigs, allow_partial=False)
        assert [len(g.bits) for g in groups] == [2, 1]

    def test_chain_breaks_on_no_match(self):
        nl, bits = build_group(n_full=2, n_partial=0, n_other=2)
        sigs = [signature_of(nl, n) for n in bits]
        groups = form_subgroups(sigs)
        assert [len(g.bits) for g in groups] == [2, 2]
        # The NOR-rooted pair fully matches itself.
        assert groups[1].fully_matched

    def test_comparison_is_adjacent_only(self):
        """A bit joins only its predecessor's subgroup (paper Section 2.3)."""
        nl, bits = build_group(n_full=1, n_partial=0, n_other=1)
        # order: full, other, full -> the two 'full' bits cannot group.
        sigs = [signature_of(nl, n) for n in bits]
        extra_nl, extra_bits = build_group(n_full=1, n_partial=0, n_other=0)
        sigs = [sigs[0], sigs[1], sigs[0]]
        groups = form_subgroups(sigs)
        assert [len(g.bits) for g in groups] == [1, 1, 1]


class TestStage1Grouping:
    def test_adjacent_same_root_type_groups(self):
        b = NetlistBuilder("t")
        ins = b.inputs(*[f"i{k}" for k in range(8)])
        n1 = b.nand(ins[0], ins[1])
        n2 = b.nand(ins[2], ins[3])
        n3 = b.nor(ins[4], ins[5])
        n4 = b.nor(ins[6], ins[7])
        nl = b.build()
        assert group_by_adjacency(nl) == [[n1, n2], [n3, n4]]

    def test_arity_distinguishes_types(self):
        b = NetlistBuilder("t")
        ins = b.inputs(*[f"i{k}" for k in range(5)])
        n1 = b.nand(ins[0], ins[1])
        n2 = b.nand(ins[2], ins[3], ins[4])
        nl = b.build()
        assert group_by_adjacency(nl) == []  # two singletons dropped

    def test_ffs_break_runs(self):
        b = NetlistBuilder("t")
        a, c = b.inputs("a", "c")
        n1 = b.nand(a, c)
        b.dff(n1, output="r_reg_0")
        n2 = b.nand(n1, "r_reg_0")
        nl = b.build()
        assert group_by_adjacency(nl) == []

    def test_root_type_of(self):
        b = NetlistBuilder("t")
        a, c, d = b.inputs("a", "c", "d")
        n = b.nand(a, c, d)
        nl = b.build()
        assert root_type_of(nl.driver(n)) == "NAND3"

    def test_register_grouping_variant(self):
        b = NetlistBuilder("t")
        a, c = b.inputs("a", "c")
        d_nets = [b.nand(a, c), b.nand(c, a), b.nor(a, c)]
        for i, d in enumerate(d_nets):
            b.dff(d, output=f"w_reg_{i}")
        nl = b.build()
        groups = group_register_inputs(nl)
        assert groups == [[d_nets[0], d_nets[1]]]
