#!/usr/bin/env python3
"""Hardware-Trojan triage — the paper's motivating use case.

The paper frames word identification as "the major step to find high-level
modules and analyze their correct functionality in the presence of
Hardware Trojans".  This example plays out that scenario:

1. synthesize a benchmark design (the b12 game controller),
2. let the adversary insert a rare-trigger Trojan into the flat netlist,
3. run word identification on the tampered netlist,
4. show that (a) word recovery survives the tampering, so the analyst can
   still carve the sea of gates into architectural words, and (b) the
   Trojan's own gates end up *outside* every recovered word — unexplained
   logic that word-level triage flags for inspection.

Run: ``python examples/trojan_hunt.py``
"""

from repro.core import identify_words
from repro.eval import evaluate, extract_reference_words
from repro.synth import insert_trojan
from repro.synth.designs import BENCHMARKS


def main():
    netlist = BENCHMARKS["b12"]()
    print(f"victim design: {netlist}")

    clean_result = identify_words(netlist)
    reference = extract_reference_words(netlist)
    clean_metrics = evaluate(reference, clean_result)
    print(
        f"before tampering: {clean_metrics.num_full}/"
        f"{clean_metrics.num_reference_words} reference words fully found"
    )

    spec = insert_trojan(netlist, trigger_width=4, seed=2015)
    print(f"\nadversary inserts a Trojan:")
    print(f"  trigger taps registers: {', '.join(spec.trigger_nets)}")
    print(f"  payload XORs net {spec.victim_net!r} "
          f"(consumers rewired to {spec.payload_output!r})")
    print(f"  tampered netlist: {netlist}")

    result = identify_words(netlist)
    metrics = evaluate(reference, result)
    print(
        f"\nafter tampering: {metrics.num_full}/"
        f"{metrics.num_reference_words} reference words fully found "
        f"(fragmentation {metrics.fragmentation_rate:.2f})"
    )

    # Architectural words = recovered words containing reference bits.
    # Trojan gates must not hide inside them.
    reference_bits = {bit for word in reference for bit in word.bits}
    architectural_nets = set()
    for word in result.words:
        if set(word.bits) & reference_bits:
            architectural_nets.update(word.bits)
    trojan_nets = [
        g.output for g in netlist.gates_in_file_order()
        if g.name.startswith("_troj")
    ]
    hidden = [n for n in trojan_nets if n in architectural_nets]
    print(
        f"\ntrojan nets absorbed into architectural words: "
        f"{len(hidden)}/{len(trojan_nets)}"
    )
    print(
        "\nword-level triage: word recovery is unchanged by the tampering, "
        "so the analyst can still carve the netlist into architectural "
        "words — and none of them swallow the Trojan's gates, which remain "
        "as unexplained logic to inspect."
    )


if __name__ == "__main__":
    main()
