#!/usr/bin/env python3
"""Quickstart: identify words in a gate-level netlist.

Builds a small design at the RTL level, pushes it through the bundled
synthesis flow (producing the kind of flat, optimized, technology-mapped
netlist the paper reverse engineers), then runs both identification
techniques and prints what they found.

Run::

    python examples/quickstart.py            # summary
    python examples/quickstart.py --trace    # + the Figure 2 stage trace
"""

import argparse

from repro.core import identify_words, shape_hashing
from repro.eval import evaluate, extract_reference_words
from repro.synth import Concat, Const, Module, Mux, synthesize


def build_design():
    """A tiny peripheral: two data registers, a selected register, an FSM."""
    m = Module("quickstart", reset_input="rst")
    bus = m.input("bus", 8)
    aux = m.input("aux", 8)
    cmd = m.input("cmd", 3)
    strobe = m.input("strobe")

    # Decoded command strobes, as a bus peripheral would compute them.
    # (Deriving enables from logic rather than raw pins matters: each
    # enable's fanin cone gives its register a distinctive local shape.)
    load = cmd.eq(Const(1, 3)) & strobe
    select = cmd.eq(Const(2, 3)) | cmd.bit(2)

    # Plain load-enable registers: every bit has the same local structure.
    hold = m.register("hold", 8)
    hold.next = Mux(load, bus, hold.ref())
    stage = m.register("stage", 8)
    stage.next = Mux(select, aux, stage.ref())

    # A three-way selected register whose third source zero-extends a
    # 6-bit field: constant folding makes two bits structurally different,
    # which defeats plain shape matching — the paper's scenario.
    result = m.register("result", 8)
    result.next = Mux(
        load,
        bus,
        Mux(select, aux, Concat((bus.slice(0, 5), Const(0, 2)))),
    )

    # A control register with heterogeneous bits (typically unrecoverable).
    m.register("mode", 3).next = Concat((
        load & bus.bit(0),
        select | bus.bit(7),
        ~(load & select),
    ))

    m.output("out", result.ref())
    m.output("mode_out", m.registers["mode"].ref())
    return m


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--trace", action="store_true",
        help="print the per-stage trace (the paper's Figure 2 flow)",
    )
    args = parser.parse_args()

    netlist = synthesize(build_design())
    print(f"synthesized: {netlist}")

    reference = extract_reference_words(netlist)
    print(f"\ngolden reference words (from register names):")
    for word in reference:
        print(f"  {word.register:<8} {word.width} bits: {', '.join(word.bits)}")

    base = shape_hashing(netlist)
    ours = identify_words(netlist)

    for label, result in (("shape hashing [6]", base), ("control-signal technique", ours)):
        metrics = evaluate(reference, result)
        print(f"\n{label}:")
        print(f"  multi-bit words found: {len(result.words)}")
        print(f"  reference words fully found: {metrics.num_full}/{metrics.num_reference_words}")
        print(f"  fragmentation rate: {metrics.fragmentation_rate:.2f}")
        for word in result.words:
            marker = ""
            if word in result.control_assignments:
                marker = f"   <- unlocked by {result.control_assignments[word]}"
            print(f"    {word}{marker}")

    if ours.control_signals:
        print(f"\nrelevant control signals used: {', '.join(ours.control_signals)}")

    if args.trace:
        print("\nstage trace (Figure 2):")
        for line in ours.trace.lines():
            print(f"  {line}")


if __name__ == "__main__":
    main()
