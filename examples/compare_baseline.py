#!/usr/bin/env python3
"""Side-by-side comparison on any Table 1 benchmark.

Reproduces one row of the paper's Table 1 and then drills into the
per-word outcomes: which reference words each technique found fully,
which fragmented (and into how many pieces), which were missed — plus the
control signals that bought each recovered word.

Run::

    python examples/compare_baseline.py            # default: b08
    python examples/compare_baseline.py b12 b15    # any benchmarks
    python examples/compare_baseline.py --list
"""

import argparse

from repro.eval import render_table
from repro.eval.runner import run_benchmark
from repro.synth.designs import BENCHMARKS

_STATUS_GLYPH = {"full": "FULL   ", "partial": "PARTIAL", "not_found": "missed "}


def describe(run):
    print(render_table([run.row()], include_average=False))
    print()
    by_register = {
        outcome.reference.register: outcome
        for outcome in run.base_metrics.outcomes
    }
    print(f"{'word':<14} {'width':>5}   {'Base':<16} {'Ours':<16}")
    for ours_outcome in run.ours_metrics.outcomes:
        register = ours_outcome.reference.register
        base_outcome = by_register[register]

        def cell(outcome):
            text = _STATUS_GLYPH[outcome.status]
            if outcome.status == "partial":
                text += f" x{outcome.fragments}"
            return text

        print(
            f"{register:<14} {ours_outcome.reference.width:>5}   "
            f"{cell(base_outcome):<16} {cell(ours_outcome):<16}"
        )
    if run.ours_result.control_assignments:
        print("\ncontrol-signal assignments that unlocked words:")
        for word, assignment in run.ours_result.control_assignments.items():
            print(f"  {assignment}  ->  {word}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("benchmarks", nargs="*", default=["b08"])
    parser.add_argument("--list", action="store_true", help="list benchmarks")
    args = parser.parse_args()
    if args.list:
        print(" ".join(BENCHMARKS))
        return
    for name in args.benchmarks or ["b08"]:
        print(f"\n=== {name} ===")
        netlist = BENCHMARKS[name]()
        describe(run_benchmark(netlist))


if __name__ == "__main__":
    main()
