#!/usr/bin/env python3
"""The full reverse-engineering loop the paper positions itself in.

The paper's technique is "the first and major step" of a longer pipeline:
identify words, then propagate them, then recognize the high-level
components they connect ("the computational unit responsible for the
addition can be more easily identified, if first, the ... words are
identified").  This example runs the whole loop on a small ALU-like
design, from flat mapped netlist to named operators:

1. word identification (control-signal technique),
2. WordRev-style word propagation to a fixpoint,
3. datapath-operator recognition with functional verification.

Run: ``python examples/full_reverse_engineering.py``
"""

from repro.core import identify_operators, identify_words, propagate_words
from repro.eval import extract_reference_words
from repro.synth import Concat, Const, Module, Mux, synthesize


def build_alu_design():
    """A small write-back datapath: ALU + operand/result registers."""
    m = Module("mini_alu", reset_input="rst")
    bus = m.input("bus", 8)
    opsel = m.input("opsel", 2)
    wr_a = m.input("wr_a")
    wr_b = m.input("wr_b")

    op_a = m.register("op_a", 8)
    op_a.next = Mux(wr_a & ~wr_b, bus, op_a.ref())
    op_b = m.register("op_b", 8)
    op_b.next = Mux(wr_b & ~wr_a, bus, op_b.ref())

    a, b = op_a.ref(), op_b.ref()
    alu = Mux(
        opsel.bit(0),
        Mux(opsel.bit(1), a + b, a & b),
        Mux(opsel.bit(1), a ^ b, a | b),
    )
    res = m.register("res", 8)
    res.next = alu
    m.output("result", res.ref())
    return m


def main():
    netlist = synthesize(build_alu_design())
    print(f"flat mapped netlist: {netlist}")
    print("(no hierarchy, no names except the register-output convention)\n")

    print("step 1 — word identification:")
    identified = identify_words(netlist)
    for word in identified.words:
        print(f"  [{word.width:>2}] {word}")

    print("\nstep 2 — word propagation (WordRev [6] downstream stage):")
    grown = propagate_words(netlist, identified.words)
    print(f"  {len(identified.words)} seed words -> "
          f"{len(grown.words)} after {grown.rounds} rounds "
          f"({len(grown.derived)} derived)")
    for word in grown.derived:
        print(f"  [{word.width:>2}] {word}")

    print("\nstep 3 — operator recognition (functionally verified):")
    operators = identify_operators(netlist, grown.words)
    for match in operators:
        if match.kind == "buf":
            continue
        print(f"  {match.describe()}")

    kinds = {m.kind for m in operators if m.verified}
    print(
        f"\nrecovered operator kinds: {sorted(kinds)} — the ALU's word-level"
        f"\nstructure, reconstructed from a sea of "
        f"{netlist.num_gates} anonymous gates."
    )


if __name__ == "__main__":
    main()
