#!/usr/bin/env python3
"""Reconstruction of the paper's Figure 1 walkthrough (benchmark b03).

Builds, gate by gate, the structure of Figure 1: a 3-bit word (U215,
U216, U217) whose fanin cones each contain two structurally similar
subtrees (selecting CODA0/CODA1 register bits via shared controls
U202/U255) and one dissimilar subtree fed through shared control signals
U201 and U221.  The script then narrates every stage of Section 2:

1. potential-bit grouping puts U215..U217 in one group,
2. partial matching finds the common and dissimilar subtrees,
3. control-signal identification recovers exactly {U201, U221}
   (U223 is discarded as dominated, exactly as in the paper),
4. circuit reduction under U201 = 0 removes the dissimilar subtrees,
5. the re-check declares the 3-bit word — which shape hashing alone
   had split into {U215, U216} + {U217}.

Run: ``python examples/figure1_case_study.py``
"""

from repro.core import (
    find_control_signals,
    form_subgroups,
    group_by_adjacency,
    identify_words,
    reduce_netlist,
    shape_hashing,
    signature_of,
)
from repro.netlist import NetlistBuilder, extract_cone, write_verilog
from repro.netlist.cone import extract_subcircuit


def build_figure1():
    """The Figure 1 circuit; returns (netlist, the 3 word-bit nets)."""
    b = NetlistBuilder("fig1_b03")
    mode, busy, enable, sel = b.inputs("mode", "busy", "enable", "sel")
    coda0 = [b.dff(b.input(f"d0_{i}"), output=f"CODA0_REG_{i}") for i in range(3)]
    coda1 = [b.dff(b.input(f"d1_{i}"), output=f"CODA1_REG_{i}") for i in range(3)]
    ru2 = [b.dff(b.input(f"d2_{i}"), output=f"RU2_REG_{i}") for i in range(3)]
    ru3 = [b.dff(b.input(f"d3_{i}"), output=f"RU3_REG_{i}") for i in range(3)]

    # The shared control cone (the red circle of Figure 1).
    u223 = b.nor(mode, busy, output="U223")
    u201 = b.inv(u223, output="U201")
    u221 = b.nand(u223, enable, output="U221")
    # Controls of the similar subtrees.
    u202 = b.inv(sel, output="U202")
    u255 = b.buf(sel, output="U255")

    sim_a = [b.nand(u202, coda0[i]) for i in range(3)]
    sim_b = [b.nand(u255, coda1[i]) for i in range(3)]
    diss = []
    for i in range(2):  # bits 0 and 1 share one dissimilar shape ...
        diss.append(b.nand(u201, b.nand(u221, ru2[i])))
    diss.append(b.nand(u201, b.nor(u221, ru3[2])))  # ... bit 2 another

    bits = [
        b.nand(sim_a[i], sim_b[i], diss[i], output=f"U21{5 + i}")
        for i in range(3)
    ]
    b.register_word(bits, "coda_out")
    for i in range(3):
        b.output(f"coda_out_reg_{i}")
    return b.build(), bits


def main():
    netlist, bits = build_figure1()
    print("the Figure 1 circuit:")
    print(write_verilog(netlist))

    print("step 1 — potential bits (Section 2.2):")
    group = next(g for g in group_by_adjacency(netlist) if bits[0] in g)
    print(f"  adjacent NAND3 lines grouped: {group}\n")

    print("step 2 — partial matching (Section 2.3):")
    signatures = [signature_of(netlist, net) for net in bits]
    for sig in signatures:
        print(f"  {sig.net}: root {sig.root_type}")
        for subtree in sig.subtrees:
            print(f"    subtree at {subtree.root_net:<6} key {subtree.key}")
    subgroup = form_subgroups(signatures)[0]
    print(f"  dissimilar subtrees: "
          f"{ {bit: roots for bit, roots in subgroup.dissimilar.items()} }\n")

    print("step 3 — relevant control signals (Section 2.4):")
    candidates = find_control_signals(subgroup)
    for cand in candidates:
        print(f"  {cand.net} (feasible values {cand.values})")
    print("  (U223 was common too, but lies in U201's fanin cone -> dropped)\n")

    print("step 4 — reduction under U201 = 0 (Section 2.5):")
    subcircuit = extract_subcircuit(netlist, bits)
    reduced = reduce_netlist(subcircuit, {"U201": 0})
    for net in bits:
        gate = reduced.netlist.driver(net)
        print(f"  {net}: now {gate.cell.name}{len(gate.inputs)} "
              f"({', '.join(gate.inputs)})")
    new_keys = {
        net: signature_of(reduced.netlist, net).sorted_keys for net in bits
    }
    assert len(set(new_keys.values())) == 1
    print("  all three bits now share identical hash keys\n")

    print("step 5 — the verdict:")
    base = shape_hashing(netlist)
    ours = identify_words(netlist)
    print(f"  shape hashing [6] : {[str(w) for w in base.words if set(w.bits) & set(bits)]}"
          f" + singleton {[s for s in base.singletons if s in bits]}")
    word = ours.word_of(bits[0])
    print(f"  this work         : {word} "
          f"(via {ours.control_assignments[word]})")


if __name__ == "__main__":
    main()
