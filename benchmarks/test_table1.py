"""Regenerate Table 1 — the paper's only results table.

One parametrized benchmark per ITC99 circuit: each entry synthesizes the
benchmark (cached), times the paper's technique on it, evaluates both
techniques against the golden reference words, prints the regenerated row
next to the paper's published row, and asserts the qualitative claims that
define the table's *shape*:

* Ours never finds fewer full words than Base ("we observe that our
  technique never performs worse than the base case"),
* Ours never misses more words than Base,
* on benchmarks where the paper reports a gain, we reproduce a gain.

Absolute percentages are additionally checked against the paper's values
with a generous tolerance — our substrate is a synthetic synthesis flow,
not the authors' commercial netlists, so the claim is shape, not identity.

Run: ``pytest benchmarks/test_table1.py --benchmark-only``
"""

import pytest

from conftest import get_netlist
from repro.eval.runner import run_benchmark
from repro.eval.table import average_row, render_table

#: The paper's Table 1, transcribed: name -> (base row, ours row), each
#: (full %, fragmentation, not-found %, #control signals).
PAPER_TABLE1 = {
    "b03": ((71.4, 0.67, 14.3, 0), (85.7, 0.00, 14.3, 0)),
    "b04": ((77.8, 0.50, 11.1, 0), (88.9, 0.00, 11.1, 0)),
    "b05": ((80.0, 0.00, 20.0, 0), (80.0, 0.00, 20.0, 0)),
    "b07": ((57.1, 0.33, 14.3, 0), (57.1, 0.33, 14.3, 1)),
    "b08": ((40.0, 0.58, 20.0, 0), (80.0, 0.00, 20.0, 3)),
    "b11": ((60.0, 0.54, 0.0, 0), (60.0, 0.54, 0.0, 0)),
    "b12": ((82.6, 0.50, 8.7, 0), (91.3, 0.30, 4.3, 7)),
    "b13": ((28.6, 0.75, 28.6, 0), (42.9, 0.60, 14.3, 2)),
    "b14": ((50.0, 0.13, 0.0, 0), (62.5, 0.08, 0.0, 4)),
    "b15": ((68.8, 0.19, 6.3, 0), (81.3, 0.24, 0.0, 4)),
    "b17": ((69.4, 0.18, 6.1, 0), (74.5, 0.23, 1.0, 18)),
    "b18": ((52.8, 0.20, 5.7, 0), (58.5, 0.22, 4.7, 36)),
}

#: Collected rows for the average-row check (filled as benchmarks run).
_ROWS = {}

FULL_PCT_TOLERANCE = 12.0  # percentage points
NOT_FOUND_TOLERANCE = 12.0


@pytest.mark.parametrize("name", list(PAPER_TABLE1))
def test_table1_row(name, benchmark):
    netlist = get_netlist(name)
    run = run_benchmark(netlist)

    def ours_only():
        from repro.core import identify_words

        return identify_words(netlist)

    benchmark.pedantic(ours_only, rounds=1, iterations=1)

    row = run.row()
    _ROWS[name] = row
    paper_base, paper_ours = PAPER_TABLE1[name]

    print(f"\n--- {name}: regenerated vs paper ---")
    print(render_table([row], include_average=False))
    print(
        f"paper:   Base {paper_base[0]:.1f}% / frag {paper_base[1]:.2f} / "
        f"NF {paper_base[2]:.1f}%   Ours {paper_ours[0]:.1f}% / "
        f"frag {paper_ours[1]:.2f} / NF {paper_ours[2]:.1f}% "
        f"/ {paper_ours[3]} ctrl"
    )

    # Shape claims (hard assertions).
    assert row.ours.pct_full >= row.base.pct_full, "Ours worse than Base"
    assert row.ours.pct_not_found <= row.base.pct_not_found
    if paper_ours[0] > paper_base[0]:
        assert row.ours.pct_full > row.base.pct_full, (
            f"paper reports a gain on {name}; none reproduced"
        )
    if paper_ours[3] > 0 and paper_ours[0] > paper_base[0]:
        assert row.ours.num_control_signals > 0

    # Quantitative closeness (soft tolerance).
    assert abs(row.base.pct_full - paper_base[0]) <= FULL_PCT_TOLERANCE
    assert abs(row.ours.pct_full - paper_ours[0]) <= FULL_PCT_TOLERANCE
    assert abs(row.base.pct_not_found - paper_base[2]) <= NOT_FOUND_TOLERANCE
    assert abs(row.ours.pct_not_found - paper_ours[2]) <= NOT_FOUND_TOLERANCE

    # Benchmark-description columns (same order of magnitude as Table 1).
    assert row.num_words == len(run.reference)


def test_average_row(benchmark):
    """The paper's Average row: 61.54->71.89 full%, 0.381->0.213 frag,
    11.25->8.67 not-found%."""
    for name in PAPER_TABLE1:
        if name not in _ROWS:
            _ROWS[name] = run_benchmark(get_netlist(name)).row()

    def compute():
        return average_row(list(_ROWS.values()))

    avg = benchmark.pedantic(compute, rounds=1, iterations=1)
    print("\n--- regenerated average row ---")
    print(render_table(list(_ROWS.values())))
    print(
        "paper averages: Base 61.54% / 0.381 / 11.25%   "
        "Ours 71.89% / 0.213 / 8.67%"
    )
    assert avg.ours.pct_full > avg.base.pct_full + 5.0
    assert avg.ours.fragmentation_rate < avg.base.fragmentation_rate
    assert avg.ours.pct_not_found <= avg.base.pct_not_found
    assert abs(avg.base.pct_full - 61.54) <= 8.0
    assert abs(avg.ours.pct_full - 71.89) <= 8.0
