"""Extension bench — the downstream value of better word identification.

The paper justifies its accuracy gains by the stages that consume them:
"having a larger set of full words will allow these functions [word
propagation in [6]] to achieve better results."  This bench quantifies
that claim on our substrate: seed word propagation once with Base's words
and once with Ours', and count what each harvest grows into; then run
operator recognition on both and count functionally verified operators.

Run: ``pytest benchmarks/test_downstream.py --benchmark-only``
"""

import pytest

from conftest import get_netlist
from repro.core import (
    identify_operators,
    identify_words,
    propagate_words,
    shape_hashing,
)

BENCHES = ["b03", "b12", "b15"]


@pytest.mark.parametrize("name", BENCHES)
def test_propagation_harvest(name, benchmark):
    netlist = get_netlist(name)
    base_words = shape_hashing(netlist).words
    ours_words = identify_words(netlist).words

    ours_grown = benchmark.pedantic(
        lambda: propagate_words(netlist, ours_words), rounds=1, iterations=1
    )
    base_grown = propagate_words(netlist, base_words)
    print(
        f"\n{name}: Base {len(base_words)} seeds -> {len(base_grown.words)} "
        f"| Ours {len(ours_words)} seeds -> {len(ours_grown.words)}"
    )
    # The paper's downstream claim: more/better seeds, bigger harvest.
    assert len(ours_grown.words) >= len(base_grown.words)


@pytest.mark.parametrize("name", BENCHES)
def test_operator_recognition(name, benchmark):
    netlist = get_netlist(name)
    grown = propagate_words(netlist, identify_words(netlist).words)

    operators = benchmark.pedantic(
        lambda: identify_operators(netlist, grown.words),
        rounds=1,
        iterations=1,
    )
    verified = [m for m in operators if m.verified and m.kind != "buf"]
    kinds = sorted({m.kind for m in verified})
    print(f"\n{name}: {len(verified)} verified operators, kinds {kinds}")
    assert verified, "no operators recognized at all"
