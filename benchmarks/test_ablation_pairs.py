"""Ablation A2 — simultaneous control-signal assignment budget.

The paper assigns "values to up to two of them simultaneously" and names
larger budgets as future work ("there were cases of potential words which
may have been improved if more than two control signals were
simultaneously assigned").  This bench runs budgets 1, 2 and 3:

* budget 1 must lose the b08 crossed word (it needs the pair),
* budget 2 reproduces the paper's configuration,
* budget 3 (the paper's future work, implemented here) may only help,
  and its cost grows combinatorially.

Run: ``pytest benchmarks/test_ablation_pairs.py --benchmark-only``
"""

import pytest

from conftest import get_netlist
from repro.core import PipelineConfig, identify_words
from repro.eval import evaluate, extract_reference_words

BUDGETS = [1, 2, 3]


@pytest.mark.parametrize("budget", BUDGETS)
def test_budget_sweep(budget, benchmark):
    netlist = get_netlist("b08")
    reference = extract_reference_words(netlist)
    config = PipelineConfig(max_simultaneous=budget)

    result = benchmark.pedantic(
        lambda: identify_words(netlist, config), rounds=1, iterations=1
    )
    metrics = evaluate(reference, result)
    print(
        f"\nb08 max_simultaneous={budget}: full {metrics.pct_full:.1f}%  "
        f"ctrl {len(result.control_signals)}"
    )


def test_pair_word_needs_budget_two():
    """The crossed word is healed at budget 2 but not at budget 1."""
    netlist = get_netlist("b08")
    reference = extract_reference_words(netlist)
    target = next(w for w in reference if w.register == "incl_mask")

    def outcome(budget):
        result = identify_words(
            netlist, PipelineConfig(max_simultaneous=budget)
        )
        metrics = evaluate(reference, result)
        return next(
            o for o in metrics.outcomes if o.reference == target
        ).status

    assert outcome(1) != "full"
    assert outcome(2) == "full"


def test_budget_three_never_worse():
    netlist = get_netlist("b12")
    reference = extract_reference_words(netlist)
    full_at = {}
    for budget in (2, 3):
        result = identify_words(
            netlist, PipelineConfig(max_simultaneous=budget)
        )
        full_at[budget] = evaluate(reference, result).num_full
    assert full_at[3] >= full_at[2]
