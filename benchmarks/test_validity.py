"""Validity benches — does the pipeline depend on anything it shouldn't?

Two threats to the reproduction's validity, each measured:

**Name independence.** Our benchmarks keep register names for the golden
reference; the paper's threat model strips everything.  Anonymizing every
gate and net name must leave the identification metrics bit-for-bit
unchanged (hash keys anonymize leaves, grouping uses line order — nothing
should read names).

**Line-order sensitivity.** Stage 1 groups by file adjacency, a property
of the netlist *file*, and the paper itself flags this as a rough
heuristic ("we leave developing efficient procedures for cross-checking
among adjacent groups to a future improvement").  This bench measures how
much accuracy the default strategy loses when the combinational lines are
shuffled — and that the register-order grouping variation
(``grouping="registers"``) recovers most of it, since flip-flop order is
far more stable in practice.

Run: ``pytest benchmarks/test_validity.py --benchmark-only``
"""

import random

import pytest

from conftest import get_netlist
from repro.core import PipelineConfig, identify_words, shape_hashing
from repro.core.words import Word
from repro.eval import evaluate, extract_reference_words
from repro.netlist.netlist import Netlist
from repro.synth.anonymize import anonymize

BENCH = "b12"


def test_metrics_identical_after_anonymization(benchmark):
    netlist = get_netlist(BENCH)
    reference = extract_reference_words(netlist)
    original = evaluate(reference, identify_words(netlist))

    anon = anonymize(netlist)
    translated_reference = [
        type(reference[0])(w.register, tuple(anon.translate(w.bits)))
        for w in reference
    ]
    result = benchmark.pedantic(
        lambda: identify_words(anon.netlist), rounds=1, iterations=1
    )
    anonymized = evaluate(translated_reference, result)
    print(
        f"\n{BENCH}: original {original.pct_full:.1f}% full | anonymized "
        f"{anonymized.pct_full:.1f}% full"
    )
    assert anonymized.pct_full == original.pct_full
    assert anonymized.fragmentation_rate == pytest.approx(
        original.fragmentation_rate
    )
    assert anonymized.pct_not_found == original.pct_not_found


def _shuffle_lines(netlist: Netlist, seed: int) -> Netlist:
    """Rebuild with combinational lines shuffled (FFs keep their order)."""
    rng = random.Random(seed)
    combinational = [g for g in netlist.gates_in_file_order() if not g.is_ff]
    rng.shuffle(combinational)
    shuffled = Netlist(netlist.name)
    for net in netlist.primary_inputs:
        shuffled.add_input(net)
    for gate in combinational:
        shuffled.add_gate(gate.name, gate.cell, gate.inputs, gate.output)
    for ff in netlist.flip_flops():
        shuffled.add_gate(ff.name, ff.cell, ff.inputs, ff.output)
    for net in netlist.primary_outputs:
        shuffled.add_output(net)
    return shuffled


def test_line_order_sensitivity(benchmark):
    netlist = get_netlist(BENCH)
    reference = extract_reference_words(netlist)
    intact = evaluate(reference, identify_words(netlist))

    shuffled = _shuffle_lines(netlist, seed=2015)
    adjacency = benchmark.pedantic(
        lambda: identify_words(shuffled), rounds=1, iterations=1
    )
    adjacency_metrics = evaluate(reference, adjacency)
    register_metrics = evaluate(
        reference,
        identify_words(shuffled, PipelineConfig(grouping="registers")),
    )
    print(
        f"\n{BENCH}: intact {intact.pct_full:.1f}% | shuffled+adjacency "
        f"{adjacency_metrics.pct_full:.1f}% | shuffled+register-grouping "
        f"{register_metrics.pct_full:.1f}%"
    )
    # Shuffling must hurt the file-adjacency strategy (the documented
    # weakness)...
    assert adjacency_metrics.pct_full < intact.pct_full
    # ...and the register-order variation must recover most of the loss.
    assert register_metrics.pct_full > adjacency_metrics.pct_full
    assert register_metrics.pct_full >= intact.pct_full - 15.0
