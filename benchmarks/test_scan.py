"""Extension bench — word identification under scan-chain insertion.

"Signals inserted to select scan mode" are the paper's first example of
CAD-inserted control signals.  This bench inserts a mux-based scan chain
into a benchmark, re-runs both techniques, and measures what test logic
does to word recovery:

* every bit's cone gains one uniform scan-mux level, so the original
  structure is seen one level shallower at the same depth;
* the dissimilar subtrees of partially-matching words now all share the
  scan-enable network — a genuinely CAD-inserted relevant control signal
  the technique can discover;
* raising the cone depth recovers the pre-scan visibility (measured by
  the depth sweep at the bottom).

Run: ``pytest benchmarks/test_scan.py --benchmark-only``
"""

import pytest

from conftest import get_netlist
from repro.core import PipelineConfig, identify_words, shape_hashing
from repro.eval import evaluate, extract_reference_words
from repro.synth import order_for_emission
from repro.synth.scan import insert_scan_chain

BENCH = "b12"


@pytest.fixture(scope="module")
def scanned():
    netlist = get_netlist(BENCH).copy()
    spec = insert_scan_chain(netlist)
    return order_for_emission(netlist), spec


def test_scan_identification(scanned, benchmark):
    netlist, spec = scanned
    reference = extract_reference_words(netlist)

    result = benchmark.pedantic(
        lambda: identify_words(netlist), rounds=1, iterations=1
    )
    ours = evaluate(reference, result)
    base = evaluate(reference, shape_hashing(netlist))
    clean = get_netlist(BENCH)
    clean_ref = extract_reference_words(clean)
    clean_ours = evaluate(clean_ref, identify_words(clean))
    print(
        f"\n{BENCH}: clean Ours {clean_ours.pct_full:.1f}% | scanned "
        f"Base {base.pct_full:.1f}% Ours {ours.pct_full:.1f}% "
        f"(ctrl {len(result.control_signals)})"
    )
    # Identification still works on DFT netlists and Ours still leads.
    assert ours.pct_full >= base.pct_full
    assert ours.pct_full > 50.0


def test_scan_enable_is_discoverable(scanned):
    """When scan logic lands in dissimilar subtrees, the scan-enable
    network is found as a relevant control signal."""
    netlist, spec = scanned
    result = identify_words(netlist)
    scan_nets = {spec.scan_enable, f"{spec.scan_enable}_n"}
    assert scan_nets & set(result.control_signals), (
        f"scan enable not among {result.control_signals}"
    )


@pytest.mark.parametrize("depth", [4, 5, 6])
def test_scan_depth_sweep(scanned, depth, benchmark):
    """One extra cone level compensates for the inserted mux level."""
    netlist, _ = scanned
    reference = extract_reference_words(netlist)
    result = benchmark.pedantic(
        lambda: identify_words(netlist, PipelineConfig(depth=depth)),
        rounds=1,
        iterations=1,
    )
    metrics = evaluate(reference, result)
    print(
        f"\nscanned {BENCH} depth={depth}: full {metrics.pct_full:.1f}% "
        f"frag {metrics.fragmentation_rate:.2f}"
    )
