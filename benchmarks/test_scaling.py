"""Scaling bench — the runtime-complexity claims of Section 2.6.

The paper argues the pipeline stays near-linear: stage 1 is O(N) in the
number of nets, hash-key generation is linear in cone size, the sorted
merge is O(k_i + k_j), and "in our experiments including a circuit with
more than 100K gates, we report runtime of at most a few minutes."

This bench measures the two dominant kernels and the full pipeline across
the benchmark size ladder (b03 -> b18 spans ~500x in gate count) so the
growth curve is visible in the saved benchmark stats, and asserts the
end-to-end runtime stays within the paper's "few minutes" envelope even
in pure Python.

Run: ``pytest benchmarks/test_scaling.py --benchmark-only``
"""

import pytest

from conftest import get_netlist
from repro.core import SignatureIndex, group_by_adjacency, identify_words

LADDER = ["b03", "b12", "b15", "b17", "b18"]


@pytest.mark.parametrize("name", LADDER)
def test_stage1_grouping_scaling(name, benchmark):
    """Section 2.2: one pass over the netlist file."""
    netlist = get_netlist(name)
    groups = benchmark.pedantic(
        lambda: group_by_adjacency(netlist), rounds=3, iterations=1
    )
    print(f"\n{name}: {netlist.num_gates} gates -> {len(groups)} groups")


@pytest.mark.parametrize("name", LADDER)
def test_signature_scan_scaling(name, benchmark):
    """Hash-key generation over every candidate net (the hot kernel)."""
    netlist = get_netlist(name)
    groups = group_by_adjacency(netlist)

    def scan():
        index = SignatureIndex(netlist, 4)
        count = 0
        for group in groups:
            for net in group:
                index.signature(net)
                count += 1
        return count

    count = benchmark.pedantic(scan, rounds=1, iterations=1)
    print(f"\n{name}: {count} signatures over {netlist.num_gates} gates")


@pytest.mark.parametrize("name", LADDER)
def test_full_pipeline_scaling(name, benchmark):
    netlist = get_netlist(name)
    result = benchmark.pedantic(
        lambda: identify_words(netlist), rounds=1, iterations=1
    )
    print(
        f"\n{name}: {netlist.num_gates} gates in "
        f"{result.runtime_seconds:.2f}s"
    )
    # The paper's envelope: minutes on the largest benchmark.  Generous
    # bound so slow CI machines do not flake.
    assert result.runtime_seconds < 300.0
