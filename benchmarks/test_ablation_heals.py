"""Ablation A3 — partial-heal acceptance (beyond-paper extension).

The paper promotes a subgroup only when an assignment makes *every* bit
fully similar.  The pipeline also implements an extension
(``accept_partial_heals``) that keeps the best partial unification when
no assignment unifies everything.  This bench quantifies the trade:
fragmentation can improve, but control signals get spent on non-word
structures (the count inflates), which is why the paper-faithful setting
is the default.

Run: ``pytest benchmarks/test_ablation_heals.py --benchmark-only``
"""

import pytest

from conftest import get_netlist
from repro.core import PipelineConfig, identify_words
from repro.eval import evaluate, extract_reference_words

BENCHES = ["b12", "b13", "b15"]


@pytest.mark.parametrize("name", BENCHES)
@pytest.mark.parametrize("accept", [False, True], ids=["paper", "extension"])
def test_partial_heal_modes(name, accept, benchmark):
    netlist = get_netlist(name)
    reference = extract_reference_words(netlist)
    config = PipelineConfig(accept_partial_heals=accept)

    result = benchmark.pedantic(
        lambda: identify_words(netlist, config), rounds=1, iterations=1
    )
    metrics = evaluate(reference, result)
    mode = "extension" if accept else "paper    "
    print(
        f"\n{name} [{mode}]: full {metrics.pct_full:.1f}%  "
        f"frag {metrics.fragmentation_rate:.2f}  "
        f"not-found {metrics.pct_not_found:.1f}%  "
        f"ctrl {len(result.control_signals)}"
    )


@pytest.mark.parametrize("name", BENCHES)
def test_extension_never_reduces_full_words(name):
    netlist = get_netlist(name)
    reference = extract_reference_words(netlist)
    strict = evaluate(
        reference,
        identify_words(netlist, PipelineConfig(accept_partial_heals=False)),
    )
    relaxed = evaluate(
        reference,
        identify_words(netlist, PipelineConfig(accept_partial_heals=True)),
    )
    assert relaxed.num_full >= strict.num_full
    assert relaxed.num_not_found <= strict.num_not_found
