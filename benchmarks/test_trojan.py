"""Robustness bench A4 — word recovery under Hardware-Trojan tampering.

The paper motivates word identification as the entry point of Trojan
hunting; for that to hold, recovery must itself be robust to the few-gate
alterations an adversary makes.  This bench inserts rare-trigger Trojans
into benchmark netlists and checks that:

* the full-found percentage does not collapse (at most one word may be
  perturbed — the victim net's word),
* the Trojan's gates never get absorbed into words containing
  architectural register bits (they remain unexplained logic).

Run: ``pytest benchmarks/test_trojan.py --benchmark-only``
"""

import pytest

from conftest import get_netlist
from repro.core import identify_words
from repro.eval import evaluate, extract_reference_words
from repro.synth import insert_trojan

CASES = ["b12", "b13", "b15"]


@pytest.mark.parametrize("name", CASES)
def test_recovery_survives_trojan(name, benchmark):
    clean = get_netlist(name)
    reference = extract_reference_words(clean)
    clean_metrics = evaluate(reference, identify_words(clean))

    tampered = clean.copy()
    insert_trojan(tampered, trigger_width=4, seed=2015)

    result = benchmark.pedantic(
        lambda: identify_words(tampered), rounds=1, iterations=1
    )
    metrics = evaluate(reference, result)
    print(
        f"\n{name}: clean {clean_metrics.num_full}/"
        f"{clean_metrics.num_reference_words} full -> tampered "
        f"{metrics.num_full}/{metrics.num_reference_words}"
    )
    assert metrics.num_full >= clean_metrics.num_full - 1


@pytest.mark.parametrize("name", CASES)
@pytest.mark.parametrize("seed", [7, 2015, 99])
def test_trojan_never_hides_in_architectural_words(name, seed):
    tampered = get_netlist(name).copy()
    spec = insert_trojan(tampered, trigger_width=4, seed=seed)
    reference = extract_reference_words(tampered)
    result = identify_words(tampered)

    reference_bits = {bit for word in reference for bit in word.bits}
    architectural = set()
    for word in result.words:
        if set(word.bits) & reference_bits:
            architectural.update(word.bits)
    trojan_nets = {
        g.output for g in tampered.gates_in_file_order()
        if g.name.startswith("_troj")
    }
    assert not trojan_nets & architectural
