"""Micro-benchmark of the staged analysis engine.

Runs ``identify_words`` on one mid-size ITC99 benchmark (b12 by default)
and writes ``BENCH_pipeline.json``: per-stage wall-clock, aggregate cache
hit rates, and the deterministic trace counters.  CI uploads the file as an
artifact so the perf trajectory of the engine is recorded per commit.

Usage::

    PYTHONPATH=src python benchmarks/bench_pipeline.py [--design b12]
        [--repeats 5] [--jobs 1] [--output BENCH_pipeline.json]

The reported timing is the *minimum* over the repeats — the most
contention-robust estimator on shared CI runners.
"""

from __future__ import annotations

import argparse
import json
import platform
import time

from repro.core.pipeline import PipelineConfig, identify_words
from repro.synth.designs import BENCHMARKS


def run(design: str, repeats: int, jobs: int) -> dict:
    netlist = BENCHMARKS[design]()
    config = PipelineConfig(jobs=jobs)
    best = None
    best_trace = None
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        result = identify_words(netlist, config)
        elapsed = time.perf_counter() - start
        times.append(elapsed)
        if best is None or elapsed < best:
            best = elapsed
            best_trace = result.trace
    cache = best_trace.cache
    return {
        "design": design,
        "gates": netlist.num_gates,
        "flip_flops": netlist.num_ffs,
        "jobs": jobs,
        "repeats": repeats,
        "python": platform.python_version(),
        "wall_seconds": best,
        "wall_seconds_all": times,
        "stage_seconds": dict(best_trace.stage_seconds),
        "cache_hit_rates": {
            "cone": cache.cone_hit_rate,
            "hash_key": cache.key_hit_rate,
            "reduced_key_reuse": cache.reduced_reuse_rate,
        },
        "cache": cache.as_dict(),
        "counters": best_trace.counter_dict(),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--design", default="b12", choices=sorted(BENCHMARKS)
    )
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--output", default="BENCH_pipeline.json")
    args = parser.parse_args()
    payload = run(args.design, args.repeats, args.jobs)
    with open(args.output, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(
        f"{payload['design']}: {payload['wall_seconds'] * 1000.0:.1f} ms "
        f"(min of {args.repeats}), "
        f"key cache {payload['cache_hit_rates']['hash_key']:.1%} -> "
        f"{args.output}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
