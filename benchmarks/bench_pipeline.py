"""Micro-benchmark of the staged analysis engine.

Runs ``identify_words`` on one mid-size ITC99 benchmark (b12 by default)
and writes ``BENCH_pipeline.json``: per-stage wall-clock, aggregate cache
hit rates, the deterministic trace counters, and the artifact store's
warm-vs-cold numbers (a cold run that commits to a fresh store, then warm
probes that load the cached result).  CI uploads the file as an artifact
so the perf trajectory of the engine is recorded per commit.

When numpy is importable the run is measured under **both** signature
kernels (``REPRO_KERNEL=python`` and ``=array``): the report carries a
``kernels`` section with per-kernel wall time and the array/python
speedup, and asserts the two result digests are byte-identical — the
benchmark doubles as the differential check on the design it times.

Usage::

    PYTHONPATH=src python benchmarks/bench_pipeline.py [--design b12]
        [--repeats 5] [--jobs 1] [--output BENCH_pipeline.json]

The reported timing is the *minimum* over the repeats — the most
contention-robust estimator on shared CI runners.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import tempfile
import time

from repro.core import kernels as _kernels
from repro.core.pipeline import PipelineConfig, identify_words
from repro.store import ArtifactStore, result_digest
from repro.synth.designs import BENCHMARKS


def _timed_runs(netlist, config: PipelineConfig, repeats: int):
    """(best_seconds, all_seconds, best_result) over ``repeats`` runs."""
    best = None
    best_result = None
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        result = identify_words(netlist, config)
        elapsed = time.perf_counter() - start
        times.append(elapsed)
        if best is None or elapsed < best:
            best = elapsed
            best_result = result
    return best, times, best_result


def _bench_kernels(netlist, config: PipelineConfig, repeats: int) -> dict:
    """Per-kernel wall time plus the differential digest check.

    Forces each kernel via ``REPRO_KERNEL`` (restoring the caller's
    setting afterwards) and refuses to report a speedup for results that
    are not byte-identical.
    """
    previous = os.environ.get(_kernels.KERNEL_ENV)
    walls = {}
    digests = {}
    try:
        for kernel in ("python", "array"):
            os.environ[_kernels.KERNEL_ENV] = kernel
            best, _, result = _timed_runs(netlist, config, repeats)
            walls[kernel] = best
            digests[kernel] = result_digest(result)
    finally:
        if previous is None:
            os.environ.pop(_kernels.KERNEL_ENV, None)
        else:
            os.environ[_kernels.KERNEL_ENV] = previous
    if digests["array"] != digests["python"]:
        raise AssertionError(
            "array kernel digest diverged from the python reference"
        )
    return {
        "python_wall_seconds": walls["python"],
        "array_wall_seconds": walls["array"],
        "speedup": walls["python"] / walls["array"] if walls["array"]
        else float("inf"),
        "result_digest": digests["array"],
    }


def run(design: str, repeats: int, jobs: int) -> dict:
    netlist = BENCHMARKS[design]()
    config = PipelineConfig(jobs=jobs)
    best, times, best_result = _timed_runs(netlist, config, repeats)
    best_trace = best_result.trace
    cache = best_trace.cache
    store_numbers = _bench_store(netlist, config, repeats)
    payload = {
        "design": design,
        "gates": netlist.num_gates,
        "flip_flops": netlist.num_ffs,
        "jobs": jobs,
        "repeats": repeats,
        "python": platform.python_version(),
        "kernel": best_trace.kernel,
        "wall_seconds": best,
        "wall_seconds_all": times,
        "stage_seconds": dict(best_trace.stage_seconds),
        "cache_hit_rates": {
            "cone": cache.cone_hit_rate,
            "hash_key": cache.key_hit_rate,
            "reduced_key_reuse": cache.reduced_reuse_rate,
        },
        "cache": cache.as_dict(),
        "counters": best_trace.counter_dict(),
        "store": store_numbers,
    }
    if _kernels.numpy_available():
        payload["kernels"] = _bench_kernels(netlist, config, repeats)
    return payload


def _bench_store(netlist, config: PipelineConfig, repeats: int) -> dict:
    """Warm-vs-cold artifact-store numbers on a throwaway store.

    ``cold_seconds`` includes the digest + commit overhead a caching run
    pays on a miss; ``warm_seconds`` is the best probe-only rerun.  The
    digests of both results are compared so the benchmark doubles as a
    cache-correctness smoke check.
    """
    with tempfile.TemporaryDirectory(prefix="bench-store-") as root:
        store = ArtifactStore(root)
        start = time.perf_counter()
        cold_result = identify_words(netlist, config, store=store)
        cold = time.perf_counter() - start
        warm = None
        warm_result = None
        for _ in range(max(repeats, 1)):
            start = time.perf_counter()
            warm_result = identify_words(netlist, config, store=store)
            elapsed = time.perf_counter() - start
            if warm is None or elapsed < warm:
                warm = elapsed
        if warm_result.trace.cache_provenance.get("provenance") != "hit":
            raise AssertionError("warm rerun did not hit the store")
        if result_digest(cold_result) != result_digest(warm_result):
            raise AssertionError("cached result differs from computed one")
        return {
            "cold_seconds": cold,
            "warm_seconds": warm,
            "speedup": cold / warm if warm else float("inf"),
        }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--design", default="b12", choices=sorted(BENCHMARKS)
    )
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--output", default="BENCH_pipeline.json")
    args = parser.parse_args()
    payload = run(args.design, args.repeats, args.jobs)
    with open(args.output, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(
        f"{payload['design']}: {payload['wall_seconds'] * 1000.0:.1f} ms "
        f"(min of {args.repeats}, kernel={payload['kernel']}), "
        f"key cache {payload['cache_hit_rates']['hash_key']:.1%}, "
        f"store warm {payload['store']['warm_seconds'] * 1000.0:.1f} ms "
        f"({payload['store']['speedup']:.0f}x) -> "
        f"{args.output}"
    )
    if "kernels" in payload:
        k = payload["kernels"]
        print(
            f"kernels: python "
            f"{k['python_wall_seconds'] * 1000.0:.1f} ms, array "
            f"{k['array_wall_seconds'] * 1000.0:.1f} ms "
            f"({k['speedup']:.2f}x, digests identical)"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
