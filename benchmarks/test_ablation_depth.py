"""Ablation A1 — fanin-cone depth sweep.

The paper fixes the match depth at 4 levels, citing [6]'s observation
that similarity beyond 2-4 levels does not survive optimization.  This
bench sweeps depth 1-6 on two mid-size benchmarks and reports full-found
percentage per depth, validating that choice on our substrate:

* depth 1 matches on root gate type alone — words merge with unrelated
  runs and accuracy is noisy;
* depths 3-4 are the sweet spot;
* deeper cones see ever more optimization-induced asymmetry, so accuracy
  degrades (and runtime grows).

Run: ``pytest benchmarks/test_ablation_depth.py --benchmark-only``
"""

import pytest

from conftest import get_netlist
from repro.core import PipelineConfig, identify_words
from repro.eval import evaluate, extract_reference_words

DEPTHS = [1, 2, 3, 4, 5, 6]
BENCH = "b12"


@pytest.mark.parametrize("depth", DEPTHS)
def test_depth_sweep(depth, benchmark):
    netlist = get_netlist(BENCH)
    reference = extract_reference_words(netlist)
    config = PipelineConfig(depth=depth)

    result = benchmark.pedantic(
        lambda: identify_words(netlist, config), rounds=1, iterations=1
    )
    metrics = evaluate(reference, result)
    print(
        f"\n{BENCH} depth={depth}: full {metrics.pct_full:.1f}%  "
        f"frag {metrics.fragmentation_rate:.2f}  "
        f"not-found {metrics.pct_not_found:.1f}%  "
        f"ctrl {len(result.control_signals)}"
    )
    # Sanity floor: any depth must beat finding nothing.
    assert metrics.pct_full > 0.0


def test_paper_depth_is_near_optimal():
    """Depth 4 (the paper's choice) is within a word of the sweep's best."""
    netlist = get_netlist(BENCH)
    reference = extract_reference_words(netlist)
    by_depth = {}
    for depth in (2, 3, 4, 5):
        result = identify_words(netlist, PipelineConfig(depth=depth))
        by_depth[depth] = evaluate(reference, result).num_full
    best = max(by_depth.values())
    assert by_depth[4] >= best - 1, f"depth sweep: {by_depth}"
