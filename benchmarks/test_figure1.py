"""Regenerate Figure 1 — the b03 case-study walkthrough.

Figure 1 is not a measurement but a worked example; "regenerating" it
means reproducing every claim the paper makes about it on the
reconstructed circuit:

* the three bits group by file adjacency (3-input NAND roots),
* each bit has two similar subtrees and one dissimilar subtree,
* the relevant control signals are exactly {U201, U221} with U223
  dominated away,
* assigning a controlling value removes the dissimilar subtrees and the
  3-bit word emerges,
* shape hashing alone splits the word 2+1 (fragmentation 2/3).

Run: ``pytest benchmarks/test_figure1.py --benchmark-only``
"""

import sys

import pytest

sys.path.insert(0, "examples")

from figure1_case_study import build_figure1

from repro.core import (
    find_control_signals,
    form_subgroups,
    group_by_adjacency,
    identify_words,
    shape_hashing,
    signature_of,
)
from repro.eval import evaluate, extract_reference_words


@pytest.fixture(scope="module")
def circuit():
    return build_figure1()


def test_figure1_grouping(circuit):
    netlist, bits = circuit
    group = next(g for g in group_by_adjacency(netlist) if bits[0] in g)
    assert group == bits


def test_figure1_subtree_structure(circuit):
    netlist, bits = circuit
    signatures = [signature_of(netlist, b) for b in bits]
    subgroup = form_subgroups(signatures)[0]
    assert subgroup.bits == bits
    # Two similar subtrees per bit, one dissimilar.
    for net in bits:
        assert len(subgroup.dissimilar[net]) == 1


def test_figure1_control_signals(circuit):
    netlist, bits = circuit
    signatures = [signature_of(netlist, b) for b in bits]
    subgroup = form_subgroups(signatures)[0]
    nets = [c.net for c in find_control_signals(subgroup)]
    assert nets == ["U201", "U221"]


def test_figure1_word_recovery(circuit, benchmark):
    netlist, bits = circuit

    result = benchmark.pedantic(
        lambda: identify_words(netlist), rounds=3, iterations=1
    )
    word = result.word_of(bits[0])
    assert word is not None and set(bits) <= set(word.bits)
    assert result.control_assignments[word].as_dict() == {"U201": 0}


def test_figure1_baseline_fragments(circuit):
    netlist, bits = circuit
    reference = extract_reference_words(netlist)
    target = next(w for w in reference if set(w.bits) == set(bits))
    base_metrics = evaluate(reference, shape_hashing(netlist))
    outcome = next(
        o for o in base_metrics.outcomes if o.reference == target
    )
    assert outcome.status == "partial"
    assert outcome.fragments == 2
    assert outcome.fragmentation_rate == pytest.approx(2 / 3)
    ours_metrics = evaluate(reference, identify_words(netlist))
    outcome = next(
        o for o in ours_metrics.outcomes if o.reference == target
    )
    assert outcome.status == "full"
