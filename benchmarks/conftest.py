"""Shared fixtures for the benchmark harness.

Synthesized benchmark netlists are cached per session — building b18
costs a few seconds and several files need it.
"""

import pytest

from repro.synth.designs import BENCHMARKS

_CACHE = {}


def get_netlist(name):
    """Synthesize (once) and return a Table 1 benchmark netlist."""
    if name not in _CACHE:
        _CACHE[name] = BENCHMARKS[name]()
    return _CACHE[name]


@pytest.fixture
def netlist_cache():
    return get_netlist
