"""Scan-chain insertion (DFT) — the paper's canonical CAD-inserted control.

Section 1 names "signals inserted to select scan mode" first among the
control signals "automatically inserted by CAD tools anywhere in the
netlist and throughout the design flow" that make modern reverse
engineering hard.  This pass performs standard mux-based scan insertion so
the benchmarks can study exactly that scenario:

* a new primary input ``scan_enable`` (and ``scan_in``),
* every flip-flop's D pin is re-driven by a 2:1 mux (mapped to the
  3-NAND + shared-inverter network, like any mux in these netlists)
  selecting between the functional D net and the previous flip-flop's Q,
* flip-flops are stitched into one chain in file order; the last Q is
  exported as ``scan_out``.

Effects on word identification (measured in ``benchmarks/test_scan.py``):
every bit's fanin cone gains one uniform mux level, pushing the original
structure one level deeper — and the inserted ``scan_enable`` inverter net
becomes a shared control signal discoverable by the paper's technique.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..netlist.cells import INV, NAND
from ..netlist.netlist import Gate, Netlist, NetlistError

__all__ = ["ScanSpec", "insert_scan_chain"]


@dataclass(frozen=True)
class ScanSpec:
    """What scan insertion did (for tests and reporting)."""

    scan_enable: str
    scan_in: str
    scan_out: str
    chain: Tuple[str, ...]  # flip-flop names in stitch order


def insert_scan_chain(
    netlist: Netlist,
    scan_enable: str = "scan_enable",
    scan_in: str = "scan_in",
    scan_out: str = "scan_out",
) -> ScanSpec:
    """Stitch all flip-flops into a mux-based scan chain; mutates in place.

    The scan muxes are emitted directly in mapped form (the same
    ``NAND(NAND(~se, d), NAND(se, si))`` network :func:`map_muxes`
    produces), with one shared ``~scan_enable`` inverter — faithfully
    reproducing what DFT insertion leaves in a mapped netlist.
    """
    flip_flops = list(netlist.flip_flops())
    if not flip_flops:
        raise NetlistError("no flip-flops to stitch")
    for port in (scan_enable, scan_in):
        if netlist.has_net(port):
            raise NetlistError(f"net {port!r} already exists")
    netlist.add_input(scan_enable)
    netlist.add_input(scan_in)

    nse = f"{scan_enable}_n"
    netlist.add_gate(nse, INV, [scan_enable], nse)

    previous_q = scan_in
    chain: List[str] = []
    for index, ff in enumerate(flip_flops):
        functional_d = ff.inputs[0]
        n_func = f"_scan_f{index}"
        n_shift = f"_scan_s{index}"
        n_mux = f"_scan_m{index}"
        netlist.add_gate(n_func, NAND, [nse, functional_d], n_func)
        netlist.add_gate(n_shift, NAND, [scan_enable, previous_q], n_shift)
        netlist.add_gate(n_mux, NAND, [n_func, n_shift], n_mux)
        netlist.replace_gate(ff.name, ff.cell, [n_mux])
        chain.append(ff.name)
        previous_q = ff.output

    netlist.add_output(previous_q)
    if scan_out != previous_q:
        # Export under the conventional name via a buffer.
        from ..netlist.cells import BUF

        netlist.add_gate(f"_scan_out", BUF, [previous_q], scan_out)
        netlist.add_output(scan_out)
    return ScanSpec(scan_enable, scan_in, previous_q, tuple(chain))
