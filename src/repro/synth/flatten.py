"""Hierarchy flattening: inline pre-synthesized cores into a parent netlist.

The large ITC99 circuits are compositions — b17 instantiates three b15-like
cores, b18 stacks b14- and b17-class logic.  After synthesis the hierarchy
is flattened: instance nets get the instance prefix and everything lands in
one namespace.  Register-name preservation through this step is what makes
the paper's golden-reference trick work on the big benchmarks (a register
``count`` in instance ``core1`` survives as ``core1_count_reg_<i>``).

:func:`inline_instance` reproduces exactly that: it copies a child netlist
into a parent, prefixing gate and net names, wiring child primary inputs to
parent nets via a port map, and returning where each child output ended up.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from ..netlist.netlist import Netlist, NetlistError

__all__ = ["inline_instance"]


def inline_instance(
    parent: Netlist,
    child: Netlist,
    prefix: str,
    port_map: Mapping[str, str],
) -> Dict[str, str]:
    """Copy ``child`` into ``parent`` under ``prefix``.

    ``port_map`` maps child primary-input names to existing parent nets;
    unmapped child inputs become new parent primary inputs named
    ``{prefix}_{input}``.  Child internal nets and gate names are prefixed
    with ``{prefix}_``.  Child primary *outputs* are not re-declared as
    parent outputs; the returned dict maps each child output name to its
    prefixed parent net so the caller can wire or export it.
    """
    for port in port_map:
        if port not in child.primary_inputs:
            raise NetlistError(
                f"port {port!r} is not a primary input of {child.name!r}"
            )

    def net_name(net: str) -> str:
        if net in child.primary_inputs:
            mapped = port_map.get(net)
            if mapped is not None:
                return mapped
            return f"{prefix}_{net}"
        return f"{prefix}_{net}"

    for net in child.primary_inputs:
        if net not in port_map:
            parent.add_input(f"{prefix}_{net}")
    for gate in child.gates_in_file_order():
        parent.add_gate(
            f"{prefix}_{gate.name}",
            gate.cell,
            [net_name(n) for n in gate.inputs],
            net_name(gate.output),
        )
    return {out: net_name(out) for out in child.primary_outputs}
