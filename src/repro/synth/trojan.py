"""Hardware-Trojan insertion — the paper's motivating threat model.

The introduction frames word identification as the first step of finding
Trojans "inserted during the synthesis and optimization steps ... by a
malicious designer and/or a malicious CAD tool".  This module plays the
adversary so the benchmarks can ask the paper's implicit robustness
question: does word recovery survive a netlist that has been tampered with?
— and so the triage subsystem (:mod:`repro.triage`) has labelled ground
truth to score against.

The inserted Trojan follows the classic rare-trigger pattern ([5], [10] in
the paper's references): a small AND-tree trigger over existing register
bits, and an XOR payload splicing the trigger into one victim net's
consumers.  Both are built from ordinary library cells so nothing about
the Trojan is structurally loud.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..netlist.cells import AND, INV, XOR
from ..netlist.netlist import Gate, Netlist, NetlistError

__all__ = ["TrojanSpec", "insert_trojan"]


@dataclass(frozen=True)
class TrojanSpec:
    """Description of one inserted Trojan (returned for test assertions).

    ``gates`` names every gate the insertion added, in insertion order —
    the exact gate-level ground truth the triage evaluation
    (:mod:`repro.eval.scoreboard` ``--triage``) labels anomalous.
    """

    trigger_nets: tuple
    trigger_output: str
    victim_net: str
    payload_output: str
    gates: Tuple[str, ...] = ()


def insert_trojan(
    netlist: Netlist,
    trigger_width: int = 4,
    seed: int = 2015,
    victim_net: Optional[str] = None,
    prefix: str = "_troj",
) -> TrojanSpec:
    """Insert a rare-trigger XOR-payload Trojan; mutates ``netlist``.

    ``trigger_width`` register bits are combined through an AND tree (with
    a deterministic inversion pattern so the trigger state is rare); the
    payload XORs the trigger into ``victim_net`` and rewires that net's
    consumers — exactly the "few lines of alteration" footprint the paper
    warns about.  A fixed ``seed`` keeps benchmarks reproducible.

    ``prefix`` namespaces every inserted gate and net, so several Trojans
    can share one netlist (``prefix="_troj0"``, ``"_troj1"``, …) without
    colliding; the default reproduces the historical single-Trojan names.
    Raises :class:`NetlistError` when the prefix is already taken.
    """
    rng = random.Random(seed)
    if netlist.has_net(f"{prefix}_payload") or f"{prefix}_payload" in netlist:
        raise NetlistError(
            f"trojan prefix {prefix!r} already used in this netlist; "
            "pick a distinct prefix per insertion"
        )
    ff_outputs = sorted(netlist.register_output_nets())
    if len(ff_outputs) < trigger_width:
        raise NetlistError("not enough registers to build a trigger")
    trigger_nets = tuple(rng.sample(ff_outputs, trigger_width))

    candidates: List[Gate] = [
        g
        for g in netlist.gates_in_file_order()
        if not g.is_ff
        and not g.cell.is_constant
        and netlist.fanouts(g.output)
        and g.output not in netlist.primary_outputs
    ]
    if victim_net is None:
        if not candidates:
            raise NetlistError("no internal net available as victim")
        victim_net = rng.choice(candidates).output
    elif netlist.driver(victim_net) is None:
        raise NetlistError(f"victim net {victim_net!r} has no driver")

    added: List[str] = []

    # Trigger: AND tree over (possibly inverted) register bits.
    level: List[str] = []
    for i, net in enumerate(trigger_nets):
        if i % 2:  # deterministic inversion pattern -> rare all-match state
            inv = f"{prefix}_inv{i}"
            netlist.add_gate(inv, INV, [net], inv)
            added.append(inv)
            level.append(inv)
        else:
            level.append(net)
    counter = 0
    while len(level) > 1:
        nxt: List[str] = []
        for j in range(0, len(level) - 1, 2):
            name = f"{prefix}_and{counter}"
            counter += 1
            netlist.add_gate(name, AND, [level[j], level[j + 1]], name)
            added.append(name)
            nxt.append(name)
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    trigger_output = level[0]

    # Payload: splice trigger XOR victim into the victim's consumers.
    payload = f"{prefix}_payload"
    consumers = list(netlist.fanouts(victim_net))
    netlist.add_gate(payload, XOR, [victim_net, trigger_output], payload)
    added.append(payload)
    for gate in consumers:
        new_inputs = [
            payload if n == victim_net else n for n in gate.inputs
        ]
        netlist.replace_gate(gate.name, gate.cell, new_inputs)
    return TrojanSpec(
        trigger_nets, trigger_output, victim_net, payload, tuple(added)
    )
