"""The end-to-end synthesis flow: RTL module → mapped, flat netlist.

This stands in for the commercial flow that produced the ITC99 gate-level
netlists: elaboration (:mod:`lower`), logic optimization
(:mod:`optimize`), technology mapping (:mod:`mapping`) and the emission
ordering of the output file (:mod:`order`).  Register names are preserved
end to end, which the paper's experimental setup depends on.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..netlist.netlist import Netlist
from ..netlist.validate import validate
from .lower import lower
from .mapping import DEFAULT_MAX_ARITY, tech_map
from .optimize import optimize
from .order import order_for_emission
from .rtl import Module

__all__ = ["SynthesisOptions", "synthesize"]


@dataclass(frozen=True)
class SynthesisOptions:
    """Flow configuration.

    ``optimize_rounds``
        Fixpoint bound for the optimization pipeline.
    ``max_arity``
        Widest library cell emitted by mapping.
    ``map_technology``
        Disable to stop after optimization (generic gates, muxes intact) —
        useful in tests that inspect pre-mapping structure.
    ``check``
        Validate the netlist after every phase (cheap; leave on).
    """

    optimize_rounds: int = 4
    max_arity: int = DEFAULT_MAX_ARITY
    map_technology: bool = True
    check: bool = True


def synthesize(
    module: Module, options: SynthesisOptions = SynthesisOptions()
) -> Netlist:
    """Run the full flow on ``module`` and return the emitted netlist."""
    netlist = lower(module)
    if options.check:
        validate(netlist).raise_if_failed()
    netlist = optimize(netlist, max_rounds=options.optimize_rounds)
    if options.check:
        validate(netlist).raise_if_failed()
    if options.map_technology:
        netlist = tech_map(netlist, options.max_arity)
        if options.check:
            validate(netlist).raise_if_failed()
    netlist = order_for_emission(netlist)
    if options.check:
        validate(netlist).raise_if_failed()
    return netlist
