"""Word-level RTL intermediate representation.

This is the stand-in for the ITC99 VHDL sources: benchmark designs are
written against this IR and pushed through the synthesis flow
(:mod:`repro.synth.lower` → :mod:`repro.synth.optimize` →
:mod:`repro.synth.mapping` → :mod:`repro.synth.order`) to produce the
flat, optimized, technology-mapped netlists the paper reverse engineers.

The IR is deliberately small but covers what the benchmarks need:

* multi-bit inputs, registers (with optional reset values) and outputs,
* bitwise ops, ripple-carry add/sub, equality/magnitude comparison,
* 2:1 word muxes (the workhorse — every load-enable and FSM-controlled
  register transfer becomes a mux), slicing, concatenation, reductions.

Expressions form a DAG; widths are checked at construction.  All values are
unsigned.  Bit 0 is the LSB.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

__all__ = [
    "Expr", "Const", "InputRef", "RegRef", "Unary", "Binary", "Compare",
    "Mux", "Slice", "Concat", "Reduce",
    "Register", "Module", "RtlError",
]


class RtlError(ValueError):
    """Raised on malformed RTL (width mismatches, unknown names...)."""


class Expr:
    """Base class of all RTL expressions; every node knows its width."""

    width: int

    # -- operator sugar ------------------------------------------------
    def __and__(self, other: "Expr") -> "Expr":
        return Binary("and", self, other)

    def __or__(self, other: "Expr") -> "Expr":
        return Binary("or", self, other)

    def __xor__(self, other: "Expr") -> "Expr":
        return Binary("xor", self, other)

    def __add__(self, other: "Expr") -> "Expr":
        return Binary("add", self, other)

    def __sub__(self, other: "Expr") -> "Expr":
        return Binary("sub", self, other)

    def __invert__(self) -> "Expr":
        return Unary("not", self)

    def eq(self, other: "Expr") -> "Expr":
        return Compare("eq", self, other)

    def ne(self, other: "Expr") -> "Expr":
        return Compare("ne", self, other)

    def lt(self, other: "Expr") -> "Expr":
        return Compare("lt", self, other)

    def bit(self, index: int) -> "Expr":
        return Slice(self, index, index)

    def slice(self, lo: int, hi: int) -> "Expr":
        return Slice(self, lo, hi)

    def any(self) -> "Expr":
        return Reduce("or", self)

    def all(self) -> "Expr":
        return Reduce("and", self)

    def parity(self) -> "Expr":
        return Reduce("xor", self)


def _require_width(expr: Expr, width: int, context: str) -> None:
    if expr.width != width:
        raise RtlError(
            f"{context}: expected width {width}, got {expr.width}"
        )


@dataclass(frozen=True, eq=False)
class Const(Expr):
    """An unsigned constant of a fixed width."""

    value: int
    width: int

    def __post_init__(self):
        if self.width < 1:
            raise RtlError("constant width must be >= 1")
        if not 0 <= self.value < (1 << self.width):
            raise RtlError(
                f"constant {self.value} does not fit in {self.width} bits"
            )

    def bit_value(self, index: int) -> int:
        return (self.value >> index) & 1


@dataclass(frozen=True, eq=False)
class InputRef(Expr):
    """Reference to a module input port."""

    name: str
    width: int


@dataclass(frozen=True, eq=False)
class RegRef(Expr):
    """Reference to a register's current (pre-clock-edge) value."""

    name: str
    width: int


@dataclass(frozen=True, eq=False)
class Unary(Expr):
    """Bitwise NOT."""

    op: str
    operand: Expr

    def __post_init__(self):
        if self.op != "not":
            raise RtlError(f"unknown unary op {self.op!r}")

    @property
    def width(self) -> int:
        return self.operand.width


@dataclass(frozen=True, eq=False)
class Binary(Expr):
    """Bitwise and arithmetic binary ops: and/or/xor/add/sub."""

    op: str
    left: Expr
    right: Expr

    _OPS = ("and", "or", "xor", "add", "sub")

    def __post_init__(self):
        if self.op not in self._OPS:
            raise RtlError(f"unknown binary op {self.op!r}")
        _require_width(self.right, self.left.width, f"binary {self.op}")

    @property
    def width(self) -> int:
        return self.left.width


@dataclass(frozen=True, eq=False)
class Compare(Expr):
    """Comparisons producing one bit: eq/ne/lt (unsigned)."""

    op: str
    left: Expr
    right: Expr
    width: int = 1

    _OPS = ("eq", "ne", "lt")

    def __post_init__(self):
        if self.op not in self._OPS:
            raise RtlError(f"unknown comparison {self.op!r}")
        _require_width(self.right, self.left.width, f"compare {self.op}")


@dataclass(frozen=True, eq=False)
class Mux(Expr):
    """``sel ? then : els`` with a one-bit select."""

    sel: Expr
    then: Expr
    els: Expr

    def __post_init__(self):
        _require_width(self.sel, 1, "mux select")
        _require_width(self.els, self.then.width, "mux arms")

    @property
    def width(self) -> int:
        return self.then.width


@dataclass(frozen=True, eq=False)
class Slice(Expr):
    """Bits ``lo..hi`` inclusive of an operand (LSB = bit 0)."""

    operand: Expr
    lo: int
    hi: int

    def __post_init__(self):
        if not 0 <= self.lo <= self.hi < self.operand.width:
            raise RtlError(
                f"slice [{self.hi}:{self.lo}] out of range for "
                f"width {self.operand.width}"
            )

    @property
    def width(self) -> int:
        return self.hi - self.lo + 1


@dataclass(frozen=True, eq=False)
class Concat(Expr):
    """Concatenation; ``parts[0]`` supplies the least-significant bits."""

    parts: Tuple[Expr, ...]

    def __post_init__(self):
        if not self.parts:
            raise RtlError("empty concatenation")

    @property
    def width(self) -> int:
        return sum(p.width for p in self.parts)


@dataclass(frozen=True, eq=False)
class Reduce(Expr):
    """AND/OR/XOR reduction of all bits to a single bit."""

    op: str
    operand: Expr
    width: int = 1

    _OPS = ("and", "or", "xor")

    def __post_init__(self):
        if self.op not in self._OPS:
            raise RtlError(f"unknown reduction {self.op!r}")


@dataclass
class Register:
    """A named register: ``name <= next`` every clock.

    ``reset`` (optional) adds a synchronous reset mux controlled by the
    module-level reset input, exactly like the ITC99 VHDL processes.
    """

    name: str
    width: int
    next: Optional[Expr] = None
    reset: Optional[int] = None

    def ref(self) -> RegRef:
        return RegRef(self.name, self.width)


class Module:
    """A word-level design: inputs, registers, outputs.

    Use :meth:`input` / :meth:`register` / :meth:`output` to build, then
    :meth:`check` (called by the synthesizer) validates completeness.
    """

    def __init__(self, name: str, reset_input: Optional[str] = None):
        self.name = name
        self.inputs: Dict[str, int] = {}
        self.registers: Dict[str, Register] = {}
        self.outputs: Dict[str, Expr] = {}
        self.reset_input = reset_input
        if reset_input:
            self.inputs[reset_input] = 1

    def input(self, name: str, width: int = 1) -> InputRef:
        if name in self.inputs and self.inputs[name] != width:
            raise RtlError(f"input {name!r} redeclared with new width")
        self.inputs[name] = width
        return InputRef(name, width)

    def register(
        self, name: str, width: int, reset: Optional[int] = None
    ) -> Register:
        if name in self.registers:
            raise RtlError(f"register {name!r} already declared")
        reg = Register(name, width, None, reset)
        self.registers[name] = reg
        return reg

    def output(self, name: str, expr: Expr) -> None:
        if name in self.outputs:
            raise RtlError(f"output {name!r} already declared")
        self.outputs[name] = expr

    def reset_ref(self) -> InputRef:
        if not self.reset_input:
            raise RtlError(f"module {self.name!r} has no reset input")
        return InputRef(self.reset_input, 1)

    # ------------------------------------------------------------------
    def check(self) -> None:
        """Validate that the module is complete and internally consistent."""
        for reg in self.registers.values():
            if reg.next is None:
                raise RtlError(f"register {reg.name!r} has no next-state")
            _require_width(reg.next, reg.width, f"register {reg.name!r}")
            if reg.reset is not None:
                if not 0 <= reg.reset < (1 << reg.width):
                    raise RtlError(
                        f"reset value of {reg.name!r} does not fit"
                    )
                if not self.reset_input:
                    raise RtlError(
                        f"register {reg.name!r} has a reset value but the "
                        f"module declares no reset input"
                    )
        seen: set = set()
        for name, expr in self.outputs.items():
            self._check_refs(expr, f"output {name!r}", seen)
        for reg in self.registers.values():
            self._check_refs(reg.next, f"register {reg.name!r}", seen)

    def _check_refs(self, expr: Expr, context: str, seen: Optional[set] = None) -> None:
        if seen is not None:
            if id(expr) in seen:
                return
            seen.add(id(expr))
        if isinstance(expr, InputRef):
            declared = self.inputs.get(expr.name)
            if declared is None:
                raise RtlError(f"{context}: unknown input {expr.name!r}")
            if declared != expr.width:
                raise RtlError(
                    f"{context}: input {expr.name!r} width mismatch"
                )
        elif isinstance(expr, RegRef):
            reg = self.registers.get(expr.name)
            if reg is None:
                raise RtlError(f"{context}: unknown register {expr.name!r}")
            if reg.width != expr.width:
                raise RtlError(
                    f"{context}: register {expr.name!r} width mismatch"
                )
        for child in _children(expr):
            self._check_refs(child, context, seen)


def _children(expr: Expr) -> Tuple[Expr, ...]:
    if isinstance(expr, Unary):
        return (expr.operand,)
    if isinstance(expr, (Binary, Compare)):
        return (expr.left, expr.right)
    if isinstance(expr, Mux):
        return (expr.sel, expr.then, expr.els)
    if isinstance(expr, Slice):
        return (expr.operand,)
    if isinstance(expr, Concat):
        return expr.parts
    if isinstance(expr, Reduce):
        return (expr.operand,)
    return ()
