"""Netlist anonymization — the adversary's view of the design.

The paper's threat model is a netlist with *no* usable names: "the netlist
may have been flattened thereby any trace of the design hierarchy is
removed."  Our benchmarks necessarily keep register names (the golden
reference depends on them), which raises a validity question: does any
stage of the identification pipeline secretly benefit from meaningful
names?

This pass answers it.  :func:`anonymize` rewrites every gate and net name
to an opaque ``g<N>``/``n<N>`` scheme — preserving gate order (the paper's
stage 1 uses file adjacency, which a netlist printer preserves regardless
of naming) — and returns the name map so the evaluation harness can still
score the result against the original golden words.  The accompanying
bench asserts that identification metrics are bit-for-bit identical on the
anonymized netlist.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..netlist.netlist import Netlist

__all__ = ["AnonymizedNetlist", "anonymize"]


@dataclass
class AnonymizedNetlist:
    """An anonymized netlist plus the secret decoder ring."""

    netlist: Netlist
    net_map: Dict[str, str]  # original net -> anonymous net

    def translate(self, nets) -> List[str]:
        """Map original net names into the anonymous namespace."""
        return [self.net_map[n] for n in nets]

    def reverse(self, nets) -> List[str]:
        """Map anonymous net names back to the originals."""
        inverse = {v: k for k, v in self.net_map.items()}
        return [inverse[n] for n in nets]


#: Name templates of the ``hostile`` naming mode, cycled by net index.
#: Each one falls outside the plain Verilog identifier grammar (brackets,
#: leading digit, ``$``, ``.``, ``:``) and therefore must round-trip
#: through the writer's escaped-identifier path — the namespaces real
#: flattening tools emit (``\reg[3]``, ``\U1.U7``, ``\3$net``).
_HOSTILE_TEMPLATES = (
    "n[{i}]",
    "{i}$n",
    "n.{i}",
    "bus:{i}",
    "n${i}",
)


def anonymize(
    netlist: Netlist, prefix: str = "", naming: str = "plain"
) -> AnonymizedNetlist:
    """Strip all meaningful names; gate (line) order is preserved.

    Net numbering follows first appearance in file order, which is what a
    netlist printer that invents names would produce.  ``naming`` selects
    the namespace: ``"plain"`` produces ``n<N>``/``g<N>``; ``"hostile"``
    cycles through name shapes that require Verilog escaped identifiers
    (``n[3]``, ``4$n``, ``n.5`` …), for testing that no pipeline stage or
    serializer chokes on — or secretly benefits from — name spelling.
    """
    if naming not in ("plain", "hostile"):
        raise ValueError(f"unknown naming mode {naming!r}")
    net_map: Dict[str, str] = {}

    def rename(net: str) -> str:
        anonymous = net_map.get(net)
        if anonymous is None:
            index = len(net_map)
            if naming == "hostile":
                template = _HOSTILE_TEMPLATES[index % len(_HOSTILE_TEMPLATES)]
                anonymous = prefix + template.format(i=index)
            else:
                anonymous = f"{prefix}n{index}"
            net_map[net] = anonymous
        return anonymous

    anonymous = Netlist(f"{prefix}anon")
    for net in netlist.primary_inputs:
        anonymous.add_input(rename(net))
    for index, gate in enumerate(netlist.gates_in_file_order()):
        gate_name = (
            f"{prefix}g[{index}]" if naming == "hostile"
            else f"{prefix}g{index}"
        )
        anonymous.add_gate(
            gate_name,
            gate.cell,
            [rename(n) for n in gate.inputs],
            rename(gate.output),
        )
    for net in netlist.primary_outputs:
        anonymous.add_output(rename(net))
    return AnonymizedNetlist(anonymous, net_map)
