"""Technology mapping onto an ITC99-style mapped-cell library.

The gate-level ITC99 releases the paper evaluates are technology mapped:
word muxes show up as the 2-level NAND trees of Figure 1, wide logic is
decomposed to bounded-fanin cells, and AND/OR/XOR/INV cells appear
alongside them.  This pass performs the same translation:

* :func:`decompose_wide_gates` — bound every AND/OR/XOR fanin to
  ``max_arity`` by building balanced trees (the final gate keeps the
  original output net, so flip-flop D-net names survive mapping);
* :func:`map_muxes` — rewrite each ``MUX(s, a, b)`` into
  ``NAND(NAND(~s, a), NAND(s, b))``, sharing the select inverter across
  all muxes on the same select net (this shared ``~s`` net is precisely
  the kind of CAD-inserted control signal the paper goes hunting for).

:func:`tech_map` chains both plus cleanup.  Mapping never touches
flip-flops or net names at register boundaries.
"""

from __future__ import annotations

from typing import Dict, List

from ..netlist.cells import AND, INV, NAND, NOR as _NOR, OR, XNOR as _XNOR, XOR
from ..netlist.netlist import Netlist
from ..netlist.transforms import sweep_dead_logic
from .optimize import cleanup_double_inverters, simplify_duplicate_inputs

__all__ = [
    "decompose_wide_gates",
    "map_muxes",
    "flatten_associative",
    "absorb_inverters",
    "tech_map",
    "DEFAULT_MAX_ARITY",
]

#: Widest cell in the target library (NAND4/NOR4/AND4/OR4).
DEFAULT_MAX_ARITY = 4


def _fresh(netlist: Netlist, base: str) -> str:
    name = base
    suffix = 0
    while name in netlist or netlist.has_net(name):
        suffix += 1
        name = f"{base}_{suffix}"
    return name


def decompose_wide_gates(
    netlist: Netlist, max_arity: int = DEFAULT_MAX_ARITY
) -> int:
    """Split gates wider than ``max_arity`` into balanced trees.

    For AND/OR families the inner tree nodes use the *non-inverted* family
    gate and only the root keeps the original cell (a wide NAND is an AND
    tree with a NAND root).  XOR/XNOR decompose the same way (parity is
    associative; the root keeps the inversion).  Returns gates rewritten.
    """
    changed = 0
    for name in [g.name for g in netlist.gates_in_file_order()]:
        if name not in netlist:
            continue
        gate = netlist.gate(name)
        if gate.cell.family not in ("and", "or", "xor"):
            continue
        if len(gate.inputs) <= max_arity:
            continue
        inner_cell = {"and": AND, "or": OR, "xor": XOR}[gate.cell.family]
        level: List[str] = list(gate.inputs)
        while len(level) > max_arity:
            nxt: List[str] = []
            for i in range(0, len(level), max_arity):
                chunk = level[i : i + max_arity]
                if len(chunk) == 1:
                    nxt.append(chunk[0])
                    continue
                inner = _fresh(netlist, f"{name}_t")
                netlist.add_gate(inner, inner_cell, chunk, inner)
                nxt.append(inner)
            level = nxt
        netlist.replace_gate(name, gate.cell, level)
        changed += 1
    return changed


def map_muxes(netlist: Netlist) -> int:
    """Rewrite every MUX into the canonical 3-NAND + shared-INV network.

    ``MUX(s, a, b)`` (``a`` when ``s=0``) becomes::

        ns  = INV(s)          -- one per distinct select net
        n1  = NAND(ns, a)
        n2  = NAND(s,  b)
        out = NAND(n1, n2)    -- keeps the mux's gate name and output net

    Returns the number of muxes mapped.
    """
    inverters: Dict[str, str] = {}
    mapped = 0
    for name in [g.name for g in netlist.gates_in_file_order()]:
        if name not in netlist:
            continue
        gate = netlist.gate(name)
        if gate.cell.family != "mux":
            continue
        sel, a, b = gate.inputs
        nsel = inverters.get(sel)
        if nsel is None:
            existing = next(
                (c.output for c in netlist.fanouts(sel) if c.cell is INV),
                None,
            )
            if existing is None:
                nsel = _fresh(netlist, f"{name}_ns")
                netlist.add_gate(nsel, INV, [sel], nsel)
            else:
                nsel = existing
            inverters[sel] = nsel
        n1 = _fresh(netlist, f"{name}_a")
        netlist.add_gate(n1, NAND, [nsel, a], n1)
        n2 = _fresh(netlist, f"{name}_b")
        netlist.add_gate(n2, NAND, [sel, b], n2)
        netlist.replace_gate(name, NAND, [n1, n2])
        mapped += 1
    return mapped


def flatten_associative(
    netlist: Netlist, max_arity: int = DEFAULT_MAX_ARITY
) -> int:
    """Merge same-family AND/OR/XOR chains into wider gates.

    ``AND(AND(p, q), s)`` becomes ``AND(p, q, s)`` when the inner gate has
    no other fanout and the result stays within ``max_arity``.  This is the
    re-association a mapper performs before cell selection; it is what
    turns bitwise RTL like ``~(p & q & s)`` into the 3-input roots seen in
    the paper's Figure 1.  Returns the number of merges.
    """
    merged = 0
    again = True
    while again:
        again = False
        for name in [g.name for g in netlist.gates_in_file_order()]:
            if name not in netlist:
                continue
            gate = netlist.gate(name)
            if gate.cell.family not in ("and", "or", "xor") or gate.cell.inverted:
                continue
            for input_net in gate.inputs:
                inner = netlist.driver(input_net)
                if (
                    inner is None
                    or inner.cell is not gate.cell
                    or len(netlist.fanouts(input_net)) != 1
                    or input_net in netlist.primary_outputs
                ):
                    continue
                widened = [n for n in gate.inputs if n != input_net]
                widened.extend(inner.inputs)
                if len(widened) > max_arity:
                    continue
                netlist.remove_gate(inner.name)
                netlist.replace_gate(name, gate.cell, widened)
                merged += 1
                again = True
                break
    return merged


def absorb_inverters(netlist: Netlist) -> int:
    """Fuse single-fanout inverter pairs across gate boundaries.

    ``INV(AND(...))`` becomes a NAND (and NAND→AND, OR→NOR, NOR→OR,
    XOR↔XNOR) whenever the inner gate drives only the inverter.  The fused
    gate keeps the *inverter's* output net, so flip-flop D-net names — the
    word bits — survive.  This is why mapped netlists are NAND/NOR heavy.
    Returns the number of fusions.
    """
    flip = {"AND": NAND, "NAND": AND, "OR": _NOR, "NOR": OR, "XOR": _XNOR,
            "XNOR": XOR}
    fused = 0
    for name in [g.name for g in netlist.gates_in_file_order()]:
        if name not in netlist:
            continue
        gate = netlist.gate(name)
        if gate.cell is not INV:
            continue
        inner_net = gate.inputs[0]
        inner = netlist.driver(inner_net)
        if (
            inner is None
            or inner.cell.name not in flip
            or len(netlist.fanouts(inner_net)) != 1
            or inner_net in netlist.primary_outputs
        ):
            continue
        inner_inputs = inner.inputs
        netlist.remove_gate(inner.name)
        netlist.replace_gate(name, flip[inner.cell.name], inner_inputs)
        fused += 1
    return fused


def tech_map(netlist: Netlist, max_arity: int = DEFAULT_MAX_ARITY) -> Netlist:
    """Full mapping pass: bounded fanins, no muxes, NAND/NOR fusion."""
    decompose_wide_gates(netlist, max_arity)
    map_muxes(netlist)
    flatten_associative(netlist, max_arity)
    simplify_duplicate_inputs(netlist)
    absorb_inverters(netlist)
    cleanup_double_inverters(netlist)
    sweep_dead_logic(netlist)
    return netlist
