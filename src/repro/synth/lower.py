"""RTL elaboration: bit-blasting word-level expressions into gates.

This is the front half of the synthesis flow.  Expressions are lowered
structurally — ripple-carry adders and borrow comparators, per-bit 2:1
muxes with shared selects, balanced reduction trees — mirroring what a
synthesis tool's generic-logic phase produces before optimization and
technology mapping.

Lowering shares gates between uses of the same expression *object* (the
reference-sharing designs naturally exhibit, e.g. one condition guarding
many registers); structurally identical but separately built expressions
are merged later by netlist-level structural hashing.  Both effects create
the *shared control cones* the paper exploits — a condition's logic is
built once and its output net fans out into every register's select path,
becoming a discoverable control signal.

Naming: a register ``r`` of width ``w >= 2`` gets flip-flop output nets
``r_reg_0 .. r_reg_{w-1}`` (single-bit registers get ``r_reg``), the
convention the paper's golden-reference extraction relies on.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..netlist.builder import NetlistBuilder
from ..netlist.netlist import Netlist
from .rtl import (
    Binary,
    Compare,
    Concat,
    Const,
    Expr,
    InputRef,
    Module,
    Mux,
    Reduce,
    RegRef,
    RtlError,
    Slice,
    Unary,
)

__all__ = ["lower", "Lowering"]


def register_bit_nets(name: str, width: int) -> List[str]:
    """Flip-flop output net names for register ``name``."""
    if width == 1:
        return [f"{name}_reg"]
    return [f"{name}_reg_{i}" for i in range(width)]


class Lowering:
    """One elaboration run; use :func:`lower` unless you need the internals."""

    def __init__(self, module: Module):
        module.check()
        self.module = module
        self.builder = NetlistBuilder(module.name)
        # Keyed by id(): expressions use identity semantics, and designs
        # share subexpressions by holding Python references.  The entry
        # keeps the expr alive so ids cannot be recycled mid-lowering.
        self._cache: Dict[int, Tuple[Expr, List[str]]] = {}
        self._const0: Optional[str] = None
        self._const1: Optional[str] = None

    # ------------------------------------------------------------------
    def run(self) -> Netlist:
        b = self.builder
        for name, width in self.module.inputs.items():
            if width == 1:
                b.input(name)
            else:
                b.input_word(name, width)
        for reg in self.module.registers.values():
            d_bits = self.bits(self._effective_next(reg))
            q_nets = register_bit_nets(reg.name, reg.width)
            for d_net, q_net in zip(d_bits, q_nets):
                b.dff(d_net, output=q_net)
        for name, expr in self.module.outputs.items():
            bits = self.bits(expr)
            if len(bits) == 1:
                b.output(bits[0], name=name)
            else:
                for i, bit in enumerate(bits):
                    b.output(bit, name=f"{name}_{i}")
        return b.build()

    def _effective_next(self, reg) -> Expr:
        """Wrap the next-state in the synchronous-reset mux, if any."""
        if reg.reset is None:
            return reg.next
        return Mux(
            self.module.reset_ref(),
            Const(reg.reset, reg.width),
            reg.next,
        )

    # ------------------------------------------------------------------
    # expression lowering
    # ------------------------------------------------------------------
    def bits(self, expr: Expr) -> List[str]:
        """Net names (LSB first) carrying ``expr``'s value."""
        cached = self._cache.get(id(expr))
        if cached is not None:
            return cached[1]
        result = self._lower(expr)
        if len(result) != expr.width:
            raise AssertionError(
                f"lowering width bug: {expr!r} -> {len(result)} bits"
            )
        self._cache[id(expr)] = (expr, result)
        return result

    def _lower(self, expr: Expr) -> List[str]:
        if isinstance(expr, Const):
            return [self._const_net(expr.bit_value(i)) for i in range(expr.width)]
        if isinstance(expr, InputRef):
            if expr.width == 1:
                return [expr.name]
            return [f"{expr.name}_{i}" for i in range(expr.width)]
        if isinstance(expr, RegRef):
            return register_bit_nets(expr.name, expr.width)
        if isinstance(expr, Unary):
            return [self.builder.inv(bit) for bit in self.bits(expr.operand)]
        if isinstance(expr, Binary):
            return self._lower_binary(expr)
        if isinstance(expr, Compare):
            return self._lower_compare(expr)
        if isinstance(expr, Mux):
            sel = self.bits(expr.sel)[0]
            then_bits = self.bits(expr.then)
            els_bits = self.bits(expr.els)
            return [
                self.builder.mux(sel, e_bit, t_bit)
                for t_bit, e_bit in zip(then_bits, els_bits)
            ]
        if isinstance(expr, Slice):
            return self.bits(expr.operand)[expr.lo : expr.hi + 1]
        if isinstance(expr, Concat):
            bits: List[str] = []
            for part in expr.parts:
                bits.extend(self.bits(part))
            return bits
        if isinstance(expr, Reduce):
            return [self._tree(expr.op, self.bits(expr.operand))]
        raise RtlError(f"cannot lower {expr!r}")

    def _lower_binary(self, expr: Binary) -> List[str]:
        a = self.bits(expr.left)
        b = self.bits(expr.right)
        if expr.op in ("and", "or", "xor"):
            make = {
                "and": self.builder.and_,
                "or": self.builder.or_,
                "xor": self.builder.xor,
            }[expr.op]
            return [make(x, y) for x, y in zip(a, b)]
        if expr.op == "add":
            return self._ripple_add(a, b, carry_in=None)
        if expr.op == "sub":
            # a - b  ==  a + ~b + 1
            nb = [self.builder.inv(y) for y in b]
            return self._ripple_add(a, nb, carry_in=1)
        raise RtlError(f"unknown binary op {expr.op!r}")

    def _ripple_add(
        self, a: List[str], b: List[str], carry_in: Optional[int]
    ) -> List[str]:
        """Classic ripple-carry adder; carry_in of None means 0."""
        builder = self.builder
        sums: List[str] = []
        carry: Optional[str] = None
        for i, (x, y) in enumerate(zip(a, b)):
            half = builder.xor(x, y)
            if i == 0 and carry_in is None:
                sums.append(builder.buf(half))
                carry = builder.and_(x, y)
            elif i == 0:
                # carry_in == 1: sum = ~(x^y), carry = x | y
                sums.append(builder.inv(half))
                carry = builder.or_(x, y)
            else:
                sums.append(builder.xor(half, carry))
                carry = builder.or_(
                    builder.and_(x, y), builder.and_(half, carry)
                )
        return sums

    def _lower_compare(self, expr: Compare) -> List[str]:
        a = self.bits(expr.left)
        b = self.bits(expr.right)
        builder = self.builder
        if expr.op in ("eq", "ne"):
            same = [builder.xnor(x, y) for x, y in zip(a, b)]
            eq = self._tree("and", same)
            if expr.op == "eq":
                return [eq]
            return [builder.inv(eq)]
        # Unsigned less-than via ripple borrow.
        borrow: Optional[str] = None
        for x, y in zip(a, b):
            below = builder.and_(builder.inv(x), y)
            if borrow is None:
                borrow = below
            else:
                same = builder.xnor(x, y)
                borrow = builder.or_(below, builder.and_(same, borrow))
        assert borrow is not None
        return [borrow]

    def _tree(self, op: str, bits: Sequence[str]) -> str:
        """Balanced reduction tree over ``bits``."""
        make = {
            "and": self.builder.and_,
            "or": self.builder.or_,
            "xor": self.builder.xor,
        }[op]
        level = list(bits)
        if len(level) == 1:
            return self.builder.buf(level[0])
        while len(level) > 1:
            nxt: List[str] = []
            for i in range(0, len(level) - 1, 2):
                nxt.append(make(level[i], level[i + 1]))
            if len(level) % 2:
                nxt.append(level[-1])
            level = nxt
        return level[0]

    def _const_net(self, value: int) -> str:
        if value:
            if self._const1 is None:
                self._const1 = self.builder.const1()
            return self._const1
        if self._const0 is None:
            self._const0 = self.builder.const0()
        return self._const0


def lower(module: Module) -> Netlist:
    """Elaborate ``module`` into an unoptimized gate-level netlist."""
    return Lowering(module).run()
