"""Netlist optimization passes.

These model the synthesis-tool optimizations that make reverse engineering
hard — and that create the structures the paper exploits:

* :func:`fold_constants` — per-bit constant propagation.  When a word mux
  selects a source with constant bits, the affected bits' logic collapses
  differently from their siblings', breaking full structural similarity —
  the origin of the partially-matching words of Section 2.3.
* :func:`simplify_mux_constants` — rewrites muxes with constant data pins
  into AND/OR forms (what a real optimizer does), further specializing the
  affected bits.
* :func:`strash` — structural hashing / common-subexpression merging.
  Repeated control logic collapses to a single shared cone whose outputs
  fan out into many words, yielding the shared control signals of Figure 1.
* :func:`cleanup_buffers` / :func:`cleanup_double_inverters` — wire-level
  cleanup after other passes.

All passes mutate the given netlist in place and return a change count,
except :func:`fold_constants`, which rebuilds (constant folding removes
nets wholesale).  :func:`optimize` chains them to a fixpoint.

Implementation note: passes re-fetch gates by name while iterating because
rewiring replaces :class:`Gate` objects — a snapshot of the gate list goes
stale as soon as anything is rewired.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.reduction import reduce_netlist
from ..netlist.cells import AND, BUF, INV, OR
from ..netlist.netlist import Gate, Netlist
from ..netlist.transforms import rewire_consumers, sweep_dead_logic

__all__ = [
    "fold_constants",
    "simplify_mux_constants",
    "strash",
    "simplify_duplicate_inputs",
    "cleanup_buffers",
    "cleanup_double_inverters",
    "optimize",
]

_COMMUTATIVE = ("and", "or", "xor")


def fold_constants(netlist: Netlist) -> Netlist:
    """Propagate TIE-cell constants through the logic; returns a new netlist.

    Implemented as circuit reduction under the empty assignment — constant
    drivers are implicit seeds, so this is exactly the Section 2.5 engine
    doing double duty as a synthesis pass.
    """
    return reduce_netlist(netlist, {}).netlist


def _gate_names(netlist: Netlist) -> List[str]:
    return [gate.name for gate in netlist.gates_in_file_order()]


def _constant_value(netlist: Netlist, net: str) -> Optional[int]:
    driver = netlist.driver(net)
    if driver is not None and driver.cell.is_constant:
        return driver.cell.evaluate(())
    return None


def _inverted(netlist: Netlist, near: str, net: str) -> str:
    """A net carrying ``~net``, reusing an existing inverter when possible."""
    for consumer in netlist.fanouts(net):
        if consumer.cell is INV:
            return consumer.output
    name = f"{near}_n"
    while name in netlist or netlist.has_net(name):
        name += "_"
    netlist.add_gate(name, INV, [net], name)
    return name


def simplify_mux_constants(netlist: Netlist) -> int:
    """Rewrite MUX gates with constant data inputs into AND/OR forms.

    ``MUX(s, a, b)`` selects ``a`` when ``s = 0``:

    =========  =====================
    constant   replacement
    =========  =====================
    ``a = 0``  ``AND(s, b)``
    ``a = 1``  ``OR(~s, b)``
    ``b = 0``  ``AND(~s, a)``
    ``b = 1``  ``OR(s, a)``
    =========  =====================

    Returns the number of muxes rewritten.  Run :func:`fold_constants`
    first so constant *selects* are already gone.
    """
    changed = 0
    for name in _gate_names(netlist):
        if name not in netlist:
            continue
        gate = netlist.gate(name)
        if gate.cell.family != "mux":
            continue
        sel, a, b = gate.inputs
        a_const = _constant_value(netlist, a)
        b_const = _constant_value(netlist, b)
        if a_const is None and b_const is None:
            continue
        if a_const is not None and b_const is not None:
            if a_const == b_const:
                netlist.replace_gate(name, BUF, [a])
            elif a_const == 0:  # s ? 1 : 0  ==  s
                netlist.replace_gate(name, BUF, [sel])
            else:  # s ? 0 : 1  ==  ~s
                netlist.replace_gate(name, INV, [sel])
        elif a_const == 0:
            netlist.replace_gate(name, AND, [sel, b])
        elif a_const == 1:
            netlist.replace_gate(name, OR, [_inverted(netlist, name, sel), b])
        elif b_const == 0:
            netlist.replace_gate(name, AND, [_inverted(netlist, name, sel), a])
        else:  # b_const == 1
            netlist.replace_gate(name, OR, [sel, a])
        changed += 1
    return changed


def strash(netlist: Netlist) -> int:
    """Merge structurally identical gates (structural hashing / CSE).

    Two combinational gates with the same cell and the same input nets
    (order-insensitive for commutative families) compute the same value;
    consumers of the duplicate are rewired to the first occurrence.
    Processing in topological order lets merges cascade in a single pass.
    Returns the number of gates merged away.
    """
    merged = 0
    table: Dict[Tuple, str] = {}
    for name in [g.name for g in netlist.topological_order()]:
        if name not in netlist:
            continue
        gate = netlist.gate(name)
        if gate.is_ff or gate.cell.is_constant:
            continue
        if gate.cell.family in _COMMUTATIVE:
            key = (gate.cell.name, tuple(sorted(gate.inputs)))
        else:
            key = (gate.cell.name, gate.inputs)
        canonical = table.get(key)
        if canonical is None:
            table[key] = gate.output
            continue
        rewire_consumers(netlist, gate.output, canonical)
        if gate.output in netlist.primary_outputs:
            netlist.replace_gate(name, BUF, [canonical])
        else:
            netlist.remove_gate(name)
        merged += 1
    return merged


def simplify_duplicate_inputs(netlist: Netlist) -> int:
    """Apply x∧x=x, x∨x=x and x⊕x=0 after merges make inputs collide.

    Structural hashing can rewire two inputs of one gate onto the same
    net; AND/OR gates then just drop the duplicate, while each duplicated
    XOR/XNOR pair cancels (possibly leaving a constant or a single-input
    buffer/inverter).  Returns the number of gates rewritten.
    """
    changed = 0
    for name in _gate_names(netlist):
        if name not in netlist:
            continue
        gate = netlist.gate(name)
        family = gate.cell.family
        if family not in _COMMUTATIVE:
            continue
        if len(set(gate.inputs)) == len(gate.inputs):
            continue
        if family in ("and", "or"):
            deduped = list(dict.fromkeys(gate.inputs))
            if len(deduped) == 1:
                cell = INV if gate.cell.inverted else BUF
            else:
                cell = gate.cell
            netlist.replace_gate(name, cell, deduped)
        else:  # xor family: identical pairs cancel
            counts: Dict[str, int] = {}
            for net in gate.inputs:
                counts[net] = counts.get(net, 0) + 1
            survivors = [net for net, c in counts.items() if c % 2]
            if not survivors:
                # Parity of nothing is 0; XNOR inverts it.
                from ..netlist.cells import TIE0, TIE1

                netlist.replace_gate(
                    name, TIE1 if gate.cell.inverted else TIE0, []
                )
            elif len(survivors) == 1:
                cell = INV if gate.cell.inverted else BUF
                netlist.replace_gate(name, cell, survivors)
            else:
                netlist.replace_gate(name, gate.cell, survivors)
        changed += 1
    return changed


def cleanup_buffers(netlist: Netlist) -> int:
    """Bypass BUF gates (except those defining primary outputs)."""
    removed = 0
    for name in _gate_names(netlist):
        if name not in netlist:
            continue
        gate = netlist.gate(name)
        if gate.cell.family != "buf" or gate.cell.inverted:
            continue
        if gate.output in netlist.primary_outputs:
            continue
        rewire_consumers(netlist, gate.output, gate.inputs[0])
        netlist.remove_gate(name)
        removed += 1
    return removed


def cleanup_double_inverters(netlist: Netlist) -> int:
    """Collapse INV(INV(x)) chains back to x."""
    removed = 0
    for name in _gate_names(netlist):
        if name not in netlist:
            continue
        gate = netlist.gate(name)
        if gate.cell is not INV:
            continue
        driver = netlist.driver(gate.inputs[0])
        if driver is None or driver.cell is not INV:
            continue
        original = driver.inputs[0]
        rewire_consumers(netlist, gate.output, original)
        if gate.output in netlist.primary_outputs:
            netlist.replace_gate(name, BUF, [original])
        else:
            netlist.remove_gate(name)
        removed += 1
    return removed


def optimize(netlist: Netlist, max_rounds: int = 4) -> Netlist:
    """Run the full optimization pipeline to a (bounded) fixpoint."""
    current = fold_constants(netlist)
    for _ in range(max_rounds):
        changed = 0
        changed += simplify_mux_constants(current)
        current = fold_constants(current)
        changed += strash(current)
        changed += simplify_duplicate_inputs(current)
        current = fold_constants(current)
        changed += cleanup_buffers(current)
        changed += cleanup_double_inverters(current)
        changed += sweep_dead_logic(current)
        if not changed:
            break
    return current
