"""b11 — scramble string with variable cipher (ITC99).

Table 1 target: 5 reference words, 31 flip-flops, average width 6.2, no
word missed by either technique (0% not found) but both stuck at 60% full
with heavy fragmentation (0.54) on the two arithmetic words — and zero
control signals, because carry logic carries no shared control.

Composition: 3 regime-A words, 2 regime-D ripple-accumulator words whose
carry chains fragment both techniques equally.
"""

from __future__ import annotations

from ...netlist.netlist import Netlist
from ..flow import synthesize
from ..rtl import Concat, Const, Module, Mux
from .common import concat_word, data_word

__all__ = ["build"]


def build() -> Netlist:
    m = Module("b11", reset_input="reset")
    char_in = m.input("char_in", 6)
    key = m.input("cipher_key", 7)
    go = m.input("go")
    swap = m.input("swap")

    # The variable-cipher network: the bulk of b11's logic is the
    # combinational scrambler, not its registers.
    word = Concat((char_in, key.slice(0, 5)))  # 12-bit working value
    rot = key
    for round_index in range(7):
        mixed = word + Concat((rot, rot.slice(0, 4)))
        word = mixed ^ Concat((word.slice(6, 11), word.slice(0, 5)))
        rot = (rot + Const(round_index * 3 + 1, 7)) ^ key
    cipher = word

    # Regime A: scramble staging registers.
    data_word(m, "stage_a", 6, go, char_in)
    data_word(m, "stage_b", 6, swap, char_in ^ key.slice(0, 5))
    data_word(m, "stage_c", 6, go & swap, m.registers["stage_a"].ref())

    # Regime D: packed scramble words — unrelated fields fragment both
    # techniques equally (3 and 4 fields -> fragmentation (0.50+0.57)/2).
    sa = m.registers["stage_a"].ref()
    concat_word(
        m,
        "scram_lo",
        parts=(
            char_in.slice(0, 1) & key.slice(0, 1),
            char_in.slice(2, 3) ^ key.slice(2, 3),
            char_in.slice(4, 5) | key.slice(4, 5),
        ),
    )
    concat_word(
        m,
        "scram_hi",
        parts=(
            sa.slice(0, 1) ^ key.slice(1, 2),
            sa.slice(2, 3) & key.slice(3, 4),
            sa.slice(4, 5) | key.slice(5, 6),
            (char_in.slice(0, 0) ^ sa.slice(5, 5)),
        ),
    )

    m.output("scrambled", m.registers["stage_b"].ref() ^ cipher.slice(0, 5))
    m.output("cipher_out", cipher)
    m.output("key_out", m.registers["scram_hi"].ref())
    return synthesize(m)
