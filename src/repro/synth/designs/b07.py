"""b07 — count points on a straight line (ITC99).

Table 1 target: 7 reference words, 49 flip-flops, average width 7.0, and
the rare case where Base and Ours score identically (57.1% full, two
partials at fragmentation 0.33, one not found) while Ours still reports a
control signal that bought nothing.

Composition: 4 regime-A words, 2 regime-D concat words (two unrelated
halves each — fragmentation 2/6 = 0.33), 1 regime-C word.
"""

from __future__ import annotations

from ...netlist.netlist import Netlist
from ..flow import synthesize
from ..rtl import Concat, Const, Module, Mux
from .common import concat_word, data_word, status_word

__all__ = ["build"]


def build() -> Netlist:
    m = Module("b07", reset_input="reset")
    x = m.input("x_coord", 8)
    y = m.input("y_coord", 8)
    start = m.input("start")
    advance = m.input("advance")

    on_line = x.eq(y)
    beyond = y.lt(x)

    # Regime A: coordinate capture and accumulation staging.
    data_word(m, "cnt_x", 8, start, x)
    data_word(m, "cnt_y", 8, advance, y)
    data_word(m, "mark_x", 8, on_line, x)
    data_word(m, "mark_y", 8, beyond, y)

    # Regime D: packed result words — two unrelated 3-bit halves each.
    concat_word(
        m,
        "pack_lo",
        low=(x.slice(0, 2) & y.slice(0, 2)),
        high=(x.slice(3, 5) | y.slice(3, 5)),
    )
    concat_word(
        m,
        "pack_hi",
        low=(x.slice(2, 4) ^ y.slice(2, 4)),
        high=(x.slice(5, 7) & ~y.slice(5, 7)),
    )

    # Regime C: line-tracking state.
    cx = m.registers["cnt_x"].ref()
    status_word(
        m,
        "tracker",
        [
            on_line & ~beyond,
            cx.bit(0) | (start & cx.bit(4)),
            (cx.bit(1) ^ advance) & beyond,
            ~(cx.bit(2) | on_line),
            cx.bit(3) ^ cx.bit(5) ^ start,
        ],
    )

    m.output("count_out", m.registers["cnt_x"].ref() + m.registers["cnt_y"].ref())
    m.output("packed", m.registers["pack_lo"].ref())
    m.output("track_out", m.registers["tracker"].ref())
    return synthesize(m)
