"""Parameterized processor-core generator for the large benchmarks.

b14/b15/b17/b18 are processor-class circuits (a Viper subset, an 80386
subset, and compositions thereof).  Hand-writing thousands of registers is
neither useful nor faithful; what matters for the reproduction is the
*word-regime profile* — how many words of which structural regime and
width — plus enough combinational datapath to land in the right gate-count
class.  :func:`build_core` generates a core from such a profile.

A profile is a list of :class:`WordSpec`; regimes map to the idioms of
:mod:`repro.synth.designs.common`:

``data``         regime A (full by both techniques)
``counter``      regime B via a load-enable around a ripple increment
``selected``     regime B via a constant-bit mux arm
``alternating``  regime B-alt (Base not-found, Ours full)
``crossed``      regime B-pair (needs a two-signal assignment)
``adder``        regime D via naked ripple-carry accumulation
``concat``       regime D via unrelated fields (``fields`` per word)
``status``       regime C (heterogeneous control bits)
``shift``        regime C (register-to-register wiring)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ...netlist.netlist import Netlist
from ..flow import synthesize
from ..rtl import Concat, Const, Expr, Module, Mux
from .common import (
    adder_word,
    alternating_word,
    concat_word,
    crossed_word,
    data_word,
    selected_word,
    shift_word,
    status_word,
)

__all__ = ["WordSpec", "CoreProfile", "build_core"]


@dataclass(frozen=True)
class WordSpec:
    """How many words of one regime/width a core should contain."""

    regime: str
    width: int
    count: int = 1
    fields: int = 2  # for regime "concat": unrelated fields per word


@dataclass(frozen=True)
class CoreProfile:
    """Everything :func:`build_core` needs to generate one core."""

    name: str
    words: Sequence[WordSpec]
    single_registers: int = 8
    datapath_rounds: int = 6
    bus_width: int = 32

    def total_word_bits(self) -> int:
        return sum(spec.width * spec.count for spec in self.words)


def _slice_of(bus: Expr, offset: int, width: int) -> Expr:
    """A ``width``-bit window of ``bus``, wrapping via concatenation."""
    n = bus.width
    lo = offset % n
    if lo + width <= n:
        return bus.slice(lo, lo + width - 1)
    head = bus.slice(lo, n - 1)
    tail = bus.slice(0, width - (n - lo) - 1)
    return Concat((head, tail))


def build_core(profile: CoreProfile) -> Netlist:
    """Generate and synthesize one processor-class core."""
    m = Module(profile.name, reset_input="reset")
    bus_a = m.input("bus_a", profile.bus_width)
    bus_b = m.input("bus_b", profile.bus_width)
    opcode = m.input("opcode", 6)
    valid = m.input("valid")
    stall = m.input("stall")

    # Shared condition pool: decoded opcode classes and datapath flags.
    # These are reused across many registers, so after CSE their cones are
    # the shared control logic the identification stage discovers.
    conditions: List[Expr] = [
        valid & ~stall,
        opcode.slice(0, 2).eq(Const(3, 3)),
        opcode.slice(3, 5).eq(Const(5, 3)),
        bus_a.lt(bus_b),
        opcode.bit(0) ^ opcode.bit(5),
        (valid & opcode.bit(1)) | stall,
        bus_a.slice(0, 5).eq(opcode),
        opcode.bit(2) & ~opcode.bit(3),
    ]

    # Combinational datapath (ALU rounds) — supplies the gate-count class
    # and realistic deep logic feeding the architectural registers.
    acc = bus_a
    for round_index in range(profile.datapath_rounds):
        mixed = acc + _slice_of(bus_b, round_index * 3, profile.bus_width)
        acc = mixed ^ _slice_of(acc, 7, profile.bus_width)
        if round_index % 2:
            acc = acc & ~_slice_of(bus_b, round_index, profile.bus_width)
    alu_out = acc

    word_index = 0
    cond_index = 0

    def next_cond() -> Expr:
        nonlocal cond_index
        cond = conditions[cond_index % len(conditions)]
        cond_index += 1
        return cond

    for spec in profile.words:
        for _ in range(spec.count):
            name = f"{spec.regime}{word_index:03d}"
            word_index += 1
            w = spec.width
            src = _slice_of(bus_a, word_index * 5, w)
            alt = _slice_of(bus_b, word_index * 7, w)
            if spec.regime == "data":
                data_word(m, name, w, next_cond(), src)
            elif spec.regime == "counter":
                # A load-enable around increment: Ours heals via the enable.
                r = m.register(name, w)
                r.next = Mux(next_cond(), r.ref() + Const(1, w), r.ref())
            elif spec.regime == "selected":
                zero_bits = max(1, w // 4)
                z = Concat((_slice_of(bus_b, word_index, w - zero_bits),
                            Const(0, zero_bits)))
                selected_word(m, name, w, next_cond(), next_cond(), src, alt, z)
            elif spec.regime == "alternating":
                pattern = 0x5555555555 if word_index % 2 else 0x2AAAAAAAAA
                alternating_word(
                    m, name, w, next_cond(), next_cond(), src, alt,
                    pattern=pattern,
                )
            elif spec.regime == "crossed":
                crossed_word(
                    m, name, w,
                    e1=opcode.bit(word_index % 6),
                    e2=opcode.bit((word_index + 3) % 6),
                    g1=next_cond(),
                    g2=next_cond(),
                    u=src, v=alt,
                    t=_slice_of(bus_a, word_index * 3, w),
                    k=_slice_of(bus_b, word_index * 3, w),
                    mask=(1 << (w // 2)) - 1,
                )
            elif spec.regime == "adder":
                adder_word(m, name, w, src)
            elif spec.regime == "concat":
                parts = []
                ops = ["and", "xor", "or"]
                base = w // spec.fields
                used = 0
                for f in range(spec.fields):
                    fw = base if f < spec.fields - 1 else w - used
                    used += fw
                    a = _slice_of(bus_a, word_index * 3 + f * 9, fw)
                    b = _slice_of(bus_b, word_index * 5 + f * 11, fw)
                    op = ops[f % 3]
                    if op == "and":
                        parts.append(a & b)
                    elif op == "xor":
                        parts.append(a ^ b)
                    else:
                        parts.append(a | b)
                concat_word(m, name, parts=parts)
            elif spec.regime == "status":
                anchor = _slice_of(bus_a, word_index, 8)
                bits = []
                for i in range(w):
                    c1 = conditions[(word_index + i) % len(conditions)]
                    c2 = conditions[(word_index + i + 3) % len(conditions)]
                    if i % 4 == 0:
                        bits.append((c1 & anchor.bit(i % 8)) | c2)
                    elif i % 4 == 1:
                        bits.append(c1 ^ (anchor.bit(i % 8) | c2))
                    elif i % 4 == 2:
                        bits.append(~(c1 | (c2 & anchor.bit(i % 8))))
                    else:
                        bits.append((c1 ^ c2) & anchor.bit(i % 8))
                status_word(m, name, bits)
            elif spec.regime == "shift":
                shift_word(m, name, w, valid & opcode.bit(word_index % 6))
            else:
                raise ValueError(f"unknown regime {spec.regime!r}")

    for i in range(profile.single_registers):
        reg = m.register(f"bit{i:02d}", 1)
        reg.next = conditions[i % len(conditions)] & bus_a.bit(
            i % profile.bus_width
        )

    m.output("alu_result", alu_out)
    m.output("flags_out", Concat((
        alu_out.parity(), bus_a.eq(bus_b), conditions[0],
    )))
    return synthesize(m)
