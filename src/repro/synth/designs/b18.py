"""b18 — two b14-class and two b17-class subsystems (ITC99).

The largest Table 1 benchmark: 212 reference words (2 × 8 + 2 × 98),
>100K gates, 3320 flip-flops — and the weakest identification scores of
the suite (Base 52.8% full, Ours 58.5% with 36 control signals): at this
scale most of the word population comes from heavily-degraded cores.

Reproduced as two b14 cores plus two b17-class subsystems built from
*degraded* b15 profiles (status and adder words replacing the recoverable
ones), matching the paper's observation that the composed giants lose
proportionally more words than their constituents.
"""

from __future__ import annotations

import dataclasses

from ...netlist.netlist import Netlist
from .b14 import PROFILE as B14_PROFILE
from .b15 import DEGRADED_PROFILE
from .compose import compose
from .wordmix import CoreProfile, WordSpec, build_core

__all__ = ["build"]

#: Heavily degraded b15-class profile for the b18 subsystems.
DEEP_DEGRADED_PROFILE = CoreProfile(
    name="b15dd",
    words=[
        WordSpec("data", 14, 12),
        WordSpec("selected", 14, 2),
        WordSpec("status", 12, 4),
        WordSpec("concat", 13, 8, fields=2),
        WordSpec("adder", 14, 6),
    ],
    single_registers=11,
    datapath_rounds=32,
    bus_width=32,
)


def _b17_like(name: str) -> Netlist:
    cores = [
        ("core1", build_core(dataclasses.replace(DEGRADED_PROFILE, name=f"{name}a"))),
        ("core2", build_core(dataclasses.replace(DEGRADED_PROFILE, name=f"{name}b"))),
        ("core3", build_core(dataclasses.replace(DEEP_DEGRADED_PROFILE, name=f"{name}c"))),
    ]
    return compose(name, cores)


def build() -> Netlist:
    cpu_a = build_core(dataclasses.replace(B14_PROFILE, name="b14a"))
    cpu_b = build_core(dataclasses.replace(B14_PROFILE, name="b14b"))
    soc_a = _b17_like("b17a")
    soc_b = _b17_like("b17b")
    return compose(
        "b18",
        [("cpu1", cpu_a), ("cpu2", cpu_b), ("sys1", soc_a), ("sys2", soc_b)],
        with_glue=False,
    )
