"""The Table 1 benchmark suite: ITC99-like designs b03–b18.

``BENCHMARKS`` maps each benchmark name to a zero-argument builder
returning a synthesized, flat, technology-mapped :class:`Netlist` with
register names preserved (the golden-reference convention).  Builders are
deterministic: the same name always yields the same netlist.
"""

from typing import Callable, Dict

from ...netlist.netlist import Netlist
from . import b03, b04, b05, b07, b08, b11, b12, b13, b14, b15, b17, b18
from .common import (
    adder_word,
    alternating_word,
    concat_word,
    crossed_word,
    data_word,
    mask_select,
    replicate,
    selected_word,
    shift_word,
    status_word,
)
from .compose import compose, glue_module
from .excluded import EXCLUDED
from .wordmix import CoreProfile, WordSpec, build_core

#: Benchmark name -> netlist builder, in Table 1 row order.
BENCHMARKS: Dict[str, Callable[[], Netlist]] = {
    "b03": b03.build,
    "b04": b04.build,
    "b05": b05.build,
    "b07": b07.build,
    "b08": b08.build,
    "b11": b11.build,
    "b12": b12.build,
    "b13": b13.build,
    "b14": b14.build,
    "b15": b15.build,
    "b17": b17.build,
    "b18": b18.build,
}

__all__ = [
    "BENCHMARKS", "EXCLUDED",
    "CoreProfile", "WordSpec", "build_core",
    "compose", "glue_module",
    "adder_word", "alternating_word", "concat_word", "crossed_word",
    "data_word", "mask_select", "replicate", "selected_word", "shift_word",
    "status_word",
]
