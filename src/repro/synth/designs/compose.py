"""Composition of pre-synthesized cores into the large SoC benchmarks.

The real b17 instantiates three b15-class cores and b18 stacks b14- and
b17-class subsystems; synthesis then flattens the hierarchy, prefixing
instance nets while preserving register names.  :func:`compose` reproduces
that: each core is synthesized standalone, inlined under its instance
prefix (so ``count_reg_3`` in core ``c1`` becomes ``c1_count_reg_3``), and
a small glue module supplies top-level supervision words.

Cores deliberately do *not* feed word-register data inputs from each
other's outputs: a cone that crosses a core boundary would change depth
and break the per-core word structure the profiles were calibrated for.
They share only the reset and exchange 1-bit handshakes, which is also how
the ITC99 compositions are stitched.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ...netlist.netlist import Netlist
from ..flatten import inline_instance
from ..flow import synthesize
from ..rtl import Module
from .common import data_word, status_word

__all__ = ["glue_module", "compose"]


def glue_module(name: str = "glue") -> Netlist:
    """Top-level supervision logic: one data word, one status word."""
    m = Module(name, reset_input="reset")
    host = m.input("host_bus", 32)
    irq = m.input("irq", 4)
    run = m.input("run")

    grant = irq.any() & run
    data_word(m, "host_latch", 32, grant, host)
    status_word(m, "irq_state", [
        (irq.bit(0) & run) | irq.bit(1),
        irq.bit(2) ^ (run | irq.bit(3)),
        ~(irq.bit(1) & grant),
        (irq.bit(3) | run) & ~irq.bit(0),
    ])
    for i in range(4):
        ack = m.register(f"ack{i}", 1)
        ack.next = irq.bit(i) & grant
    m.output("host_echo", m.registers["host_latch"].ref())
    m.output("irq_out", m.registers["irq_state"].ref())
    return synthesize(m)


def compose(
    name: str, cores: Sequence[Tuple[str, Netlist]], with_glue: bool = True
) -> Netlist:
    """Inline ``(prefix, netlist)`` cores plus glue into one flat netlist."""
    parent = Netlist(name)
    parent.add_input("reset")
    all_cores: List[Tuple[str, Netlist]] = list(cores)
    if with_glue:
        all_cores.append(("glue", glue_module()))
    for prefix, core in all_cores:
        port_map = {}
        if "reset" in core.primary_inputs:
            port_map["reset"] = "reset"
        outputs = inline_instance(parent, core, prefix, port_map)
        for child_output, parent_net in outputs.items():
            parent.add_output(parent_net)
    return parent
