"""b12 — 1-player game: guess a sequence of button presses (ITC99).

The richest small benchmark: Table 1 lists 121 flip-flops forming 46
reference words of average width ~2.5 — a sea of small registers (sound,
display, counters, scratch), which is exactly what the game's VHDL has.

Target behaviour: Base 82.6% full / frag 0.50 / 8.7% not found; Ours
91.3% / 0.30 / 4.3% with 7 control signals.

Composition: 38 regime-A words (2-3 bits), 2 regime-B selected words,
2 regime-B alternating words (not even partially found by Base, fully
recovered by Ours — the "each control signal uncovers one word" cases),
2 regime-D concat words, 2 regime-C words, plus single-bit flags.
"""

from __future__ import annotations

from ...netlist.netlist import Netlist
from ..flow import synthesize
from ..rtl import Concat, Const, Module, Mux
from .common import (
    alternating_word,
    concat_word,
    data_word,
    selected_word,
    status_word,
)

__all__ = ["build"]


def build() -> Netlist:
    m = Module("b12", reset_input="reset")
    buttons = m.input("buttons", 4)
    wheel = m.input("wheel", 8)
    tick = m.input("tick")
    play = m.input("play")

    pressed = buttons.any()
    turn = wheel.slice(0, 3).eq(buttons)
    timeout = wheel.lt(Concat((buttons, buttons)))

    # 38 regime-A words: the game's scratch/sound/display registers.
    # Conditions rotate through the shared condition pool so their select
    # cones are shared (and become common control signals after strash).
    conditions = [pressed, turn, timeout, tick & play, pressed & ~turn]
    for i in range(38):
        width = 2 + (i % 2)  # 2- and 3-bit words, average ~2.5
        src_lo = (i * 2) % 6
        src = wheel.slice(src_lo, src_lo + width - 1)
        data_word(m, f"scratch{i:02d}", width, conditions[i % 5], src)

    # 2 regime-B selected words (Base partial, Ours full).
    selected_word(
        m, "note", 4, pressed, turn,
        wheel.slice(0, 3), wheel.slice(4, 7),
        Concat((buttons.slice(0, 1), Const(0, 2))),
    )
    selected_word(
        m, "octave", 4, timeout, tick & play,
        wheel.slice(2, 5), buttons,
        Concat((Const(0, 2), wheel.slice(6, 7))),
    )

    # 2 regime-B alternating words (Base not-found, Ours full).
    alternating_word(
        m, "column", 3, turn, pressed,
        wheel.slice(1, 3), wheel.slice(5, 7), pattern=0b010,
    )
    alternating_word(
        m, "row", 3, timeout, turn,
        buttons.slice(0, 2), wheel.slice(3, 5), pattern=0b101,
    )

    # 2 regime-D concat words (partial for both; 2 fragments on 7 bits).
    concat_word(
        m, "mix_a",
        low=(wheel.slice(0, 2) & buttons.slice(0, 2)),
        high=(wheel.slice(3, 6) ^ buttons),
    )
    concat_word(
        m, "mix_b",
        low=(wheel.slice(1, 3) | buttons.slice(1, 3)),
        high=(wheel.slice(4, 7) & ~buttons),
    )

    # 2 regime-C state words.
    s0 = m.registers["scratch00"].ref()
    status_word(m, "game_fsm", [
        (pressed & play) | s0.bit(0),
        s0.bit(1) ^ (turn | tick),
    ])
    s1 = m.registers["scratch01"].ref()
    status_word(m, "sound_fsm", [
        ~(s1.bit(0) & timeout),
        (s1.bit(1) | pressed) & ~turn,
        s1.bit(2) ^ play,
    ])

    # Single-bit flags to reach the flip-flop budget.
    for i in range(6):
        flag = m.register(f"flag{i}", 1)
        flag.next = conditions[i % 5] & buttons.bit(i % 4)

    m.output("speaker", m.registers["note"].ref())
    m.output("display", Concat((m.registers["column"].ref(),
                                m.registers["row"].ref())))
    m.output("mix_out", m.registers["mix_a"].ref() ^ m.registers["mix_b"].ref())
    m.output("state_out", m.registers["game_fsm"].ref())
    return synthesize(m)
