"""b13 — interface to meteo sensors (ITC99).

A control-heavy interface: Table 1 shows both techniques struggling
(Base 28.6% full, fragmentation 0.75, 28.6% not found; Ours 42.9% /
0.60 / 14.3% with 2 control signals).

Composition: 2 regime-A words, 1 regime-B selected word (Base partial →
Ours full), 2 regime-D words fragmenting heavily for both, 1 regime-E
word — an alternating word with one constant-folded bit, which Base
cannot group at all but Ours partially heals (not-found → partial, the
fragmentation-improvement-without-full-recovery case), 1 regime-C word,
plus single-bit handshake registers.
"""

from __future__ import annotations

from ...netlist.netlist import Netlist
from ..flow import synthesize
from ..rtl import Concat, Const, Module, Mux
from .common import (
    alternating_word,
    concat_word,
    data_word,
    mask_select,
    selected_word,
    status_word,
)

__all__ = ["build"]


def build() -> Netlist:
    m = Module("b13", reset_input="reset")
    sensor = m.input("sensor", 8)
    command = m.input("command", 4)
    strobe = m.input("strobe")
    send = m.input("send")

    addressed = command.eq(sensor.slice(0, 3))
    overrun = sensor.lt(Concat((command, command)))

    # Regime A.
    data_word(m, "sample", 6, strobe, sensor.slice(0, 5))
    data_word(m, "backup", 6, send, sensor.slice(2, 7))

    # Regime B: Base partial, Ours full via one control signal.
    selected_word(
        m, "out_word", 4, addressed, strobe & send,
        sensor.slice(0, 3), sensor.slice(4, 7),
        Concat((command.slice(0, 1), Const(0, 2))),
    )

    # Regime D: packed words; 3 fragments on 4 bits each (frag 0.75).
    concat_word(m, "shift_cnt", parts=(
        sensor.slice(0, 0) & command.slice(0, 0),
        sensor.slice(1, 2) ^ command.slice(1, 2),
        sensor.slice(3, 3) | command.slice(3, 3),
    ))
    concat_word(m, "tx_cnt", parts=(
        sensor.slice(4, 4) ^ command.slice(0, 0),
        sensor.slice(5, 6) & command.slice(1, 2),
        sensor.slice(7, 7) | command.slice(3, 3),
    ))

    # Regime E: alternating word with bit 2's outer arm constant-folded.
    # Base groups nothing (adjacent bits fold to different shapes); Ours
    # heals the two runs either side of the odd bit — not-found becomes
    # partial (3 fragments over 5 bits = 0.6).
    x_arm = mask_select(0b00100, 5, Const(0, 5), sensor.slice(0, 4))
    alternating_word(
        m, "mux_reg", 5, overrun, addressed,
        x_arm, sensor.slice(3, 7), pattern=0b01010,
    )

    # Regime C.
    sm = m.registers["sample"].ref()
    status_word(m, "link_fsm", [
        (addressed & strobe) | sm.bit(0),
        sm.bit(1) ^ (send | overrun),
        ~(sm.bit(2) & addressed),
        (sm.bit(3) | strobe) & ~send,
        sm.bit(4) ^ sm.bit(5) ^ overrun,
    ])

    # Single-bit handshake registers.
    for i, cond in enumerate(
        [strobe, send, addressed, overrun, strobe & send,
         addressed | overrun, strobe ^ send, ~addressed]
    ):
        reg = m.register(f"hand{i}", 1)
        reg.next = cond & sensor.bit(i)

    mr = m.registers["mux_reg"].ref()
    m.output("tx_data", m.registers["out_word"].ref())
    m.output("mux_out", mr)
    m.output("fsm_out", m.registers["link_fsm"].ref())
    return synthesize(m)
