"""b17 — three b15-class cores plus glue (ITC99).

The real b17 instantiates three copies of b15 behind a top-level wrapper;
Table 1 reports 98 reference words (3 × 32 + glue), ~31K gates, 1415
flip-flops, with scores a few points below standalone b15 (the composed
netlist carries extra sharing and more unrecoverable control words).

Reproduced as: two full b15 cores, one *degraded* b15 core (its
alternating words replaced by status/adder words — genuinely
unrecoverable), and the standard glue words.
"""

from __future__ import annotations

import dataclasses

from ...netlist.netlist import Netlist
from .b15 import DEGRADED_PROFILE, PROFILE
from .compose import compose
from .wordmix import build_core

__all__ = ["build"]


def build() -> Netlist:
    core_a = build_core(dataclasses.replace(PROFILE, name="b15a"))
    core_b = build_core(dataclasses.replace(PROFILE, name="b15b"))
    core_c = build_core(dataclasses.replace(DEGRADED_PROFILE, name="b15c"))
    return compose(
        "b17",
        [("core1", core_a), ("core2", core_b), ("core3", core_c)],
    )
