"""The ITC99 circuits the paper *excluded* from Table 1.

"We only experimented with those ITC benchmarks with at least 5 identified
reference words."  The small control-dominated circuits fall below that
bar — they are almost all FSM, with a register file too thin to evaluate
word identification meaningfully.  They are still part of the suite here:
the tests assert that the exclusion rule reproduces (each of these yields
fewer than 5 reference words), and they make handy smoke-test inputs.

* **b01** — finite state machine comparing serial flows: one 2-bit
  position counter plus single-bit state flags.
* **b02** — recognizer of BCD numbers on a serial line: state bits only,
  one 3-bit shift window.
* **b06** — interrupt handler: a couple of small channel registers,
  mostly arbitration flags.
* **b09** — serial-to-serial converter: shift-in/shift-out windows.
"""

from __future__ import annotations

from ...netlist.netlist import Netlist
from ..flow import synthesize
from ..rtl import Concat, Const, Module, Mux
from .common import data_word, shift_word, status_word

__all__ = ["build_b01", "build_b02", "build_b06", "build_b09"]


def build_b01() -> Netlist:
    m = Module("b01", reset_input="reset")
    line1 = m.input("line1")
    line2 = m.input("line2")

    match = line1 ^ line2
    counter = m.register("count", 2, reset=0)
    counter.next = Mux(match, counter.ref() + Const(1, 2), counter.ref())

    cnt = counter.ref()
    overflow = m.register("overflw", 1, reset=0)
    overflow.next = cnt.all() & match
    outp = m.register("outp", 1)
    outp.next = (line1 & cnt.bit(0)) | (line2 & cnt.bit(1))
    m.output("outp_o", outp.ref())
    m.output("overflw_o", overflow.ref())
    return synthesize(m)


def build_b02() -> Netlist:
    m = Module("b02", reset_input="reset")
    linea = m.input("linea")

    window = shift_word(m, "window", 3, linea)
    w = window.ref()
    # BCD digits are 0-9: flag sequences whose high bits spell >9.
    seen_high = m.register("seen_high", 1, reset=0)
    seen_high.next = seen_high.ref() | (w.bit(2) & w.bit(1))
    u = m.register("u", 1)
    u.next = (linea ^ w.bit(0)) & ~seen_high.ref()
    m.output("u_o", u.ref())
    return synthesize(m)


def build_b06() -> Netlist:
    m = Module("b06", reset_input="reset")
    eql = m.input("eql")
    cont = m.input("cont_eql")

    cc_mux = data_word(
        m, "cc_mux", 2, eql, Concat((cont, eql & ~cont))
    )
    uscite = data_word(
        m, "uscite", 2, cont, cc_mux.ref()
    )
    status_word(m, "state", [
        (eql & cont) | cc_mux.ref().bit(0),
        cc_mux.ref().bit(1) ^ (eql | cont),
        ~(uscite.ref().bit(0) & eql),
    ])
    ack = m.register("ackout", 1, reset=0)
    ack.next = eql & ~cont
    m.output("uscite_o", uscite.ref())
    m.output("ack_o", ack.ref())
    return synthesize(m)


def build_b09() -> Netlist:
    m = Module("b09", reset_input="reset")
    x = m.input("x")

    shift_in = shift_word(m, "d_in", 4, x)
    load = shift_in.ref().parity()
    hold = data_word(m, "d_out", 4, load, shift_in.ref())
    old = m.register("old", 1)
    old.next = x ^ load
    m.output("y", hold.ref().bit(3) & old.ref())
    return synthesize(m)


#: The excluded circuits, keyed like BENCHMARKS but kept separate — they
#: must NOT appear in Table 1 runs.
EXCLUDED = {
    "b01": build_b01,
    "b02": build_b02,
    "b06": build_b06,
    "b09": build_b09,
}
