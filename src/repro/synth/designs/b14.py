"""b14 — Viper processor subset (ITC99).

Table 1: ~10K gates, 245 flip-flops, 8 very wide reference words (average
width 30.1).  Base finds half of them (50.0%, fragmentation 0.13 — wide
words split into a few pieces); Ours adds one word (62.5%) with 4 control
signals and nothing is completely missed by either technique.

Profile: 4 regime-A data words, 1 regime-B selected word, 3 regime-D
ripple accumulators whose carry chains fragment identically for both.
"""

from __future__ import annotations

from ...netlist.netlist import Netlist
from .wordmix import CoreProfile, WordSpec, build_core

__all__ = ["build", "PROFILE"]

PROFILE = CoreProfile(
    name="b14",
    words=[
        WordSpec("data", 32, 3),
        WordSpec("data", 28, 1),
        WordSpec("selected", 32, 1),
        WordSpec("adder", 29, 3),
    ],
    single_registers=2,
    datapath_rounds=44,
    bus_width=32,
)


def build() -> Netlist:
    return build_core(PROFILE)
