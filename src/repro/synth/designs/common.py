"""Reusable register-transfer idioms for the benchmark designs.

Each helper builds one register whose synthesized structure lands in a
known *regime* with respect to the two identification techniques.  The
Table 1 benchmarks are compositions of these idioms, mixed to match each
ITC99 circuit's published behaviour:

=================  ==========================  =============================
helper             synthesized structure       identification behaviour
=================  ==========================  =============================
data_word          load-enable mux             full by Base and Ours ("A")
counter_word       enable mux + ripple +1      Base partial, Ours full ("B")
selected_word      3-way mux, const-bit arm    Base partial, Ours full ("B")
alternating_word   3-way mux, alternating      Base not-found, Ours full
                   const arm                   ("B-alt")
crossed_word       crossed 2-guard gating      Base partial; Ours full but
                                               only via a *pair* assignment
adder_word         naked ripple adder          partial for both ("D")
concat_word        two unrelated halves        partial for both ("D")
status_word        heterogeneous per-bit       not found by either ("C")
                   logic
shift_word         FF-to-FF wiring             not found by either ("C")
=================  ==========================  =============================

Why each regime arises is documented on the helper.  All helpers take the
module plus already-built operand expressions so designs stay word-level.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..rtl import (
    Binary,
    Compare,
    Concat,
    Const,
    Expr,
    Module,
    Mux,
    Register,
    RtlError,
)

__all__ = [
    "replicate",
    "mask_select",
    "data_word",
    "counter_word",
    "selected_word",
    "alternating_word",
    "crossed_word",
    "adder_word",
    "concat_word",
    "status_word",
    "shift_word",
]


def replicate(bit: Expr, width: int) -> Expr:
    """Broadcast a 1-bit expression across ``width`` bits."""
    if bit.width != 1:
        raise RtlError("replicate needs a 1-bit operand")
    return Concat(tuple(bit for _ in range(width)))


def mask_select(mask: int, width: int, when_one: Expr, when_zero: Expr) -> Expr:
    """Per-bit constant select: bit i comes from ``when_one`` iff mask bit i.

    ``(mask & a) | (~mask & b)`` with a constant mask — constant folding
    resolves each bit at synthesis time, so different bits of the register
    get structurally different sources.  This is the clean RTL idiom for
    injecting per-bit asymmetry (the real ITC99 equivalents are constant
    fields, width extensions, and don't-care optimizations).
    """
    m = Const(mask & ((1 << width) - 1), width)
    return (m & when_one) | (~m & when_zero)


def data_word(m: Module, name: str, width: int, en: Expr, src: Expr) -> Register:
    """Regime A: ``r <= en ? src : r``.

    Every bit synthesizes to the same mux NAND tree over (src bit, own
    output); both techniques fully match all bits.
    """
    r = m.register(name, width)
    r.next = Mux(en, src, r.ref())
    return r


def counter_word(
    m: Module,
    name: str,
    width: int,
    en: Expr,
    step: int = 1,
    reset: Optional[int] = None,
) -> Register:
    """Regime B: ``r <= en ? r + step : r``.

    The hold arm is identical across bits; the increment arm's carry logic
    differs per bit, so Base fragments the word.  The increment arm is
    gated by the (shared) enable select — assigning it its controlling
    value removes the carry logic and Ours finds the full word.
    """
    r = m.register(name, width, reset=reset)
    r.next = Mux(en, r.ref() + Const(step, width), r.ref())
    return r


def selected_word(
    m: Module,
    name: str,
    width: int,
    sel1: Expr,
    sel2: Expr,
    x: Expr,
    y: Expr,
    z: Expr,
) -> Register:
    """Regime B: 3-way selected register, one arm with per-bit constants.

    ``r <= sel1 ? x : (sel2 ? y : z)``.  Pass a ``z`` containing constant
    bits (e.g. a zero-extended narrower word): those bits' inner mux folds
    into AND/OR forms, breaking full similarity.  The dissimilar subtrees
    all hang off the shared outer select — one controlling-value
    assignment removes them and Ours recovers the full word.
    """
    r = m.register(name, width)
    r.next = Mux(sel1, x, Mux(sel2, y, z))
    return r


def alternating_word(
    m: Module,
    name: str,
    width: int,
    sel1: Expr,
    sel2: Expr,
    x: Expr,
    y: Expr,
    pattern: int = 0b0101010101010101,
) -> Register:
    """Regime B-alt: like :func:`selected_word` but the third arm is a
    bit-alternating constant, so *adjacent* bits fold to different shapes
    (AND vs OR forms) and Base groups nothing at all — the word is
    not-found by Base yet fully recovered by Ours (the b15 scenario, where
    each control signal "was useful and capable of uncovering one complete
    word").
    """
    r = m.register(name, width)
    z = Const(pattern & ((1 << width) - 1), width)
    r.next = Mux(sel1, x, Mux(sel2, y, z))
    return r


def crossed_word(
    m: Module,
    name: str,
    width: int,
    e1: Expr,
    e2: Expr,
    g1: Expr,
    g2: Expr,
    u: Expr,
    v: Expr,
    t: Expr,
    k: Expr,
    mask: int = 0b11110000,
) -> Register:
    """Regime B-pair: the Figure 1 structure needing *two* assignments.

    Every bit is ``~(p & q & s)`` with similar subtrees ``p = ~(g1 & u_i)``
    and ``q = ~(g2 & v_i)`` (the blue circles of Figure 1, guarded by
    their own controls g1/g2); the third subtree ``s`` crosses a second
    signal pair per the constant mask — ``~(e1 & ~(e2 & t_i))`` on one
    side and the wider ``~(e2 & ~(e1 & t_i) & k_i)`` on the other (the
    extra ``k_i`` keeps the variants distinguishable by shape: hash keys
    anonymize leaf nets, so a pure guard swap would look identical).

    ``e1 = 0`` kills only the first variant, ``e2 = 0`` only the second;
    the *pair* (e1=0, e2=0) removes both without disturbing p and q,
    exercising the paper's two-signal simultaneous assignment.  g1/g2 must
    be distinct from e1/e2 or the pair assignment collapses the similar
    subtrees too (the same reason the paper never assigns control signals
    appearing in matching subtrees).
    """
    e1w = replicate(e1, width)
    e2w = replicate(e2, width)
    p = ~(replicate(g1, width) & u)
    q = ~(replicate(g2, width) & v)
    s_one = ~(e1w & ~(e2w & t))
    s_zero = ~(e2w & ~(e1w & t) & k)
    s = mask_select(mask, width, s_one, s_zero)
    r = m.register(name, width)
    r.next = ~(p & q & s)
    return r


def adder_word(m: Module, name: str, width: int, addend: Expr) -> Register:
    """Regime D: ``r <= r + addend`` with no enable.

    Sum-bit roots are uniform XORs but the carry subtrees differ per bit
    near the LSB (and truncate to identical shapes beyond the cone depth),
    so both techniques find the word only partially — and there is no
    shared control signal in the dissimilar carry logic to exploit.
    """
    r = m.register(name, width)
    r.next = r.ref() + addend
    return r


def concat_word(
    m: Module,
    name: str,
    low: Optional[Expr] = None,
    high: Optional[Expr] = None,
    parts: Optional[Sequence[Expr]] = None,
) -> Register:
    """Regime D: a register whose fields come from unrelated logic.

    Pass either ``low``/``high`` or an explicit ``parts`` sequence (LSB
    field first).  Both techniques recover each field separately, so the
    fragmentation is ``len(parts) / width`` — give adjacent fields
    different root operations (AND vs XOR vs OR) or the runs merge.
    """
    if parts is None:
        if low is None or high is None:
            raise RtlError("concat_word needs low+high or parts")
        parts = (low, high)
    r = m.register(name, sum(p.width for p in parts))
    r.next = Concat(tuple(parts))
    return r


def status_word(m: Module, name: str, bits: Sequence[Expr]) -> Register:
    """Regime C: a status/state register with heterogeneous per-bit logic.

    Pass one 1-bit expression per bit, each structurally different.  "Words
    that are not found are state or other types of control registers", as
    the paper observes.
    """
    for bit in bits:
        if bit.width != 1:
            raise RtlError("status_word bits must be 1-bit expressions")
    r = m.register(name, len(bits))
    r.next = Concat(tuple(bits))
    return r


def shift_word(m: Module, name: str, width: int, serial_in: Expr) -> Register:
    """Regime C: shift register — D pins wired straight to neighbours' Q.

    With no combinational gate driving the D nets there is nothing for the
    file-adjacency grouping to group; neither technique finds the word.
    """
    r = m.register(name, width)
    r.next = Concat((r.ref().slice(1, width - 1), serial_in))
    return r
