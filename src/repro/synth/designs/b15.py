"""b15 — 80386 processor subset (ITC99).

Table 1: ~8.4K gates, 449 flip-flops, 32 reference words of average width
13.7.  The showcase benchmark for the paper's technique: 4 control signals
buy 4 additional full words (22 → 26), two of which Base could not even
partially group — "each control signal found was useful and capable of
uncovering one complete word" — and Ours misses nothing (0% not found).

Profile: 22 regime-A data words, 2 regime-B selected words (Base partial
→ Ours full), 2 regime-B alternating words (Base not-found → Ours full),
6 regime-D concat words (partial for both).
"""

from __future__ import annotations

from ...netlist.netlist import Netlist
from .wordmix import CoreProfile, WordSpec, build_core

__all__ = ["build", "PROFILE", "DEGRADED_PROFILE"]

PROFILE = CoreProfile(
    name="b15",
    words=[
        WordSpec("data", 14, 22),
        WordSpec("selected", 14, 2),
        WordSpec("alternating", 12, 2),
        WordSpec("concat", 13, 6, fields=2),
    ],
    single_registers=11,
    datapath_rounds=32,
    bus_width=32,
)

#: Variant used for the third b17 core and the b18 copies: the alternating
#: words are replaced by status words (control registers), modelling cores
#: whose extra words are genuinely unrecoverable.  This mirrors how the
#: paper's compositions (b17/b18) score lower than their constituents.
DEGRADED_PROFILE = CoreProfile(
    name="b15deg",
    words=[
        WordSpec("data", 14, 20),
        WordSpec("selected", 14, 2),
        WordSpec("status", 12, 2),
        WordSpec("concat", 13, 6, fields=2),
        WordSpec("adder", 14, 2),
    ],
    single_registers=11,
    datapath_rounds=32,
    bus_width=32,
)


def build() -> Netlist:
    return build_core(PROFILE)
