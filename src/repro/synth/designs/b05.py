"""b05 — elaborate the contents of a memory (ITC99).

b05 is logic-heavy and register-light: Table 1 lists 927 gates against
only 34 flip-flops, 5 reference words of average width 6.2, and *zero*
control signals found — Base and Ours behave identically (80% full, one
word not found, no partials).

Composition: 4 regime-A words, 1 regime-C word, 3 single-bit registers,
and a deep combinational "memory elaboration" datapath (chained adders,
comparators and parity trees over the input bus) that supplies the gate
count without adding words.
"""

from __future__ import annotations

from ...netlist.netlist import Netlist
from ..flow import synthesize
from ..rtl import Concat, Const, Module, Mux
from .common import data_word, status_word

__all__ = ["build"]


def build() -> Netlist:
    m = Module("b05", reset_input="reset")
    bus = m.input("membus", 16)
    addr = m.input("addr", 8)
    fetch = m.input("fetch")
    step = m.input("step")

    # Deep combinational elaboration network (the bulk of b05's gates).
    acc = bus
    rot = addr
    for round_index in range(10):
        mixed = acc + Concat((rot, rot))
        acc = mixed ^ Concat((acc.slice(8, 15), acc.slice(0, 7)))
        rot = (rot + Const(round_index * 2 + 1, 8)) ^ addr
    signature = acc

    hit = addr.eq(signature.slice(0, 7))
    over = signature.lt(bus)

    # Regime A words.  Sources are sliced above the adder's low carry bits:
    # bits 0-2 of a ripple sum have per-bit carry shapes that would split
    # the words (that asymmetry is deliberately used in the regime-D words
    # of other benchmarks, but b05's words are all-or-nothing in Table 1).
    data_word(m, "sign_low", 7, fetch, bus.slice(0, 6) ^ signature.slice(8, 14))
    data_word(m, "sign_high", 7, step, signature.slice(8, 14))
    data_word(m, "best_addr", 7, hit, Concat((addr.slice(0, 6),)))
    data_word(m, "window", 6, over, bus.slice(4, 9))

    # Regime C status word.
    sl = m.registers["sign_low"].ref()
    status_word(
        m,
        "mem_state",
        [
            hit & ~over,
            sl.bit(0) | (fetch & sl.bit(3)),
            (sl.bit(1) ^ step) & sl.bit(5),
            ~(sl.bit(2) | hit),
        ],
    )

    # Single-bit registers.
    seen = m.register("seen", 1, reset=0)
    seen.next = seen.ref() | hit
    parity = m.register("par", 1)
    parity.next = signature.parity()
    run = m.register("running", 1, reset=0)
    run.next = (run.ref() | fetch) & ~step

    m.output("sig_out", signature)
    m.output("state_out", m.registers["mem_state"].ref())
    m.output("hit_out", seen.ref())
    return synthesize(m)
