"""b08 — inclusions detector (ITC99).

Table 1 target: 5 reference words, 21 flip-flops, average width 4.2, and
the paper's biggest win: Base 40% full with two partials (fragmentation
0.58), Ours 80% full with zero partials using **3** control signals —
one word healed by a single assignment and one needing a simultaneous
pair (the Figure 1 crossed structure).

Composition: 2 regime-A words (4 and 5 bits), 1 regime-B selected word
(3-bit, one control signal), 1 regime-B crossed word (4-bit, two control
signals assigned as a pair), 1 regime-C word (5 bits).
"""

from __future__ import annotations

from ...netlist.netlist import Netlist
from ..flow import synthesize
from ..rtl import Concat, Const, Module, Mux
from .common import crossed_word, data_word, selected_word, status_word

__all__ = ["build"]


def build() -> Netlist:
    m = Module("b08", reset_input="reset")
    pattern = m.input("pattern", 5)
    probe = m.input("probe", 5)
    load = m.input("load")
    scan = m.input("scan")
    gate1 = m.input("gate1")
    gate2 = m.input("gate2")

    included = pattern.eq(probe)

    # Regime A.
    data_word(m, "hold_pat", 5, load, pattern)
    data_word(m, "hold_probe", 4, scan, probe.slice(0, 3))

    # Regime B, single control signal: third arm zero-extends one bit.
    selected_word(
        m,
        "match_pos",
        3,
        load | scan,
        included,
        pattern.slice(0, 2),
        probe.slice(1, 3),
        Concat((probe.slice(4, 4), Const(0, 2))),
    )

    # Regime B, crossed guards: needs the pair assignment (Figure 1).
    crossed_word(
        m,
        "incl_mask",
        4,
        e1=gate1,
        e2=gate2,
        g1=load,
        g2=scan,
        u=pattern.slice(0, 3),
        v=probe.slice(0, 3),
        t=pattern.slice(1, 4),
        k=probe.slice(1, 4),
        mask=0b1100,
    )

    # Regime C.
    hp = m.registers["hold_pat"].ref()
    status_word(
        m,
        "detect",
        [
            included & load,
            hp.bit(0) | (scan & hp.bit(2)),
            (hp.bit(1) ^ gate1) & included,
            ~(hp.bit(3) | gate2),
            hp.bit(4) ^ scan ^ load,
        ],
    )

    m.output("mask_out", m.registers["incl_mask"].ref())
    m.output("pos_out", m.registers["match_pos"].ref())
    m.output("det_out", m.registers["detect"].ref())
    return synthesize(m)
