"""b04 — min/max computer (ITC99).

The real b04 tracks the minimum and maximum of an input stream.  Word
inventory target (Table 1): 9 reference words, 66 flip-flops, average
width 7.33; Base finds 7 fully + 1 partially (fragmentation 0.5) + 1 not
found; Ours heals the partial word (8 full, fragmentation 0).

Composition: 7 regime-A words (the min/max/last registers and staging
latches), 1 regime-B word (a 4-bit rounding register whose third source
zero-extends a 2-bit field), 1 regime-C status word.
"""

from __future__ import annotations

from ...netlist.netlist import Netlist
from ..flow import synthesize
from ..rtl import Concat, Const, Module, Mux
from .common import data_word, selected_word, status_word

__all__ = ["build"]


def build() -> Netlist:
    m = Module("b04", reset_input="reset")
    data_in = m.input("data_in", 8)
    aux = m.input("aux", 8)
    start = m.input("start")
    enable = m.input("enable")

    reg_min = m.register("reg_min", 8)
    reg_max = m.register("reg_max", 8)
    reg_last = m.register("reg_last", 8)

    is_less = data_in.lt(reg_min.ref())
    is_more = reg_max.ref().lt(data_in)
    armed = start | enable

    reg_min.next = Mux(is_less & armed, data_in, reg_min.ref())
    reg_max.next = Mux(is_more & armed, data_in, reg_max.ref())
    reg_last.next = Mux(enable, data_in, reg_last.ref())

    # Staging pipeline latches (regime A).
    data_word(m, "stage1", 8, start, aux)
    data_word(m, "stage2", 8, enable, m.registers["stage1"].ref())
    data_word(m, "hold_lo", 8, is_less, aux)
    data_word(m, "hold_hi", 8, is_more, aux)

    # Regime B: 4-bit rounding register; third arm zero-extends 2 bits.
    selected_word(
        m,
        "round",
        4,
        armed,
        is_less,
        data_in.slice(0, 3),
        aux.slice(4, 7),
        Concat((data_in.slice(6, 7), Const(0, 2))),
    )

    # Regime C: 6-bit status word, heterogeneous bits.
    mn = reg_min.ref()
    mx = reg_max.ref()
    status_word(
        m,
        "flags",
        [
            is_less & ~is_more,
            (mn.bit(7) | mx.bit(0)) ^ enable,
            ~(mn.bit(3) & mx.bit(3)),
            (start & mx.bit(5)) | mn.bit(1),
            mx.parity(),
            mn.bit(6) ^ mx.bit(6) ^ start,
        ],
    )

    m.output("min_out", reg_min.ref())
    m.output("max_out", reg_max.ref())
    m.output("delta", reg_max.ref() - reg_min.ref())
    m.output("flags_out", m.registers["flags"].ref())
    return synthesize(m)
