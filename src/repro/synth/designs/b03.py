"""b03 — resource arbiter (ITC99).

The real b03 arbitrates four requesters over a shared resource; its word
inventory (7 reference words, ~30 flip-flops, average width ~3) is
dominated by small grant/code registers.  Composition used here:

* 5 regime-A words (request latches and grant codes) — full by both,
* 1 regime-B word — the paper's Figure 1 word: a 3-bit code register
  selected among CODA0/CODA1/RU sources, healed by control signals,
* 1 regime-C status word (FSM flags) — found by neither,
* 8 single-bit bookkeeping registers (outside the reference words).
"""

from __future__ import annotations

from ...netlist.netlist import Netlist
from ..flow import synthesize
from ..rtl import Concat, Const, Module, Mux
from .common import data_word, selected_word, status_word

__all__ = ["build"]


def build() -> Netlist:
    m = Module("b03", reset_input="reset")
    req = [m.input(f"request{i}") for i in range(4)]
    din = m.input("datain", 4)
    ena = m.input("ena_count")

    # Shared arbitration conditions (built once; RTL-level CSE shares the
    # gates, so their outputs become the common control cones).
    grant_any = (req[0] | req[1]) | (req[2] | req[3])
    busy = m.input("busy")
    sel_code = grant_any & ~busy
    sel_alt = req[0] & req[1]

    # Regime A: request latches and grant-code registers.
    data_word(m, "fu", 4, grant_any, din)
    data_word(m, "codao", 3, sel_code, din.slice(0, 2))
    data_word(m, "codai", 3, sel_alt, din.slice(1, 3))
    data_word(m, "ru2", 3, busy, din.slice(0, 2))
    data_word(m, "ru3", 3, ena, din.slice(1, 3))

    # Regime B (the Figure 1 word): 3-bit code selected among three
    # sources, one of which zero-extends a 2-bit field.
    coda = selected_word(
        m,
        "coda_out",
        3,
        sel_code,
        sel_alt,
        m.registers["codao"].ref(),
        m.registers["codai"].ref(),
        Concat((din.slice(0, 1), Const(0, 1))),
    )

    # Regime C: FSM-ish status word with heterogeneous bits.
    fu = m.registers["fu"].ref()
    status_word(
        m,
        "stato",
        [
            (req[0] & busy) | (fu.bit(0) & ~req[1]),
            fu.bit(1) ^ (req[2] | busy),
            ~(fu.bit(2) & grant_any),
        ],
    )

    # Single-bit bookkeeping registers (not reference words).
    for i in range(4):
        flag = m.register(f"req_latch{i}", 1)
        flag.next = req[i] & ~busy
    toggle = m.register("phase", 1, reset=0)
    toggle.next = ~toggle.ref()
    armed = m.register("armed", 1, reset=0)
    armed.next = (armed.ref() | grant_any) & ~busy
    over = m.register("overflow", 1)
    over.next = m.registers["fu"].ref().all()
    idle = m.register("idle", 1)
    idle.next = ~grant_any

    m.output("grant", coda.ref())
    m.output("stato_out", m.registers["stato"].ref())
    m.output("busy_out", armed.ref() & toggle.ref())
    return synthesize(m)
