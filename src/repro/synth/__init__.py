"""Synthesis substrate: RTL IR, synthesis flow, and benchmark designs.

Stands in for the VHDL sources and commercial synthesis flow behind the
ITC99 gate-level netlists: :mod:`rtl` (the word-level IR), :mod:`lower`
(elaboration), :mod:`optimize` (logic optimization), :mod:`mapping`
(technology mapping), :mod:`order` (netlist emission), :mod:`flatten`
(hierarchy inlining), :mod:`flow` (the end-to-end pipeline),
:mod:`trojan` (the adversary), and :mod:`designs` (the 12 Table 1
benchmarks).
"""

from .anonymize import AnonymizedNetlist, anonymize
from .flatten import inline_instance
from .flow import SynthesisOptions, synthesize
from .lower import Lowering, lower
from .mapping import (
    absorb_inverters,
    decompose_wide_gates,
    flatten_associative,
    map_muxes,
    tech_map,
)
from .optimize import (
    cleanup_buffers,
    cleanup_double_inverters,
    fold_constants,
    optimize,
    simplify_duplicate_inputs,
    simplify_mux_constants,
    strash,
)
from .order import order_for_emission, register_groups
from .scan import ScanSpec, insert_scan_chain
from .rtl import (
    Binary,
    Compare,
    Concat,
    Const,
    Expr,
    InputRef,
    Module,
    Mux,
    Reduce,
    RegRef,
    Register,
    RtlError,
    Slice,
    Unary,
)
from .trojan import TrojanSpec, insert_trojan

__all__ = [
    "AnonymizedNetlist", "anonymize",
    "inline_instance",
    "SynthesisOptions", "synthesize",
    "Lowering", "lower",
    "absorb_inverters", "decompose_wide_gates", "flatten_associative",
    "map_muxes", "tech_map",
    "cleanup_buffers", "cleanup_double_inverters", "fold_constants",
    "optimize", "simplify_duplicate_inputs", "simplify_mux_constants", "strash",
    "order_for_emission", "register_groups",
    "Binary", "Compare", "Concat", "Const", "Expr", "InputRef", "Module",
    "Mux", "Reduce", "RegRef", "Register", "RtlError", "Slice", "Unary",
    "ScanSpec", "insert_scan_chain",
    "TrojanSpec", "insert_trojan",
]
