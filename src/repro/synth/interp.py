"""Reference interpreter for the RTL IR.

Evaluates a :class:`~repro.synth.rtl.Module` at the word level, giving the
ground truth the synthesized netlist must match.  The test-suite clocks
the interpreter and the gate-level simulator side by side over random
stimulus to validate the whole flow (lowering, optimization, mapping,
emission ordering) end to end.
"""

from __future__ import annotations

from typing import Dict, Mapping, Tuple

from .rtl import (
    Binary,
    Compare,
    Concat,
    Const,
    Expr,
    InputRef,
    Module,
    Mux,
    Reduce,
    RegRef,
    RtlError,
    Slice,
    Unary,
)

__all__ = ["evaluate_expr", "initial_state", "step_module"]


def _mask(width: int) -> int:
    return (1 << width) - 1


def evaluate_expr(
    expr: Expr,
    inputs: Mapping[str, int],
    state: Mapping[str, int],
) -> int:
    """Evaluate ``expr`` given input-port and register values (unsigned)."""
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, InputRef):
        return inputs[expr.name] & _mask(expr.width)
    if isinstance(expr, RegRef):
        return state[expr.name] & _mask(expr.width)
    if isinstance(expr, Unary):
        return ~evaluate_expr(expr.operand, inputs, state) & _mask(expr.width)
    if isinstance(expr, Binary):
        left = evaluate_expr(expr.left, inputs, state)
        right = evaluate_expr(expr.right, inputs, state)
        if expr.op == "and":
            return left & right
        if expr.op == "or":
            return left | right
        if expr.op == "xor":
            return left ^ right
        if expr.op == "add":
            return (left + right) & _mask(expr.width)
        if expr.op == "sub":
            return (left - right) & _mask(expr.width)
    if isinstance(expr, Compare):
        left = evaluate_expr(expr.left, inputs, state)
        right = evaluate_expr(expr.right, inputs, state)
        if expr.op == "eq":
            return int(left == right)
        if expr.op == "ne":
            return int(left != right)
        if expr.op == "lt":
            return int(left < right)
    if isinstance(expr, Mux):
        sel = evaluate_expr(expr.sel, inputs, state)
        branch = expr.then if sel else expr.els
        return evaluate_expr(branch, inputs, state)
    if isinstance(expr, Slice):
        value = evaluate_expr(expr.operand, inputs, state)
        return (value >> expr.lo) & _mask(expr.width)
    if isinstance(expr, Concat):
        value = 0
        shift = 0
        for part in expr.parts:
            value |= evaluate_expr(part, inputs, state) << shift
            shift += part.width
        return value
    if isinstance(expr, Reduce):
        value = evaluate_expr(expr.operand, inputs, state)
        bits = [(value >> i) & 1 for i in range(expr.operand.width)]
        if expr.op == "and":
            return int(all(bits))
        if expr.op == "or":
            return int(any(bits))
        if expr.op == "xor":
            return sum(bits) % 2
    raise RtlError(f"cannot evaluate {expr!r}")


def initial_state(module: Module, value: int = 0) -> Dict[str, int]:
    """All registers at ``value`` (masked to each register's width)."""
    return {
        name: value & _mask(reg.width)
        for name, reg in module.registers.items()
    }


def step_module(
    module: Module,
    inputs: Mapping[str, int],
    state: Mapping[str, int],
) -> Tuple[Dict[str, int], Dict[str, int]]:
    """One clock cycle: returns (next register state, output values).

    A raised reset input (when the module declares one) loads every
    register that has a reset value, matching the synchronous-reset mux
    that lowering inserts.
    """
    resetting = bool(
        module.reset_input and inputs.get(module.reset_input, 0)
    )
    next_state: Dict[str, int] = {}
    for name, reg in module.registers.items():
        if resetting and reg.reset is not None:
            next_state[name] = reg.reset
        else:
            next_state[name] = (
                evaluate_expr(reg.next, inputs, state) & _mask(reg.width)
            )
    outputs = {
        name: evaluate_expr(expr, inputs, state)
        for name, expr in module.outputs.items()
    }
    return next_state, outputs
