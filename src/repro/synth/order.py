"""Emission ordering: reproduce the line-adjacency of synthesized netlists.

The paper's first-level grouping (Section 2.2) leans on an empirical
property of the ITC99 gate-level files: the lines defining the bits of a
word are adjacent (its b03 walkthrough has U215..U219 "in consecutive
lines").  Synthesis tools produce this because each register's data-input
gates are materialized together when the register transfer is synthesized.

:func:`order_for_emission` rebuilds a netlist in that canonical order:

1. all combinational gates that do *not* directly drive a flip-flop D pin,
   in their existing order (cone logic, control logic, output logic);
2. per register — in first-flip-flop order, bits ascending — the gates
   driving that register's D nets, as one consecutive block;
3. the flip-flops themselves, grouped per register.

A gate driving D pins of several registers is emitted in the first block
that needs it; later blocks simply skip it (breaking line adjacency for
the second register — the same artifact gate sharing causes in real
netlists, and one source of partially-found words).
"""

from __future__ import annotations

import re
from typing import Dict, List, Tuple

from ..netlist.netlist import Gate, Netlist

__all__ = ["order_for_emission", "register_groups"]

_REG_NET_RE = re.compile(r"^(?P<reg>.+?)_reg(?:_(?P<bit>\d+))?$")


def register_groups(netlist: Netlist) -> List[Tuple[str, List[Gate]]]:
    """Flip-flops grouped by register name, bits ascending.

    Returns ``(register_name, [ff gates])`` in first-appearance order.
    Flip-flops whose output nets do not follow the ``_reg`` convention form
    single-gate groups of their own.
    """
    groups: Dict[str, List[Tuple[int, Gate]]] = {}
    order: List[str] = []
    for ff in netlist.flip_flops():
        match = _REG_NET_RE.match(ff.output)
        if match:
            reg = match.group("reg")
            bit = int(match.group("bit") or 0)
        else:
            reg = ff.output
            bit = 0
        if reg not in groups:
            groups[reg] = []
            order.append(reg)
        groups[reg].append((bit, ff))
    return [
        (reg, [gate for _, gate in sorted(groups[reg], key=lambda e: e[0])])
        for reg in order
    ]


def order_for_emission(netlist: Netlist) -> Netlist:
    """Rebuild the netlist with word-bit driver lines adjacent."""
    groups = register_groups(netlist)
    root_names: List[str] = []
    root_seen = set()
    for _, ffs in groups:
        for ff in ffs:
            driver = netlist.driver(ff.inputs[0])
            if driver is None or driver.is_ff:
                continue
            if driver.name in root_seen:
                continue
            root_seen.add(driver.name)
            root_names.append(driver.name)

    ordered = Netlist(netlist.name)
    for net in netlist.primary_inputs:
        ordered.add_input(net)
    for gate in netlist.gates_in_file_order():
        if gate.is_ff or gate.name in root_seen:
            continue
        ordered.add_gate(gate.name, gate.cell, gate.inputs, gate.output)
    for name in root_names:
        gate = netlist.gate(name)
        ordered.add_gate(gate.name, gate.cell, gate.inputs, gate.output)
    for _, ffs in groups:
        for ff in ffs:
            ordered.add_gate(ff.name, ff.cell, ff.inputs, ff.output)
    for net in netlist.primary_outputs:
        ordered.add_output(net)
    return ordered
