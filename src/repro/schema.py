"""Versioning of every machine-readable payload the project emits.

All JSON the tools write — ``repro identify --json`` reports,
``--trace-json`` traces, eval-journal rows, batch reports, and
artifact-store entries — carries two version fields:

``schema_version``
    The *shape* of the payload: which fields exist and what they mean.
    Bump :data:`SCHEMA_VERSION` whenever a field is added, removed, or
    reinterpreted.  A golden-file test (``tests/test_schema.py``) pins the
    exact field set of every payload kind against the current version, so
    a shape change without a bump fails CI.

``pipeline_version``
    The *algorithm* that produced the payload
    (:data:`repro.core.stages.PIPELINE_VERSION`).  Bump it when the
    identification algorithm changes output; it invalidates every cached
    artifact (the store bakes it into cache keys).

The two move independently: renaming a JSON field bumps the schema but
not the pipeline; an algorithm fix bumps the pipeline but not the schema.
"""

from __future__ import annotations

from typing import Dict

from .core.stages import PIPELINE_VERSION

__all__ = ["SCHEMA_VERSION", "PIPELINE_VERSION", "stamp"]

#: Current payload-shape version (see module docstring for the bump rule).
#: v3: serve response envelopes (identify/batch/error/health), the
#: ``--metrics-json`` dump, and ``result_digest`` in identify ``--json``.
#: v4: cone-cache tier counters in trace ``cache`` and batch rows, the
#: ``cone`` store-envelope kind, and the incremental-report payload
#: (library ``as_dict`` and the serve ``base_digest`` response).
#: v5: failure-model fields (DESIGN.md §13) — quarantined batch rows and
#: the ``degraded``/``quarantined``/``quarantine_reasons`` aggregate
#: fields, ``read_timeout_seconds`` on ``/healthz``, and ``store_mode``
#: on ``/readyz``.
#: v6: the ``kernel`` trace field (which signature-kernel implementation
#: computed the run, see ``repro.core.kernels``) in ``--trace-json`` /
#: report traces and stored result envelopes, plus the ``BENCH_serve``
#: load-benchmark report (``scripts/serve_smoke.py --bench``).
#: v7: pluggable backends (``repro.core.backends``) — the ``backend``
#: trace/provenance field in report traces, identify ``--json`` config
#: blocks, batch rows, and stored result envelopes; the uniform serve
#: error envelope (``error``/``detail``/``diagnostics`` with field-level
#: validation records); and the ``scoreboard`` payload
#: (``repro scoreboard``).
#: v8: the triage subsystem (``repro.triage``) — the triage report
#: payload (``repro triage --json`` / ``POST /v1/triage`` / stored
#: triage envelopes), the ``triage`` summary field on batch rows
#: (``repro batch --triage``), and the ``triage`` ROC section in the
#: scoreboard payload (``repro scoreboard --triage``).
SCHEMA_VERSION = 8


def stamp(payload: Dict) -> Dict:
    """Return ``payload`` with the version fields prepended.

    The input mapping is not mutated; version keys already present are
    overwritten so a re-stamp can never emit stale versions.
    """
    stamped = {
        "schema_version": SCHEMA_VERSION,
        "pipeline_version": PIPELINE_VERSION,
    }
    for key, value in payload.items():
        if key not in stamped:
            stamped[key] = value
    return stamped
