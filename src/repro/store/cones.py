"""Tier 3 of the cone cache: canonical cone entries in the artifact store.

One :class:`StoreConeTier` adapts an :class:`~repro.store.disk.ArtifactStore`
to the :class:`~repro.core.conecache.ConeCacheTier` protocol.  Entries
live in the store's ``cone`` kind namespace, addressed by
:func:`~repro.store.keys.cone_cache_key` — the ``cone:`` canonical
digest of the subgroup envelope crossed with the *cone* configuration
fingerprint (narrower than the whole-result fingerprint, so runs that
differ only in cone-neutral fields share entries).

Because the digest is isomorphism-normalized, the tier is the
cross-design layer: a cold b17 run hits the entries a b15 run committed
(its three cores are b15 copies), a b18 run hits entries committed by
b14, and an edited design re-derives only the cones the edit actually
dirtied — everything else replays from disk.

Probe and commit are batched end-to-end (``get_many`` / ``put_many``),
so one reduction stage costs one directory pass regardless of how many
subgroups it probes, and a burst of tiny entries under cap pressure
triggers one eviction scan, not one per entry.
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence

from ..core.conecache import ConeCacheTier
from .keys import cone_cache_key
from .serialize import (
    UnserializableResult,
    cone_entry_from_dict,
    cone_entry_to_dict,
)

__all__ = ["StoreConeTier"]


class StoreConeTier(ConeCacheTier):
    """Store-backed cone-cache tier (see module docstring)."""

    name = "store"

    def __init__(self, store):
        self.store = store

    def probe_many(
        self, digests: Sequence[str], fingerprint: str
    ) -> Dict[str, Dict]:
        digest_of = {
            cone_cache_key(digest, fingerprint): digest
            for digest in digests
        }
        hits: Dict[str, Dict] = {}
        for key, envelope in self.store.get_many(list(digest_of)).items():
            digest = digest_of[key]
            if (
                envelope.get("digest") != digest
                or envelope.get("config") != fingerprint
            ):
                self.store._heal(self.store._path(key))
                continue
            try:
                hits[digest] = cone_entry_from_dict(envelope.get("entry"))
            except UnserializableResult:
                self.store._heal(self.store._path(key))
        return hits

    def commit_many(
        self, entries: Mapping[str, Dict], fingerprint: str
    ) -> None:
        items = []
        for digest, entry in entries.items():
            try:
                payload = cone_entry_to_dict(entry)
            except UnserializableResult:
                continue  # refuse, don't poison the digest space
            items.append((
                cone_cache_key(digest, fingerprint),
                "cone",
                {
                    "digest": digest,
                    "config": fingerprint,
                    "entry": payload,
                },
            ))
        if items:
            self.store.put_many(items)
