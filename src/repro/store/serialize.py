"""Lossless (de)serialization of pipeline results for the artifact store.

The persisted form is plain JSON so entries are inspectable with ``jq``
and survive interpreter upgrades (no pickle).  ``result_from_dict`` is
the exact inverse of ``result_to_dict`` on everything deterministic:
words, singletons, control assignments, trace counters, cache statistics,
and pre-flight diagnostics round-trip bit-for-bit.  Wall-clock fields
(``runtime_seconds``, ``stage_seconds``) are carried along verbatim —
they describe the original computation, not the (near-free) cache load.

Degraded results (quarantined failures, expired deadlines) are *not*
serializable by design: a degraded run reflects one machine's budget
pressure, not the design, so the store refuses to persist it and the next
run simply recomputes.

:func:`result_digest` derives a SHA-256 over the deterministic subset
only; the batch orchestrator and the CI cache job compare these digests
to assert that cached and uncached runs are byte-identical.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict

from ..core.words import (
    CacheStats,
    ControlAssignment,
    IdentificationResult,
    StageTrace,
    Word,
)

__all__ = [
    "result_to_dict",
    "result_from_dict",
    "result_digest",
    "cone_entry_to_dict",
    "cone_entry_from_dict",
    "UnserializableResult",
]


class UnserializableResult(ValueError):
    """Raised when a result must not be persisted (degraded runs)."""


def _trace_to_dict(trace: StageTrace) -> Dict:
    if trace.degraded:
        raise UnserializableResult(
            "degraded results are not cacheable: "
            f"{len(trace.failures)} failure(s), "
            f"deadline_hit={trace.deadline_hit}"
        )
    return {
        "counters": trace.counter_dict(),
        "jobs": trace.jobs,
        "backend": trace.backend,
        "kernel": trace.kernel,
        "stage_seconds": dict(trace.stage_seconds),
        "cache": trace.cache.as_dict(),
        "preflight": list(trace.preflight),
    }


def _trace_from_dict(payload: Dict) -> StageTrace:
    trace = StageTrace()
    for name, value in payload.get("counters", {}).items():
        if name in trace.counter_dict():
            setattr(trace, name, value)
    trace.jobs = payload.get("jobs", 1)
    # Entries persisted before the backend/kernel fields existed were
    # computed by the default technique on the python reference path.
    trace.backend = payload.get("backend", "ours")
    trace.kernel = payload.get("kernel", "python")
    trace.stage_seconds = dict(payload.get("stage_seconds", {}))
    cache_fields = payload.get("cache", {})
    trace.cache = CacheStats(**{
        name: cache_fields.get(name, 0)
        for name in CacheStats.__dataclass_fields__
    })
    trace.preflight = list(payload.get("preflight", []))
    return trace


def result_to_dict(result: IdentificationResult) -> Dict:
    """One identification result as a JSON-ready dict (store payload)."""
    return {
        "words": [list(word.bits) for word in result.words],
        "singletons": list(result.singletons),
        "control_assignments": [
            {"word": list(word.bits), "assignment": assignment.as_dict()}
            for word, assignment in result.control_assignments.items()
        ],
        "runtime_seconds": result.runtime_seconds,
        "trace": _trace_to_dict(result.trace),
    }


def result_from_dict(payload: Dict) -> IdentificationResult:
    """Inverse of :func:`result_to_dict`."""
    result = IdentificationResult()
    result.words = [Word(tuple(bits)) for bits in payload["words"]]
    result.singletons = list(payload["singletons"])
    for entry in payload["control_assignments"]:
        word = Word(tuple(entry["word"]))
        result.control_assignments[word] = ControlAssignment.of(
            {net: int(val) for net, val in entry["assignment"].items()}
        )
    result.runtime_seconds = payload.get("runtime_seconds", 0.0)
    result.trace = _trace_from_dict(payload.get("trace", {}))
    return result


def cone_entry_to_dict(entry: Dict) -> Dict:
    """One canonical cone entry as a JSON-ready dict (store payload).

    Entries are already plain JSON values (run lengths, a canonical-id
    assignment, two counters — see :mod:`repro.core.conecache`); this
    validates the shape and normalizes field order so persisted entries
    are canonical, raising :class:`UnserializableResult` on anything
    malformed rather than poisoning the ``cone:`` space.
    """
    try:
        runs = [int(r) for r in entry["runs"]]
        assignment = entry.get("assignment")
        if assignment is not None:
            assignment = {
                str(cid): int(val) for cid, val in assignment.items()
            }
        normalized = {
            "runs": runs,
            "assignment": assignment,
            "tried": int(entry["tried"]),
            "infeasible": int(entry["infeasible"]),
        }
    except (KeyError, TypeError, ValueError) as exc:
        raise UnserializableResult(f"malformed cone entry: {exc}") from exc
    if any(r <= 0 for r in runs) or normalized["tried"] < 0:
        raise UnserializableResult("malformed cone entry: bad counters")
    if assignment is not None and any(
        val not in (0, 1) for val in assignment.values()
    ):
        raise UnserializableResult("malformed cone entry: bad assignment")
    return normalized


def cone_entry_from_dict(payload: Dict) -> Dict:
    """Inverse of :func:`cone_entry_to_dict` (same canonical shape).

    Store-loaded payloads pass through the identical validation — a
    hand-edited or bit-rotted entry raises and is healed by the caller
    instead of being replayed.
    """
    return cone_entry_to_dict(payload)


def result_digest(result: IdentificationResult) -> str:
    """SHA-256 over the deterministic subset of a result.

    Two runs of the same design and configuration — serial or parallel,
    cached or freshly computed — must produce the same digest; anything
    else is a correctness bug (this is the ``cache-on ≡ cache-off``
    oracle's comparison key).  Timings are deliberately excluded.
    """
    canonical = {
        "words": [list(word.bits) for word in result.words],
        "singletons": list(result.singletons),
        "control_assignments": [
            {"word": list(word.bits), "assignment": assignment.as_dict()}
            for word, assignment in result.control_assignments.items()
        ],
        "counters": result.trace.counter_dict(),
    }
    text = json.dumps(canonical, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()
