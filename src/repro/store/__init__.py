"""Content-addressed artifact store (DESIGN.md §10).

Persists the expensive products of the pipeline — identification results
(words, partitions, control assignments, stage traces) and parsed
netlists — on disk, keyed by ``(content SHA-256, configuration
fingerprint, pipeline version)``.  Repeat analyses of the same design
under the same semantics become O(read one JSON file); any change to the
input bytes, to a result-affecting configuration field, or to
:data:`~repro.core.stages.PIPELINE_VERSION` changes the key and misses.

The store is shared safely by concurrent threads and processes with no
locks: writes are atomic (tmp-file + rename), reads self-heal corrupt
entries into misses, and an optional LRU byte cap bounds disk use.  See
:mod:`repro.store.disk` for the concurrency model and
:mod:`repro.store.keys` for key derivation and invalidation rules.

Entry points: :class:`ArtifactStore` plugs into
:func:`repro.core.pipeline.identify_words` (``store=``), the
:class:`repro.api.Session` facade, and the ``repro batch`` corpus
orchestrator.
"""

from .cones import StoreConeTier
from .disk import DEFAULT_DEGRADED_AFTER, ArtifactStore, StoreStats
from .keys import (
    CONE_FINGERPRINT_FIELDS,
    CONE_NEUTRAL_FIELDS,
    FINGERPRINT_FIELDS,
    bytes_digest,
    cache_key,
    cone_cache_key,
    cone_fingerprint,
    config_fingerprint,
    file_digest,
    netlist_digest,
)
from .serialize import (
    UnserializableResult,
    cone_entry_from_dict,
    cone_entry_to_dict,
    result_digest,
    result_from_dict,
    result_to_dict,
)

__all__ = [
    "ArtifactStore",
    "StoreStats",
    "DEFAULT_DEGRADED_AFTER",
    "StoreConeTier",
    "CONE_FINGERPRINT_FIELDS",
    "CONE_NEUTRAL_FIELDS",
    "FINGERPRINT_FIELDS",
    "cache_key",
    "cone_cache_key",
    "cone_fingerprint",
    "config_fingerprint",
    "bytes_digest",
    "file_digest",
    "netlist_digest",
    "UnserializableResult",
    "cone_entry_from_dict",
    "cone_entry_to_dict",
    "result_digest",
    "result_from_dict",
    "result_to_dict",
]
