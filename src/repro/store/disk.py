"""Disk-backed, content-addressed artifact store.

Layout (everything under one root directory, safe to delete wholesale)::

    <root>/objects/<k[:2]>/<key>.json   one artifact per file
    <root>/tmp/                         staging area for atomic writes

Concurrency model — no locks anywhere:

* **Writes are atomic.**  An artifact is staged in ``tmp/`` (same
  filesystem) and published with :func:`os.replace`, so a reader sees
  either the complete old entry, the complete new entry, or no entry —
  never a torn file.  Two processes committing the same key race
  harmlessly: both payloads are byte-identical by the determinism
  contract, and last-replace-wins.
* **Reads are lockless and self-healing.**  Any entry that fails to
  parse, fails envelope validation (wrong key, schema, or pipeline
  version), or was truncated by a crashed writer is treated as a miss,
  unlinked best-effort, and recomputed by the caller — a corrupt cache
  can cost time, never correctness.
* **The size cap is LRU.**  Reads bump the entry's mtime; when a write
  pushes the store past ``max_bytes``, the oldest-read entries are
  evicted (never the entry just written).  Eviction tolerates concurrent
  deletion of the same files.
"""

from __future__ import annotations

import errno
import json
import os
import tempfile
import threading
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .. import faults as _faults
from .. import metrics as _metrics
from ..core.pipeline import PIPELINE_VERSION, PipelineConfig
from ..core.words import IdentificationResult
from ..netlist.netlist import Netlist
from ..netlist.verilog import write_verilog
from ..schema import SCHEMA_VERSION, stamp
from .keys import cache_key, config_fingerprint, netlist_digest
from .serialize import UnserializableResult, result_from_dict, result_to_dict

__all__ = ["ArtifactStore", "StoreStats", "DEFAULT_DEGRADED_AFTER"]

#: Swallowed-``OSError`` count at which a store flips to degraded
#: (write-bypass) mode.  Override per instance with ``degraded_after``
#: or process-wide with the ``REPRO_STORE_DEGRADED_AFTER`` environment
#: variable (which is how batch worker processes, whose stores are
#: opened from a bare root path, pick the threshold up).
DEFAULT_DEGRADED_AFTER = 16

#: ``StoreStats`` counter names for suppressed I/O errors, by operation.
IO_ERROR_COUNTERS = (
    "read_errors",
    "write_errors",
    "touch_errors",
    "heal_errors",
    "evict_errors",
    "scan_errors",
)


@dataclass
class StoreStats:
    """Per-instance counters (not persisted; a fresh store starts at 0).

    Counters are bumped through :meth:`bump`, which holds a lock — one
    store instance is shared by every request of the serve thread pool,
    and unlocked ``+= 1`` increments would lose counts under that
    concurrency.  Each bump is also published to the installed
    :mod:`repro.metrics` registry (``repro_store_<name>_total``), so
    ``GET /metrics`` sees store traffic without polling instances.
    """

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0
    healed: int = 0
    bypassed_puts: int = 0
    read_errors: int = 0
    write_errors: int = 0
    touch_errors: int = 0
    heal_errors: int = 0
    evict_errors: int = 0
    scan_errors: int = 0

    def __post_init__(self):
        self._lock = threading.Lock()

    def bump(self, name: str, amount: int = 1) -> None:
        """Thread-safely increment one counter and publish it."""
        with self._lock:
            setattr(self, name, getattr(self, name) + amount)
        registry = _metrics.current()
        if registry is not None:
            registry.counter(
                f"repro_store_{name}_total",
                f"Artifact-store {name} across all requests",
            ).inc(amount)

    def bump_io_error(self, op: str) -> None:
        """Count one suppressed ``OSError`` under its operation name.

        ``op`` is one of read/write/touch/heal/evict/scan; the matching
        ``<op>_errors`` field is bumped and the error is published as
        ``repro_store_io_error_total{op=...}``, so a fault burst shows
        up on ``/metrics`` even though no individual call ever raised.
        """
        name = op + "_errors"
        if name not in IO_ERROR_COUNTERS:
            raise ValueError(f"unknown I/O error op {op!r}")
        with self._lock:
            setattr(self, name, getattr(self, name) + 1)
        registry = _metrics.current()
        if registry is not None:
            registry.counter(
                "repro_store_io_error_total",
                "OSErrors swallowed by the artifact store, by operation",
                labelnames=("op",),
            ).inc(op=op)

    @property
    def io_errors(self) -> int:
        """Total suppressed I/O errors across every operation."""
        with self._lock:
            return sum(getattr(self, name) for name in IO_ERROR_COUNTERS)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> Dict[str, float]:
        payload = {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": self.evictions,
            "healed": self.healed,
            "bypassed_puts": self.bypassed_puts,
            "hit_rate": self.hit_rate,
            "io_errors": self.io_errors,
        }
        for name in IO_ERROR_COUNTERS:
            payload[name] = getattr(self, name)
        return payload


def _netlist_summary(netlist: Netlist) -> Dict[str, object]:
    return {
        "name": netlist.name,
        "gates": netlist.num_gates,
        "nets": netlist.num_nets,
        "flip_flops": netlist.num_ffs,
    }


class ArtifactStore:
    """Content-addressed cache of pipeline artifacts (see module docstring).

    ``max_bytes`` caps the total size of ``objects/``; ``None`` (default)
    means unbounded.  One store may be shared by any number of threads
    and processes simultaneously.

    ``degraded_after`` is the disk-health circuit breaker: once that
    many *real* I/O errors (``FileNotFoundError`` races with concurrent
    eviction do not count) have been swallowed, the store flips to a
    degraded write-bypass mode — reads are still attempted (they
    self-heal to misses), but nothing is written to a disk that is
    evidently failing, so analyses keep producing byte-identical
    results at cache-off speed instead of dying on ``ENOSPC``.  The
    flip is one-way for the life of the instance and is reported by
    :attr:`mode`, ``stats``, the ``repro_store_degraded`` gauge, and
    ``repro serve``'s ``/readyz``.  ``None`` picks the
    ``REPRO_STORE_DEGRADED_AFTER`` environment variable or
    :data:`DEFAULT_DEGRADED_AFTER`; ``0`` disables the breaker.
    """

    def __init__(
        self,
        root: str,
        max_bytes: Optional[int] = None,
        degraded_after: Optional[int] = None,
    ):
        self.root = os.fspath(root)
        self.max_bytes = max_bytes
        if degraded_after is None:
            degraded_after = int(
                os.environ.get(
                    "REPRO_STORE_DEGRADED_AFTER", DEFAULT_DEGRADED_AFTER
                )
            )
        self.degraded_after = degraded_after
        self._degraded = False
        self._degraded_reason: Optional[str] = None
        self._disk_errors = 0
        self.stats = StoreStats()
        self._objects = os.path.join(self.root, "objects")
        self._tmp = os.path.join(self.root, "tmp")
        # Approximate running size of objects/ (see _note_written): lets
        # a capped store skip the full-directory rescan on most puts.
        self._size_lock = threading.Lock()
        self._approx_bytes = 0
        self._puts_since_rescan = 0
        os.makedirs(self._objects, exist_ok=True)
        os.makedirs(self._tmp, exist_ok=True)
        if max_bytes is not None:
            self._evict()  # a tightened cap applies to existing entries
        else:
            self._approx_bytes = self.total_bytes()

    # ------------------------------------------------------------------
    # degraded mode (the disk-health circuit breaker)
    # ------------------------------------------------------------------
    @property
    def degraded(self) -> bool:
        return self._degraded

    @property
    def mode(self) -> str:
        """``"ok"`` or ``"degraded"`` (write-bypass), for health probes."""
        return "degraded" if self._degraded else "ok"

    @property
    def degraded_reason(self) -> Optional[str]:
        """Machine-readable reason the breaker tripped, or ``None``."""
        return self._degraded_reason

    def _record_io_error(self, op: str, exc: OSError) -> None:
        """Count one suppressed ``OSError``; maybe trip the breaker.

        ``FileNotFoundError`` is counted (it was still suppressed) but
        never advances the breaker — losing a race with a concurrent
        eviction or heal is the lockless design working, not the disk
        failing.
        """
        self.stats.bump_io_error(op)
        if isinstance(exc, FileNotFoundError):
            return
        with self._size_lock:
            self._disk_errors += 1
            tripped = (
                not self._degraded
                and self.degraded_after > 0
                and self._disk_errors >= self.degraded_after
            )
            if tripped:
                self._degraded = True
                self._degraded_reason = (
                    f"io_error_burst: {self._disk_errors} I/O errors "
                    f"(threshold {self.degraded_after}), last: "
                    f"{op}: {exc}"
                )
        if tripped:
            registry = _metrics.current()
            if registry is not None:
                registry.gauge(
                    "repro_store_degraded",
                    "1 when the store has flipped to write-bypass mode",
                ).set(1)

    # ------------------------------------------------------------------
    # generic object layer
    # ------------------------------------------------------------------
    def _path(self, key: str) -> str:
        return os.path.join(self._objects, key[:2], key + ".json")

    def _load(self, key: str) -> Optional[Dict]:
        """The validated envelope under ``key`` — no stats, no LRU touch.

        Corrupt, truncated, foreign, or version-mismatched entries are
        self-healed: unlinked (best-effort) and reported as a miss; an
        I/O error while reading is additionally counted as one.
        """
        path = self._path(key)
        try:
            if _faults.fire("store.read", key):
                raise OSError(errno.EIO, "injected I/O error", path)
            with open(path, encoding="utf-8") as handle:
                envelope = json.load(handle)
        except FileNotFoundError:
            return None
        except OSError as exc:
            self._record_io_error("read", exc)
            self._heal(path)
            return None
        except ValueError:
            self._heal(path)
            return None
        if (
            not isinstance(envelope, dict)
            or envelope.get("schema_version") != SCHEMA_VERSION
            or envelope.get("pipeline_version") != PIPELINE_VERSION
            or envelope.get("key") != key
        ):
            self._heal(path)
            return None
        return envelope

    def _touch(self, key: str) -> None:
        try:  # LRU bump; losing the race to an eviction is harmless
            os.utime(self._path(key))
        except OSError as exc:
            self._record_io_error("touch", exc)

    def get(self, key: str) -> Optional[Dict]:
        """The validated envelope stored under ``key``, or ``None``."""
        envelope = self._load(key)
        if envelope is None:
            self.stats.bump("misses")
            return None
        self._touch(key)
        self.stats.bump("hits")
        return envelope

    def get_many(self, keys: Sequence[str]) -> Dict[str, Dict]:
        """Validated envelopes for ``keys``, keyed by key (misses absent).

        One call, two stats bumps: the per-key lock round trips of N
        :meth:`get` calls collapse into a single hits bump and a single
        misses bump, which matters when a reduction stage probes dozens
        of tiny cone entries at once.
        """
        found: Dict[str, Dict] = {}
        for key in keys:
            if key in found:
                continue
            envelope = self._load(key)
            if envelope is not None:
                found[key] = envelope
                self._touch(key)
        if found:
            self.stats.bump("hits", len(found))
        misses = len(set(keys)) - len(found)
        if misses:
            self.stats.bump("misses", misses)
        return found

    def _write(self, key: str, kind: str, fields: Dict) -> None:
        """Atomically publish one artifact (tmp-file + rename)."""
        envelope = stamp({"kind": kind, "key": key, **fields})
        payload = json.dumps(envelope, sort_keys=True) + "\n"
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        if _faults.fire("store.write", key):
            raise OSError(errno.ENOSPC, "injected: no space left", path)
        fd, staging = tempfile.mkstemp(
            prefix=key[:8] + ".", suffix=".tmp", dir=self._tmp
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(payload)
            if _faults.fire("store.truncate", key):
                # A crashing writer: publish a torn entry the next
                # reader must detect and self-heal.
                with open(staging, "r+b") as torn:
                    torn.truncate(max(1, len(payload) // 2))
            os.replace(staging, path)
        except BaseException:
            try:
                os.unlink(staging)
            except OSError:
                pass
            raise
        self.stats.bump("puts")
        self._note_written(len(payload.encode("utf-8")))

    def _note_written(self, nbytes: int) -> None:
        with self._size_lock:
            self._approx_bytes += nbytes
            self._puts_since_rescan += 1

    def _over_cap_or_stale(self) -> bool:
        """Whether the approximate size calls for a full eviction scan.

        The running total only grows (overwrites and concurrent
        processes drift it upward), so it is conservative: it can
        trigger a scan early, never skip one that is needed — except
        for drift from *other* processes shrinking the store, which the
        periodic rescan (every 64 puts) corrects.
        """
        with self._size_lock:
            return (
                self._approx_bytes > self.max_bytes
                or self._puts_since_rescan >= 64
            )

    def _try_write(self, key: str, kind: str, fields: Dict) -> bool:
        """One guarded write: a cache write failing must never fail the
        caller's analysis — the error is counted (possibly tripping the
        breaker) and the entry is simply not cached."""
        if self._degraded:
            self.stats.bump("bypassed_puts")
            return False
        try:
            self._write(key, kind, fields)
        except OSError as exc:
            self._record_io_error("write", exc)
            return False
        return True

    def put(self, key: str, kind: str, fields: Dict) -> None:
        """Publish an artifact (atomic, best-effort), enforce the cap."""
        if not self._try_write(key, kind, fields):
            return
        if self.max_bytes is not None and self._over_cap_or_stale():
            self._evict(keep=(key,))

    def put_many(self, items: Sequence[Tuple[str, str, Dict]]) -> None:
        """Atomically publish ``(key, kind, fields)`` artifacts.

        The size cap is enforced *once* for the whole batch, with every
        just-written key protected — a batch of tiny cone entries under
        cap pressure costs one directory scan, not one per entry (and
        cannot evict its own writes, the way per-entry eviction of an
        unrefreshed sibling could).
        """
        written = []
        for key, kind, fields in items:
            if self._try_write(key, kind, fields):
                written.append(key)
        if (
            written
            and self.max_bytes is not None
            and self._over_cap_or_stale()
        ):
            self._evict(keep=written)

    def _heal(self, path: str) -> None:
        try:
            os.unlink(path)
            self.stats.bump("healed")
        except FileNotFoundError:
            pass  # a concurrent reader healed it first — already done
        except OSError as exc:
            self._record_io_error("heal", exc)

    def _entries(self) -> Iterator[Tuple[str, int, int]]:
        """``(path, size, mtime_ns)`` for every object currently on disk."""
        try:
            shards = os.scandir(self._objects)
        except OSError as exc:
            self._record_io_error("scan", exc)
            return
        with shards:
            for shard in shards:
                if not shard.is_dir():
                    continue
                try:
                    files = os.scandir(shard.path)
                except FileNotFoundError:
                    continue  # shard emptied and removed concurrently
                except OSError as exc:
                    self._record_io_error("scan", exc)
                    continue
                with files:
                    for entry in files:
                        if not entry.name.endswith(".json"):
                            continue
                        try:
                            info = entry.stat()
                        except OSError:
                            continue  # evicted by a concurrent process
                        yield entry.path, info.st_size, info.st_mtime_ns

    def _evict(self, keep: Sequence[str] = ()) -> None:
        """Full-scan LRU eviction; also resyncs the approximate size."""
        entries: List[Tuple[str, int, int]] = list(self._entries())
        total = sum(size for _, size, _ in entries)
        if self.max_bytes is not None and total > self.max_bytes:
            protected = {self._path(key) for key in keep}
            # Oldest access first; path breaks mtime ties
            # deterministically.
            entries.sort(key=lambda item: (item[2], item[0]))
            for path, size, _ in entries:
                if total <= self.max_bytes:
                    break
                if path in protected:
                    continue
                try:
                    os.unlink(path)
                    self.stats.bump("evictions")
                except FileNotFoundError:
                    pass  # already gone — still freed
                except OSError as exc:
                    self._record_io_error("evict", exc)
                total -= size
        with self._size_lock:
            self._approx_bytes = total
            self._puts_since_rescan = 0

    def keys(self) -> List[str]:
        """Keys of every artifact currently on disk (unordered scan)."""
        return [
            os.path.basename(path)[: -len(".json")]
            for path, _, _ in self._entries()
        ]

    def total_bytes(self) -> int:
        return sum(size for _, size, _ in self._entries())

    def __len__(self) -> int:
        return sum(1 for _ in self._entries())

    def clear(self) -> None:
        for path, _, _ in self._entries():
            try:
                os.unlink(path)
            except FileNotFoundError:
                pass
            except OSError as exc:
                self._record_io_error("evict", exc)

    # ------------------------------------------------------------------
    # identification results
    # ------------------------------------------------------------------
    def probe(
        self, netlist: Netlist, config: PipelineConfig
    ) -> Optional[IdentificationResult]:
        """Engine hook: the cached result for ``(netlist, config)``."""
        return self.probe_result(netlist_digest(netlist), config)

    def commit(
        self,
        netlist: Netlist,
        config: PipelineConfig,
        result: IdentificationResult,
    ) -> Optional[str]:
        """Engine hook: persist a freshly computed result."""
        return self.commit_result(
            netlist_digest(netlist),
            config,
            result,
            netlist_summary=_netlist_summary(netlist),
        )

    def probe_result(
        self, digest: str, config: PipelineConfig
    ) -> Optional[IdentificationResult]:
        """The cached result under an already-computed content digest.

        On a hit the result's ``trace.cache_provenance`` records
        ``{"provenance": "hit", "key": <key>}``.
        """
        key = cache_key(digest, config, kind="result")
        envelope = self.get(key)
        if envelope is None:
            return None
        try:
            result = result_from_dict(envelope["result"])
        except (KeyError, TypeError, ValueError):
            self._heal(self._path(key))
            return None
        result.trace.cache_provenance = {"provenance": "hit", "key": key}
        return result

    def commit_result(
        self,
        digest: str,
        config: PipelineConfig,
        result: IdentificationResult,
        netlist_summary: Optional[Dict] = None,
    ) -> Optional[str]:
        """Persist a result; returns its key, or ``None`` if uncacheable.

        Degraded results and runs with a ``fault_hook`` installed are
        refused — both describe the run environment, not the design.  On
        a successful commit the result's ``trace.cache_provenance``
        records ``{"provenance": "miss", "key": <key>}``.
        """
        if config.fault_hook is not None:
            return None
        try:
            serialized = result_to_dict(result)
        except UnserializableResult:
            return None
        key = cache_key(digest, config, kind="result")
        self.put(
            key,
            "result",
            {
                "digest": digest,
                "config": config_fingerprint(config),
                "netlist": dict(netlist_summary or {}),
                "result": serialized,
            },
        )
        result.trace.cache_provenance = {"provenance": "miss", "key": key}
        return key

    # ------------------------------------------------------------------
    # parsed netlists
    # ------------------------------------------------------------------
    def probe_netlist(self, digest: str) -> Optional[Netlist]:
        """A previously parsed netlist, reloaded from its canonical form."""
        from ..netlist.verilog import parse_verilog

        key = cache_key(digest, "", kind="netlist")
        envelope = self.get(key)
        if envelope is None:
            return None
        try:
            return parse_verilog(envelope["verilog"])
        except Exception:
            self._heal(self._path(key))
            return None

    def commit_netlist(self, digest: str, netlist: Netlist) -> str:
        """Persist a parsed netlist as canonical structural Verilog.

        Reparsing the canonical form is cheaper than the original source
        (comments and formatting are gone) and, more importantly, it is
        format-independent: a ``.bench`` file's parse is cached the same
        way as a Verilog one.
        """
        key = cache_key(digest, "", kind="netlist")
        self.put(
            key,
            "netlist",
            {
                "digest": digest,
                "netlist": _netlist_summary(netlist),
                "verilog": write_verilog(netlist),
            },
        )
        return key

    # ------------------------------------------------------------------
    # canonical cone entries
    # ------------------------------------------------------------------
    def cone_tier(self):
        """This store's :class:`~repro.store.cones.StoreConeTier`.

        The presence of this method is what opts a store into the
        engine's default cone-cache tier chain (DESIGN.md §12).
        """
        from .cones import StoreConeTier

        return StoreConeTier(self)
