"""Disk-backed, content-addressed artifact store.

Layout (everything under one root directory, safe to delete wholesale)::

    <root>/objects/<k[:2]>/<key>.json   one artifact per file
    <root>/tmp/                         staging area for atomic writes

Concurrency model — no locks anywhere:

* **Writes are atomic.**  An artifact is staged in ``tmp/`` (same
  filesystem) and published with :func:`os.replace`, so a reader sees
  either the complete old entry, the complete new entry, or no entry —
  never a torn file.  Two processes committing the same key race
  harmlessly: both payloads are byte-identical by the determinism
  contract, and last-replace-wins.
* **Reads are lockless and self-healing.**  Any entry that fails to
  parse, fails envelope validation (wrong key, schema, or pipeline
  version), or was truncated by a crashed writer is treated as a miss,
  unlinked best-effort, and recomputed by the caller — a corrupt cache
  can cost time, never correctness.
* **The size cap is LRU.**  Reads bump the entry's mtime; when a write
  pushes the store past ``max_bytes``, the oldest-read entries are
  evicted (never the entry just written).  Eviction tolerates concurrent
  deletion of the same files.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .. import metrics as _metrics
from ..core.pipeline import PIPELINE_VERSION, PipelineConfig
from ..core.words import IdentificationResult
from ..netlist.netlist import Netlist
from ..netlist.verilog import write_verilog
from ..schema import SCHEMA_VERSION, stamp
from .keys import cache_key, config_fingerprint, netlist_digest
from .serialize import UnserializableResult, result_from_dict, result_to_dict

__all__ = ["ArtifactStore", "StoreStats"]


@dataclass
class StoreStats:
    """Per-instance counters (not persisted; a fresh store starts at 0).

    Counters are bumped through :meth:`bump`, which holds a lock — one
    store instance is shared by every request of the serve thread pool,
    and unlocked ``+= 1`` increments would lose counts under that
    concurrency.  Each bump is also published to the installed
    :mod:`repro.metrics` registry (``repro_store_<name>_total``), so
    ``GET /metrics`` sees store traffic without polling instances.
    """

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0
    healed: int = 0

    def __post_init__(self):
        self._lock = threading.Lock()

    def bump(self, name: str, amount: int = 1) -> None:
        """Thread-safely increment one counter and publish it."""
        with self._lock:
            setattr(self, name, getattr(self, name) + amount)
        registry = _metrics.current()
        if registry is not None:
            registry.counter(
                f"repro_store_{name}_total",
                f"Artifact-store {name} across all requests",
            ).inc(amount)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": self.evictions,
            "healed": self.healed,
            "hit_rate": self.hit_rate,
        }


def _netlist_summary(netlist: Netlist) -> Dict[str, object]:
    return {
        "name": netlist.name,
        "gates": netlist.num_gates,
        "nets": netlist.num_nets,
        "flip_flops": netlist.num_ffs,
    }


class ArtifactStore:
    """Content-addressed cache of pipeline artifacts (see module docstring).

    ``max_bytes`` caps the total size of ``objects/``; ``None`` (default)
    means unbounded.  One store may be shared by any number of threads
    and processes simultaneously.
    """

    def __init__(self, root: str, max_bytes: Optional[int] = None):
        self.root = os.fspath(root)
        self.max_bytes = max_bytes
        self.stats = StoreStats()
        self._objects = os.path.join(self.root, "objects")
        self._tmp = os.path.join(self.root, "tmp")
        # Approximate running size of objects/ (see _note_written): lets
        # a capped store skip the full-directory rescan on most puts.
        self._size_lock = threading.Lock()
        self._approx_bytes = 0
        self._puts_since_rescan = 0
        os.makedirs(self._objects, exist_ok=True)
        os.makedirs(self._tmp, exist_ok=True)
        if max_bytes is not None:
            self._evict()  # a tightened cap applies to existing entries
        else:
            self._approx_bytes = self.total_bytes()

    # ------------------------------------------------------------------
    # generic object layer
    # ------------------------------------------------------------------
    def _path(self, key: str) -> str:
        return os.path.join(self._objects, key[:2], key + ".json")

    def _load(self, key: str) -> Optional[Dict]:
        """The validated envelope under ``key`` — no stats, no LRU touch.

        Corrupt, truncated, foreign, or version-mismatched entries are
        self-healed: unlinked (best-effort) and reported as a miss.
        """
        path = self._path(key)
        try:
            with open(path, encoding="utf-8") as handle:
                envelope = json.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, ValueError):
            self._heal(path)
            return None
        if (
            not isinstance(envelope, dict)
            or envelope.get("schema_version") != SCHEMA_VERSION
            or envelope.get("pipeline_version") != PIPELINE_VERSION
            or envelope.get("key") != key
        ):
            self._heal(path)
            return None
        return envelope

    def _touch(self, key: str) -> None:
        try:  # LRU bump; losing the race to an eviction is harmless
            os.utime(self._path(key))
        except OSError:
            pass

    def get(self, key: str) -> Optional[Dict]:
        """The validated envelope stored under ``key``, or ``None``."""
        envelope = self._load(key)
        if envelope is None:
            self.stats.bump("misses")
            return None
        self._touch(key)
        self.stats.bump("hits")
        return envelope

    def get_many(self, keys: Sequence[str]) -> Dict[str, Dict]:
        """Validated envelopes for ``keys``, keyed by key (misses absent).

        One call, two stats bumps: the per-key lock round trips of N
        :meth:`get` calls collapse into a single hits bump and a single
        misses bump, which matters when a reduction stage probes dozens
        of tiny cone entries at once.
        """
        found: Dict[str, Dict] = {}
        for key in keys:
            if key in found:
                continue
            envelope = self._load(key)
            if envelope is not None:
                found[key] = envelope
                self._touch(key)
        if found:
            self.stats.bump("hits", len(found))
        misses = len(set(keys)) - len(found)
        if misses:
            self.stats.bump("misses", misses)
        return found

    def _write(self, key: str, kind: str, fields: Dict) -> None:
        """Atomically publish one artifact (tmp-file + rename)."""
        envelope = stamp({"kind": kind, "key": key, **fields})
        payload = json.dumps(envelope, sort_keys=True) + "\n"
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, staging = tempfile.mkstemp(
            prefix=key[:8] + ".", suffix=".tmp", dir=self._tmp
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(payload)
            os.replace(staging, path)
        except BaseException:
            try:
                os.unlink(staging)
            except OSError:
                pass
            raise
        self.stats.bump("puts")
        self._note_written(len(payload.encode("utf-8")))

    def _note_written(self, nbytes: int) -> None:
        with self._size_lock:
            self._approx_bytes += nbytes
            self._puts_since_rescan += 1

    def _over_cap_or_stale(self) -> bool:
        """Whether the approximate size calls for a full eviction scan.

        The running total only grows (overwrites and concurrent
        processes drift it upward), so it is conservative: it can
        trigger a scan early, never skip one that is needed — except
        for drift from *other* processes shrinking the store, which the
        periodic rescan (every 64 puts) corrects.
        """
        with self._size_lock:
            return (
                self._approx_bytes > self.max_bytes
                or self._puts_since_rescan >= 64
            )

    def put(self, key: str, kind: str, fields: Dict) -> None:
        """Atomically publish an artifact, then enforce the size cap."""
        self._write(key, kind, fields)
        if self.max_bytes is not None and self._over_cap_or_stale():
            self._evict(keep=(key,))

    def put_many(self, items: Sequence[Tuple[str, str, Dict]]) -> None:
        """Atomically publish ``(key, kind, fields)`` artifacts.

        The size cap is enforced *once* for the whole batch, with every
        just-written key protected — a batch of tiny cone entries under
        cap pressure costs one directory scan, not one per entry (and
        cannot evict its own writes, the way per-entry eviction of an
        unrefreshed sibling could).
        """
        written = []
        for key, kind, fields in items:
            self._write(key, kind, fields)
            written.append(key)
        if (
            written
            and self.max_bytes is not None
            and self._over_cap_or_stale()
        ):
            self._evict(keep=written)

    def _heal(self, path: str) -> None:
        try:
            os.unlink(path)
            self.stats.bump("healed")
        except OSError:
            pass

    def _entries(self) -> Iterator[Tuple[str, int, int]]:
        """``(path, size, mtime_ns)`` for every object currently on disk."""
        try:
            shards = os.scandir(self._objects)
        except OSError:
            return
        with shards:
            for shard in shards:
                if not shard.is_dir():
                    continue
                try:
                    files = os.scandir(shard.path)
                except OSError:
                    continue
                with files:
                    for entry in files:
                        if not entry.name.endswith(".json"):
                            continue
                        try:
                            info = entry.stat()
                        except OSError:
                            continue  # evicted by a concurrent process
                        yield entry.path, info.st_size, info.st_mtime_ns

    def _evict(self, keep: Sequence[str] = ()) -> None:
        """Full-scan LRU eviction; also resyncs the approximate size."""
        entries: List[Tuple[str, int, int]] = list(self._entries())
        total = sum(size for _, size, _ in entries)
        if self.max_bytes is not None and total > self.max_bytes:
            protected = {self._path(key) for key in keep}
            # Oldest access first; path breaks mtime ties
            # deterministically.
            entries.sort(key=lambda item: (item[2], item[0]))
            for path, size, _ in entries:
                if total <= self.max_bytes:
                    break
                if path in protected:
                    continue
                try:
                    os.unlink(path)
                    self.stats.bump("evictions")
                except OSError:
                    pass  # already gone — still freed
                total -= size
        with self._size_lock:
            self._approx_bytes = total
            self._puts_since_rescan = 0

    def keys(self) -> List[str]:
        """Keys of every artifact currently on disk (unordered scan)."""
        return [
            os.path.basename(path)[: -len(".json")]
            for path, _, _ in self._entries()
        ]

    def total_bytes(self) -> int:
        return sum(size for _, size, _ in self._entries())

    def __len__(self) -> int:
        return sum(1 for _ in self._entries())

    def clear(self) -> None:
        for path, _, _ in self._entries():
            try:
                os.unlink(path)
            except OSError:
                pass

    # ------------------------------------------------------------------
    # identification results
    # ------------------------------------------------------------------
    def probe(
        self, netlist: Netlist, config: PipelineConfig
    ) -> Optional[IdentificationResult]:
        """Engine hook: the cached result for ``(netlist, config)``."""
        return self.probe_result(netlist_digest(netlist), config)

    def commit(
        self,
        netlist: Netlist,
        config: PipelineConfig,
        result: IdentificationResult,
    ) -> Optional[str]:
        """Engine hook: persist a freshly computed result."""
        return self.commit_result(
            netlist_digest(netlist),
            config,
            result,
            netlist_summary=_netlist_summary(netlist),
        )

    def probe_result(
        self, digest: str, config: PipelineConfig
    ) -> Optional[IdentificationResult]:
        """The cached result under an already-computed content digest.

        On a hit the result's ``trace.cache_provenance`` records
        ``{"provenance": "hit", "key": <key>}``.
        """
        key = cache_key(digest, config, kind="result")
        envelope = self.get(key)
        if envelope is None:
            return None
        try:
            result = result_from_dict(envelope["result"])
        except (KeyError, TypeError, ValueError):
            self._heal(self._path(key))
            return None
        result.trace.cache_provenance = {"provenance": "hit", "key": key}
        return result

    def commit_result(
        self,
        digest: str,
        config: PipelineConfig,
        result: IdentificationResult,
        netlist_summary: Optional[Dict] = None,
    ) -> Optional[str]:
        """Persist a result; returns its key, or ``None`` if uncacheable.

        Degraded results and runs with a ``fault_hook`` installed are
        refused — both describe the run environment, not the design.  On
        a successful commit the result's ``trace.cache_provenance``
        records ``{"provenance": "miss", "key": <key>}``.
        """
        if config.fault_hook is not None:
            return None
        try:
            serialized = result_to_dict(result)
        except UnserializableResult:
            return None
        key = cache_key(digest, config, kind="result")
        self.put(
            key,
            "result",
            {
                "digest": digest,
                "config": config_fingerprint(config),
                "netlist": dict(netlist_summary or {}),
                "result": serialized,
            },
        )
        result.trace.cache_provenance = {"provenance": "miss", "key": key}
        return key

    # ------------------------------------------------------------------
    # parsed netlists
    # ------------------------------------------------------------------
    def probe_netlist(self, digest: str) -> Optional[Netlist]:
        """A previously parsed netlist, reloaded from its canonical form."""
        from ..netlist.verilog import parse_verilog

        key = cache_key(digest, "", kind="netlist")
        envelope = self.get(key)
        if envelope is None:
            return None
        try:
            return parse_verilog(envelope["verilog"])
        except Exception:
            self._heal(self._path(key))
            return None

    def commit_netlist(self, digest: str, netlist: Netlist) -> str:
        """Persist a parsed netlist as canonical structural Verilog.

        Reparsing the canonical form is cheaper than the original source
        (comments and formatting are gone) and, more importantly, it is
        format-independent: a ``.bench`` file's parse is cached the same
        way as a Verilog one.
        """
        key = cache_key(digest, "", kind="netlist")
        self.put(
            key,
            "netlist",
            {
                "digest": digest,
                "netlist": _netlist_summary(netlist),
                "verilog": write_verilog(netlist),
            },
        )
        return key

    # ------------------------------------------------------------------
    # canonical cone entries
    # ------------------------------------------------------------------
    def cone_tier(self):
        """This store's :class:`~repro.store.cones.StoreConeTier`.

        The presence of this method is what opts a store into the
        engine's default cone-cache tier chain (DESIGN.md §12).
        """
        from .cones import StoreConeTier

        return StoreConeTier(self)
