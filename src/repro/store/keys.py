"""Cache-key derivation for the content-addressed artifact store.

A cached artifact is addressed by the SHA-256 of three components joined
with NUL separators::

    key = sha256(pipeline_version \\0 netlist_digest \\0 config_fingerprint)

``netlist_digest``
    SHA-256 of the design's content.  For an in-memory
    :class:`~repro.netlist.netlist.Netlist` this is the canonical
    structural Verilog produced by
    :func:`~repro.netlist.verilog.write_verilog` (so two parses of the
    same file, or a bench/verilog pair describing the same gates in the
    same order, share a digest).  For a file on disk,
    :func:`file_digest` hashes the raw bytes instead — which lets a warm
    probe skip parsing entirely.  The two digest spaces are disjoint by
    construction (distinct prefixes), so a raw-file entry can never
    shadow a canonical-netlist entry.

``config_fingerprint``
    A canonical JSON document of exactly the
    :class:`~repro.core.pipeline.PipelineConfig` fields that can change a
    run's *output* (words, partitions, assignments, counters).  Fields
    proven not to affect output — ``jobs`` (the determinism oracle),
    ``strict`` (raises instead of returning), ``deadline_s`` (a deadline
    that fires degrades the run, and degraded runs are never committed;
    one that does not fire leaves the run identical) — are excluded, so
    e.g. a ``jobs=8`` run hits an entry committed by ``jobs=1``.

``pipeline_version``
    :data:`repro.core.stages.PIPELINE_VERSION`; bumping it on algorithm
    change orphans every old entry (they age out via the LRU cap).
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Union

from ..core import backends
from ..core.conecache import (
    CONE_FINGERPRINT_FIELDS,
    CONE_NEUTRAL_FIELDS,
    cone_fingerprint,
)
from ..core.pipeline import PIPELINE_VERSION, PipelineConfig
from ..netlist.netlist import Netlist
from ..netlist.verilog import write_verilog

__all__ = [
    "CONE_FINGERPRINT_FIELDS",
    "CONE_NEUTRAL_FIELDS",
    "FINGERPRINT_FIELDS",
    "bytes_digest",
    "cache_key",
    "cone_cache_key",
    "cone_fingerprint",
    "config_fingerprint",
    "file_digest",
    "netlist_digest",
]

#: PipelineConfig fields that affect a run's output, in fingerprint order.
#: Adding a result-affecting knob to PipelineConfig must extend this tuple
#: (tests/store/test_store.py pins the invalidation behaviour).
#: ``backend`` selects which identification strategy runs, so it is here;
#: ``kernel`` is deliberately absent — kernels are digest-blind (the
#: differential kernel suite pins byte-identity), so a python-kernel run
#: hits an entry an array-kernel run committed.
FINGERPRINT_FIELDS = (
    "depth",
    "max_simultaneous",
    "allow_partial",
    "grouping",
    "max_control_signals",
    "accept_partial_heals",
    "max_assignments",
    "max_cone_gates",
    "preflight",
    "backend",
)


def config_fingerprint(config: PipelineConfig) -> str:
    """Canonical JSON of the result-affecting configuration fields.

    Beyond :data:`FINGERPRINT_FIELDS` the document carries the resolved
    backend's *version* (:mod:`repro.core.backends`): bumping one
    backend's version orphans only that backend's entries, and two
    backends — or two versions of one — can never read each other's
    cached artifacts (DESIGN.md §15 fingerprint discipline).
    """
    fields: Dict[str, object] = {
        name: getattr(config, name) for name in FINGERPRINT_FIELDS
    }
    fields["backend_version"] = backends.resolve(config.backend).version
    return json.dumps(fields, sort_keys=True, separators=(",", ":"))


def netlist_digest(netlist: Netlist) -> str:
    """Content digest of an in-memory netlist (canonical Verilog form)."""
    text = write_verilog(netlist)
    return "netlist:" + hashlib.sha256(text.encode("utf-8")).hexdigest()


def bytes_digest(data: bytes) -> str:
    """Content digest of in-memory netlist source bytes.

    Shares the ``file:`` digest space deliberately: a netlist body POSTed
    to ``repro serve`` whose bytes equal a file on disk hits the entry a
    CLI run of that file committed, and vice versa.
    """
    return "file:" + hashlib.sha256(data).hexdigest()


def file_digest(path: str) -> str:
    """Content digest of a netlist file's raw bytes (no parse needed)."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return "file:" + digest.hexdigest()


def cache_key(
    digest: str, config: Union[PipelineConfig, str], kind: str = "result"
) -> str:
    """The store address of one artifact.

    ``digest`` comes from :func:`netlist_digest` / :func:`file_digest`;
    ``config`` is a :class:`PipelineConfig` (fingerprinted here) or an
    already-computed fingerprint string.  ``kind`` separates artifact
    namespaces ("result", "netlist", ...) sharing one store.
    """
    if isinstance(config, PipelineConfig):
        config = config_fingerprint(config)
    material = "\0".join((PIPELINE_VERSION, kind, digest, config))
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


def cone_cache_key(
    digest: str, config: Union[PipelineConfig, str]
) -> str:
    """The store address of one canonical cone entry.

    ``digest`` is a ``cone:`` canonical-envelope digest
    (:func:`repro.core.conecache.canonicalize_subgroup`); ``config`` is a
    :class:`PipelineConfig` or an already-computed *cone* fingerprint —
    deliberately the narrower :func:`cone_fingerprint`, not
    :func:`config_fingerprint`, so runs differing only in cone-neutral
    fields (``grouping``, ``jobs``, budgets, …) share entries.
    """
    if isinstance(config, PipelineConfig):
        config = cone_fingerprint(config)
    return cache_key(digest, config, kind="cone")
