"""``repro batch`` — multi-process corpus analysis over the artifact store.

Corpus-scale reverse engineering is the normal workload: a researcher has
a directory of netlists and wants words for all of them, repeatedly, as
configurations evolve.  This orchestrator shards the corpus across a
:class:`~concurrent.futures.ProcessPoolExecutor` where every worker opens
the *same* content-addressed store (:mod:`repro.store`), so

* duplicate designs inside one corpus are analyzed once;
* a rerun — same files, same config — is pure cache hits and skips both
  parsing and analysis (the warm path reads one JSON file per design);
* a config or algorithm change invalidates exactly the affected entries.

Per-design rows are checkpointed through the same fsynced-JSONL journal
machinery as the Table 1 sweep (:mod:`repro.eval.runner`), so a killed
batch resumes with ``--resume`` losing at most the designs in flight; a
journal row is only reused when the file's content digest still matches.

Usage::

    repro batch designs/*.v --store .repro-cache --jobs 8
    repro batch --corpus-dir designs --store .repro-cache --report out.json
    repro batch --itc99 corpus --store .repro-cache   # Table 1 benchmarks

The aggregate report carries a ``corpus_digest`` — a digest over every
design's deterministic result digest — so two runs are byte-identical on
words/partitions/counters iff their corpus digests match (this is what
the CI cache job asserts between a cold and a warm run).
"""

from __future__ import annotations

import argparse
import glob
import hashlib
import os
import sys
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from . import faults as _faults
from . import metrics as _metrics
from .api import AnalysisReport, Session
from .core.pipeline import PipelineConfig
from .eval.metrics import evaluate
from .eval.reference import extract_reference_words
from .eval.runner import append_journal_entry, load_journal_entries
from .schema import stamp
from .exitcodes import EXIT_DEGRADED, EXIT_OK, EXIT_USAGE
from .store import file_digest

__all__ = [
    "BatchReport",
    "analyze_corpus",
    "itc99_corpus",
    "main",
    "EXIT_DEGRADED",
    "MAX_ROW_ATTEMPTS",
]

#: Journal path used by ``--resume`` when ``--journal`` is not given.
DEFAULT_JOURNAL = "batch.journal.jsonl"


#: A row is tried this many times before it is quarantined: the first
#: failure is retried once on a rebuilt pool, the second is final.
MAX_ROW_ATTEMPTS = 2


@dataclass
class BatchReport:
    """Everything one corpus run produced: per-design rows + aggregate."""

    rows: List[Dict]
    aggregate: Dict

    def as_dict(self) -> Dict:
        return stamp({"rows": self.rows, "aggregate": self.aggregate})


def itc99_corpus(directory: str) -> List[str]:
    """Materialize the Table 1 benchmarks as Verilog files; return paths.

    Files already present are trusted (builders are deterministic), so a
    warm run touches no synthesis code at all.
    """
    os.makedirs(directory, exist_ok=True)
    paths: List[str] = []
    missing: List[str] = []
    for name in _itc99_names():
        path = os.path.join(directory, name + ".v")
        paths.append(path)
        if not os.path.exists(path):
            missing.append(name)
    if missing:
        from .netlist.verilog import write_verilog
        from .synth.designs import BENCHMARKS

        for name in missing:
            path = os.path.join(directory, name + ".v")
            staging = path + ".tmp"
            with open(staging, "w", encoding="utf-8") as handle:
                handle.write(write_verilog(BENCHMARKS[name]()))
            os.replace(staging, path)
    return paths


def _itc99_names() -> List[str]:
    # The Table 1 roster, without importing the heavy design builders.
    return [
        "b03", "b04", "b05", "b07", "b08", "b11",
        "b12", "b13", "b14", "b15", "b17", "b18",
    ]


def _cone_cache_summary(report: AnalysisReport) -> Dict:
    """One design's cone-tier traffic (DESIGN.md §12), for its row."""
    cache = report.trace.get("cache", {})
    hits = int(cache.get("cone_tier_process_hits", 0)) + int(
        cache.get("cone_tier_store_hits", 0)
    )
    misses = int(cache.get("cone_tier_misses", 0))
    return {
        "hits": hits,
        "misses": misses,
        "commits": int(cache.get("cone_tier_commits", 0)),
        "hit_rate": hits / (hits + misses) if hits + misses else 0.0,
    }


def _triage_summary(treport, top: int = 10) -> Dict:
    """One design's Trojan-triage digest for its corpus row.

    Compact by design — the full ranking lives in the store under the
    triage cache key; the row carries enough to rank designs against
    each other (flag counts) and to fetch or verify the full ranking
    (``triage_digest``).
    """
    triage = treport.triage
    return {
        "backend": triage.backend,
        "num_flagged": triage.num_flagged,
        "threshold": triage.config.threshold,
        "triage_digest": triage.digest(),
        "top": [[s.gate, s.score] for s in triage.top(top)],
    }


def _row_from_report(
    report: AnalysisReport,
    score: Optional[Dict],
    wall_seconds: float,
    triage: Optional[Dict] = None,
) -> Dict:
    """One design's journal row / report entry."""
    return stamp({
        "path": report.source,
        "design": report.design,
        "digest": report.digest,
        "key": report.key,
        "cache": report.cache,
        "backend": report.trace.get("backend", "ours"),
        "gates": report.num_gates,
        "nets": report.num_nets,
        "flip_flops": report.num_ffs,
        "num_words": len(report.words),
        "words": [list(bits) for bits in report.words],
        "singletons": list(report.singletons),
        "control_signals": list(report.control_signals),
        "counters": dict(report.trace.get("counters", {})),
        "cone_cache": _cone_cache_summary(report),
        "result_digest": report.result_digest,
        "runtime_seconds": report.runtime_seconds,
        "wall_seconds": wall_seconds,
        "score": score,
        "triage": triage,
    })


def _score_report(session: Session, report: AnalysisReport) -> Optional[Dict]:
    """Score one analyzed design against its golden register names.

    Returns ``None`` when the design carries no recoverable reference
    words (nothing to score against is not an error at corpus scale).
    """
    netlist = session.load_netlist(report.source)
    reference = extract_reference_words(netlist)
    if not reference:
        return None
    metrics = evaluate(reference, report.result)
    return {
        "num_reference_words": metrics.num_reference_words,
        "pct_full": metrics.pct_full,
        "fragmentation_rate": metrics.fragmentation_rate,
        "pct_not_found": metrics.pct_not_found,
    }


def _corpus_task(
    path: str,
    config: PipelineConfig,
    store_root: Optional[str],
    score: bool,
    triage: bool = False,
) -> Dict:
    """Analyze one corpus file (runs inline or in a worker process)."""
    if _faults.fire("batch.worker.crash", path):
        os._exit(3)  # a real worker crash: no cleanup, no goodbye
    hang = _faults.rule_for("batch.worker.hang")
    if hang is not None and _faults.fire("batch.worker.hang", path):
        time.sleep(hang.delay)
    started = time.perf_counter()
    session = Session(config=config, store=store_root)
    if triage:
        treport = session.triage(path)
        report = treport.analysis
        triaged = _triage_summary(treport)
    else:
        report = session.analyze(path)
        triaged = None
    scored = _score_report(session, report) if score else None
    return _row_from_report(
        report, scored, time.perf_counter() - started, triaged
    )


def _quarantine_row(path: str, reason: str, detail: str, attempts: int) -> Dict:
    """The journal/report row of a design that failed its last retry."""
    name = os.path.basename(path)
    for suffix in (".v", ".bench"):
        if name.endswith(suffix):
            name = name[: -len(suffix)]
    try:
        digest = file_digest(path)
    except OSError:
        digest = None
    return stamp({
        "path": path,
        "design": name,
        "digest": digest,
        "quarantined": True,
        "reason": {
            "type": reason,
            "detail": detail,
            "attempts": attempts,
        },
    })


def _publish_quarantine(row: Dict) -> None:
    registry = _metrics.current()
    if registry is None:
        return
    registry.counter(
        "repro_batch_quarantined_total",
        "Corpus rows quarantined after repeated failures, by reason",
        labelnames=("reason",),
    ).inc(reason=str(row["reason"]["type"]))


def _publish_row(row: Dict) -> None:
    """Count one completed corpus row in the installed metrics registry.

    Runs in the orchestrating process as rows arrive, so it also covers
    rows computed by worker processes (whose own in-process registries
    are not visible here).
    """
    registry = _metrics.current()
    if registry is None:
        return
    registry.counter(
        "repro_batch_rows_total",
        "Corpus designs analyzed, by cache provenance",
        labelnames=("cache",),
    ).inc(cache=str(row.get("cache", "off")))
    registry.histogram(
        "repro_batch_row_seconds",
        "Wall-clock seconds per corpus design (orchestrator view)",
    ).observe(float(row.get("wall_seconds", 0.0)))
    cone = row.get("cone_cache") or {}
    if cone.get("hits"):
        registry.counter(
            "repro_batch_cone_tier_hits_total",
            "Cone-cache hits across all corpus designs",
        ).inc(int(cone["hits"]))
    if cone.get("misses"):
        registry.counter(
            "repro_batch_cone_tier_misses_total",
            "Cone-cache misses across all corpus designs",
        ).inc(int(cone["misses"]))


def _aggregate(rows: Sequence[Dict], wall_seconds: float) -> Dict:
    quarantined = [row for row in rows if row.get("quarantined")]
    rows = [row for row in rows if not row.get("quarantined")]
    hits = sum(1 for row in rows if row["cache"] == "hit")
    misses = sum(1 for row in rows if row["cache"] == "miss")
    # Cone-tier traffic summed across rows; .get() tolerates journal rows
    # written before the cone cache existed.
    cone_hits = sum(
        int((row.get("cone_cache") or {}).get("hits", 0)) for row in rows
    )
    cone_misses = sum(
        int((row.get("cone_cache") or {}).get("misses", 0)) for row in rows
    )
    digest = hashlib.sha256()
    for row in sorted(rows, key=lambda r: (r["design"], r["digest"])):
        digest.update(
            f"{row['design']}\0{row['digest']}\0{row['result_digest']}\n"
            .encode("utf-8")
        )
    return {
        "designs": len(rows),
        "cache_hits": hits,
        "cache_misses": misses,
        "hit_rate": hits / len(rows) if rows else 0.0,
        "degraded": bool(quarantined),
        "quarantined": len(quarantined),
        "quarantine_reasons": sorted(
            {str(row["reason"]["type"]) for row in quarantined}
        ),
        "cone_tier_hits": cone_hits,
        "cone_tier_misses": cone_misses,
        "cone_tier_hit_rate": (
            cone_hits / (cone_hits + cone_misses)
            if cone_hits + cone_misses
            else 0.0
        ),
        "total_words": sum(row["num_words"] for row in rows),
        "analysis_seconds": sum(row["runtime_seconds"] for row in rows),
        "wall_seconds": wall_seconds,
        "corpus_digest": digest.hexdigest(),
    }


def _kill_pool_workers(pool) -> None:
    """SIGKILL every live worker of a wedged pool (the hang watchdog).

    Reaches into ``ProcessPoolExecutor._processes`` — there is no public
    API for "a worker stopped making progress" — and turns the hang into
    the crash path: the killed workers surface as ``BrokenProcessPool``
    on the in-flight futures, which the retry/quarantine loop already
    handles.
    """
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.kill()
        except Exception:
            pass


def _pool_round(
    pending: Sequence[Tuple[int, str]],
    config: PipelineConfig,
    store: Optional[str],
    score: bool,
    jobs: int,
    row_timeout: Optional[float],
    on_done,
    triage: bool = False,
) -> List[Tuple[int, str, str, str]]:
    """Run one process pool over ``pending``; returns the failures.

    ``on_done(index, row)`` fires for each completed row as it arrives.
    Failures come back as ``(index, path, reason, detail)`` — a worker
    crash (``BrokenProcessPool``) fails every row that was in flight in
    that pool, and a ``row_timeout`` with no progress gets the pool's
    workers killed, converting a hang into the same failure shape.
    """
    from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
    from concurrent.futures.process import BrokenProcessPool

    failures: List[Tuple[int, str, str, str]] = []
    pool = ProcessPoolExecutor(max_workers=min(jobs, len(pending)))
    try:
        futures = {
            pool.submit(_corpus_task, path, config, store, score, triage):
            (index, path)
            for index, path in pending
        }
        remaining = set(futures)
        hung = False
        while remaining:
            done, not_done = wait(
                remaining, timeout=row_timeout,
                return_when=FIRST_COMPLETED,
            )
            if not done:
                # No row finished within row_timeout: the pool is
                # wedged.  Kill its workers; the in-flight futures
                # complete exceptionally almost immediately.
                hung = True
                _kill_pool_workers(pool)
                done, not_done = wait(remaining, timeout=60)
                if not done:  # workers unkillable — give up this round
                    for future in not_done:
                        future.cancel()
                    done = {f for f in remaining if f.done()}
            for future in done:
                remaining.discard(future)
                index, path = futures[future]
                if future.cancelled():  # unkillable-worker fallback
                    failures.append((
                        index, path, "worker_hang",
                        "cancelled by the progress watchdog",
                    ))
                    continue
                try:
                    row = future.result()
                except BrokenProcessPool as exc:
                    reason = "worker_hang" if hung else "worker_crash"
                    failures.append((index, path, reason, str(exc) or reason))
                except Exception as exc:
                    failures.append((
                        index, path, "row_error",
                        f"{type(exc).__name__}: {exc}",
                    ))
                else:
                    on_done(index, row)
            remaining -= {f for f in remaining if f.cancelled()}
    finally:
        # Grab the manager thread before shutdown() drops its reference,
        # then give it a bounded join: if it is still mid-teardown at
        # interpreter exit, the atexit hook races its wakeup-pipe close
        # and spews "Exception ignored ... Bad file descriptor" after an
        # otherwise clean run.  Unkillable workers bound the wait.
        manager = getattr(pool, "_executor_manager_thread", None)
        pool.shutdown(wait=False, cancel_futures=True)
        if manager is not None:
            manager.join(timeout=5)
    return failures


def analyze_corpus(
    paths: Sequence[str],
    config: Optional[PipelineConfig] = None,
    store: Optional[str] = None,
    jobs: int = 1,
    journal: Optional[str] = None,
    resume: bool = False,
    score: bool = False,
    on_row=None,
    row_timeout: Optional[float] = None,
    triage: bool = False,
) -> BatchReport:
    """Analyze every path; returns rows in input order plus the aggregate.

    ``store`` is the artifact-store *directory* (each worker process opens
    its own handle on it); ``None`` disables caching.  ``journal`` /
    ``resume`` checkpoint per-design rows exactly like the Table 1 sweep;
    a journaled row is reused only while its content digest still matches
    the file on disk (quarantined journal rows are always retried).
    ``on_row`` is called with each freshly completed row (not for
    journal-restored ones).

    Fault tolerance (DESIGN.md §13): with ``jobs > 1`` a worker-process
    crash (``BrokenProcessPool``) does not kill the run — the pool is
    rebuilt and the rows that were in flight are retried once; a row
    that fails :data:`MAX_ROW_ATTEMPTS` times is *quarantined*: its slot
    carries a ``{"quarantined": true, "reason": {...}}`` row, the
    aggregate reports ``degraded: true``, and every other row is still
    byte-identical to a fault-free run.  ``row_timeout`` arms a progress
    watchdog: when no row completes for that many seconds the pool's
    workers are killed and the hang is handled like a crash.
    """
    config = config or PipelineConfig()
    paths = [os.fspath(path) for path in paths]
    started = time.perf_counter()

    completed: Dict[str, Dict] = {}
    if journal is not None:
        if resume:
            completed = load_journal_entries(journal, key="path")
        elif os.path.exists(journal):
            os.remove(journal)  # fresh batch: start the journal over

    rows: List[Optional[Dict]] = [None] * len(paths)
    pending: List[Tuple[int, str]] = []
    for index, path in enumerate(paths):
        entry = completed.get(path)
        if (
            entry is not None
            and not entry.get("quarantined")
            and entry.get("digest") == file_digest(path)
            # A --triage resume cannot reuse rows journaled without one.
            and not (triage and entry.get("triage") is None)
        ):
            entry = dict(entry)
            entry["cache"] = "journal"
            rows[index] = entry
        else:
            pending.append((index, path))

    def record(index: int, row: Dict) -> None:
        rows[index] = row
        if row.get("quarantined"):
            _publish_quarantine(row)
        else:
            _publish_row(row)
        if journal is not None:
            append_journal_entry(journal, row)
        if on_row is not None:
            on_row(row)

    attempts: Dict[int, int] = {}
    if jobs > 1 and len(pending) > 1:
        while pending:
            failures = _pool_round(
                pending, config, store, score, jobs, row_timeout, record,
                triage,
            )
            retry: List[Tuple[int, str]] = []
            for index, path, reason, detail in failures:
                attempts[index] = attempts.get(index, 0) + 1
                if attempts[index] >= MAX_ROW_ATTEMPTS:
                    record(
                        index,
                        _quarantine_row(path, reason, detail, attempts[index]),
                    )
                else:
                    retry.append((index, path))
            if retry:
                registry = _metrics.current()
                if registry is not None:
                    registry.counter(
                        "repro_batch_pool_rebuilds_total",
                        "Process pools rebuilt after a worker crash/hang",
                    ).inc()
            pending = retry
    else:
        for index, path in pending:
            try:
                row = _corpus_task(path, config, store, score, triage)
            except Exception as exc:
                # Serial retry once, then quarantine — the inline
                # analogue of the pool's rebuild-and-retry.
                try:
                    row = _corpus_task(path, config, store, score, triage)
                except Exception:
                    attempts[index] = MAX_ROW_ATTEMPTS
                    record(index, _quarantine_row(
                        path, "row_error",
                        f"{type(exc).__name__}: {exc}", MAX_ROW_ATTEMPTS,
                    ))
                    continue
            record(index, row)

    final = [row for row in rows if row is not None]
    return BatchReport(
        rows=final,
        aggregate=_aggregate(final, time.perf_counter() - started),
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro batch",
        description="Analyze a corpus of netlists with shared caching "
        "(content-addressed artifact store + process pool)",
    )
    parser.add_argument(
        "paths", nargs="*", help="netlist files (.v / .bench)"
    )
    parser.add_argument(
        "--corpus-dir",
        metavar="DIR",
        default=None,
        help="add every *.v and *.bench file under DIR to the corpus",
    )
    parser.add_argument(
        "--itc99",
        metavar="DIR",
        default=None,
        help="materialize the 12 Table 1 benchmarks into DIR (reusing "
        "files already there) and add them to the corpus",
    )
    parser.add_argument(
        "--store",
        metavar="DIR",
        default=None,
        help="artifact-store directory shared by all workers and reruns "
        "(strongly recommended; without it nothing is cached)",
    )
    parser.add_argument(
        "--max-store-bytes",
        type=int,
        metavar="N",
        default=None,
        help="LRU cap on the store's total size in bytes",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes to shard the corpus across (default 1)",
    )
    parser.add_argument(
        "--row-timeout",
        type=float,
        metavar="S",
        default=None,
        help="progress watchdog: with --jobs > 1, kill the worker pool "
        "when no row completes for S seconds and retry the in-flight "
        "rows (a row failing twice is quarantined)",
    )
    parser.add_argument(
        "--depth", type=int, default=4, help="fanin-cone depth (default 4)"
    )
    parser.add_argument(
        "--max-simultaneous",
        type=int,
        default=2,
        help="control signals assigned at once (default 2)",
    )
    parser.add_argument(
        "--backend",
        default="ours",
        metavar="NAME",
        help="identification backend for every row: ours (default), "
        "base, or regfeat (see repro.core.backends); rows cache under "
        "per-backend store keys",
    )
    parser.add_argument(
        "--kernel",
        default=None,
        metavar="NAME",
        help="signature kernel: python, array, or auto (default: the "
        "REPRO_KERNEL environment, then auto)",
    )
    parser.add_argument(
        "--score",
        action="store_true",
        help="also score each design against its golden register names",
    )
    parser.add_argument(
        "--triage",
        action="store_true",
        help="also rank each design's gates by Trojan-region anomaly "
        "(repro triage); rows gain a compact triage summary and the "
        "full rankings are cached in the store",
    )
    parser.add_argument(
        "--journal",
        metavar="PATH",
        default=None,
        help="checkpoint each completed design's row to this JSONL file "
        f"(--resume defaults it to {DEFAULT_JOURNAL})",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="skip designs already journaled with an unchanged content "
        "digest (a killed batch continues where it stopped)",
    )
    parser.add_argument(
        "--report",
        metavar="PATH",
        default=None,
        help="write the versioned JSON report ('-' for stdout)",
    )
    parser.add_argument(
        "--metrics-json",
        metavar="PATH",
        default=None,
        help="install a metrics registry for this run and dump its "
        "snapshot (stage timings, store counters, per-row counts) as "
        "versioned JSON ('-' for stdout); with --jobs > 1 only the "
        "orchestrator-side metrics are captured",
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="print only the aggregate summary",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.jobs < 1:
        print("error: --jobs must be >= 1", file=sys.stderr)
        return EXIT_USAGE
    paths = list(args.paths)
    if args.corpus_dir is not None:
        for pattern in ("*.v", "*.bench"):
            paths.extend(
                sorted(glob.glob(os.path.join(args.corpus_dir, pattern)))
            )
    if args.itc99 is not None:
        paths.extend(itc99_corpus(args.itc99))
    if not paths:
        print(
            "error: empty corpus (give paths, --corpus-dir, or --itc99)",
            file=sys.stderr,
        )
        return EXIT_USAGE
    missing = [path for path in paths if not os.path.exists(path)]
    if missing:
        print(f"error: cannot read {missing[0]}", file=sys.stderr)
        return EXIT_USAGE
    try:
        config = PipelineConfig(
            depth=args.depth,
            max_simultaneous=args.max_simultaneous,
            allow_partial=args.backend != "base",
            backend=args.backend,
            kernel=args.kernel,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    journal = args.journal
    if args.resume and journal is None:
        journal = DEFAULT_JOURNAL
    registry = None
    if args.metrics_json is not None:
        registry = _metrics.current() or _metrics.install()
    if args.store is not None and args.max_store_bytes is not None:
        # Open once up front so the cap is enforced even with jobs=1.
        from .store import ArtifactStore

        ArtifactStore(args.store, max_bytes=args.max_store_bytes)

    def announce(row: Dict) -> None:
        if args.quiet:
            return
        if row.get("quarantined"):
            reason = row["reason"]
            print(
                f"{row['design']}: QUARANTINED after "
                f"{reason['attempts']} attempts ({reason['type']}: "
                f"{reason['detail']})",
                file=sys.stderr,
            )
        else:
            triaged = row.get("triage")
            suffix = (
                f", {triaged['num_flagged']} gates flagged"
                if triaged is not None
                else ""
            )
            print(
                f"{row['design']}: {row['num_words']} words, "
                f"{row['cache']}, {row['wall_seconds']:.2f}s{suffix}"
            )

    report = analyze_corpus(
        paths,
        config,
        store=args.store,
        jobs=args.jobs,
        journal=journal,
        resume=args.resume,
        score=args.score,
        on_row=announce,
        row_timeout=args.row_timeout,
        triage=args.triage,
    )
    agg = report.aggregate
    print(
        f"{agg['designs']} designs: {agg['cache_hits']} hits / "
        f"{agg['cache_misses']} misses ({agg['hit_rate']:.1%} hit rate), "
        f"{agg['total_words']} words, "
        f"analysis {agg['analysis_seconds']:.2f}s, "
        f"wall {agg['wall_seconds']:.2f}s"
    )
    print(f"corpus digest {agg['corpus_digest'][:16]}")
    if agg["degraded"]:
        print(
            f"DEGRADED: {agg['quarantined']} row(s) quarantined "
            f"({', '.join(agg['quarantine_reasons'])}); "
            f"exit code {EXIT_DEGRADED}",
            file=sys.stderr,
        )
    if args.report is not None:
        import json

        payload = json.dumps(report.as_dict(), indent=2)
        if args.report == "-":
            print(payload)
        else:
            with open(args.report, "w", encoding="utf-8") as handle:
                handle.write(payload + "\n")
    if registry is not None:
        import json

        payload = json.dumps(
            stamp({"metrics": registry.as_dict()}), indent=2
        )
        if args.metrics_json == "-":
            print(payload)
        else:
            with open(args.metrics_json, "w", encoding="utf-8") as handle:
                handle.write(payload + "\n")
    return EXIT_DEGRADED if report.aggregate["degraded"] else EXIT_OK


if __name__ == "__main__":
    sys.exit(main())
