"""Accuracy metrics for identified words (Section 3).

For each reference word, against the set of generated words (multi-bit
words plus singletons):

*Fully found* — some generated word contains **all** bits of the reference
word ("we consider a reference word to be fully found if a word found using
our technique includes all bits of the reference word"; extra bits in the
generated word do not disqualify it).

*Not found* — no generated word contains two or more of the reference
word's bits: "each bit of a reference word appears in a different word in
the generated word set."

*Partially found* — everything in between.  Each partially-found word gets
a *fragmentation rate*: the number of generated words its bits are spread
across, normalized by the word's width ("an 8-bit reference word split into
two 4-bit generated words would be fragmented into two pieces", normalized
to 2/8 = 0.25).  The reported rate is the average over partially-found
words; 0 means there were none.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.words import IdentificationResult, Word
from .reference import ReferenceWord

__all__ = ["WordOutcome", "EvaluationMetrics", "evaluate"]

FULL = "full"
PARTIAL = "partial"
NOT_FOUND = "not_found"


@dataclass(frozen=True)
class WordOutcome:
    """How one reference word fared under a technique."""

    reference: ReferenceWord
    status: str  # FULL / PARTIAL / NOT_FOUND
    fragments: int  # generated words the bits are spread across
    fragmentation_rate: float  # fragments / width (0.0 when fully found)


@dataclass
class EvaluationMetrics:
    """Aggregate accuracy of one technique on one benchmark (Table 1 row)."""

    outcomes: List[WordOutcome] = field(default_factory=list)

    @property
    def num_reference_words(self) -> int:
        return len(self.outcomes)

    @property
    def num_full(self) -> int:
        return sum(1 for o in self.outcomes if o.status == FULL)

    @property
    def num_partial(self) -> int:
        return sum(1 for o in self.outcomes if o.status == PARTIAL)

    @property
    def num_not_found(self) -> int:
        return sum(1 for o in self.outcomes if o.status == NOT_FOUND)

    @property
    def pct_full(self) -> float:
        """"Full Found (%Word)" column."""
        if not self.outcomes:
            return 0.0
        return 100.0 * self.num_full / len(self.outcomes)

    @property
    def pct_not_found(self) -> float:
        """"Not Found (%Words)" column."""
        if not self.outcomes:
            return 0.0
        return 100.0 * self.num_not_found / len(self.outcomes)

    @property
    def fragmentation_rate(self) -> float:
        """"Partial Found (Word Frag. Rate)" column.

        Average normalized fragmentation over partially-found words only;
        0 when no word was partially found.
        """
        partial = [o for o in self.outcomes if o.status == PARTIAL]
        if not partial:
            return 0.0
        return sum(o.fragmentation_rate for o in partial) / len(partial)


def _classify(
    reference: ReferenceWord, generated: Sequence[Word]
) -> WordOutcome:
    ref_bits = set(reference.bits)
    containing: List[Word] = [
        w for w in generated if ref_bits & w.bit_set
    ]
    for word in containing:
        if ref_bits <= word.bit_set:
            return WordOutcome(reference, FULL, 1, 0.0)
    # Bits not inside any generated word count as their own fragment each.
    grouped_bits = set()
    fragments = 0
    max_together = 0
    for word in containing:
        overlap = ref_bits & word.bit_set
        grouped_bits |= overlap
        fragments += 1
        max_together = max(max_together, len(overlap))
    loose = len(ref_bits - grouped_bits)
    fragments += loose
    if max_together <= 1:
        return WordOutcome(
            reference, NOT_FOUND, fragments, fragments / reference.width
        )
    return WordOutcome(
        reference, PARTIAL, fragments, fragments / reference.width
    )


def evaluate(
    reference_words: Sequence[ReferenceWord],
    result: IdentificationResult,
) -> EvaluationMetrics:
    """Score an identification result against the golden reference."""
    generated = result.all_generated_words()
    metrics = EvaluationMetrics()
    for reference in reference_words:
        metrics.outcomes.append(_classify(reference, generated))
    return metrics
