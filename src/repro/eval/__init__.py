"""Evaluation harness: golden references, accuracy metrics, Table 1 runner."""

from .metrics import EvaluationMetrics, WordOutcome, evaluate
from .reference import (
    REGISTER_NAME_RE,
    ReferenceWord,
    average_word_size,
    extract_reference_words,
)
from .report import rows_from_json, rows_to_csv, rows_to_json
from .runner import BenchmarkRun, run_benchmark, run_table1
from .table import BenchmarkRow, TechniqueRow, average_row, render_table

__all__ = [
    "EvaluationMetrics", "WordOutcome", "evaluate",
    "REGISTER_NAME_RE", "ReferenceWord", "average_word_size",
    "extract_reference_words",
    "rows_from_json", "rows_to_csv", "rows_to_json",
    "BenchmarkRun", "run_benchmark", "run_table1",
    "BenchmarkRow", "TechniqueRow", "average_row", "render_table",
]
