"""Rendering of Table 1: per-benchmark Base vs Ours comparison rows."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

__all__ = ["TechniqueRow", "BenchmarkRow", "average_row", "render_table"]


@dataclass(frozen=True)
class TechniqueRow:
    """One technique's metrics on one benchmark (half a Table 1 row)."""

    technique: str  # "Base" or "Ours"
    pct_full: float
    fragmentation_rate: float
    pct_not_found: float
    time_seconds: float
    num_control_signals: int


@dataclass(frozen=True)
class BenchmarkRow:
    """One benchmark's full Table 1 row: stats plus both techniques."""

    name: str
    num_gates: int
    num_nets: int
    num_ffs: int
    num_words: int
    avg_word_size: float
    base: TechniqueRow
    ours: TechniqueRow


def average_row(rows: Sequence[BenchmarkRow]) -> BenchmarkRow:
    """The "Average" row of Table 1 (arithmetic means over benchmarks)."""
    if not rows:
        raise ValueError("no rows to average")

    def mean(values: List[float]) -> float:
        return sum(values) / len(values)

    def tech_mean(technique: str) -> TechniqueRow:
        selected = [
            row.base if technique == "Base" else row.ours for row in rows
        ]
        return TechniqueRow(
            technique=technique,
            pct_full=mean([t.pct_full for t in selected]),
            fragmentation_rate=mean(
                [t.fragmentation_rate for t in selected]
            ),
            pct_not_found=mean([t.pct_not_found for t in selected]),
            time_seconds=mean([t.time_seconds for t in selected]),
            num_control_signals=sum(t.num_control_signals for t in selected),
        )

    return BenchmarkRow(
        name="Average",
        num_gates=0,
        num_nets=0,
        num_ffs=0,
        num_words=0,
        avg_word_size=0.0,
        base=tech_mean("Base"),
        ours=tech_mean("Ours"),
    )


_HEADER = (
    f"{'Bench':>8} {'#gates':>8} {'#nets':>8} {'#FF':>6} {'#Words':>7} "
    f"{'AvgSz':>6}  {'Tech':<4} {'Full%':>6} {'Frag':>6} {'NotFnd%':>8} "
    f"{'Time(s)':>8} {'#Ctrl':>6}"
)


def _format_half(row: BenchmarkRow, tech: TechniqueRow, first: bool) -> str:
    if first:
        prefix = (
            f"{row.name:>8} {row.num_gates:>8} {row.num_nets:>8} "
            f"{row.num_ffs:>6} {row.num_words:>7} {row.avg_word_size:>6.2f}"
        )
    else:
        prefix = " " * (8 + 1 + 8 + 1 + 8 + 1 + 6 + 1 + 7 + 1 + 6)
    return (
        f"{prefix}  {tech.technique:<4} {tech.pct_full:>6.1f} "
        f"{tech.fragmentation_rate:>6.2f} {tech.pct_not_found:>8.1f} "
        f"{tech.time_seconds:>8.2f} {tech.num_control_signals:>6}"
    )


def render_table(rows: Sequence[BenchmarkRow], include_average: bool = True) -> str:
    """Render rows in the layout of the paper's Table 1."""
    lines = [_HEADER, "-" * len(_HEADER)]
    for row in rows:
        lines.append(_format_half(row, row.base, first=True))
        lines.append(_format_half(row, row.ours, first=False))
    if include_average and rows:
        avg = average_row(rows)
        lines.append("-" * len(_HEADER))
        lines.append(_format_half(avg, avg.base, first=True))
        lines.append(_format_half(avg, avg.ours, first=False))
    return "\n".join(lines)
