"""Machine-readable exports of benchmark results (JSON / CSV).

``python -m repro.eval.runner`` prints the human Table 1; downstream
tooling (plots, regression tracking, CI dashboards) wants structure.
These helpers serialize :class:`~repro.eval.table.BenchmarkRow` lists
losslessly and deterministically.
"""

from __future__ import annotations

import csv
import io
import json
from typing import List, Sequence

from ..schema import stamp
from .table import BenchmarkRow, TechniqueRow

__all__ = [
    "row_to_dict",
    "row_from_dict",
    "rows_to_json",
    "rows_to_csv",
    "rows_from_json",
]

_CSV_COLUMNS = [
    "benchmark", "gates", "nets", "flip_flops", "words", "avg_word_size",
    "technique", "pct_full", "fragmentation_rate", "pct_not_found",
    "time_seconds", "num_control_signals",
]


def _technique_dict(tech: TechniqueRow) -> dict:
    return {
        "pct_full": tech.pct_full,
        "fragmentation_rate": tech.fragmentation_rate,
        "pct_not_found": tech.pct_not_found,
        "time_seconds": tech.time_seconds,
        "num_control_signals": tech.num_control_signals,
    }


def row_to_dict(row: BenchmarkRow) -> dict:
    """One benchmark row as a JSON-ready dict (the journal entry shape).

    Rows are version-stamped (``schema_version`` / ``pipeline_version``);
    :func:`row_from_dict` ignores the stamps, so journals written by older
    versions still resume (their rows simply lack the fields).
    """
    return stamp({
        "benchmark": row.name,
        "gates": row.num_gates,
        "nets": row.num_nets,
        "flip_flops": row.num_ffs,
        "words": row.num_words,
        "avg_word_size": row.avg_word_size,
        "base": _technique_dict(row.base),
        "ours": _technique_dict(row.ours),
    })


def row_from_dict(entry: dict) -> BenchmarkRow:
    """Inverse of :func:`row_to_dict`."""
    return BenchmarkRow(
        name=entry["benchmark"],
        num_gates=entry["gates"],
        num_nets=entry["nets"],
        num_ffs=entry["flip_flops"],
        num_words=entry["words"],
        avg_word_size=entry["avg_word_size"],
        base=TechniqueRow(technique="Base", **entry["base"]),
        ours=TechniqueRow(technique="Ours", **entry["ours"]),
    )


def rows_to_json(rows: Sequence[BenchmarkRow], indent: int = 2) -> str:
    """Serialize rows as a JSON document (one object per benchmark)."""
    return json.dumps([row_to_dict(row) for row in rows], indent=indent)


def rows_from_json(text: str) -> List[BenchmarkRow]:
    """Inverse of :func:`rows_to_json`."""
    return [row_from_dict(entry) for entry in json.loads(text)]


def rows_to_csv(rows: Sequence[BenchmarkRow]) -> str:
    """Serialize rows as CSV — one line per (benchmark, technique)."""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=_CSV_COLUMNS)
    writer.writeheader()
    for row in rows:
        for tech in (row.base, row.ours):
            writer.writerow(
                {
                    "benchmark": row.name,
                    "gates": row.num_gates,
                    "nets": row.num_nets,
                    "flip_flops": row.num_ffs,
                    "words": row.num_words,
                    "avg_word_size": row.avg_word_size,
                    "technique": tech.technique,
                    "pct_full": tech.pct_full,
                    "fragmentation_rate": tech.fragmentation_rate,
                    "pct_not_found": tech.pct_not_found,
                    "time_seconds": tech.time_seconds,
                    "num_control_signals": tech.num_control_signals,
                }
            )
    return buffer.getvalue()
