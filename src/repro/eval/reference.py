"""Golden reference word extraction (Section 3 experimental setup).

The paper builds its reference case from a naming artifact of synthesis:
"register names in the VHDL code for each benchmark were preserved in the
gate-level netlist file.  Specifically, the output net of each flip-flop is
named using the register name and bit position it corresponds to."  All bits
of a register with matching names are grouped into a reference word — and
the word's nets are "the input nets to the flip-flops, rather than the named
output nets, since we are matching structure based on fanin-cones."

Our synthesis flow preserves register names the same way
(``<register>_reg_<bit>`` on flip-flop output nets), so this module
mechanizes what the paper did by hand.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Pattern, Tuple

from ..netlist.netlist import Netlist

__all__ = ["ReferenceWord", "extract_reference_words", "REGISTER_NAME_RE"]

#: Flip-flop output net naming convention preserved by synthesis:
#: ``<register>_reg_<bit>`` (also accepts ``<register>_reg[<bit>]``).
REGISTER_NAME_RE = re.compile(r"^(?P<reg>.+?)_reg_?[\[_]?(?P<bit>\d+)\]?$")


@dataclass(frozen=True)
class ReferenceWord:
    """One golden word: a named register and its flip-flop D-input nets."""

    register: str
    bits: Tuple[str, ...]  # D-input nets, ordered by bit index

    @property
    def width(self) -> int:
        return len(self.bits)


def extract_reference_words(
    netlist: Netlist,
    min_width: int = 2,
    name_pattern: Pattern = REGISTER_NAME_RE,
) -> List[ReferenceWord]:
    """Group flip-flops into reference words by register name.

    Returns words of at least ``min_width`` bits (1-bit registers carry no
    grouping information), sorted by register name for determinism.  The
    word bits are the flip-flops' D-input nets ordered by bit index.
    """
    by_register: Dict[str, List[Tuple[int, str]]] = {}
    for ff in netlist.flip_flops():
        match = name_pattern.match(ff.output)
        if not match:
            continue
        register = match.group("reg")
        bit_index = int(match.group("bit"))
        by_register.setdefault(register, []).append((bit_index, ff.inputs[0]))
    words: List[ReferenceWord] = []
    for register in sorted(by_register):
        entries = sorted(by_register[register])
        if len(entries) < min_width:
            continue
        words.append(
            ReferenceWord(register, tuple(net for _, net in entries))
        )
    return words


def average_word_size(words: List[ReferenceWord]) -> float:
    """The "Avg Size" column of Table 1."""
    if not words:
        return 0.0
    return sum(w.width for w in words) / len(words)
