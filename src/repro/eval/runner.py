"""Experiment runner: regenerate the paper's Table 1.

For each benchmark this runs the shape-hashing baseline ("Base") and the
control-signal technique ("Ours") on the same synthesized netlist, scores
both against the golden reference words, and assembles a
:class:`~repro.eval.table.BenchmarkRow`.

Run it as a script (or via the ``repro-table1`` console entry point)::

    python -m repro.eval.runner            # all 12 benchmarks
    python -m repro.eval.runner b03 b12    # a subset
    python -m repro.eval.runner --jobs 4 --trace   # parallel + stage trace
    python -m repro.eval.runner --journal t1.jsonl # checkpoint each row
    python -m repro.eval.runner --resume           # continue a killed sweep

Checkpointing: with ``--journal`` every completed benchmark's row is
appended (and fsynced) to a JSONL journal as soon as it finishes, so a
killed or crashed sweep loses at most the benchmark that was in flight.
``--resume`` reloads the journal and skips every benchmark already
recorded there instead of restarting all 12.  A partially-written last
line (the process died mid-append) is ignored on reload.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from dataclasses import replace
from typing import Dict, List, Optional, Sequence

from ..core.baseline import baseline_config, shape_hashing
from ..core.pipeline import PipelineConfig, identify_words
from ..core.words import IdentificationResult
from ..netlist.netlist import Netlist
from .metrics import EvaluationMetrics, evaluate
from .reference import ReferenceWord, average_word_size, extract_reference_words
from .report import row_from_dict, row_to_dict
from .table import BenchmarkRow, TechniqueRow, render_table

__all__ = [
    "run_benchmark",
    "run_table1",
    "load_journal",
    "load_journal_entries",
    "append_journal_entry",
    "main",
    "BenchmarkRun",
    "DEFAULT_JOURNAL",
]

#: Journal path used by ``--resume`` when ``--journal`` is not given.
DEFAULT_JOURNAL = "table1.journal.jsonl"


class BenchmarkRun:
    """Everything produced by evaluating one benchmark netlist."""

    def __init__(
        self,
        netlist: Netlist,
        reference: List[ReferenceWord],
        base_result: IdentificationResult,
        ours_result: IdentificationResult,
        base_metrics: EvaluationMetrics,
        ours_metrics: EvaluationMetrics,
    ):
        self.netlist = netlist
        self.reference = reference
        self.base_result = base_result
        self.ours_result = ours_result
        self.base_metrics = base_metrics
        self.ours_metrics = ours_metrics

    def row(self) -> BenchmarkRow:
        return BenchmarkRow(
            name=self.netlist.name,
            num_gates=self.netlist.num_gates,
            num_nets=self.netlist.num_nets,
            num_ffs=self.netlist.num_ffs,
            num_words=len(self.reference),
            avg_word_size=average_word_size(self.reference),
            base=_technique_row("Base", self.base_result, self.base_metrics),
            ours=_technique_row("Ours", self.ours_result, self.ours_metrics),
        )


def _technique_row(
    name: str, result: IdentificationResult, metrics: EvaluationMetrics
) -> TechniqueRow:
    return TechniqueRow(
        technique=name,
        pct_full=metrics.pct_full,
        fragmentation_rate=metrics.fragmentation_rate,
        pct_not_found=metrics.pct_not_found,
        time_seconds=result.runtime_seconds,
        num_control_signals=len(result.control_signals),
    )


def run_benchmark(
    netlist: Netlist,
    config: Optional[PipelineConfig] = None,
    store=None,
) -> BenchmarkRun:
    """Evaluate Base and Ours on one netlist against its golden words.

    ``store`` — an optional :class:`repro.store.ArtifactStore`; Base and
    Ours results are cached under their own keys (``allow_partial`` is in
    the fingerprint), so a repeat sweep loads both from disk.
    """
    config = config or PipelineConfig()
    reference = extract_reference_words(netlist)
    base_config = replace(
        baseline_config(
            depth=config.depth, grouping=config.grouping, jobs=config.jobs
        ),
        deadline_s=config.deadline_s,
        max_assignments=config.max_assignments,
        max_cone_gates=config.max_cone_gates,
        strict=config.strict,
    )
    base_result = shape_hashing(netlist, base_config, store=store)
    ours_result = identify_words(netlist, config, store=store)
    return BenchmarkRun(
        netlist=netlist,
        reference=reference,
        base_result=base_result,
        ours_result=ours_result,
        base_metrics=evaluate(reference, base_result),
        ours_metrics=evaluate(reference, ours_result),
    )


def load_journal_entries(path: str, key: str = "benchmark") -> Dict[str, dict]:
    """Raw entries from a JSONL checkpoint journal, keyed by ``entry[key]``.

    The generic resume primitive shared by the Table 1 sweep and the
    ``repro batch`` corpus orchestrator.  Tolerates a torn final line
    (the run was killed mid-append): the damaged entry is dropped and its
    unit of work simply re-runs.  A missing journal is an empty run, not
    an error.  Later duplicates win, so re-running a unit supersedes its
    old row.
    """
    completed: Dict[str, dict] = {}
    try:
        with open(path) as handle:
            lines = handle.readlines()
    except OSError:
        return completed
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
            completed[entry[key]] = entry
        except (ValueError, KeyError, TypeError):
            continue  # torn or foreign line — re-run that unit
    return completed


def append_journal_entry(path: str, entry: dict) -> None:
    """Append one completed entry and force it to disk (crash-safe).

    A run killed mid-append leaves a torn final line with no newline;
    writing straight after it would fuse the next (valid) entry onto
    the damaged one and silently lose *both*.  Appends therefore start
    on a fresh line whenever the file does not already end in one.
    """
    with open(path, "a+b") as handle:
        handle.seek(0, os.SEEK_END)
        if handle.tell() > 0:
            handle.seek(-1, os.SEEK_END)
            if handle.read(1) != b"\n":
                handle.write(b"\n")
        handle.write((json.dumps(entry) + "\n").encode("utf-8"))
        handle.flush()
        os.fsync(handle.fileno())


def load_journal(path: str) -> Dict[str, BenchmarkRow]:
    """Completed Table 1 rows from a journal, keyed by benchmark name."""
    completed: Dict[str, BenchmarkRow] = {}
    for name, entry in load_journal_entries(path, key="benchmark").items():
        try:
            completed[name] = row_from_dict(entry)
        except (KeyError, TypeError):
            continue  # foreign shape — re-run that benchmark
    return completed


def _append_journal(path: str, row: BenchmarkRow) -> None:
    append_journal_entry(path, row_to_dict(row))


def run_table1(
    names: Optional[Sequence[str]] = None,
    config: Optional[PipelineConfig] = None,
    on_run=None,
    journal: Optional[str] = None,
    resume: bool = False,
    store=None,
) -> List[BenchmarkRow]:
    """Synthesize and evaluate the Table 1 benchmarks; returns their rows.

    ``on_run`` — an optional ``(name, BenchmarkRun)`` callback invoked after
    each benchmark completes — gives callers the full runs (stage traces,
    raw results) without holding every netlist alive in a list.

    ``journal`` — path of a JSONL checkpoint file; each row is appended as
    soon as its benchmark completes.  With ``resume=True``, benchmarks
    already in the journal are returned from it without re-running (and
    ``on_run`` is not called for them); without ``resume``, an existing
    journal is started over.
    """
    from ..synth.designs import BENCHMARKS  # deferred: designs are heavy

    selected = list(names) if names else list(BENCHMARKS)
    completed: Dict[str, BenchmarkRow] = {}
    if journal is not None:
        if resume:
            completed = load_journal(journal)
        elif os.path.exists(journal):
            os.remove(journal)  # fresh sweep: start the journal over
    rows: List[BenchmarkRow] = []
    for name in selected:
        if name not in BENCHMARKS:
            raise KeyError(
                f"unknown benchmark {name!r}; have {sorted(BENCHMARKS)}"
            )
        if name in completed:
            rows.append(completed[name])
            continue
        netlist = BENCHMARKS[name]()
        run = run_benchmark(netlist, config, store=store)
        if on_run is not None:
            on_run(name, run)
        row = run.row()
        if journal is not None:
            _append_journal(journal, row)
        rows.append(row)
    return rows


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Reproduce Table 1 of Tashjian & Davoodi, DAC 2015"
    )
    parser.add_argument(
        "benchmarks",
        nargs="*",
        help="benchmark names (default: all of Table 1)",
    )
    parser.add_argument(
        "--depth", type=int, default=4, help="fanin-cone depth (default 4)"
    )
    parser.add_argument(
        "--max-simultaneous",
        type=int,
        default=2,
        help="max control signals assigned at once (default 2)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker threads for the assignment search (results are "
        "identical for any value)",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="print each benchmark's stage timings and cache hit rates",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        metavar="SECONDS",
        default=None,
        help="per-benchmark wall-clock deadline; an expired benchmark "
        "reports its partial words instead of stalling the sweep",
    )
    parser.add_argument(
        "--budget",
        type=int,
        metavar="N",
        default=None,
        help="cap on control-signal assignments tried per subgroup",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="re-raise budget violations and worker failures instead of "
        "degrading",
    )
    parser.add_argument(
        "--journal",
        metavar="PATH",
        default=None,
        help="checkpoint each completed benchmark's row to this JSONL "
        f"file (--resume defaults it to {DEFAULT_JOURNAL})",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="skip benchmarks already recorded in the journal (a killed "
        "sweep continues from the last completed benchmark)",
    )
    parser.add_argument(
        "--store",
        metavar="DIR",
        default=None,
        help="artifact-store directory; Base and Ours results are cached "
        "there, so a repeat sweep reloads instead of recomputing",
    )
    parser.add_argument(
        "--json", metavar="PATH", help="also write the rows as JSON"
    )
    parser.add_argument(
        "--csv", metavar="PATH", help="also write the rows as CSV"
    )
    args = parser.parse_args(argv)
    journal = args.journal
    if args.resume and journal is None:
        journal = DEFAULT_JOURNAL
    config = PipelineConfig(
        depth=args.depth,
        max_simultaneous=args.max_simultaneous,
        jobs=args.jobs,
        deadline_s=args.deadline,
        max_assignments=args.budget,
        strict=args.strict,
    )

    def print_trace(name: str, run: BenchmarkRun) -> None:
        print(f"--- {name} ---")
        for line in run.ours_result.trace.extended_lines():
            print(f"  {line}")

    store = None
    if args.store is not None:
        from ..store import ArtifactStore

        store = ArtifactStore(args.store)
    rows = run_table1(
        args.benchmarks or None,
        config,
        on_run=print_trace if args.trace else None,
        journal=journal,
        resume=args.resume,
        store=store,
    )
    print(render_table(rows))
    if args.json:
        from .report import rows_to_json

        with open(args.json, "w") as handle:
            handle.write(rows_to_json(rows) + "\n")
    if args.csv:
        from .report import rows_to_csv

        with open(args.csv, "w") as handle:
            handle.write(rows_to_csv(rows))
    return 0


if __name__ == "__main__":
    sys.exit(main())
