"""Per-backend Table-1 scoreboard over the fuzz corpus (exact truth).

The ITC99 sweep (:mod:`repro.eval.runner`) scores techniques against
reference words reconstructed from net naming; the fuzz generator gives
something strictly stronger — samples with *exact* word-level ground
truth and per-word regime labels.  This module runs every registered
identification backend over such a corpus and aggregates the paper's
Table 1 metrics (%full, fragmentation rate, %not-found) per backend and
per structural regime, so a new backend lands with a scorecard against
`ours`/`base` on the same designs, including the adversarial sram/cam
regimes added for exactly this purpose.

Campaigns journal one JSONL row per sample (fsynced, torn-line safe —
the primitives of :mod:`repro.eval.runner`), so an interrupted
``repro scoreboard --journal`` resumes where it stopped.  The final
payload is schema-stamped (``kind: "scoreboard"``).
"""

from __future__ import annotations

import argparse
import bisect
import json
import sys
from dataclasses import replace as dc_replace
from typing import Dict, List, Optional, Sequence

from ..core.backends import UnknownBackendError, backend_names, resolve
from ..core.pipeline import PipelineConfig, identify_words
from ..eval.metrics import FULL, NOT_FOUND, PARTIAL, evaluate
from ..eval.reference import extract_reference_words
from ..exitcodes import EXIT_OK, EXIT_USAGE
from ..fuzz.generator import GeneratorConfig, generate, sample_seed
from ..schema import stamp
from ..triage import triage_netlist
from .runner import append_journal_entry, load_journal_entries

__all__ = [
    "DEFAULT_BACKENDS",
    "DEFAULT_SAMPLES",
    "run_scoreboard",
    "render_scoreboard",
    "main",
]

DEFAULT_BACKENDS = ("ours", "base", "regfeat")

#: The acceptance floor: enough draws that every regime — including the
#: two ~5%-weight sram/cam regimes — appears several times.
DEFAULT_SAMPLES = 50


def _sample_key(campaign_seed: int, index: int) -> str:
    return f"{campaign_seed}:{index}"


# ----------------------------------------------------------------------
# Trojan-triage ROC scoring (repro scoreboard --triage)
# ----------------------------------------------------------------------

def _roc_auc(
    positives: Sequence[float], negatives: Dict[str, int]
) -> Optional[float]:
    """Exact ROC AUC from positive scores + a negative-score histogram.

    AUC is the probability a uniformly drawn (trojan, normal) gate pair
    is ranked correctly, ties counting half — computed directly from the
    Mann-Whitney statistic, no threshold sweep.  ``negatives`` maps the
     6-decimal score spelling (the journal form) to its gate count.
    ``None`` when either class is empty (AUC is undefined, not zero).
    """
    if not positives or not negatives:
        return None
    binned = sorted((float(score), count) for score, count in negatives.items())
    scores = [score for score, _ in binned]
    cumulative = [0]
    for _, count in binned:
        cumulative.append(cumulative[-1] + count)
    total = cumulative[-1]
    wins = 0.0
    for p in positives:
        lo = bisect.bisect_left(scores, p)
        hi = bisect.bisect_right(scores, p)
        wins += cumulative[lo] + 0.5 * (cumulative[hi] - cumulative[lo])
    return wins / (len(positives) * total)


def _triage_section(sample, result, trojan_gates) -> Dict:
    """One backend's triage scorecard on one sample — the journal form.

    Carries the trojan-gate scores and a histogram of everything else
    (scores are already rounded to 6 decimals, and smoothing makes heavy
    ties, so the histogram is small), which is exactly enough to fold an
    *exact* pooled ROC across the whole campaign from journal rows alone.
    """
    triage = triage_netlist(sample.netlist, result)
    positives: List[float] = []
    negatives: Dict[str, int] = {}
    for entry in triage.scores:
        if entry.gate in trojan_gates:
            positives.append(entry.score)
        else:
            key = f"{entry.score:.6f}"
            negatives[key] = negatives.get(key, 0) + 1
    n = triage.num_gates
    top = {entry.gate for entry in triage.top(max(1, n // 10))}
    return {
        "gates": n,
        "trojan_gates": len(positives),
        "auc": _roc_auc(positives, negatives),
        "top_decile": sum(1 for gate in trojan_gates if gate in top),
        "positives": sorted(positives),
        "negatives": negatives,
    }


def _aggregate_triage(
    rows: Sequence[Dict], name: str
) -> Optional[Dict]:
    """Fold per-sample triage sections into one backend's ROC summary."""
    sections = [
        row["backends"][name]["triage"]
        for row in rows
        if "triage" in row["backends"].get(name, {})
    ]
    if not sections:
        return None
    positives: List[float] = []
    negatives: Dict[str, int] = {}
    per_sample: List[float] = []
    trojan_gates = 0
    top_decile = 0
    for section in sections:
        positives.extend(section["positives"])
        for score, count in section["negatives"].items():
            negatives[score] = negatives.get(score, 0) + count
        trojan_gates += section["trojan_gates"]
        top_decile += section["top_decile"]
        if section["auc"] is not None:
            per_sample.append(section["auc"])
    return {
        "samples": len(sections),
        "trojan_samples": len(per_sample),
        "trojan_gates": trojan_gates,
        "auc": _roc_auc(positives, negatives),
        "auc_mean": (
            sum(per_sample) / len(per_sample) if per_sample else None
        ),
        "auc_min": min(per_sample) if per_sample else None,
        "top_decile_rate": (
            top_decile / trojan_gates if trojan_gates else 0.0
        ),
    }


def _score_sample(
    campaign_seed: int,
    index: int,
    backends: Sequence[str],
    depth: int,
    config: GeneratorConfig,
    triage: bool = False,
) -> Dict:
    """One journal row: every backend scored on one generated sample."""
    sample = generate(sample_seed(campaign_seed, index), config)
    reference = extract_reference_words(sample.netlist, min_width=2)
    regime_of = {w.register: w.regime for w in sample.truth}
    trojan_gates = set(sample.trojan_gates)
    row: Dict = {
        "sample": _sample_key(campaign_seed, index),
        "seed": sample.seed,
        "index": index,
        "words": len(sample.truth),
        "backends": {},
    }
    for name in backends:
        run_config = PipelineConfig(depth=depth, backend=name)
        result = identify_words(sample.netlist, run_config)
        metrics = evaluate(reference, result)
        outcomes = []
        for outcome in metrics.outcomes:
            register = outcome.reference.register
            if register not in regime_of:
                continue  # separator/decoy registers are not truth words
            outcomes.append({
                "register": register,
                "regime": regime_of[register],
                "status": outcome.status,
                "fragmentation_rate": outcome.fragmentation_rate,
            })
        scored = {
            "outcomes": outcomes,
            "runtime_seconds": result.runtime_seconds,
        }
        if triage:
            scored["triage"] = _triage_section(sample, result, trojan_gates)
        row["backends"][name] = scored
    return row


def _aggregate(rows: Sequence[Dict], backends: Sequence[str]) -> Dict:
    """Fold journal rows into the per-backend scoreboard payload."""
    boards: Dict[str, Dict] = {}
    for name in backends:
        total = {FULL: 0, PARTIAL: 0, NOT_FOUND: 0}
        frag_rates: List[float] = []
        regimes: Dict[str, Dict[str, int]] = {}
        runtime = 0.0
        for row in rows:
            scored = row["backends"].get(name)
            if scored is None:
                continue
            runtime += scored.get("runtime_seconds", 0.0)
            for outcome in scored["outcomes"]:
                status = outcome["status"]
                total[status] += 1
                if status == PARTIAL:
                    frag_rates.append(outcome["fragmentation_rate"])
                per_regime = regimes.setdefault(
                    outcome["regime"], {FULL: 0, PARTIAL: 0, NOT_FOUND: 0}
                )
                per_regime[status] += 1
        words = sum(total.values())
        boards[name] = {
            "version": resolve(name).version,
            "words": words,
            "full": total[FULL],
            "partial": total[PARTIAL],
            "not_found": total[NOT_FOUND],
            "pct_full": 100.0 * total[FULL] / words if words else 0.0,
            "pct_not_found": (
                100.0 * total[NOT_FOUND] / words if words else 0.0
            ),
            "fragmentation_rate": (
                sum(frag_rates) / len(frag_rates) if frag_rates else 0.0
            ),
            "runtime_seconds": runtime,
            "regimes": {r: regimes[r] for r in sorted(regimes)},
            "triage": _aggregate_triage(rows, name),
        }
    return boards


def run_scoreboard(
    samples: int = DEFAULT_SAMPLES,
    seed: int = 0,
    backends: Sequence[str] = DEFAULT_BACKENDS,
    depth: int = 4,
    journal: Optional[str] = None,
    generator_config: GeneratorConfig = GeneratorConfig(),
    progress=None,
    triage: bool = False,
) -> Dict:
    """Score ``backends`` over ``samples`` generated designs.

    Returns the schema-stamped scoreboard payload.  With ``journal``,
    per-sample rows are appended as they complete and rows already
    journaled (matching campaign seed and index) are not re-run.

    ``triage`` additionally runs the Trojan-region triage scorer
    (:mod:`repro.triage`) per backend per sample and folds an exact
    pooled ROC AUC into each backend's board; unless the caller already
    armed ``generator_config.trojan_rate``, every sample is injected
    with plan-drawn Trojans so the positive class is never empty.
    """
    for name in backends:
        resolve(name)  # fail fast, before any synthesis work
    if triage and not generator_config.trojan_rate:
        generator_config = dc_replace(generator_config, trojan_rate=1.0)
    completed: Dict[str, Dict] = {}
    if journal:
        for key, entry in load_journal_entries(journal, key="sample").items():
            # Only rows from this campaign that cover every requested
            # backend count as done; others re-run (superseding appends).
            # A --triage campaign also needs each backend's triage
            # section — rows journaled without one are re-scored.
            scored = entry.get("backends", {})
            if scored.keys() < set(backends):
                continue
            if triage and any(
                "triage" not in scored[name] for name in backends
            ):
                continue
            completed[key] = entry
    rows: List[Dict] = []
    for index in range(samples):
        key = _sample_key(seed, index)
        row = completed.get(key)
        if row is None:
            row = _score_sample(
                seed, index, backends, depth, generator_config, triage
            )
            if journal:
                append_journal_entry(journal, row)
        rows.append(row)
        if progress is not None:
            progress(index + 1, samples)
    regimes_present = sorted({
        outcome["regime"]
        for row in rows
        for scored in row["backends"].values()
        for outcome in scored["outcomes"]
    })
    return stamp({
        "kind": "scoreboard",
        "campaign_seed": seed,
        "samples": samples,
        "depth": depth,
        "triage": triage,
        "regimes_present": regimes_present,
        "backends": _aggregate(rows, backends),
    })


def render_scoreboard(payload: Dict) -> str:
    """Fixed-width text rendering, one backend per row (Table 1 style)."""
    lines = [
        f"Backend scoreboard — {payload['samples']} fuzz samples "
        f"(campaign seed {payload['campaign_seed']}), "
        f"{len(payload['regimes_present'])} regimes",
        "",
        f"{'backend':<10} {'words':>5} {'full%':>7} {'frag':>6} "
        f"{'notfound%':>9}  {'seconds':>8}",
    ]
    for name, board in payload["backends"].items():
        lines.append(
            f"{name:<10} {board['words']:>5} {board['pct_full']:>7.1f} "
            f"{board['fragmentation_rate']:>6.2f} "
            f"{board['pct_not_found']:>9.1f}  "
            f"{board['runtime_seconds']:>8.2f}"
        )
    if any(board.get("triage") for board in payload["backends"].values()):
        lines.append("")
        lines.append("trojan triage (ROC over injected trojan gates):")
        lines.append(
            f"{'backend':<10} {'auc':>7} {'mean':>7} {'min':>7} "
            f"{'top-decile':>11} {'trojans':>8}"
        )
        for name, board in payload["backends"].items():
            summary = board.get("triage")
            if not summary:
                continue

            def fmt(value):
                return f"{value:.3f}" if value is not None else "n/a"

            lines.append(
                f"{name:<10} {fmt(summary['auc']):>7} "
                f"{fmt(summary['auc_mean']):>7} "
                f"{fmt(summary['auc_min']):>7} "
                f"{summary['top_decile_rate']:>11.1%} "
                f"{summary['trojan_gates']:>8}"
            )
    lines.append("")
    lines.append("full-found words per regime:")
    regimes = payload["regimes_present"]
    header = f"{'regime':<12}" + "".join(
        f"{name:>9}" for name in payload["backends"]
    )
    lines.append(header)
    for regime in regimes:
        cells = []
        for board in payload["backends"].values():
            counts = board["regimes"].get(
                regime, {FULL: 0, PARTIAL: 0, NOT_FOUND: 0}
            )
            words = sum(counts.values())
            cells.append(f"{counts[FULL]:>5}/{words:<3}")
        lines.append(f"{regime:<12}" + "".join(f"{c:>9}" for c in cells))
    return "\n".join(lines)


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro scoreboard",
        description="Score identification backends against exact fuzz "
        "ground truth (per-backend Table 1 over generated designs)",
    )
    parser.add_argument(
        "--samples", type=int, default=DEFAULT_SAMPLES,
        help="generated designs to score (default %(default)s)",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="campaign seed (default %(default)s)",
    )
    parser.add_argument(
        "--backends", default=",".join(DEFAULT_BACKENDS),
        help="comma-separated backend names (default %(default)s)",
    )
    parser.add_argument(
        "--depth", type=int, default=4,
        help="fanin-cone depth for every backend (default %(default)s)",
    )
    parser.add_argument(
        "--triage",
        action="store_true",
        help="inject plan-drawn Trojans into every sample and score the "
        "triage ranking per backend (pooled ROC AUC over trojan gates)",
    )
    parser.add_argument(
        "--journal", metavar="PATH", default=None,
        help="append per-sample JSONL rows here and resume completed "
        "samples on re-run",
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="write the stamped scoreboard payload to PATH ('-' for "
        "stdout)",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _parser().parse_args(argv)
    backends = tuple(
        name.strip() for name in args.backends.split(",") if name.strip()
    )
    try:
        for name in backends:
            resolve(name)
    except UnknownBackendError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    if not backends:
        print(
            "error: --backends named no backend; registered backends: "
            + ", ".join(backend_names()),
            file=sys.stderr,
        )
        return EXIT_USAGE

    def progress(done: int, total: int) -> None:
        print(f"\rscored {done}/{total} samples", end="", file=sys.stderr)
        if done == total:
            print(file=sys.stderr)

    payload = run_scoreboard(
        samples=args.samples,
        seed=args.seed,
        backends=backends,
        depth=args.depth,
        journal=args.journal,
        progress=progress if sys.stderr.isatty() else None,
        triage=args.triage,
    )
    if args.json == "-":
        json.dump(payload, sys.stdout, indent=2, sort_keys=True)
        print()
    else:
        if args.json:
            with open(args.json, "w") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
                handle.write("\n")
        print(render_scoreboard(payload))
    return EXIT_OK


if __name__ == "__main__":
    sys.exit(main())
