"""Per-backend Table-1 scoreboard over the fuzz corpus (exact truth).

The ITC99 sweep (:mod:`repro.eval.runner`) scores techniques against
reference words reconstructed from net naming; the fuzz generator gives
something strictly stronger — samples with *exact* word-level ground
truth and per-word regime labels.  This module runs every registered
identification backend over such a corpus and aggregates the paper's
Table 1 metrics (%full, fragmentation rate, %not-found) per backend and
per structural regime, so a new backend lands with a scorecard against
`ours`/`base` on the same designs, including the adversarial sram/cam
regimes added for exactly this purpose.

Campaigns journal one JSONL row per sample (fsynced, torn-line safe —
the primitives of :mod:`repro.eval.runner`), so an interrupted
``repro scoreboard --journal`` resumes where it stopped.  The final
payload is schema-stamped (``kind: "scoreboard"``).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional, Sequence

from ..core.backends import UnknownBackendError, backend_names, resolve
from ..core.pipeline import PipelineConfig, identify_words
from ..eval.metrics import FULL, NOT_FOUND, PARTIAL, evaluate
from ..eval.reference import extract_reference_words
from ..fuzz.generator import GeneratorConfig, generate, sample_seed
from ..schema import stamp
from .runner import append_journal_entry, load_journal_entries

__all__ = [
    "DEFAULT_BACKENDS",
    "DEFAULT_SAMPLES",
    "run_scoreboard",
    "render_scoreboard",
    "main",
]

DEFAULT_BACKENDS = ("ours", "base", "regfeat")

#: The acceptance floor: enough draws that every regime — including the
#: two ~5%-weight sram/cam regimes — appears several times.
DEFAULT_SAMPLES = 50


def _sample_key(campaign_seed: int, index: int) -> str:
    return f"{campaign_seed}:{index}"


def _score_sample(
    campaign_seed: int,
    index: int,
    backends: Sequence[str],
    depth: int,
    config: GeneratorConfig,
) -> Dict:
    """One journal row: every backend scored on one generated sample."""
    sample = generate(sample_seed(campaign_seed, index), config)
    reference = extract_reference_words(sample.netlist, min_width=2)
    regime_of = {w.register: w.regime for w in sample.truth}
    row: Dict = {
        "sample": _sample_key(campaign_seed, index),
        "seed": sample.seed,
        "index": index,
        "words": len(sample.truth),
        "backends": {},
    }
    for name in backends:
        run_config = PipelineConfig(depth=depth, backend=name)
        result = identify_words(sample.netlist, run_config)
        metrics = evaluate(reference, result)
        outcomes = []
        for outcome in metrics.outcomes:
            register = outcome.reference.register
            if register not in regime_of:
                continue  # separator/decoy registers are not truth words
            outcomes.append({
                "register": register,
                "regime": regime_of[register],
                "status": outcome.status,
                "fragmentation_rate": outcome.fragmentation_rate,
            })
        row["backends"][name] = {
            "outcomes": outcomes,
            "runtime_seconds": result.runtime_seconds,
        }
    return row


def _aggregate(rows: Sequence[Dict], backends: Sequence[str]) -> Dict:
    """Fold journal rows into the per-backend scoreboard payload."""
    boards: Dict[str, Dict] = {}
    for name in backends:
        total = {FULL: 0, PARTIAL: 0, NOT_FOUND: 0}
        frag_rates: List[float] = []
        regimes: Dict[str, Dict[str, int]] = {}
        runtime = 0.0
        for row in rows:
            scored = row["backends"].get(name)
            if scored is None:
                continue
            runtime += scored.get("runtime_seconds", 0.0)
            for outcome in scored["outcomes"]:
                status = outcome["status"]
                total[status] += 1
                if status == PARTIAL:
                    frag_rates.append(outcome["fragmentation_rate"])
                per_regime = regimes.setdefault(
                    outcome["regime"], {FULL: 0, PARTIAL: 0, NOT_FOUND: 0}
                )
                per_regime[status] += 1
        words = sum(total.values())
        boards[name] = {
            "version": resolve(name).version,
            "words": words,
            "full": total[FULL],
            "partial": total[PARTIAL],
            "not_found": total[NOT_FOUND],
            "pct_full": 100.0 * total[FULL] / words if words else 0.0,
            "pct_not_found": (
                100.0 * total[NOT_FOUND] / words if words else 0.0
            ),
            "fragmentation_rate": (
                sum(frag_rates) / len(frag_rates) if frag_rates else 0.0
            ),
            "runtime_seconds": runtime,
            "regimes": {r: regimes[r] for r in sorted(regimes)},
        }
    return boards


def run_scoreboard(
    samples: int = DEFAULT_SAMPLES,
    seed: int = 0,
    backends: Sequence[str] = DEFAULT_BACKENDS,
    depth: int = 4,
    journal: Optional[str] = None,
    generator_config: GeneratorConfig = GeneratorConfig(),
    progress=None,
) -> Dict:
    """Score ``backends`` over ``samples`` generated designs.

    Returns the schema-stamped scoreboard payload.  With ``journal``,
    per-sample rows are appended as they complete and rows already
    journaled (matching campaign seed and index) are not re-run.
    """
    for name in backends:
        resolve(name)  # fail fast, before any synthesis work
    completed: Dict[str, Dict] = {}
    if journal:
        for key, entry in load_journal_entries(journal, key="sample").items():
            # Only rows from this campaign that cover every requested
            # backend count as done; others re-run (superseding appends).
            if entry.get("backends", {}).keys() >= set(backends):
                completed[key] = entry
    rows: List[Dict] = []
    for index in range(samples):
        key = _sample_key(seed, index)
        row = completed.get(key)
        if row is None:
            row = _score_sample(
                seed, index, backends, depth, generator_config
            )
            if journal:
                append_journal_entry(journal, row)
        rows.append(row)
        if progress is not None:
            progress(index + 1, samples)
    regimes_present = sorted({
        outcome["regime"]
        for row in rows
        for scored in row["backends"].values()
        for outcome in scored["outcomes"]
    })
    return stamp({
        "kind": "scoreboard",
        "campaign_seed": seed,
        "samples": samples,
        "depth": depth,
        "regimes_present": regimes_present,
        "backends": _aggregate(rows, backends),
    })


def render_scoreboard(payload: Dict) -> str:
    """Fixed-width text rendering, one backend per row (Table 1 style)."""
    lines = [
        f"Backend scoreboard — {payload['samples']} fuzz samples "
        f"(campaign seed {payload['campaign_seed']}), "
        f"{len(payload['regimes_present'])} regimes",
        "",
        f"{'backend':<10} {'words':>5} {'full%':>7} {'frag':>6} "
        f"{'notfound%':>9}  {'seconds':>8}",
    ]
    for name, board in payload["backends"].items():
        lines.append(
            f"{name:<10} {board['words']:>5} {board['pct_full']:>7.1f} "
            f"{board['fragmentation_rate']:>6.2f} "
            f"{board['pct_not_found']:>9.1f}  "
            f"{board['runtime_seconds']:>8.2f}"
        )
    lines.append("")
    lines.append("full-found words per regime:")
    regimes = payload["regimes_present"]
    header = f"{'regime':<12}" + "".join(
        f"{name:>9}" for name in payload["backends"]
    )
    lines.append(header)
    for regime in regimes:
        cells = []
        for board in payload["backends"].values():
            counts = board["regimes"].get(
                regime, {FULL: 0, PARTIAL: 0, NOT_FOUND: 0}
            )
            words = sum(counts.values())
            cells.append(f"{counts[FULL]:>5}/{words:<3}")
        lines.append(f"{regime:<12}" + "".join(f"{c:>9}" for c in cells))
    return "\n".join(lines)


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro scoreboard",
        description="Score identification backends against exact fuzz "
        "ground truth (per-backend Table 1 over generated designs)",
    )
    parser.add_argument(
        "--samples", type=int, default=DEFAULT_SAMPLES,
        help="generated designs to score (default %(default)s)",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="campaign seed (default %(default)s)",
    )
    parser.add_argument(
        "--backends", default=",".join(DEFAULT_BACKENDS),
        help="comma-separated backend names (default %(default)s)",
    )
    parser.add_argument(
        "--depth", type=int, default=4,
        help="fanin-cone depth for every backend (default %(default)s)",
    )
    parser.add_argument(
        "--journal", metavar="PATH", default=None,
        help="append per-sample JSONL rows here and resume completed "
        "samples on re-run",
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="write the stamped scoreboard payload to PATH ('-' for "
        "stdout)",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _parser().parse_args(argv)
    backends = tuple(
        name.strip() for name in args.backends.split(",") if name.strip()
    )
    try:
        for name in backends:
            resolve(name)
    except UnknownBackendError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not backends:
        print(
            "error: --backends named no backend; registered backends: "
            + ", ".join(backend_names()),
            file=sys.stderr,
        )
        return 2

    def progress(done: int, total: int) -> None:
        print(f"\rscored {done}/{total} samples", end="", file=sys.stderr)
        if done == total:
            print(file=sys.stderr)

    payload = run_scoreboard(
        samples=args.samples,
        seed=args.seed,
        backends=backends,
        depth=args.depth,
        journal=args.journal,
        progress=progress if sys.stderr.isatty() else None,
    )
    if args.json == "-":
        json.dump(payload, sys.stdout, indent=2, sort_keys=True)
        print()
    else:
        if args.json:
            with open(args.json, "w") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
                handle.write("\n")
        print(render_scoreboard(payload))
    return 0


if __name__ == "__main__":
    sys.exit(main())
