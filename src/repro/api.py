"""The stable public facade: one front door for every caller.

Everything a downstream user needs lives behind two names::

    from repro.api import Session

    session = Session(store=".repro-cache")      # or store=None: no cache
    report = session.analyze("design.v")         # path, or a Netlist
    print(report.words, report.cache)            # ("hit" on a warm rerun)

    reports = session.analyze_many(paths, jobs=4)   # multi-process corpus

:class:`Session` owns an optional
:class:`~repro.store.ArtifactStore` handle plus a
:class:`~repro.core.pipeline.PipelineConfig`, and every analysis returns a
frozen :class:`AnalysisReport` — a versioned, serializable bundle of
words, trace, diagnostics, and cache provenance.  The facade is the
compatibility contract: the modules underneath
(:mod:`repro.core`, :mod:`repro.store`, :mod:`repro.batch`) may be
refactored freely, but ``Session`` / ``AnalysisReport`` only change with
a deprecation cycle, and their JSON forms only change with a
``schema_version`` bump.

The old entry points (``repro.identify_words`` / ``repro.shape_hashing``
at the package top level) still work but emit a ``DeprecationWarning``
pointing here.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from . import metrics as _metrics
from .core.baseline import baseline_config
from .core.pipeline import PipelineConfig, identify_words
from .core.words import IdentificationResult
from .netlist.bench import parse_bench
from .netlist.netlist import Netlist
from .netlist.verilog import parse_verilog
from .schema import stamp
from .store import (
    ArtifactStore,
    bytes_digest,
    cache_key,
    file_digest,
    netlist_digest,
    result_digest,
)
from .triage import TriageConfig, TriageResult, triage_netlist

__all__ = [
    "AnalysisReport",
    "IncrementalReport",
    "Session",
    "TriageReport",
]

PathLike = Union[str, "os.PathLike[str]"]


@dataclass(frozen=True)
class AnalysisReport:
    """Everything one analysis produced, as an immutable record.

    ``cache`` is the provenance of the result: ``"hit"`` (loaded from the
    artifact store), ``"miss"`` (computed and committed), or ``"off"``
    (no store configured).  ``digest`` is the content digest the store
    key was (or would have been) derived from.  ``result`` keeps the full
    :class:`~repro.core.words.IdentificationResult` for callers that need
    the rich objects; it is excluded from equality so reports compare on
    their deterministic content.
    """

    design: str
    source: Optional[str]
    digest: str
    cache: str
    key: Optional[str]
    num_gates: int
    num_nets: int
    num_ffs: int
    words: Tuple[Tuple[str, ...], ...]
    singletons: Tuple[str, ...]
    control_signals: Tuple[str, ...]
    diagnostics: Tuple[Dict, ...]
    trace: Dict
    runtime_seconds: float
    result: IdentificationResult = field(compare=False, repr=False)

    @property
    def result_digest(self) -> str:
        """Digest of the deterministic result content (see repro.store)."""
        return result_digest(self.result)

    def as_dict(self) -> Dict:
        """Versioned JSON-ready form (``schema_version`` stamped)."""
        return stamp({
            "design": self.design,
            "source": self.source,
            "digest": self.digest,
            "cache": self.cache,
            "key": self.key,
            "backend": self.trace.get("backend", "ours"),
            "netlist": {
                "name": self.design,
                "gates": self.num_gates,
                "nets": self.num_nets,
                "flip_flops": self.num_ffs,
            },
            "words": [list(bits) for bits in self.words],
            "singletons": list(self.singletons),
            "control_signals": list(self.control_signals),
            "control_assignments": [
                {"word": list(word.bits), "assignment": assignment.as_dict()}
                for word, assignment in
                self.result.control_assignments.items()
            ],
            "diagnostics": [dict(d) for d in self.diagnostics],
            "result_digest": self.result_digest,
            "runtime_seconds": self.runtime_seconds,
            "trace": dict(self.trace),
        })


@dataclass(frozen=True)
class IncrementalReport:
    """An :class:`AnalysisReport` plus the edit-impact accounting of one
    :meth:`Session.analyze_incremental` run.

    ``base_digest`` names the previously analyzed design (any digest
    :meth:`~repro.store.ArtifactStore.probe_netlist` resolves);
    ``digest`` is the edited design's canonical digest — pass it as the
    next ``base_digest`` to chain edits.  The ``gates_*`` /
    ``dirty_*`` fields describe the structural diff and its forward
    closure through combinational logic (cones stop at flip-flops, so so
    does the closure); the ``cone_*`` fields are the edited run's
    cone-cache traffic.  ``report`` is byte-identical to a from-scratch
    analysis of the edited design — incrementality changes where answers
    come from, never what they are.
    """

    base_digest: str
    digest: str
    report: AnalysisReport
    gates_added: Tuple[str, ...]
    gates_removed: Tuple[str, ...]
    gates_changed: Tuple[str, ...]
    dirty_nets: int
    dirty_bits: int
    total_bits: int
    cone_hits: int
    cone_misses: int
    cone_commits: int

    @property
    def num_edits(self) -> int:
        return (
            len(self.gates_added)
            + len(self.gates_removed)
            + len(self.gates_changed)
        )

    @property
    def cone_reuse_rate(self) -> float:
        """Fraction of subgroup searches answered from the cone cache.

        ``1.0`` when nothing had to be probed at all — a whole-result
        store hit is total reuse, not zero reuse.
        """
        total = self.cone_hits + self.cone_misses
        return self.cone_hits / total if total else 1.0

    def as_dict(self) -> Dict:
        """Versioned JSON-ready form (``schema_version`` stamped)."""
        return stamp({
            "base_digest": self.base_digest,
            "digest": self.digest,
            "diff": {
                "gates_added": list(self.gates_added),
                "gates_removed": list(self.gates_removed),
                "gates_changed": list(self.gates_changed),
                "dirty_nets": self.dirty_nets,
                "dirty_bits": self.dirty_bits,
                "total_bits": self.total_bits,
            },
            "cone_cache": {
                "hits": self.cone_hits,
                "misses": self.cone_misses,
                "commits": self.cone_commits,
                "reuse_rate": self.cone_reuse_rate,
            },
            "report": self.report.as_dict(),
        })


@dataclass(frozen=True)
class TriageReport:
    """One Trojan-triage run: the identification plus the gate ranking.

    ``analysis`` is the identification the scores were computed against;
    ``triage`` the ranking itself.  ``cache`` is the provenance of the
    *triage* entry (``"hit"``/``"miss"``/``"off"``) — deliberately kept
    out of :meth:`as_dict`, which contains only deterministic content so
    a served response is byte-identical to a CLI run on the same inputs,
    warm or cold, thread pool or process pool.
    """

    design: str
    source: Optional[str]
    digest: str
    result_digest: str
    cache: str
    key: Optional[str]
    analysis: AnalysisReport = field(compare=False, repr=False)
    triage: TriageResult = field(compare=False, repr=False)

    @property
    def backend(self) -> str:
        return self.triage.backend

    @property
    def triage_digest(self) -> str:
        return self.triage.digest()

    def as_dict(self, top: Optional[int] = None) -> Dict:
        """Versioned, fully deterministic JSON form.

        ``top`` truncates the emitted ranking (the summary counters and
        ``triage_digest`` still describe the full one).
        """
        body = self.triage.as_dict(top)
        return stamp({
            "design": self.design,
            "digest": self.digest,
            "result_digest": self.result_digest,
            "backend": body["backend"],
            "config": body["config"],
            "num_gates": body["num_gates"],
            "num_flagged": body["num_flagged"],
            "degraded": self.analysis.trace.get("degraded", False),
            "triage_digest": body["triage_digest"],
            "gates": body["gates"],
        })


class Session:
    """A configured analysis context: config + (optional) artifact store.

    ``config``
        The :class:`PipelineConfig` every analysis uses (default: paper
        settings).  ``config.backend`` selects the identification
        strategy (:mod:`repro.core.backends`): ``Session(
        config=PipelineConfig(backend="regfeat"))`` runs the
        feature-vector aggregator, etc.  ``baseline=True`` swaps in the
        shape-hashing baseline configuration instead (equivalent to
        ``backend="base"``).
    ``store``
        ``None`` (no caching), a directory path (an
        :class:`~repro.store.ArtifactStore` is opened there), or an
        existing store instance.  One store may back many sessions and
        many processes at once.
    ``max_store_bytes``
        LRU cap forwarded when ``store`` is a path.

    Sessions are cheap; hold one per configuration.  ``analyze`` accepts
    either a filesystem path (cheapest: a warm store hit skips parsing
    entirely, keyed on the raw file bytes) or an in-memory
    :class:`Netlist` (keyed on its canonical structural form).
    """

    def __init__(
        self,
        config: Optional[PipelineConfig] = None,
        store: Union[None, PathLike, ArtifactStore] = None,
        baseline: bool = False,
        max_store_bytes: Optional[int] = None,
    ):
        if config is None:
            config = baseline_config() if baseline else PipelineConfig()
        elif baseline and config.allow_partial:
            raise ValueError(
                "baseline=True requires allow_partial=False; "
                "use baseline_config() or drop the flag"
            )
        self.config = config
        if store is None or isinstance(store, ArtifactStore):
            self.store = store
        else:
            self.store = ArtifactStore(
                os.fspath(store), max_bytes=max_store_bytes
            )

    # ------------------------------------------------------------------
    # single-design analysis
    # ------------------------------------------------------------------
    def analyze(
        self,
        source: Union[PathLike, Netlist],
        format: Optional[str] = None,
    ) -> AnalysisReport:
        """Identify words in one design; cached when a store is attached."""
        if isinstance(source, Netlist):
            return self._analyze_netlist(source)
        return self._analyze_path(os.fspath(source), format)

    def _analyze_netlist(
        self, netlist: Netlist, source: Optional[str] = None
    ) -> AnalysisReport:
        digest = netlist_digest(netlist)
        result = identify_words(netlist, self.config, store=self.store)
        if self.store is not None:
            # Persist the parsed body too, so this report's digest can be
            # the base of a later analyze_incremental call.
            self.store.commit_netlist(digest, netlist)
        return self._report(netlist, digest, result, source)

    def _analyze_path(
        self, path: str, format: Optional[str]
    ) -> AnalysisReport:
        digest = file_digest(path)
        cached = self._probe(digest, source=path, fallback_name=path)
        if cached is not None:
            return cached
        netlist = self.load_netlist(path, format)
        return self._analyze_fresh(netlist, digest, path)

    def analyze_text(
        self,
        text: str,
        format: str = "verilog",
        name: Optional[str] = None,
    ) -> AnalysisReport:
        """Identify words in netlist *source text* (no file needed).

        The store key is the digest of the raw UTF-8 bytes — identical to
        :func:`~repro.store.file_digest` of a file with the same content,
        so a served request warms (and is warmed by) CLI runs over the
        same design file.  ``name`` labels the report when the text hits
        the cache before being parsed.
        """
        digest = bytes_digest(text.encode("utf-8"))
        cached = self._probe(digest, source=None, fallback_name=name)
        if cached is not None:
            return cached
        netlist = parse_bench(text) if format == "bench" else parse_verilog(text)
        return self._analyze_fresh(netlist, digest, None)

    # ------------------------------------------------------------------
    # Trojan-region triage
    # ------------------------------------------------------------------
    def triage(
        self,
        source: Union[PathLike, Netlist],
        format: Optional[str] = None,
        triage_config: Optional[TriageConfig] = None,
    ) -> TriageReport:
        """Identify words, then rank every gate by anomaly against the
        recovered structure (:mod:`repro.triage`, DESIGN.md §16).

        Identification goes through the ordinary :meth:`analyze` cache;
        the ranking itself is additionally cached under the *result*
        digest, so re-triaging a design whose identification did not
        change is O(read one JSON file) even across backends and pools.
        """
        if isinstance(source, Netlist):
            netlist = source
            digest = netlist_digest(netlist)
            path = None
        else:
            path = os.fspath(source)
            digest = file_digest(path)
            netlist = self.load_netlist(path, format)
        return self._triage_netlist(netlist, digest, triage_config, path)

    def triage_text(
        self,
        text: str,
        format: str = "verilog",
        name: Optional[str] = None,
        triage_config: Optional[TriageConfig] = None,
    ) -> TriageReport:
        """:meth:`triage` over netlist source text (the serve path).

        Shares digests with :meth:`triage` on a file of the same bytes,
        so served triage requests warm — and are warmed by — CLI runs.
        """
        del name  # the netlist's own name labels the report
        digest = bytes_digest(text.encode("utf-8"))
        netlist = (
            parse_bench(text) if format == "bench" else parse_verilog(text)
        )
        return self._triage_netlist(netlist, digest, triage_config, None)

    def _triage_netlist(
        self,
        netlist: Netlist,
        digest: str,
        triage_config: Optional[TriageConfig],
        source: Optional[str],
    ) -> TriageReport:
        triage_config = triage_config or TriageConfig()
        # Mirror _analyze_path: probe the byte-level digest first, run
        # fresh otherwise.  Either way the analysis report carries the
        # *byte-level* digest (not the canonical ``netlist:`` one), so
        # triage rows digest-match their plain-analysis counterparts and
        # the parsed body is committed for digest-only /v1/triage calls.
        analysis = self._probe(digest, source=source, fallback_name=source)
        if analysis is None:
            analysis = self._analyze_fresh(netlist, digest, source)
        elif self.store is not None:
            # A result cached before this design ever went through the
            # byte-digest path may lack the body alias — commit it so
            # Session.triage_digest can find the structure later.
            self.store.commit_netlist(digest, netlist)
        rd = analysis.result_digest
        key = None
        cache = "off"
        triage = None
        if self.store is not None:
            # Keyed by the identification's result digest (plus the
            # netlist digest — triage reads structure the result alone
            # does not pin) and the triage config fingerprint.
            key = cache_key(
                f"{digest}\x00{rd}", _triage_fingerprint(triage_config),
                kind="triage",
            )
            envelope = self.store.get(key)
            if envelope is not None:
                try:
                    triage = TriageResult.from_dict(envelope["triage"])
                    cache = "hit"
                except (KeyError, TypeError, ValueError):
                    triage = None
        if triage is None:
            triage = triage_netlist(netlist, analysis.result, triage_config)
            if self.store is not None:
                if analysis.result.trace.degraded:
                    # A degraded identification is an environment
                    # artifact, not a property of the design — like
                    # degraded results, its triage is never persisted.
                    cache = "off"
                    key = None
                else:
                    self.store.put(key, "triage", {
                        "digest": digest,
                        "result_digest": rd,
                        "config": _triage_fingerprint(triage_config),
                        "triage": triage.as_dict(),
                    })
                    cache = "miss"
        registry = _metrics.current()
        if registry is not None:
            registry.counter(
                "repro_triage_runs_total", "Completed triage rankings"
            ).inc()
        return TriageReport(
            design=netlist.name,
            source=source,
            digest=digest,
            result_digest=rd,
            cache=cache,
            key=key,
            analysis=analysis,
            triage=triage,
        )

    def analyze_incremental(
        self,
        base_digest: str,
        edited_source: Union[PathLike, Netlist, str],
        format: Optional[str] = None,
    ) -> IncrementalReport:
        """Re-analyze an edited design against a previously analyzed base.

        ``base_digest`` is the digest of any design this store has seen
        (an earlier :class:`AnalysisReport`'s ``digest``, or an
        :class:`IncrementalReport`'s ``digest`` when chaining edits);
        ``edited_source`` is the edited design as a :class:`Netlist`, a
        path, or netlist source text.

        The edited design runs through the full six-stage pipeline with
        the session's cone-cache tiers warm — content addressing *is*
        the invalidation: every cone the edit did not reach keeps its
        canonical digest and replays from the cache, only dirtied cones
        are re-searched.  The result is therefore byte-identical to a
        from-scratch analysis; the base is used solely to report the
        structural diff and its dirty closure.

        Raises :class:`ValueError` when the session has no store and
        :class:`KeyError` when ``base_digest`` is unknown to it.
        """
        if self.store is None:
            raise ValueError(
                "analyze_incremental requires a store "
                "(the base design and the cone cache live there)"
            )
        base = self.store.probe_netlist(base_digest)
        if base is None:
            raise KeyError(f"unknown base digest: {base_digest}")
        edited = self._resolve_netlist(edited_source, format)
        added, removed, changed = _gate_diff(base, edited)
        dirty = _dirty_closure(base, edited, added, removed, changed)
        bits = edited.register_input_nets()
        dirty_bits = sum(1 for net in bits if net in dirty)

        report = self._analyze_netlist(edited)
        digest = report.digest
        self.store.commit_netlist(digest, edited)
        cache = report.result.trace.cache
        incremental = IncrementalReport(
            base_digest=base_digest,
            digest=digest,
            report=report,
            gates_added=added,
            gates_removed=removed,
            gates_changed=changed,
            dirty_nets=len(dirty),
            dirty_bits=dirty_bits,
            total_bits=len(bits),
            cone_hits=(
                cache.cone_tier_process_hits + cache.cone_tier_store_hits
            ),
            cone_misses=cache.cone_tier_misses,
            cone_commits=cache.cone_tier_commits,
        )
        registry = _metrics.current()
        if registry is not None:
            registry.counter(
                "repro_incremental_runs_total",
                "Completed incremental re-analyses",
            ).inc()
            registry.counter(
                "repro_incremental_dirty_bits_total",
                "Candidate bits whose cones an incremental edit dirtied",
            ).inc(dirty_bits)
        return incremental

    def _resolve_netlist(
        self,
        source: Union[PathLike, Netlist, str],
        format: Optional[str],
    ) -> Netlist:
        """A :class:`Netlist` from a netlist, a path, or source text."""
        if isinstance(source, Netlist):
            return source
        if isinstance(source, str) and (
            "\n" in source or not os.path.exists(source)
        ):
            return (
                parse_bench(source)
                if format == "bench"
                else parse_verilog(source)
            )
        return self.load_netlist(source, format)

    def triage_digest(
        self,
        digest: str,
        triage_config: Optional[TriageConfig] = None,
    ) -> Optional[TriageReport]:
        """:meth:`triage` for an already-stored content digest, if any.

        The serve fast path: a client that knows its design's digest
        skips shipping the netlist body.  Unlike :meth:`analyze_digest`
        this needs the parsed *body* (triage reads structure the cached
        result alone does not pin), so it answers ``None`` unless the
        store holds the netlist itself — which every store-backed
        analyze/triage run commits.
        """
        if self.store is None:
            return None
        netlist = self.store.probe_netlist(digest)
        if netlist is None:
            return None
        return self._triage_netlist(netlist, digest, triage_config, None)

    def analyze_digest(self, digest: str) -> Optional[AnalysisReport]:
        """The cached report for an already-known content digest, if any.

        Returns ``None`` on a store miss (there is nothing to compute
        from) or when the session has no store.  This is the serve fast
        path: a client that knows its design's digest skips shipping the
        netlist body entirely.
        """
        if self.store is None:
            return None
        return self._probe(digest, source=None, fallback_name=None)

    def _probe(
        self,
        digest: str,
        source: Optional[str],
        fallback_name: Optional[str],
    ) -> Optional[AnalysisReport]:
        """Build a hit report straight from the store, or ``None``."""
        if self.store is None:
            return None
        cached = self.store.probe_result(digest, self.config)
        if cached is None:
            return None
        key = cached.trace.cache_provenance["key"]
        envelope = self.store.get(key)
        summary = (envelope or {}).get("netlist", {})
        if fallback_name is not None:
            fallback = _design_name(fallback_name)
        else:
            fallback = digest.split(":", 1)[-1][:12]
        return AnalysisReport(
            design=summary.get("name", fallback),
            source=source,
            digest=digest,
            cache="hit",
            key=key,
            num_gates=summary.get("gates", 0),
            num_nets=summary.get("nets", 0),
            num_ffs=summary.get("flip_flops", 0),
            words=tuple(w.bits for w in cached.words),
            singletons=tuple(cached.singletons),
            control_signals=cached.control_signals,
            diagnostics=tuple(cached.trace.preflight),
            trace=cached.trace.as_dict(),
            runtime_seconds=cached.runtime_seconds,
            result=cached,
        )

    def _analyze_fresh(
        self, netlist: Netlist, digest: str, source: Optional[str]
    ) -> AnalysisReport:
        """Run the engine and commit the result under ``digest``.

        The engine gets the store too: it probes/commits the canonical
        ``netlist:`` digest, so a design already analyzed through the
        engine hook (``repro identify --store``, ``repro batch``) is a
        hit here even though the raw bytes were never seen before.  The
        result is then alias-committed under the byte-level ``digest``
        so the *next* request on these bytes skips parsing entirely.
        """
        result = identify_words(netlist, self.config, store=self.store)
        key = None
        cache = "off"
        if self.store is not None:
            # Read the engine's probe/commit outcome before the alias
            # commit below overwrites the provenance with its own.
            cache = result.trace.cache_provenance.get("provenance", "miss")
            # Persist the parsed body under the byte-level digest too, so
            # a text-analyzed design can later serve as the base of an
            # analyze_incremental call.
            self.store.commit_netlist(digest, netlist)
            key = self.store.commit_result(
                digest,
                self.config,
                result,
                netlist_summary={
                    "name": netlist.name,
                    "gates": netlist.num_gates,
                    "nets": netlist.num_nets,
                    "flip_flops": netlist.num_ffs,
                },
            )
        return self._report(netlist, digest, result, source, cache, key)

    def _report(
        self,
        netlist: Netlist,
        digest: str,
        result: IdentificationResult,
        source: Optional[str] = None,
        cache: Optional[str] = None,
        key: Optional[str] = None,
    ) -> AnalysisReport:
        if cache is None:
            provenance = result.trace.cache_provenance
            cache = provenance.get("provenance", "off")
            key = provenance.get("key")
        return AnalysisReport(
            design=netlist.name,
            source=source,
            digest=digest,
            cache=cache,
            key=key,
            num_gates=netlist.num_gates,
            num_nets=netlist.num_nets,
            num_ffs=netlist.num_ffs,
            words=tuple(w.bits for w in result.words),
            singletons=tuple(result.singletons),
            control_signals=result.control_signals,
            diagnostics=tuple(result.trace.preflight),
            trace=result.trace.as_dict(),
            runtime_seconds=result.runtime_seconds,
            result=result,
        )

    # ------------------------------------------------------------------
    # corpus analysis
    # ------------------------------------------------------------------
    def analyze_many(
        self,
        sources: Sequence[Union[PathLike, Netlist]],
        jobs: int = 1,
    ) -> List[AnalysisReport]:
        """Analyze a corpus; ``jobs > 1`` shards paths across processes.

        Reports come back in input order regardless of completion order.
        In-memory netlists always run in this process (they are not
        shipped across the process boundary); path sources fan out to a
        :class:`~concurrent.futures.ProcessPoolExecutor` sharing this
        session's store, so a rerun — or a duplicate file — is a cache
        hit in any worker.
        """
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        sources = list(sources)
        paths = [
            (index, os.fspath(source))
            for index, source in enumerate(sources)
            if not isinstance(source, Netlist)
        ]
        reports: List[Optional[AnalysisReport]] = [None] * len(sources)
        if jobs > 1 and len(paths) > 1:
            store_root = self.store.root if self.store is not None else None
            max_workers = min(jobs, len(paths))
            with ProcessPoolExecutor(max_workers=max_workers) as pool:
                futures = {
                    pool.submit(
                        _analyze_path_task, path, self.config, store_root
                    ): index
                    for index, path in paths
                }
                for future, index in futures.items():
                    reports[index] = future.result()
        else:
            for index, path in paths:
                reports[index] = self.analyze(path)
        for index, source in enumerate(sources):
            if isinstance(source, Netlist):
                reports[index] = self.analyze(source)
        return [report for report in reports if report is not None]

    # ------------------------------------------------------------------
    # supporting queries
    # ------------------------------------------------------------------
    def load_netlist(
        self, path: PathLike, format: Optional[str] = None
    ) -> Netlist:
        """Parse a netlist file, going through the store's parse cache."""
        path = os.fspath(path)
        digest = file_digest(path)
        if self.store is not None:
            cached = self.store.probe_netlist(digest)
            if cached is not None:
                return cached
        if format is None:
            format = "bench" if path.endswith(".bench") else "verilog"
        with open(path, encoding="utf-8") as handle:
            text = handle.read()
        netlist = parse_bench(text) if format == "bench" else parse_verilog(text)
        if self.store is not None:
            self.store.commit_netlist(digest, netlist)
        return netlist


def _gate_diff(
    base: Netlist, edited: Netlist
) -> Tuple[Tuple[str, ...], Tuple[str, ...], Tuple[str, ...]]:
    """Gate names added, removed, and changed between two netlists.

    A gate "changed" when its cell, fanin list, output net, or
    flip-flop-ness differs; renames show up as a remove + add, which is
    conservative (more dirt, never less).
    """
    base_gates = {g.name: g for g in base.gates_in_file_order()}
    edited_gates = {g.name: g for g in edited.gates_in_file_order()}
    added = tuple(n for n in edited_gates if n not in base_gates)
    removed = tuple(n for n in base_gates if n not in edited_gates)
    changed = tuple(
        name
        for name, gate in edited_gates.items()
        if name in base_gates
        and (
            gate.cell.name != base_gates[name].cell.name
            or tuple(gate.inputs) != tuple(base_gates[name].inputs)
            or gate.output != base_gates[name].output
            or gate.is_ff != base_gates[name].is_ff
        )
    )
    return added, removed, changed


def _dirty_closure(
    base: Netlist,
    edited: Netlist,
    added: Sequence[str],
    removed: Sequence[str],
    changed: Sequence[str],
) -> set:
    """Nets of ``edited`` whose fanin cones the edit may have altered.

    Seeds are the outputs of added/changed gates plus the (surviving)
    outputs of removed gates; the closure follows combinational fanout
    only — hash-key cones stop at flip-flops, so a dirty FF input never
    dirties the cones fed by that FF's output.
    """
    edited_gates = {g.name: g for g in edited.gates_in_file_order()}
    base_gates = {g.name: g for g in base.gates_in_file_order()}
    seeds = {edited_gates[name].output for name in added}
    seeds.update(edited_gates[name].output for name in changed)
    seeds.update(
        base_gates[name].output
        for name in removed
        if base_gates[name].output in edited.nets()
    )
    dirty = set(seeds)
    stack = list(seeds)
    while stack:
        net = stack.pop()
        for gate in edited.fanouts(net):
            if gate.is_ff:
                continue
            if gate.output not in dirty:
                dirty.add(gate.output)
                stack.append(gate.output)
    return dirty


def _triage_fingerprint(config: TriageConfig) -> str:
    """Canonical fingerprint of the triage-affecting configuration."""
    import json

    return json.dumps(
        config.as_dict(), sort_keys=True, separators=(",", ":")
    )


def _design_name(path: str) -> str:
    name = os.path.basename(path)
    for suffix in (".v", ".bench"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def _analyze_path_task(
    path: str, config: PipelineConfig, store_root: Optional[str]
) -> AnalysisReport:
    """Worker-process entry: rebuild a session and analyze one path."""
    session = Session(config=config, store=store_root)
    return session.analyze(path)
