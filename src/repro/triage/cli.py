"""``repro triage`` — rank a netlist's gates by Trojan-region anomaly.

Runs word identification (any backend/kernel, store-accelerated), then
scores every gate against the recovered structure (DESIGN.md §16)::

    repro triage design.v                     # human-readable top 20
    repro triage design.v --top 50 --json -   # machine-readable ranking
    repro triage design.v --backend base      # triage a weaker backend

Exit codes follow :mod:`repro.exitcodes`: ``EXIT_DEGRADED`` when the
underlying identification had to quarantine work (the ranking is then
computed against partial structure), ``EXIT_STRICT`` when ``--strict``
turns that into an abort.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from ..core.pipeline import PipelineConfig
from ..core.resilience import BudgetExceeded, PreflightError
from ..exitcodes import EXIT_DEGRADED, EXIT_OK, EXIT_STRICT, EXIT_USAGE
from ..netlist.bench import BenchError
from ..netlist.verilog import VerilogError
from .scorer import TriageConfig

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro triage",
        description=(
            "Rank every gate by how poorly the identified word-level "
            "structure explains it (Trojan-region triage)."
        ),
    )
    parser.add_argument("netlist", help="gate-level netlist file")
    parser.add_argument(
        "--format", choices=("verilog", "bench"), default=None,
        help="input format (default: by file extension)",
    )
    parser.add_argument(
        "--backend", default="ours",
        help="identification backend to triage against (default: ours)",
    )
    parser.add_argument(
        "--kernel", choices=("python", "array"), default=None,
        help="signature kernel implementation",
    )
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="parallel workers for the identification run",
    )
    parser.add_argument(
        "--store", default=None, metavar="DIR",
        help="artifact store: caches the identification AND the ranking",
    )
    parser.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="identification deadline (degrades instead of hanging)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="abort (exit 3) instead of triaging degraded structure",
    )
    parser.add_argument(
        "--threshold", type=float, default=TriageConfig.threshold,
        help="score at/above which a gate counts as flagged "
             "(default: %(default)s)",
    )
    parser.add_argument(
        "--top", type=int, default=None, metavar="N",
        help="emit only the N most anomalous gates (default: all in "
             "--json, 20 in the human listing)",
    )
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the stamped ranking as JSON ('-' for stdout)",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.jobs < 1:
        print("error: --jobs must be >= 1", file=sys.stderr)
        return EXIT_USAGE
    try:
        pipeline = PipelineConfig(
            allow_partial=args.backend != "base",
            backend=args.backend,
            kernel=args.kernel,
            jobs=args.jobs,
            deadline_s=args.deadline,
            strict=args.strict,
            preflight=True,
        )
        triage_config = TriageConfig(threshold=args.threshold)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE

    from ..api import Session

    session = Session(config=pipeline, store=args.store)
    try:
        report = session.triage(
            args.netlist, format=args.format, triage_config=triage_config
        )
    except OSError as exc:
        print(f"error: cannot read {args.netlist}: {exc}", file=sys.stderr)
        return EXIT_USAGE
    except (VerilogError, BenchError) as exc:
        print(f"error: cannot parse {args.netlist}: {exc}", file=sys.stderr)
        return EXIT_USAGE
    except (BudgetExceeded, PreflightError) as exc:
        print(f"error (strict): {exc}", file=sys.stderr)
        return EXIT_STRICT
    except Exception as exc:
        if not args.strict:
            raise
        print(f"error (strict): {type(exc).__name__}: {exc}",
              file=sys.stderr)
        return EXIT_STRICT

    triage = report.triage
    degraded = report.analysis.trace.get("degraded", False)
    print(
        f"{report.design}: {triage.num_gates} gates ranked "
        f"(backend {report.backend}, {triage.num_flagged} flagged at "
        f">= {triage.config.threshold})"
    )
    shown = args.top if args.top is not None else 20
    for index, entry in enumerate(triage.top(shown)):
        feats = ", ".join(f"{k}={v:.2f}" for k, v in entry.features)
        print(f"  {index + 1:>3}. {entry.score:.4f}  {entry.gate}  "
              f"[{feats}]")
    if triage.num_gates > shown:
        print(f"  ... {triage.num_gates - shown} more "
              f"(--top to widen, --json for all)")
    print(f"triage digest: {report.triage_digest}")
    if degraded:
        print(
            "DEGRADED: identification quarantined work — ranking is "
            "against partial structure", file=sys.stderr,
        )

    if args.json is not None:
        payload = json.dumps(report.as_dict(top=args.top), indent=2)
        if args.json == "-":
            print(payload)
        else:
            with open(args.json, "w") as handle:
                handle.write(payload + "\n")
    return EXIT_DEGRADED if degraded else EXIT_OK


if __name__ == "__main__":
    sys.exit(main())
