"""Anomaly scorer over an identification result (DESIGN.md §16).

The scorer never looks at net or gate *names* — every feature is computed
from netlist structure, file positions, and the identification result, so
scores are invariant under hostile renames (the fuzz oracle checks this).
Four per-gate features measure how poorly the recovered word-level
structure explains a gate:

``mix``
    Distinct state groups among the flip-flop outputs in the gate's fanin
    cone.  Generated word logic reads state from its *own* register (plus
    primary inputs); a rare-trigger Trojan samples registers across the
    whole design, so its cone mixes several identified words.

``span``
    File-position dispersion of those flip-flop taps, normalised by the
    design size — the structural/file-proximity isolation signal of the
    nearest-neighbour Trojan-localization literature (arXiv:2501.16347).
    Word registers sit together in the file; Trojan taps scatter.

``outside``
    Word-cone coverage residue: 1.0 for gates feeding no identified word
    bit at all, 0.5 for gates explained only by singleton leftovers, 0.0
    for gates inside a multi-bit word's fanin cone.

``control``
    Dangling state taps: the gate reads flip-flop state but no identified
    control signal appears in its fanin cone — nothing the pipeline
    recovered gates the logic.

The weighted sum is then smoothed over the structural neighbourhood
(k-nearest-neighbour style: a gate inherits a decayed fraction of its
most anomalous fanin/fanout neighbour), so the quiet inner gates of a
trigger tree rank with the loud ones.  Ties break by file position —
never by name — and every float is rounded so the JSON payload is
byte-stable across platforms, backends' pool modes, and kernels.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.words import IdentificationResult
from ..netlist.netlist import Netlist
from ..schema import stamp

__all__ = ["TriageConfig", "GateScore", "TriageResult", "triage_netlist"]

#: Decimal places kept in emitted scores; coarse enough that IEEE-754
#: noise can never reorder or reword a payload.
_ROUND = 6


@dataclass(frozen=True)
class TriageConfig:
    """Scorer knobs.  Defaults are tuned on the seeded fuzz corpus with
    injected Trojans (see ``repro scoreboard --triage``)."""

    weight_mix: float = 0.40
    weight_span: float = 0.30
    weight_outside: float = 0.15
    weight_control: float = 0.15
    #: Neighbourhood smoothing: ``rounds`` max-propagation steps over the
    #: fanin/fanout graph, each decayed by ``decay``.
    neighbor_decay: float = 0.7
    neighbor_rounds: int = 2
    #: Scores at or above this count as "flagged" in the summary.
    threshold: float = 0.5

    def __post_init__(self):
        for name in (
            "weight_mix", "weight_span", "weight_outside", "weight_control",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if not 0.0 <= self.neighbor_decay <= 1.0:
            raise ValueError("neighbor_decay must be in [0, 1]")
        if self.neighbor_rounds < 0:
            raise ValueError("neighbor_rounds must be non-negative")

    def as_dict(self) -> Dict[str, float]:
        return {
            "weight_mix": self.weight_mix,
            "weight_span": self.weight_span,
            "weight_outside": self.weight_outside,
            "weight_control": self.weight_control,
            "neighbor_decay": self.neighbor_decay,
            "neighbor_rounds": self.neighbor_rounds,
            "threshold": self.threshold,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "TriageConfig":
        return cls(**{
            key: data[key] for key in cls().as_dict() if key in data
        })


@dataclass(frozen=True)
class GateScore:
    """One gate's anomaly verdict."""

    gate: str
    position: int
    score: float
    features: Tuple[Tuple[str, float], ...]

    def as_dict(self) -> Dict:
        return {
            "gate": self.gate,
            "position": self.position,
            "score": self.score,
            "features": dict(self.features),
        }


@dataclass
class TriageResult:
    """Deterministic gate ranking (most anomalous first)."""

    scores: List[GateScore] = field(default_factory=list)
    backend: str = "ours"
    config: TriageConfig = field(default_factory=TriageConfig)

    @property
    def num_gates(self) -> int:
        return len(self.scores)

    @property
    def num_flagged(self) -> int:
        return sum(
            1 for s in self.scores if s.score >= self.config.threshold
        )

    def rank_of(self, gate: str) -> Optional[int]:
        """1-based rank of ``gate`` in the anomaly ordering."""
        for index, entry in enumerate(self.scores):
            if entry.gate == gate:
                return index + 1
        return None

    def top(self, n: int) -> List[GateScore]:
        return self.scores[: max(0, n)]

    def as_dict(self, top: Optional[int] = None) -> Dict:
        """Stamped, fully deterministic payload (no wall-clock, no cache
        provenance): two runs on the same inputs are byte-identical, which
        is what lets serve answers be compared against CLI output."""
        emitted = self.scores if top is None else self.top(top)
        return stamp({
            "backend": self.backend,
            "config": self.config.as_dict(),
            "num_gates": self.num_gates,
            "num_flagged": self.num_flagged,
            "triage_digest": self.digest(),
            "gates": [s.as_dict() for s in emitted],
        })

    def digest(self) -> str:
        """Content digest over the full ranking (independent of ``top``)."""
        blob = json.dumps(
            [
                [s.gate, s.position, s.score, list(s.features)]
                for s in self.scores
            ],
            sort_keys=True, separators=(",", ":"),
        )
        return "triage:" + hashlib.sha256(blob.encode("utf-8")).hexdigest()

    @classmethod
    def from_dict(cls, data: Dict) -> "TriageResult":
        """Rebuild a result from :meth:`as_dict` output (full payloads
        only — a ``top``-truncated payload cannot reproduce its digest,
        so reconstruction from one raises :class:`ValueError`)."""
        result = cls(
            scores=[
                GateScore(
                    gate=entry["gate"],
                    position=entry["position"],
                    score=entry["score"],
                    features=tuple(sorted(entry["features"].items())),
                )
                for entry in data["gates"]
            ],
            backend=data["backend"],
            config=TriageConfig.from_dict(data["config"]),
        )
        if result.digest() != data["triage_digest"]:
            raise ValueError("triage payload digest mismatch")
        return result


def _round(value: float) -> float:
    rounded = round(value, _ROUND)
    return 0.0 if rounded == 0 else rounded  # canonicalise -0.0


def triage_netlist(
    netlist: Netlist,
    result: IdentificationResult,
    config: TriageConfig = TriageConfig(),
) -> TriageResult:
    """Rank every gate of ``netlist`` by anomaly against ``result``."""
    order = netlist.topological_order()
    comb = [g for g in order if not g.is_ff]
    positions = netlist.file_positions()

    # --- state groups: each multi-bit word is one group; every other
    # flip-flop (singleton or unidentified) is its own group.  Words are
    # groups of FF *D-input* nets (the paper's convention), so map each FF
    # through its D pin.
    word_of_dnet: Dict[str, int] = {}
    for word_id, word in enumerate(result.words):
        for bit in word.bits:
            word_of_dnet[bit] = word_id
    ffs = [g for g in netlist.gates_in_file_order() if g.is_ff]
    ff_index: Dict[str, int] = {}  # FF output net -> dense index
    ff_group: List[int] = []  # dense index -> group id
    ff_position: List[int] = []  # dense index -> file position
    next_group = len(result.words)
    for ff in ffs:
        idx = len(ff_index)
        ff_index[ff.output] = idx
        group = word_of_dnet.get(ff.inputs[0])
        if group is None:
            group = next_group
            next_group += 1
        ff_group.append(group)
        ff_position.append(positions[ff.name])

    # --- leaf masks: which FF outputs and primary-input nets feed each
    # gate's fanin cone (integer bitmasks over dense indices; one
    # topological pass each).  The primary-input mask exists to measure
    # cone *purity*: a Trojan trigger's cone is almost entirely state
    # taps, while logic merely downstream of a spliced payload dilutes
    # those taps among its own word's operands.
    pi_index: Dict[str, int] = {}
    masks: Dict[str, int] = {}
    pi_masks: Dict[str, int] = {}
    for gate in comb:
        mask = 0
        pi_mask = 0
        for net in gate.inputs:
            idx = ff_index.get(net)
            if idx is not None:
                mask |= 1 << idx
                continue
            driver = netlist.driver(net)
            if driver is None:
                pi_idx = pi_index.setdefault(net, len(pi_index))
                pi_mask |= 1 << pi_idx
            elif not driver.is_ff:
                mask |= masks[driver.name]
                pi_mask |= pi_masks[driver.name]
        masks[gate.name] = mask
        pi_masks[gate.name] = pi_mask

    # File extent of the register block: span normalises against it, not
    # the whole design (synthesis emits flip-flops as one band, so design
    # size would flatten every span to noise).
    ff_band = max(1, max(ff_position) - min(ff_position)) if ffs else 1

    # --- identified-control coverage of the fanin cone.
    control_nets = frozenset(result.control_signals)
    has_ctl: Dict[str, bool] = {}
    for gate in comb:
        covered = gate.output in control_nets
        for net in gate.inputs:
            if covered:
                break
            if net in control_nets:
                covered = True
                continue
            driver = netlist.driver(net)
            if driver is not None and not driver.is_ff:
                covered = has_ctl[driver.name]
        has_ctl[gate.name] = covered

    # --- word-cone membership: does the gate feed a multi-bit word bit
    # (bit 2) or only singleton residue (bit 1)?  One reverse pass.
    _WORD, _SINGLE = 2, 1
    multi_bits = frozenset(
        bit for word in result.words for bit in word.bits
    )
    single_bits = frozenset(result.singletons)
    reaches: Dict[str, int] = {}
    for gate in reversed(comb):
        flag = 0
        if gate.output in multi_bits:
            flag |= _WORD
        elif gate.output in single_bits:
            flag |= _SINGLE
        for consumer in netlist.fanouts(gate.output):
            if not consumer.is_ff:
                flag |= reaches[consumer.name]
        reaches[gate.name] = flag

    # --- raw per-gate features.
    def features_of(gate_name: str, flag: int) -> Dict[str, float]:
        mask = masks[gate_name]
        groups = set()
        taps = 0
        lo = hi = None
        m, idx = mask, 0
        while m:
            if m & 1:
                taps += 1
                groups.add(ff_group[idx])
                pos = ff_position[idx]
                lo = pos if lo is None else min(lo, pos)
                hi = pos if hi is None else max(hi, pos)
            m >>= 1
            idx += 1
        n_groups = len(groups)
        n_leaves = taps + bin(pi_masks[gate_name]).count("1")
        # State purity dilutes both cross-group features: a gate that
        # merely sits downstream of a spliced payload mixes the trigger's
        # taps with its own word's many operand leaves, while the trigger
        # tree itself reads state and almost nothing else.
        purity = taps / n_leaves if n_leaves else 0.0
        mix = min(1.0, max(0, n_groups - 1) / 2.0) * purity
        span = (
            (hi - lo) / ff_band * purity if n_groups > 1 else 0.0
        )
        if flag & _WORD:
            outside = 0.0
        elif flag & _SINGLE:
            outside = 0.5
        else:
            outside = 1.0
        control = 1.0 if (mask and not has_ctl[gate_name]) else 0.0
        return {
            "mix": mix, "span": span,
            "outside": outside, "control": control,
        }

    raw: Dict[str, float] = {}
    feats: Dict[str, Dict[str, float]] = {}
    for gate in comb:
        f = features_of(gate.name, reaches[gate.name])
        feats[gate.name] = f
        raw[gate.name] = (
            config.weight_mix * f["mix"]
            + config.weight_span * f["span"]
            + config.weight_outside * f["outside"]
            + config.weight_control * f["control"]
        )
    # Flip-flops inherit their D-pin driver's verdict: a register captures
    # whatever anomaly feeds it, and has no combinational cone of its own.
    for ff in ffs:
        driver = netlist.driver(ff.inputs[0])
        if driver is not None and not driver.is_ff:
            feats[ff.name] = dict(feats[driver.name])
            raw[ff.name] = raw[driver.name]
        else:
            feats[ff.name] = {
                "mix": 0.0, "span": 0.0, "outside": 0.0, "control": 0.0,
            }
            raw[ff.name] = 0.0

    # --- neighbourhood smoothing over the combinational graph.  An
    # inverter or buffer is functionally part of whatever consumes it, so
    # single-input gates inherit their consumers' verdict undecayed — the
    # quiet unary fringe of a trigger tree ranks with the tree itself.
    smoothed = dict(raw)
    for _ in range(config.neighbor_rounds):
        step = dict(smoothed)
        for gate in comb:
            best = 0.0
            unary_best = 0.0
            for net in gate.inputs:
                driver = netlist.driver(net)
                if driver is not None and not driver.is_ff:
                    best = max(best, smoothed[driver.name])
            for consumer in netlist.fanouts(gate.output):
                if not consumer.is_ff:
                    best = max(best, smoothed[consumer.name])
                    unary_best = max(unary_best, smoothed[consumer.name])
            step[gate.name] = max(
                smoothed[gate.name],
                config.neighbor_decay * best,
                unary_best if len(gate.inputs) == 1 else 0.0,
            )
        smoothed = step

    scores = [
        GateScore(
            gate=gate.name,
            position=positions[gate.name],
            score=_round(smoothed[gate.name]),
            features=tuple(
                (k, _round(v)) for k, v in sorted(feats[gate.name].items())
            ),
        )
        for gate in netlist.gates_in_file_order()
    ]
    scores.sort(key=lambda s: (-s.score, s.position))
    return TriageResult(
        scores=scores, backend=result.trace.backend, config=config
    )
