"""Trojan-region triage: rank gates by anomaly against an identification.

The paper motivates word-level identification as the first step of
locating Trojans "inserted during the synthesis and optimization steps".
This subsystem closes that loop: given a netlist and the pipeline's
:class:`~repro.core.words.IdentificationResult`, it scores every gate by
how poorly the recovered word/control structure explains it (DESIGN.md
§16) and returns a deterministic ranking for an analyst to walk.
"""

from .scorer import (
    GateScore,
    TriageConfig,
    TriageResult,
    triage_netlist,
)

__all__ = [
    "GateScore",
    "TriageConfig",
    "TriageResult",
    "triage_netlist",
]
