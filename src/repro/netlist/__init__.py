"""Gate-level netlist substrate.

This subpackage is everything the word-identification algorithm needs from
the circuit side: a cell library with controlling-value semantics
(:mod:`~repro.netlist.cells`), an order-preserving netlist data model
(:mod:`~repro.netlist.netlist`), readers/writers for structural Verilog and
ISCAS ``.bench`` (:mod:`~repro.netlist.verilog`,
:mod:`~repro.netlist.bench`), depth-limited fanin-cone extraction
(:mod:`~repro.netlist.cone`), three-valued simulation for equivalence
checking (:mod:`~repro.netlist.simulate`), and structural validation
(:mod:`~repro.netlist.validate`).
"""

from .cells import (
    AND,
    BUF,
    CellLibrary,
    CellType,
    DFF,
    INV,
    LIBRARY,
    MUX,
    NAND,
    NOR,
    OR,
    TIE0,
    TIE1,
    XNOR,
    XOR,
)
from .netlist import Gate, Netlist, NetlistError
from .builder import NetlistBuilder
from .cone import ConeNode, cone_gates, cone_nets, extract_cone
from .verilog import VerilogError, parse_verilog, parse_verilog_file, write_verilog
from .bench import BenchError, parse_bench, parse_bench_file, write_bench
from .equiv import EquivalenceResult, check_equivalence
from .graph import (
    cone_overlap,
    fanout_histogram,
    from_networkx,
    logic_levels,
    to_networkx,
)
from .simulate import Simulator, evaluate_combinational, exhaustive_inputs, step
from .validate import NetlistStats, ValidationReport, stats, validate

__all__ = [
    "AND", "BUF", "CellLibrary", "CellType", "DFF", "INV", "LIBRARY", "MUX",
    "NAND", "NOR", "OR", "TIE0", "TIE1", "XNOR", "XOR",
    "Gate", "Netlist", "NetlistError", "NetlistBuilder",
    "ConeNode", "cone_gates", "cone_nets", "extract_cone",
    "VerilogError", "parse_verilog", "parse_verilog_file", "write_verilog",
    "BenchError", "parse_bench", "parse_bench_file", "write_bench",
    "EquivalenceResult", "check_equivalence",
    "cone_overlap", "fanout_histogram", "from_networkx", "logic_levels",
    "to_networkx",
    "Simulator", "evaluate_combinational", "exhaustive_inputs", "step",
    "NetlistStats", "ValidationReport", "stats", "validate",
]
