"""ISCAS ``.bench`` format reader and writer.

The ``.bench`` format is the lingua franca of the classic reverse
engineering literature (Hansen et al.'s ISCAS-85 study [2] in the paper's
references works on these circuits), so the library speaks it alongside
structural Verilog.  Example::

    # a comment
    INPUT(a)
    INPUT(b)
    OUTPUT(y)
    n1 = NAND(a, b)
    y = NOT(n1)
    s = DFF(y)

Line order of gate definitions is preserved, as required by the grouping
stage.  ``DFF`` lines define registers; their left-hand net is the register
output (cone leaf) and the argument is the D-input net (word candidate).
"""

from __future__ import annotations

import re
from typing import List

from .cells import CellLibrary, LIBRARY
from .netlist import Netlist, NetlistError

__all__ = ["parse_bench", "parse_bench_file", "write_bench", "BenchError"]

_IO_RE = re.compile(r"^(INPUT|OUTPUT)\s*\(\s*([^)]+?)\s*\)$", re.IGNORECASE)
_GATE_RE = re.compile(r"^(\S+)\s*=\s*(\w+)\s*\(\s*([^)]*?)\s*\)$")


class BenchError(ValueError):
    """Raised on malformed ``.bench`` input."""


def parse_bench(text: str, library: CellLibrary = LIBRARY) -> Netlist:
    """Parse ``.bench`` source into a :class:`Netlist`."""
    netlist = Netlist("bench")
    counter = 0
    for raw_line in text.splitlines():
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        io_match = _IO_RE.match(line)
        if io_match:
            kind, net = io_match.groups()
            if kind.upper() == "INPUT":
                netlist.add_input(net.strip())
            else:
                netlist.add_output(net.strip())
            continue
        gate_match = _GATE_RE.match(line)
        if gate_match:
            output, cell_name, args = gate_match.groups()
            try:
                cell = library.get(cell_name)
            except KeyError as exc:
                raise BenchError(f"{line!r}: {exc}") from exc
            inputs = [a.strip() for a in args.split(",") if a.strip()]
            counter += 1
            try:
                netlist.add_gate(f"g{counter}_{output}", cell, inputs, output)
            except (NetlistError, ValueError) as exc:
                raise BenchError(f"{line!r}: {exc}") from exc
            continue
        raise BenchError(f"unsupported line: {raw_line!r}")
    return netlist


def parse_bench_file(path, library: CellLibrary = LIBRARY) -> Netlist:
    with open(path) as handle:
        return parse_bench(handle.read(), library)


def write_bench(netlist: Netlist) -> str:
    """Serialize to ``.bench``, keeping gate definition order."""
    lines: List[str] = [f"# {netlist.name}"]
    for net in netlist.primary_inputs:
        lines.append(f"INPUT({net})")
    for net in netlist.primary_outputs:
        lines.append(f"OUTPUT({net})")
    for gate in netlist.gates_in_file_order():
        name = "NOT" if gate.cell.name == "INV" else gate.cell.name
        lines.append(f"{gate.output} = {name}({', '.join(gate.inputs)})")
    return "\n".join(lines) + "\n"
