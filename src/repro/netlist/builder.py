"""Fluent construction helper for gate-level netlists.

The synthesis flow and the tests build a lot of gates; doing that through
:meth:`Netlist.add_gate` alone means inventing a gate name and a net name
for every single gate.  :class:`NetlistBuilder` automates both and returns
the freshly driven net so logic can be composed like expressions::

    b = NetlistBuilder("demo")
    a, c = b.inputs("a", "c")
    out = b.nand(a, c)             # creates gate U1 driving net n1
    b.output(b.inv(out), name="y") # names the final net "y"
"""

from __future__ import annotations

import itertools
from typing import Iterable, List, Optional, Sequence, Tuple

from .cells import (
    AND,
    BUF,
    CellType,
    DFF,
    INV,
    MUX,
    NAND,
    NOR,
    OR,
    TIE0,
    TIE1,
    XNOR,
    XOR,
)
from .netlist import Gate, Netlist

__all__ = ["NetlistBuilder"]


class NetlistBuilder:
    """Builds a :class:`Netlist` with auto-generated gate and net names.

    Gate names follow the ``U<number>`` convention of synthesized netlists
    (the paper's Figure 1 nets are U201, U215, ...); intermediate nets are
    named after the gate that drives them (net ``U7`` is the output of gate
    ``U7``), mirroring how synthesis tools emit flattened netlists.
    """

    def __init__(self, name: str = "top", prefix: str = "U", start: int = 1):
        self.netlist = Netlist(name)
        self._prefix = prefix
        self._counter = itertools.count(start)

    # ------------------------------------------------------------------
    # naming
    # ------------------------------------------------------------------
    def fresh_name(self) -> str:
        """Next unused ``U<number>`` name (used for both gate and its net)."""
        while True:
            name = f"{self._prefix}{next(self._counter)}"
            if name not in self.netlist and not self.netlist.has_net(name):
                return name

    # ------------------------------------------------------------------
    # ports
    # ------------------------------------------------------------------
    def input(self, name: str) -> str:
        self.netlist.add_input(name)
        return name

    def inputs(self, *names: str) -> Tuple[str, ...]:
        return tuple(self.input(n) for n in names)

    def input_word(self, name: str, width: int) -> List[str]:
        """Declare ``width`` primary inputs named ``name_0 .. name_{w-1}``."""
        return [self.input(f"{name}_{i}") for i in range(width)]

    def output(self, net: str, name: Optional[str] = None) -> str:
        """Mark ``net`` as a primary output, optionally buffering to ``name``."""
        if name is not None and name != net:
            net = self.gate(BUF, [net], output=name)
        self.netlist.add_output(net)
        return net

    # ------------------------------------------------------------------
    # generic gate creation
    # ------------------------------------------------------------------
    def gate(
        self,
        cell: CellType,
        inputs: Sequence[str],
        output: Optional[str] = None,
        name: Optional[str] = None,
    ) -> str:
        """Instantiate ``cell`` and return its output net name."""
        if name is None and output is not None:
            name = output if output not in self.netlist else self.fresh_name()
        if name is None:
            name = self.fresh_name()
        if output is None:
            output = name
        self.netlist.add_gate(name, cell, inputs, output)
        return output

    # ------------------------------------------------------------------
    # combinational shorthands
    # ------------------------------------------------------------------
    def buf(self, a: str, output: Optional[str] = None) -> str:
        return self.gate(BUF, [a], output)

    def inv(self, a: str, output: Optional[str] = None) -> str:
        return self.gate(INV, [a], output)

    def and_(self, *ins: str, output: Optional[str] = None) -> str:
        return self.gate(AND, list(ins), output)

    def nand(self, *ins: str, output: Optional[str] = None) -> str:
        return self.gate(NAND, list(ins), output)

    def or_(self, *ins: str, output: Optional[str] = None) -> str:
        return self.gate(OR, list(ins), output)

    def nor(self, *ins: str, output: Optional[str] = None) -> str:
        return self.gate(NOR, list(ins), output)

    def xor(self, *ins: str, output: Optional[str] = None) -> str:
        return self.gate(XOR, list(ins), output)

    def xnor(self, *ins: str, output: Optional[str] = None) -> str:
        return self.gate(XNOR, list(ins), output)

    def mux(self, sel: str, a: str, b: str, output: Optional[str] = None) -> str:
        """2:1 mux: returns ``a`` when ``sel`` is 0, else ``b``."""
        return self.gate(MUX, [sel, a, b], output)

    def const0(self, output: Optional[str] = None) -> str:
        return self.gate(TIE0, [], output)

    def const1(self, output: Optional[str] = None) -> str:
        return self.gate(TIE1, [], output)

    # ------------------------------------------------------------------
    # sequential shorthands
    # ------------------------------------------------------------------
    def dff(self, d: str, output: Optional[str] = None, name: Optional[str] = None) -> str:
        """Register ``d``; returns the Q net.

        The register's Q net name is significant: the golden-reference
        extraction (Section 3 of the paper) matches register names preserved
        by synthesis, so callers should pass e.g. ``output="count_reg_3"``.
        """
        return self.gate(DFF, [d], output, name=name)

    def register_word(self, d_bits: Sequence[str], reg_name: str) -> List[str]:
        """Register a word; Q nets are ``{reg_name}_reg_{i}``."""
        return [
            self.dff(d, output=f"{reg_name}_reg_{i}")
            for i, d in enumerate(d_bits)
        ]

    # ------------------------------------------------------------------
    # word-level helpers used by tests and examples
    # ------------------------------------------------------------------
    def word(self, name: str, width: int) -> List[str]:
        """Alias of :meth:`input_word` for readability at call sites."""
        return self.input_word(name, width)

    def build(self) -> Netlist:
        return self.netlist
