"""NetworkX bridge and graph-level netlist analyses.

Reverse-engineering workflows live and die by graph queries; this module
exports a :class:`~repro.netlist.netlist.Netlist` as a ``networkx``
directed graph (nodes = nets, edges = gate drives, gate metadata on the
driven node) and provides the analyses the rest of the package and its
users lean on:

* :func:`to_networkx` / :func:`from_networkx` — lossless round trip,
* :func:`logic_levels` — per-net combinational depth (levelization),
* :func:`fanout_histogram` — the net fanout distribution (shared control
  signals show up as the heavy tail),
* :func:`cone_overlap` — Jaccard overlap of two nets' fanin cones, the
  graph-level cousin of the paper's structural similarity.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import networkx as nx

from .cells import CellLibrary, LIBRARY
from .cone import DEFAULT_DEPTH, cone_nets, extract_cone
from .netlist import Netlist

__all__ = [
    "to_networkx",
    "from_networkx",
    "logic_levels",
    "fanout_histogram",
    "cone_overlap",
]


def to_networkx(netlist: Netlist) -> "nx.DiGraph":
    """Export the netlist as a net-level directed graph.

    Nodes are net names; an edge ``u -> v`` means the gate driving ``v``
    reads ``u``.  Driven nodes carry ``cell`` (type name), ``gate`` (the
    instance name) and ``pins`` (the ordered input nets — edges alone
    lose input order, which muxes need).  Primary inputs/outputs are
    flagged with ``is_input`` / ``is_output``.
    """
    graph = nx.DiGraph(
        name=netlist.name,
        inputs=list(netlist.primary_inputs),
        outputs=list(netlist.primary_outputs),
    )
    for net in sorted(netlist.nets()):
        graph.add_node(net)
    for net in netlist.primary_inputs:
        graph.nodes[net]["is_input"] = True
    for net in netlist.primary_outputs:
        graph.nodes[net]["is_output"] = True
    for position, gate in enumerate(netlist.gates_in_file_order()):
        node = graph.nodes[gate.output]
        node["cell"] = gate.cell.name
        node["gate"] = gate.name
        node["pins"] = list(gate.inputs)
        node["position"] = position
        for source in gate.inputs:
            graph.add_edge(source, gate.output)
    return graph


def from_networkx(
    graph: "nx.DiGraph", library: CellLibrary = LIBRARY
) -> Netlist:
    """Rebuild a netlist exported by :func:`to_networkx`.

    Gate file order is restored from the ``position`` attribute, so the
    round trip preserves the adjacency structure the grouping stage needs.
    """
    netlist = Netlist(graph.graph.get("name", "graph"))
    input_order = graph.graph.get("inputs")
    if input_order is None:
        input_order = [
            net for net, data in graph.nodes(data=True)
            if data.get("is_input")
        ]
    for net in input_order:
        netlist.add_input(net)
    driven = sorted(
        (
            (data["position"], net, data)
            for net, data in graph.nodes(data=True)
            if "cell" in data
        ),
        key=lambda entry: entry[0],
    )
    for _, net, data in driven:
        netlist.add_gate(
            data["gate"], library.get(data["cell"]), data["pins"], net
        )
    output_order = graph.graph.get("outputs")
    if output_order is None:
        output_order = [
            net for net, data in graph.nodes(data=True)
            if data.get("is_output")
        ]
    for net in output_order:
        netlist.add_output(net)
    return netlist


def logic_levels(netlist: Netlist) -> Dict[str, int]:
    """Combinational depth of every net (sources at level 0).

    Flip-flop outputs and primary inputs are level 0; a gate output is one
    more than its deepest input.  The classic levelization used for
    timing-ish analyses and for sanity-checking cone depths.
    """
    levels: Dict[str, int] = {net: 0 for net in netlist.cone_leaf_nets()}
    for gate in netlist.topological_order():
        if gate.is_ff:
            continue
        levels[gate.output] = 1 + max(
            (levels.get(net, 0) for net in gate.inputs), default=0
        )
    return levels


def fanout_histogram(netlist: Netlist) -> Dict[int, int]:
    """Map fanout count -> number of nets with that fanout.

    Control signals inserted by CAD tools are exactly the heavy tail of
    this histogram — a quick triage view before running identification.
    """
    histogram: Dict[int, int] = {}
    for net in netlist.nets():
        count = len(netlist.fanouts(net))
        histogram[count] = histogram.get(count, 0) + 1
    return histogram


def cone_overlap(
    netlist: Netlist, net_a: str, net_b: str, depth: int = DEFAULT_DEPTH
) -> float:
    """Jaccard overlap of two nets' fanin cones (1.0 = identical cones).

    The graph-level cousin of the paper's structural similarity: bits of
    one word typically have *low* net overlap (parallel logic) but high
    structural similarity, while replicated logic after CSE shows high
    overlap.  Useful when debugging why two bits did or did not match.
    """
    nets_a = cone_nets(extract_cone(netlist, net_a, depth)) - {net_a}
    nets_b = cone_nets(extract_cone(netlist, net_b, depth)) - {net_b}
    if not nets_a and not nets_b:
        return 1.0
    union = nets_a | nets_b
    return len(nets_a & nets_b) / len(union)
