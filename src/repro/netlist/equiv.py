"""Combinational equivalence checking between two netlists.

The synthesis flow rewrites logic aggressively (folding, CSE, mapping) and
the reduction engine rewrites it under assumptions; both promise to
preserve function.  This module checks that promise:

* exhaustively for small source counts (the default cap of 12 sources is
  4096 vectors — instant),
* by seeded random sampling above the cap,

comparing every primary output and flip-flop D input of the two netlists.
Sources (primary inputs + flip-flop outputs) are matched by name, so the
netlists must agree on interface and register naming — which everything
in this package preserves by construction.

Used by the property tests and available to users who modify netlists and
want a safety net (``assert check_equivalence(before, after).equivalent``).
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .netlist import Netlist
from .simulate import evaluate_combinational

__all__ = ["EquivalenceResult", "check_equivalence"]

_EXHAUSTIVE_CAP = 12
_RANDOM_VECTORS = 256


@dataclass(frozen=True)
class EquivalenceResult:
    """Outcome of :func:`check_equivalence`."""

    equivalent: bool
    vectors_checked: int
    exhaustive: bool
    counterexample: Optional[Dict[str, int]] = None
    mismatched_net: Optional[str] = None

    def __bool__(self) -> bool:
        return self.equivalent


def _observables(netlist: Netlist) -> List[Tuple[str, str]]:
    """(label, net) pairs to compare: POs and FF D inputs.

    D inputs are labelled by the flip-flop output (the stable register
    name) because optimization may rename the D net itself.
    """
    points = [(f"po:{net}", net) for net in netlist.primary_outputs]
    for ff in netlist.flip_flops():
        points.append((f"ff:{ff.output}", ff.inputs[0]))
    return points


def check_equivalence(
    golden: Netlist,
    revised: Netlist,
    max_exhaustive_sources: int = _EXHAUSTIVE_CAP,
    random_vectors: int = _RANDOM_VECTORS,
    seed: int = 0,
) -> EquivalenceResult:
    """Compare two netlists' combinational functions source-by-source."""
    sources = sorted(
        set(golden.cone_leaf_nets()) | set(revised.cone_leaf_nets())
    )
    golden_points = dict(_observables(golden))
    revised_points = dict(_observables(revised))
    shared_labels = sorted(set(golden_points) & set(revised_points))
    if not shared_labels:
        raise ValueError("netlists share no observable points")

    exhaustive = len(sources) <= max_exhaustive_sources
    if exhaustive:
        vectors = (
            dict(zip(sources, bits))
            for bits in itertools.product((0, 1), repeat=len(sources))
        )
        total = 2 ** len(sources)
    else:
        rng = random.Random(seed)
        vectors = (
            {net: rng.randint(0, 1) for net in sources}
            for _ in range(random_vectors)
        )
        total = random_vectors

    checked = 0
    for stimulus in vectors:
        checked += 1
        golden_values = evaluate_combinational(golden, stimulus)
        revised_values = evaluate_combinational(revised, stimulus)
        for label in shared_labels:
            got = revised_values.get(revised_points[label])
            want = golden_values.get(golden_points[label])
            if got != want:
                return EquivalenceResult(
                    equivalent=False,
                    vectors_checked=checked,
                    exhaustive=exhaustive,
                    counterexample=dict(stimulus),
                    mismatched_net=label,
                )
    return EquivalenceResult(
        equivalent=True, vectors_checked=checked, exhaustive=exhaustive
    )
