"""Gate-level netlist data model.

A :class:`Netlist` is an ordered collection of :class:`Gate` instances plus
declared primary inputs and outputs.  Order matters: the paper's first-level
grouping (Section 2.2) scans the netlist *file* line by line and groups nets
whose defining lines are adjacent, so this model preserves gate (line)
order and exposes it via :meth:`Netlist.gates_in_file_order`.

Nets are referenced by name.  A net is driven by at most one gate (its
*driver*); nets with no driver are primary inputs or dangling.  Flip-flop
output nets are *register outputs*; the nets feeding flip-flop D pins are
the ones grouped into words (the paper matches structure on fanin cones, so
words are the FF *input* nets).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from .cells import CellType, DFF, LIBRARY

__all__ = ["Gate", "Netlist", "NetlistError"]


class NetlistError(ValueError):
    """Raised on structurally invalid netlist operations."""


class Gate:
    """One gate instance: a cell type, ordered input nets, one output net."""

    __slots__ = ("name", "cell", "inputs", "output")

    def __init__(
        self,
        name: str,
        cell: CellType,
        inputs: Sequence[str],
        output: str,
    ):
        cell._check_arity(len(inputs))
        self.name = name
        self.cell = cell
        self.inputs: Tuple[str, ...] = tuple(inputs)
        self.output = output

    @property
    def is_ff(self) -> bool:
        return self.cell.sequential

    def __repr__(self) -> str:
        ins = ", ".join(self.inputs)
        return f"<Gate {self.name}: {self.output} = {self.cell.name}({ins})>"


class Netlist:
    """A flat gate-level netlist.

    The public mutation API (:meth:`add_gate`, :meth:`remove_gate`,
    :meth:`replace_gate`) keeps the driver and fanout indices consistent;
    callers never touch those directly.
    """

    def __init__(self, name: str = "top"):
        self.name = name
        self._gates: Dict[str, Gate] = {}
        # Gate names in file order.  A dict is used as an ordered set so
        # removal is O(1) and in-place replacement keeps the position
        # (synthesis passes remove/replace thousands of gates; a list here
        # makes them quadratic).
        self._order: Dict[str, None] = {}
        self._driver: Dict[str, Gate] = {}  # net -> driving gate
        self._fanouts: Dict[str, List[Gate]] = {}  # net -> consuming gates
        self.primary_inputs: List[str] = []
        self.primary_outputs: List[str] = []
        # Cached cone boundary; invalidated by every mutation.  Analysis
        # passes ask for it once per cone/signature/subcircuit, which made
        # recomputation (a full gate scan) a dominant cost on large designs.
        self._leaf_cache: Optional[frozenset] = None
        # Cached name -> file position; lets subcircuit extraction order a
        # small kept-gate set without scanning every gate in the netlist.
        self._position_cache: Optional[Dict[str, int]] = None
        # Monotonic structural revision, bumped by every mutation.  External
        # derived-index caches (the array kernel's CSR tables) key on
        # ``(netlist identity, revision)`` so a mutated netlist can never
        # answer from a stale index.
        self.revision: int = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_input(self, net: str) -> None:
        if net in self._driver:
            raise NetlistError(f"net {net!r} already driven; cannot be an input")
        if net not in self.primary_inputs:
            self.primary_inputs.append(net)
            self._leaf_cache = None
            self.revision += 1

    def add_output(self, net: str) -> None:
        if net not in self.primary_outputs:
            self.primary_outputs.append(net)
            self.revision += 1

    def add_gate(
        self,
        name: str,
        cell: CellType,
        inputs: Sequence[str],
        output: str,
    ) -> Gate:
        """Append a gate at the end of the file order."""
        if name in self._gates:
            raise NetlistError(f"duplicate gate name {name!r}")
        if output in self._driver:
            raise NetlistError(
                f"net {output!r} already driven by {self._driver[output].name!r}"
            )
        if output in self.primary_inputs:
            raise NetlistError(f"net {output!r} is a primary input")
        gate = Gate(name, cell, inputs, output)
        self._gates[name] = gate
        self._order[name] = None
        self._driver[output] = gate
        for net in gate.inputs:
            self._fanouts.setdefault(net, []).append(gate)
        if cell.sequential:
            self._leaf_cache = None
        self._position_cache = None
        self.revision += 1
        return gate

    def remove_gate(self, name: str) -> Gate:
        """Remove a gate; its output net becomes undriven."""
        gate = self._gates.pop(name)
        del self._order[name]
        self._position_cache = None
        del self._driver[gate.output]
        for net in gate.inputs:
            self._fanouts[net].remove(gate)
            if not self._fanouts[net]:
                del self._fanouts[net]
        if gate.is_ff:
            self._leaf_cache = None
        self.revision += 1
        return gate

    def replace_gate(
        self,
        name: str,
        cell: CellType,
        inputs: Sequence[str],
        output: Optional[str] = None,
    ) -> Gate:
        """Swap a gate's cell/inputs in place, keeping its file position."""
        old = self._gates[name]
        new_output = output if output is not None else old.output
        # Detach old connectivity.
        del self._driver[old.output]
        for net in old.inputs:
            self._fanouts[net].remove(old)
            if not self._fanouts[net]:
                del self._fanouts[net]
        if new_output in self._driver:
            raise NetlistError(f"net {new_output!r} already driven")
        gate = Gate(name, cell, inputs, new_output)
        self._gates[name] = gate  # name keeps its slot in _order
        self._driver[new_output] = gate
        for net in gate.inputs:
            self._fanouts.setdefault(net, []).append(gate)
        if old.is_ff or gate.is_ff:
            self._leaf_cache = None
        self.revision += 1
        return gate

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._gates)

    def __contains__(self, gate_name: str) -> bool:
        return gate_name in self._gates

    def gate(self, name: str) -> Gate:
        return self._gates[name]

    def has_net(self, net: str) -> bool:
        return (
            net in self._driver
            or net in self._fanouts
            or net in self.primary_inputs
            or net in self.primary_outputs
        )

    def gates_in_file_order(self) -> Iterator[Gate]:
        """Gates in the order their defining lines appear in the file."""
        for name in self._order:
            yield self._gates[name]

    def gates(self) -> Iterator[Gate]:
        return self.gates_in_file_order()

    def driver(self, net: str) -> Optional[Gate]:
        """The gate driving ``net``, or ``None`` for PIs / undriven nets."""
        return self._driver.get(net)

    def drivers(self) -> Iterator[Tuple[str, Gate]]:
        """``(net, driving gate)`` pairs, in gate insertion order.

        Bulk analyses (the hash-key precompute pass) iterate this instead
        of calling :meth:`driver` once per net.
        """
        return iter(self._driver.items())

    def file_positions(self) -> Dict[str, int]:
        """Gate name -> position in file order (cached; treat as read-only).

        Sorting a subset of gate names by this map reproduces file order
        without iterating the whole netlist, which is what subcircuit
        extraction needs when cutting many small cones out of one large
        design.
        """
        if self._position_cache is None:
            self._position_cache = {
                name: pos for pos, name in enumerate(self._order)
            }
        return self._position_cache

    def fanouts(self, net: str) -> Tuple[Gate, ...]:
        """Gates consuming ``net`` (possibly empty)."""
        return tuple(self._fanouts.get(net, ()))

    def nets(self) -> Set[str]:
        """All net names appearing anywhere in the netlist."""
        result: Set[str] = set(self.primary_inputs)
        result.update(self.primary_outputs)
        result.update(self._driver)
        result.update(self._fanouts)
        return result

    def flip_flops(self) -> List[Gate]:
        """All sequential gates, in file order."""
        return [g for g in self.gates_in_file_order() if g.is_ff]

    def register_output_nets(self) -> Set[str]:
        """Output nets of flip-flops (fanin-cone leaves)."""
        return {g.output for g in self.flip_flops()}

    def register_input_nets(self) -> List[str]:
        """Nets feeding flip-flop D pins, in file order (word candidates)."""
        return [g.inputs[0] for g in self.flip_flops()]

    def cone_leaf_nets(self) -> frozenset:
        """Nets at which fanin cones terminate: PIs and FF outputs.

        The result is cached (and invalidated on mutation) because every
        cone extraction, signature index, and subcircuit cut asks for it;
        callers must treat the returned set as read-only.
        """
        if self._leaf_cache is None:
            leaves = set(self.primary_inputs)
            leaves.update(self.register_output_nets())
            self._leaf_cache = frozenset(leaves)
        return self._leaf_cache

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    @property
    def num_gates(self) -> int:
        return len(self._gates)

    @property
    def num_nets(self) -> int:
        return len(self.nets())

    @property
    def num_ffs(self) -> int:
        return sum(1 for g in self._gates.values() if g.is_ff)

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def topological_order(self) -> List[Gate]:
        """Combinational gates in topological order (FFs treated as sources).

        Flip-flop gates appear at the end, after every combinational gate.
        Raises :class:`NetlistError` if the combinational logic is cyclic.
        """
        leaves = self.cone_leaf_nets()
        in_degree: Dict[str, int] = {}
        waiting: Dict[str, List[Gate]] = {}
        ready: List[Gate] = []
        for gate in self.gates_in_file_order():
            if gate.is_ff:
                continue
            pending = 0
            for net in gate.inputs:
                if net in leaves or self._driver.get(net) is None:
                    continue
                if self._driver[net].is_ff:
                    continue
                pending += 1
                waiting.setdefault(net, []).append(gate)
            in_degree[gate.name] = pending
            if pending == 0:
                ready.append(gate)
        order: List[Gate] = []
        cursor = 0
        while cursor < len(ready):
            gate = ready[cursor]
            cursor += 1
            order.append(gate)
            for consumer in waiting.get(gate.output, ()):
                in_degree[consumer.name] -= 1
                if in_degree[consumer.name] == 0:
                    ready.append(consumer)
        if len(order) != len(in_degree):
            raise NetlistError("combinational cycle detected")
        order.extend(self.flip_flops())
        return order

    def copy(self, name: Optional[str] = None) -> "Netlist":
        """Deep-enough copy: fresh gates and indices, shared cell types."""
        dup = Netlist(name or self.name)
        dup.primary_inputs = list(self.primary_inputs)
        dup.primary_outputs = list(self.primary_outputs)
        for gate in self.gates_in_file_order():
            dup.add_gate(gate.name, gate.cell, gate.inputs, gate.output)
        return dup

    def __eq__(self, other: object) -> bool:
        """Structural equality: same name, ports, and gate lines in order.

        Two netlists are equal when a netlist printer would emit the same
        file for both (module name, port lists in order, and the same gate
        instantiations on the same lines).  This is the contract the
        Verilog round-trip guarantees: ``parse(write(n)) == n``.
        """
        if not isinstance(other, Netlist):
            return NotImplemented
        if (
            self.name != other.name
            or self.primary_inputs != other.primary_inputs
            or self.primary_outputs != other.primary_outputs
            or len(self._gates) != len(other._gates)
        ):
            return False
        for mine, theirs in zip(
            self.gates_in_file_order(), other.gates_in_file_order()
        ):
            if (
                mine.name != theirs.name
                or mine.cell != theirs.cell
                or mine.inputs != theirs.inputs
                or mine.output != theirs.output
            ):
                return False
        return True

    # Netlists are mutable; keep identity hashing so existing uses as
    # plain attributes/cached values are unaffected by value equality.
    __hash__ = object.__hash__

    def __repr__(self) -> str:
        return (
            f"<Netlist {self.name}: {self.num_gates} gates, "
            f"{self.num_nets} nets, {self.num_ffs} FFs>"
        )
