"""Cell library for gate-level netlists.

Every gate in a netlist instantiates a :class:`CellType`.  Cell types are
grouped into *families* that share evaluation and simplification semantics:

``and``
    AND-like gates (AND, NAND).  Controlling input value 0.
``or``
    OR-like gates (OR, NOR).  Controlling input value 1.
``xor``
    Parity gates (XOR, XNOR).  No controlling value; assigned inputs
    toggle output parity.
``buf``
    Single-input gates (BUF, INV/NOT).
``mux``
    2:1 multiplexer with input order ``(sel, a, b)``; output is ``a`` when
    ``sel == 0`` and ``b`` when ``sel == 1``.
``dff``
    D flip-flop.  Input order ``(d,)``; the output net holds the registered
    value.  Flip-flop outputs act as fanin-cone leaves for structural
    matching, and flip-flop *inputs* are the nets grouped into words.
``const``
    Constant drivers (TIE0, TIE1) with no inputs.

The word-identification algorithm needs exactly three pieces of gate-level
knowledge, all exposed here: how to *evaluate* a gate (for validating that
circuit reduction preserves function), each gate's *controlling value* (the
value assigned to relevant control signals in Section 2.5 of the paper), and
how a gate *simplifies* once some of its inputs are tied to constants.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import reduce as _reduce
from typing import Dict, Optional, Sequence, Tuple

__all__ = [
    "CellType",
    "CellLibrary",
    "LIBRARY",
    "BUF",
    "INV",
    "AND",
    "NAND",
    "OR",
    "NOR",
    "XOR",
    "XNOR",
    "MUX",
    "DFF",
    "TIE0",
    "TIE1",
]


@dataclass(frozen=True)
class CellType:
    """An immutable description of one gate type.

    Parameters
    ----------
    name:
        Library name used in netlist files (``NAND2`` is spelled ``NAND``
        here; arity is carried by the instance, not the type).
    family:
        One of ``and``, ``or``, ``xor``, ``buf``, ``mux``, ``dff``,
        ``const``.
    inverted:
        Whether the output is inverted relative to the family's base
        function (``NAND`` is an inverted ``and``; ``INV`` an inverted
        ``buf``; ``XNOR`` an inverted ``xor``; ``TIE1`` an "inverted"
        constant).
    min_inputs / max_inputs:
        Legal fanin-count range.  ``max_inputs=None`` means unbounded.
    """

    name: str
    family: str
    inverted: bool
    min_inputs: int
    max_inputs: Optional[int]

    # ------------------------------------------------------------------
    # classification helpers
    # ------------------------------------------------------------------
    @property
    def sequential(self) -> bool:
        """True for state-holding cells (flip-flops)."""
        return self.family == "dff"

    @property
    def combinational(self) -> bool:
        return self.family not in ("dff", "const")

    @property
    def is_constant(self) -> bool:
        return self.family == "const"

    @property
    def controlling_value(self) -> Optional[int]:
        """The input value that alone determines this gate's output.

        ``0`` for AND-family, ``1`` for OR-family, ``None`` for families
        without a controlling value (XOR, BUF, MUX, DFF, constants).  This
        is the value the paper assigns to a relevant control signal: "The
        assigned value to a control signal will be the controlling value to
        one of the logic gates that the control signal is feeding into."
        """
        if self.family == "and":
            return 0
        if self.family == "or":
            return 1
        return None

    @property
    def controlled_output(self) -> Optional[int]:
        """Output value produced when any input takes the controlling value."""
        cv = self.controlling_value
        if cv is None:
            return None
        base = 0 if self.family == "and" else 1
        return base ^ int(self.inverted)

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def evaluate(self, inputs: Sequence[Optional[int]]) -> Optional[int]:
        """Evaluate the gate on (possibly partially unknown) input values.

        Inputs are ``0``, ``1`` or ``None`` (unknown / X).  Returns the
        output value, or ``None`` when it cannot be determined.  Three-valued
        evaluation is exact for the monotone cases a reverse engineer cares
        about: an AND with any 0 input is 0 even if other inputs are X.

        Flip-flops evaluate combinationally here as ``q = d`` — cycle
        semantics live in :mod:`repro.netlist.simulate`.
        """
        self._check_arity(len(inputs))
        if self.family == "const":
            return int(self.inverted)
        if self.family in ("buf", "dff"):
            value = inputs[0]
        elif self.family == "and":
            value = _and_reduce(inputs)
        elif self.family == "or":
            value = _or_reduce(inputs)
        elif self.family == "xor":
            value = _xor_reduce(inputs)
        elif self.family == "mux":
            value = _mux_eval(inputs)
        else:  # pragma: no cover - registry guards family names
            raise ValueError(f"unknown family {self.family!r}")
        if value is None:
            return None
        return value ^ int(self.inverted) if self.family != "mux" else value

    def _check_arity(self, n: int) -> None:
        if n < self.min_inputs:
            raise ValueError(
                f"{self.name} needs at least {self.min_inputs} inputs, got {n}"
            )
        if self.max_inputs is not None and n > self.max_inputs:
            raise ValueError(
                f"{self.name} takes at most {self.max_inputs} inputs, got {n}"
            )

    # ------------------------------------------------------------------
    # backward implication
    # ------------------------------------------------------------------
    def backward_implied_input(self, output: int) -> Optional[int]:
        """Value forced on *every* input when the output is known, if unique.

        This is the deterministic fragment of the paper's "propagating the
        values forward and backwards": an AND that outputs 1 forces all its
        inputs to 1; a NOR that outputs 1 forces all inputs to 0.  Returns
        ``None`` when the output value does not uniquely imply the inputs.
        """
        if self.family == "buf":
            return output ^ int(self.inverted)
        if self.family == "and" and output == 1 ^ int(self.inverted):
            return 1
        if self.family == "or" and output == 0 ^ int(self.inverted):
            return 0
        return None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


# ----------------------------------------------------------------------
# three-valued reductions
# ----------------------------------------------------------------------

def _and_reduce(values: Sequence[Optional[int]]) -> Optional[int]:
    if any(v == 0 for v in values):
        return 0
    if all(v == 1 for v in values):
        return 1
    return None


def _or_reduce(values: Sequence[Optional[int]]) -> Optional[int]:
    if any(v == 1 for v in values):
        return 1
    if all(v == 0 for v in values):
        return 0
    return None


def _xor_reduce(values: Sequence[Optional[int]]) -> Optional[int]:
    if any(v is None for v in values):
        return None
    return _reduce(lambda a, b: a ^ b, values, 0)


def _mux_eval(values: Sequence[Optional[int]]) -> Optional[int]:
    sel, a, b = values
    if sel == 0:
        return a
    if sel == 1:
        return b
    # Unknown select: output known only if both data inputs agree.
    if a is not None and a == b:
        return a
    return None


# ----------------------------------------------------------------------
# the standard library
# ----------------------------------------------------------------------

BUF = CellType("BUF", "buf", inverted=False, min_inputs=1, max_inputs=1)
INV = CellType("INV", "buf", inverted=True, min_inputs=1, max_inputs=1)
AND = CellType("AND", "and", inverted=False, min_inputs=2, max_inputs=None)
NAND = CellType("NAND", "and", inverted=True, min_inputs=2, max_inputs=None)
OR = CellType("OR", "or", inverted=False, min_inputs=2, max_inputs=None)
NOR = CellType("NOR", "or", inverted=True, min_inputs=2, max_inputs=None)
XOR = CellType("XOR", "xor", inverted=False, min_inputs=2, max_inputs=None)
XNOR = CellType("XNOR", "xor", inverted=True, min_inputs=2, max_inputs=None)
MUX = CellType("MUX", "mux", inverted=False, min_inputs=3, max_inputs=3)
DFF = CellType("DFF", "dff", inverted=False, min_inputs=1, max_inputs=1)
TIE0 = CellType("TIE0", "const", inverted=False, min_inputs=0, max_inputs=0)
TIE1 = CellType("TIE1", "const", inverted=True, min_inputs=0, max_inputs=0)


class CellLibrary:
    """Name → :class:`CellType` lookup with common alias spellings.

    Netlist files in the wild spell gates many ways (``not``, ``inv``,
    ``NAND2``, ``nand3`` …).  The library canonicalizes those to the types
    above so parsers stay simple.
    """

    _ALIASES = {
        "NOT": "INV",
        "MUX2": "MUX",
        "DFFR": "DFF",
        "FD1": "DFF",
        "VCC": "TIE1",
        "GND": "TIE0",
        "ONE": "TIE1",
        "ZERO": "TIE0",
    }

    def __init__(self, cells: Sequence[CellType]):
        self._cells: Dict[str, CellType] = {c.name: c for c in cells}

    def __contains__(self, name: str) -> bool:
        try:
            self.get(name)
        except KeyError:
            return False
        return True

    def get(self, name: str) -> CellType:
        """Look up a cell type by (possibly aliased, sized, lowercase) name."""
        key = name.upper()
        # Strip a trailing size suffix: NAND2 -> NAND, NOR3 -> NOR, XOR2 -> XOR.
        stripped = key.rstrip("0123456789")
        if key in self._ALIASES:
            key = self._ALIASES[key]
        elif key not in self._cells and stripped in self._cells:
            key = stripped
        elif key not in self._cells and stripped in self._ALIASES:
            key = self._ALIASES[stripped]
        if key not in self._cells:
            raise KeyError(f"unknown cell type {name!r}")
        return self._cells[key]

    def types(self) -> Tuple[CellType, ...]:
        return tuple(self._cells.values())


#: The default library used throughout the package.
LIBRARY = CellLibrary(
    [BUF, INV, AND, NAND, OR, NOR, XOR, XNOR, MUX, DFF, TIE0, TIE1]
)
