"""Fanin-cone extraction.

The matching technique of the paper operates on *depth-limited fanin cones*:
for each candidate word bit (a flip-flop D-input net) the circuitry feeding
it is explored down to a few levels of logic gates ("it is unlikely that the
logic levels beyond this will have any similarity in structure"; the paper
and [6] use 2-4 levels, Figure 1 shows 4).

A cone is expanded as a *tree*: a net driven by a gate that fans out to
several places inside the cone appears once per use.  That is exactly what
the post-order hash key of Section 2.3 needs — structural similarity of the
logic as seen from the root, not graph identity.

Cone expansion terminates at:

* primary inputs,
* flip-flop outputs (register boundaries),
* undriven nets,
* nets deeper than the level budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Set, Tuple

from .netlist import Gate, Netlist

__all__ = [
    "ConeNode",
    "extract_cone",
    "cone_nets",
    "cone_gates",
    "extract_subcircuit",
]

#: Default number of logic levels explored, matching the paper's Figure 1.
DEFAULT_DEPTH = 4


@dataclass(frozen=True)
class ConeNode:
    """One node of an expanded fanin-cone tree.

    ``net`` is the net at this node; ``gate`` is its driver when the node
    was expanded (``None`` for leaves).  ``children`` follow the driver's
    input order.
    """

    net: str
    gate: Optional[Gate]
    children: Tuple["ConeNode", ...]

    @property
    def is_leaf(self) -> bool:
        return self.gate is None

    @property
    def gate_type(self) -> Optional[str]:
        return None if self.gate is None else self.gate.cell.name

    def walk(self) -> Iterator["ConeNode"]:
        """Pre-order traversal of the tree."""
        stack: List[ConeNode] = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def size(self) -> int:
        """Number of nodes in the expanded tree."""
        return sum(1 for _ in self.walk())

    def depth(self) -> int:
        """Number of gate levels along the deepest path (leaves cost 0)."""
        if self.is_leaf:
            return 0
        return 1 + max((c.depth() for c in self.children), default=0)


def extract_cone(
    netlist: Netlist,
    root_net: str,
    depth: int = DEFAULT_DEPTH,
    stop_nets: Optional[Set[str]] = None,
    node_cache: Optional[dict] = None,
) -> ConeNode:
    """Expand the fanin cone of ``root_net`` down to ``depth`` gate levels.

    ``stop_nets`` overrides the default cone boundary (PIs and FF outputs);
    nets in that set become leaves regardless of their drivers.

    ``node_cache`` (a ``(net, levels) -> ConeNode`` dict) turns repeated
    extractions into a shared DAG: a subtree expanded once is reused by
    every later cone that contains it, so overlapping cones cost O(new
    nodes) instead of O(tree size).  Callers passing a cache must keep the
    boundary stable across calls — the cache key does not include it.
    :class:`~repro.core.context.AnalysisContext` owns such a cache per
    netlist.
    """
    if depth < 0:
        raise ValueError("depth must be non-negative")
    boundary = netlist.cone_leaf_nets() if stop_nets is None else stop_nets

    if not netlist.has_net(root_net):
        raise KeyError(f"unknown net {root_net!r}")

    def expand(net: str, levels_left: int) -> ConeNode:
        if node_cache is not None:
            cached = node_cache.get((net, levels_left))
            if cached is not None:
                return cached
        driver = netlist.driver(net)
        if (
            levels_left == 0
            or driver is None
            or driver.is_ff
            or net in boundary
        ):
            node = ConeNode(net, None, ())
        else:
            children = tuple(
                expand(child, levels_left - 1) for child in driver.inputs
            )
            node = ConeNode(net, driver, children)
        if node_cache is not None:
            node_cache[(net, levels_left)] = node
        return node

    return expand(root_net, depth)


def cone_nets(cone: ConeNode, include_leaves: bool = True) -> Set[str]:
    """All net names appearing in an expanded cone tree."""
    return {
        node.net
        for node in cone.walk()
        if include_leaves or not node.is_leaf
    }


def extract_subcircuit(
    netlist: Netlist,
    root_nets: List[str],
    depth: int = DEFAULT_DEPTH,
    boundary: Optional[Set[str]] = None,
) -> Netlist:
    """Materialize the union of several fanin cones as a standalone netlist.

    The new netlist contains every gate reachable within ``depth`` levels of
    any root (shared gates appear once — this is a graph cut, not a tree
    expansion).  Cut nets at the boundary become primary inputs; the roots
    become primary outputs.  Gate file order follows the parent netlist so
    grouping behaviour is preserved.

    Circuit reduction (Section 2.5) runs on these subcircuits: the paper
    simplifies "the circuit" after a control-signal assignment and re-checks
    hash keys, and everything those hash keys can see lives within the
    depth-limited cones.

    Pass a precomputed ``boundary`` (the netlist's cone-leaf nets) when
    cutting many subcircuits out of one large netlist — recomputing it per
    call is the dominant cost otherwise.
    """
    if boundary is None:
        boundary = netlist.cone_leaf_nets()
    keep: dict = {}  # gate name -> Gate, insertion keeps discovery dedup
    frontier = [(net, depth) for net in root_nets]
    best_budget: dict = {}
    while frontier:
        net, levels_left = frontier.pop()
        if levels_left == 0:
            continue
        driver = netlist.driver(net)
        if driver is None or driver.is_ff or (net in boundary and net not in root_nets):
            continue
        if best_budget.get(net, -1) >= levels_left:
            continue  # already expanded at least this deep from here
        best_budget[net] = levels_left
        keep[driver.name] = driver
        for child in driver.inputs:
            frontier.append((child, levels_left - 1))
    sub = Netlist(f"{netlist.name}_sub")
    kept_outputs = {g.output for g in keep.values()}
    input_nets: List[str] = []
    for gate in keep.values():
        for net in gate.inputs:
            if net not in kept_outputs and net not in input_nets:
                input_nets.append(net)
    for net in sorted(input_nets):
        sub.add_input(net)
    positions = netlist.file_positions()
    for name in sorted(keep, key=positions.__getitem__):
        gate = keep[name]
        sub.add_gate(gate.name, gate.cell, gate.inputs, gate.output)
    for net in root_nets:
        if sub.has_net(net):
            sub.add_output(net)
    return sub


def cone_gates(cone: ConeNode) -> List[Gate]:
    """Distinct gates appearing in the cone, in pre-order of first visit."""
    seen: Set[str] = set()
    gates: List[Gate] = []
    for node in cone.walk():
        if node.gate is not None and node.gate.name not in seen:
            seen.add(node.gate.name)
            gates.append(node.gate)
    return gates
