r"""Structural Verilog reader and writer for flat gate-level netlists.

This supports the subset that synthesized, flattened netlists (such as the
ITC99 gate-level releases) actually use:

* one ``module`` with a port list,
* ``input`` / ``output`` / ``wire`` declarations, scalar or vectored
  (``input [7:0] a;`` — vector bits are canonicalized to ``a_<i>``),
* gate instantiations with named connections
  (``NAND2 U7 (.A(n1), .B(n2), .Z(n3));``) or positional connections with
  the output first (``nand U7 (n3, n1, n2);``),
* ``assign y = x;``, ``assign y = 1'b0;`` and ``assign y = 1'b1;``
  (lowered to BUF / TIE gates),
* ``//`` line comments and ``/* */`` block comments,
* escaped identifiers (``\count[3] ``, ``\3$bad.name ``): a leading
  backslash up to the next whitespace names the net/instance/module
  literally (no bit-select canonicalization inside).  The writer escapes
  any name that is not a plain Verilog identifier, so a parse → write →
  parse round-trip is the identity even on hostile namespaces (e.g. the
  ones :func:`repro.synth.anonymize.anonymize` produces in ``hostile``
  naming mode).

Pin conventions: the output pin is named ``Z``, ``Y``, ``O``, ``OUT`` or
``Q``; a flip-flop's data pin is ``D``; a mux's select pin is ``S`` and its
data pins ``A`` (sel=0) and ``B`` (sel=1); other input pins are taken in
alphabetical order (``A``, ``B``, ``C``...), which matches how the writer
emits them.  Clock/reset pins (``CK``, ``CLK``, ``CP``, ``R``, ``RN``,
``RST``) on flip-flops are accepted and dropped — the structural analysis
treats registers as cone boundaries, so clock wiring is irrelevant to it.

Line order of gate instantiations is preserved: the first-level grouping of
the paper (Section 2.2) depends on it.

Error handling: the parser runs in recovery mode — a bad statement is
recorded as a :class:`VerilogDiagnostic` (source line, column, offending
token) and parsing continues with the next statement, so one corrupted
netlist surfaces *all* of its problems (up to ``max_errors``) in a single
:class:`VerilogError` instead of one at a time.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .cells import BUF, CellLibrary, LIBRARY, TIE0, TIE1
from .netlist import Netlist, NetlistError

__all__ = [
    "parse_verilog",
    "parse_verilog_file",
    "write_verilog",
    "escape_identifier",
    "VerilogError",
    "VerilogDiagnostic",
]

_OUTPUT_PINS = ("Z", "Y", "O", "OUT", "Q")

_COMMENT_RE = re.compile(r"//[^\n]*|/\*.*?\*/", re.DOTALL)
_DECL_RE = re.compile(
    r"^(input|output|wire)\s+(?:\[(\d+)\s*:\s*(\d+)\]\s+)?(.+)$", re.DOTALL
)
_INSTANCE_RE = re.compile(r"^(\w+)\s+(\S+)\s*\((.*)\)$", re.DOTALL)
_NAMED_PIN_RE = re.compile(r"\.\s*(\w+)\s*\(\s*([^)]*?)\s*\)")
_ASSIGN_RE = re.compile(r"^assign\s+(\S+)\s*=\s*(\S+)$")
_BIT_SELECT_RE = re.compile(r"^(\w+)\s*\[\s*(\d+)\s*\]$")
_MODULE_RE = re.compile(r"^module\s+(\\\S+|\w+)")
_PLAIN_ID_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")
#: Names the writer must escape even though they lex as identifiers.
_VERILOG_KEYWORDS = frozenset(
    ("module", "endmodule", "input", "output", "wire", "assign")
)


def escape_identifier(name: str) -> str:
    """``name`` as it must appear in Verilog source.

    Plain identifiers pass through; anything else (bracketed bits, leading
    digits, ``$``/``.``/``:`` characters, keywords) becomes an escaped
    identifier — a backslash followed by the name and a terminating space,
    per the Verilog LRM.  Names containing whitespace or the structural
    delimiters ``( ) ; , /`` cannot be represented and are rejected.
    """
    if _PLAIN_ID_RE.match(name) and name not in _VERILOG_KEYWORDS:
        return name
    if (
        not name
        or any(c in name for c in "();,/\\")
        or any(c.isspace() for c in name)
    ):
        raise VerilogError(f"name {name!r} cannot be written to Verilog")
    return f"\\{name} "


@dataclass(frozen=True)
class VerilogDiagnostic:
    """One parse problem: where it is and what was found there.

    ``line`` / ``column`` are 1-based source coordinates; ``token`` is the
    offending token when the parser could isolate one (e.g. the unknown
    cell type), empty otherwise.
    """

    line: int
    column: int
    message: str
    token: str = ""

    def describe(self) -> str:
        suffix = f" (token {self.token!r})" if self.token else ""
        return f"line {self.line}:{self.column}: {self.message}{suffix}"

    def as_dict(self) -> Dict:
        return {
            "line": self.line,
            "column": self.column,
            "message": self.message,
            "token": self.token,
        }


class VerilogError(ValueError):
    """Raised when the input is outside the supported structural subset.

    ``diagnostics`` lists every problem collected before giving up (at
    most the ``max_errors`` passed to :func:`parse_verilog`); ``token``
    is set on single-statement errors that could isolate the offending
    token.
    """

    def __init__(self, message: str, diagnostics=None, token: str = ""):
        self.diagnostics: List[VerilogDiagnostic] = list(diagnostics or [])
        self.token = token
        super().__init__(message)


def _canon_net(token: str) -> str:
    """Canonicalize a net reference: ``a[3]`` becomes ``a_3``.

    An escaped identifier (leading backslash) names the net literally —
    its brackets are part of the name, never a bit select.
    """
    token = token.strip()
    if token.startswith("\\"):
        return token[1:]
    match = _BIT_SELECT_RE.match(token)
    if match:
        return f"{match.group(1)}_{match.group(2)}"
    return token


def _strip_comments(text: str) -> str:
    """Blank out comments, preserving every newline for line numbering."""
    return _COMMENT_RE.sub(
        lambda m: "\n" * m.group(0).count("\n") + " ", text
    )


def _split_statements(text: str) -> List[Tuple[str, int, int]]:
    """Strip comments and split on ``;`` into (statement, line, column).

    Statement text is kept intact (internal newlines included) so error
    reports can locate tokens inside it; line and column (1-based) are
    where the statement's first non-blank character sits in the source.
    """
    text = _strip_comments(text)
    statements: List[Tuple[str, int, int]] = []
    line = 1
    for chunk in text.split(";"):
        stripped = chunk.strip()
        if stripped:
            leading = chunk[: len(chunk) - len(chunk.lstrip())]
            last_nl = leading.rfind("\n")
            column = len(leading) - last_nl if last_nl >= 0 else len(leading) + 1
            statements.append((stripped, line + leading.count("\n"), column))
        line += chunk.count("\n")
    return statements


def _locate(
    stmt: str, start_line: int, start_col: int, token: str
) -> Tuple[int, int]:
    """(line, column) of ``token`` inside a statement starting at
    ``start_line``/``start_col`` — the statement start when the token
    can't be found."""
    idx = stmt.find(token) if token else -1
    if idx < 0:
        return start_line, start_col
    prefix = stmt[:idx]
    newlines = prefix.count("\n")
    last_nl = prefix.rfind("\n")
    if last_nl >= 0:
        return start_line + newlines, idx - last_nl
    return start_line, start_col + idx


def parse_verilog(
    text: str, library: CellLibrary = LIBRARY, max_errors: int = 10
) -> Netlist:
    """Parse structural Verilog source into a :class:`Netlist`.

    Parsing recovers from bad statements: each is recorded as a
    :class:`VerilogDiagnostic` and the parser moves to the next
    statement, raising one :class:`VerilogError` carrying every
    diagnostic at the end (or as soon as ``max_errors`` are collected).
    """
    if max_errors < 1:
        raise ValueError("max_errors must be >= 1")
    statements = _split_statements(text)
    netlist: Optional[Netlist] = None
    tie_counter = 0
    diagnostics: List[VerilogDiagnostic] = []

    def record(
        stmt: str, start_line: int, start_col: int, message: str, token: str
    ) -> None:
        line, column = _locate(stmt, start_line, start_col, token)
        diagnostics.append(
            VerilogDiagnostic(
                line=line, column=column, message=message, token=token
            )
        )
        if len(diagnostics) >= max_errors:
            _raise_collected(diagnostics, truncated=True)

    for raw_stmt, start_line, start_col in statements:
        stmt = " ".join(raw_stmt.split())
        try:
            if stmt.startswith("module"):
                header = _MODULE_RE.match(stmt)
                if not header:
                    raise VerilogError(f"malformed module header: {stmt!r}")
                name = header.group(1)
                if name.startswith("\\"):
                    name = name[1:]
                netlist = Netlist(name)
                continue
            if stmt == "endmodule":
                continue
            if netlist is None:
                raise VerilogError("statement before module header")
            decl = _DECL_RE.match(stmt)
            if decl:
                _apply_declaration(netlist, decl)
                continue
            assign = _ASSIGN_RE.match(stmt)
            if assign:
                tie_counter = _apply_assign(netlist, assign, tie_counter)
                continue
            inst = _INSTANCE_RE.match(stmt)
            if inst:
                _apply_instance(netlist, inst, library)
                continue
            raise VerilogError(f"unsupported statement: {stmt!r}")
        except VerilogError as exc:
            record(raw_stmt, start_line, start_col, str(exc), exc.token)
    if diagnostics:
        _raise_collected(diagnostics, truncated=False)
    if netlist is None:
        raise VerilogError("no module found")
    return netlist


def _raise_collected(
    diagnostics: List[VerilogDiagnostic], truncated: bool
) -> None:
    count = f"{len(diagnostics)}{'+' if truncated else ''}"
    listing = "\n  ".join(d.describe() for d in diagnostics)
    raise VerilogError(
        f"{count} parse error(s):\n  {listing}", diagnostics=diagnostics
    )


def parse_verilog_file(path, library: CellLibrary = LIBRARY) -> Netlist:
    with open(path) as handle:
        return parse_verilog(handle.read(), library)


def _apply_declaration(netlist: Netlist, decl: "re.Match[str]") -> None:
    kind, msb, lsb, names = decl.groups()
    for raw in names.split(","):
        base = raw.strip()
        if not base:
            continue
        if base.startswith("\\"):
            # Escaped identifier: the name is literal, never a vector.
            net = base[1:].strip()
            if kind == "input":
                netlist.add_input(net)
            elif kind == "output":
                netlist.add_output(net)
            continue
        if msb is not None:
            hi, lo = int(msb), int(lsb)
            step = 1 if hi >= lo else -1
            nets = [f"{base}_{i}" for i in range(lo, hi + step, step)]
        else:
            nets = [base]
        for net in nets:
            if kind == "input":
                netlist.add_input(net)
            elif kind == "output":
                netlist.add_output(net)
            # wires need no declaration in the model


def _apply_assign(netlist: Netlist, match: "re.Match[str]", tie_counter: int) -> int:
    target = _canon_net(match.group(1))
    source = match.group(2)
    if source in ("1'b0", "1'B0"):
        netlist.add_gate(f"_tie{tie_counter}", TIE0, [], target)
        return tie_counter + 1
    if source in ("1'b1", "1'B1"):
        netlist.add_gate(f"_tie{tie_counter}", TIE1, [], target)
        return tie_counter + 1
    netlist.add_gate(f"_buf_{target}", BUF, [_canon_net(source)], target)
    return tie_counter


def _apply_instance(
    netlist: Netlist, match: "re.Match[str]", library: CellLibrary
) -> None:
    cell_name, inst_name, body = match.groups()
    if inst_name.startswith("\\"):
        inst_name = inst_name[1:]
    try:
        cell = library.get(cell_name)
    except KeyError as exc:
        raise VerilogError(
            f"unknown cell type {cell_name!r} on instance {inst_name!r}",
            token=cell_name,
        ) from exc
    named = _NAMED_PIN_RE.findall(body)
    if named:
        pins: Dict[str, str] = {
            pin.upper(): _canon_net(net) for pin, net in named if net.strip()
        }
        output = None
        for candidate in _OUTPUT_PINS:
            if candidate in pins:
                output = pins.pop(candidate)
                break
        if output is None:
            raise VerilogError(f"no output pin on instance {inst_name!r}")
        if cell.sequential:
            if "D" not in pins:
                raise VerilogError(f"flip-flop {inst_name!r} has no D pin")
            inputs = [pins["D"]]  # clock/reset pins are dropped (see module doc)
        elif cell.family == "mux":
            try:
                inputs = [pins["S"], pins["A"], pins["B"]]
            except KeyError as exc:
                raise VerilogError(
                    f"mux {inst_name!r} needs pins S, A, B"
                ) from exc
        else:
            inputs = [pins[pin] for pin in sorted(pins)]
    else:
        nets = [_canon_net(t) for t in body.split(",") if t.strip()]
        if not nets:
            raise VerilogError(f"empty connection list on {inst_name!r}")
        output, inputs = nets[0], nets[1:]
    try:
        netlist.add_gate(inst_name, cell, inputs, output)
    except (NetlistError, ValueError) as exc:
        raise VerilogError(f"instance {inst_name!r}: {exc}") from exc


# ----------------------------------------------------------------------
# writer
# ----------------------------------------------------------------------

def _pin_names(gate) -> Tuple[str, List[str]]:
    """Return (output pin, input pins) for a gate per the writer convention."""
    if gate.cell.sequential:
        return "Q", ["D"]
    if gate.cell.family == "mux":
        return "Z", ["S", "A", "B"]
    letters = []
    for i in range(len(gate.inputs)):
        # A, B, C, ... skipping the output letters entirely (we never need
        # more than 26 - small fanins in mapped netlists).
        letters.append(chr(ord("A") + i))
    return "Z", letters


def _sized_cell_name(gate) -> str:
    """NAND with 3 inputs is written ``NAND3``, matching mapped netlists."""
    if gate.cell.family in ("and", "or", "xor") and len(gate.inputs) >= 2:
        return f"{gate.cell.name}{len(gate.inputs)}"
    return gate.cell.name


def write_verilog(netlist: Netlist) -> str:
    """Serialize a netlist to structural Verilog (named connections).

    Gate instantiations are written in file order so a parse/write
    round-trip preserves the adjacency structure the grouping stage uses.
    Names outside the plain-identifier grammar are written as escaped
    identifiers, so ``parse_verilog(write_verilog(n)) == n`` holds for any
    netlist this package can represent.
    """
    esc = escape_identifier
    ports = list(netlist.primary_inputs) + [
        p for p in netlist.primary_outputs if p not in netlist.primary_inputs
    ]
    lines = [
        f"module {esc(netlist.name)} ({', '.join(esc(p) for p in ports)});"
    ]
    for net in netlist.primary_inputs:
        lines.append(f"  input {esc(net)};")
    for net in netlist.primary_outputs:
        lines.append(f"  output {esc(net)};")
    internal = sorted(
        net
        for net in netlist.nets()
        if net not in netlist.primary_inputs
        and net not in netlist.primary_outputs
    )
    for net in internal:
        lines.append(f"  wire {esc(net)};")
    for gate in netlist.gates_in_file_order():
        out_pin, in_pins = _pin_names(gate)
        conns = [f".{out_pin}({esc(gate.output)})"]
        conns.extend(
            f".{pin}({esc(net)})" for pin, net in zip(in_pins, gate.inputs)
        )
        lines.append(
            f"  {_sized_cell_name(gate)} {esc(gate.name)} "
            f"({', '.join(conns)});"
        )
    lines.append("endmodule")
    return "\n".join(lines) + "\n"
