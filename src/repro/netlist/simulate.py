"""Three-valued logic simulation for gate-level netlists.

Simulation is not part of the paper's algorithm itself, but it is how this
reproduction *validates* the algorithm's only semantics-changing step:
circuit reduction (Section 2.5).  The property tests check that, for every
input assignment consistent with the chosen control-signal values, the
reduced netlist computes the same values as the original.

Values are ``0``, ``1`` and ``None`` (unknown / X), matching
:meth:`repro.netlist.cells.CellType.evaluate`.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence

from .netlist import Gate, Netlist

__all__ = ["evaluate_combinational", "step", "Simulator", "exhaustive_inputs"]

Value = Optional[int]


def evaluate_combinational(
    netlist: Netlist, inputs: Mapping[str, Value]
) -> Dict[str, Value]:
    """Evaluate all combinational logic for one set of source values.

    ``inputs`` maps source nets — primary inputs and flip-flop outputs — to
    values.  Unlisted sources are X.  The result maps every net (sources
    included) to its value; flip-flop gates are not evaluated (their outputs
    are sources).
    """
    values: Dict[str, Value] = {net: None for net in netlist.cone_leaf_nets()}
    values.update(inputs)
    for gate in netlist.topological_order():
        if gate.is_ff:
            continue
        in_values = [values.get(net) for net in gate.inputs]
        values[gate.output] = gate.cell.evaluate(in_values)
    return values


def step(
    netlist: Netlist,
    primary_inputs: Mapping[str, Value],
    state: Mapping[str, Value],
) -> Dict[str, Value]:
    """Advance the sequential circuit one clock cycle.

    ``state`` maps flip-flop output nets to their current values.  Returns
    the next state (flip-flop output net → value after the clock edge).
    """
    sources: Dict[str, Value] = dict(state)
    sources.update(primary_inputs)
    values = evaluate_combinational(netlist, sources)
    return {ff.output: values.get(ff.inputs[0]) for ff in netlist.flip_flops()}


class Simulator:
    """Stateful multi-cycle simulator.

    >>> sim = Simulator(netlist)          # doctest: +SKIP
    >>> sim.reset(0)                      # doctest: +SKIP
    >>> sim.clock({"start": 1})           # doctest: +SKIP
    >>> sim.state["count_reg_0"]          # doctest: +SKIP
    """

    def __init__(self, netlist: Netlist):
        self.netlist = netlist
        self.state: Dict[str, Value] = {
            ff.output: None for ff in netlist.flip_flops()
        }
        self.values: Dict[str, Value] = {}

    def reset(self, value: Value = 0) -> None:
        """Force every register to ``value`` (models a global reset)."""
        self.state = {net: value for net in self.state}

    def clock(self, primary_inputs: Mapping[str, Value]) -> Dict[str, Value]:
        """Apply inputs, settle combinational logic, clock all registers."""
        sources: Dict[str, Value] = dict(self.state)
        sources.update(primary_inputs)
        self.values = evaluate_combinational(self.netlist, sources)
        self.state = {
            ff.output: self.values.get(ff.inputs[0])
            for ff in self.netlist.flip_flops()
        }
        return dict(self.state)

    def peek(self, net: str) -> Value:
        """Value of ``net`` after the last :meth:`clock` call."""
        if net in self.state:
            return self.state[net]
        return self.values.get(net)


def exhaustive_inputs(nets: Sequence[str]) -> Iterator[Dict[str, int]]:
    """All 2^n assignments over ``nets`` — for small-cone equivalence checks."""
    for bits in itertools.product((0, 1), repeat=len(nets)):
        yield dict(zip(nets, bits))
