"""Netlist consistency checking and summary statistics.

:func:`validate` is run by the synthesis flow after every pass and by the
test-suite on every generated benchmark, so structural corruption (dangling
drivers, multiply-driven nets, combinational cycles, arity violations) is
caught where it is introduced rather than deep inside the matching code.

:func:`diagnose` is the structured form behind it: every problem is a
:class:`Diagnostic` with a severity, a machine-readable kind, and the nets
involved.  The analysis engine runs it as its pre-flight check
(``PipelineConfig.preflight``) and records the results on
``StageTrace.preflight``; with ``strict=True`` any diagnostic — warnings
included — aborts the run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from .netlist import Netlist, NetlistError

__all__ = [
    "Diagnostic",
    "ValidationReport",
    "diagnose",
    "validate",
    "NetlistStats",
    "stats",
]

#: Diagnostic kinds, in report order.
KIND_FLOATING_INPUT = "floating-input"
KIND_ARITY = "arity"
KIND_MULTI_DRIVEN = "multi-driven"
KIND_UNDRIVEN_OUTPUT = "undriven-output"
KIND_COMBINATIONAL_LOOP = "combinational-loop"


@dataclass(frozen=True)
class Diagnostic:
    """One structural problem found in a netlist.

    ``severity`` is ``"warning"`` for conditions the analysis tolerates
    (a floating gate input becomes a cone leaf; an undriven primary output
    is simply never part of a word) and ``"error"`` for corruption that
    can produce wrong answers (combinational loops, multiply-driven nets,
    arity violations).  ``nets`` lists the nets involved — for a
    combinational loop, the cycle in order.
    """

    severity: str
    kind: str
    message: str
    nets: Tuple[str, ...] = ()

    def as_dict(self) -> Dict:
        return {
            "severity": self.severity,
            "kind": self.kind,
            "message": self.message,
            "nets": list(self.nets),
        }


@dataclass
class ValidationReport:
    """Outcome of :func:`validate`: empty ``problems`` means a clean netlist.

    ``diagnostics`` carries the structured records behind the flat
    ``problems`` strings (``problems[i]`` is ``diagnostics[i].message``).
    """

    problems: List[str]
    diagnostics: List[Diagnostic] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems

    def raise_if_failed(self) -> None:
        if self.problems:
            raise NetlistError(
                "invalid netlist:\n  " + "\n  ".join(self.problems)
            )


def diagnose(
    netlist: Netlist, require_driven_outputs: bool = True
) -> List[Diagnostic]:
    """Structured structural check; returns diagnostics, never raises.

    Detects floating gate inputs, arity violations, multiply-driven nets,
    undriven primary outputs, and combinational loops (reported with the
    nets of one cycle, in order).
    """
    diagnostics: List[Diagnostic] = []
    sources = set(netlist.primary_inputs)
    driver_names: Dict[str, List[str]] = {}
    for gate in netlist.gates_in_file_order():
        sources.add(gate.output)
        driver_names.setdefault(gate.output, []).append(gate.name)
    for gate in netlist.gates_in_file_order():
        for net in gate.inputs:
            if net not in sources:
                diagnostics.append(
                    Diagnostic(
                        severity="warning",
                        kind=KIND_FLOATING_INPUT,
                        message=(
                            f"gate {gate.name}: input net {net!r} "
                            f"has no driver"
                        ),
                        nets=(net,),
                    )
                )
        try:
            gate.cell._check_arity(len(gate.inputs))
        except ValueError as exc:
            diagnostics.append(
                Diagnostic(
                    severity="error",
                    kind=KIND_ARITY,
                    message=f"gate {gate.name}: {exc}",
                    nets=(gate.output,),
                )
            )
    for net, names in driver_names.items():
        if len(names) > 1:
            diagnostics.append(
                Diagnostic(
                    severity="error",
                    kind=KIND_MULTI_DRIVEN,
                    message=(
                        f"net {net!r} multiply driven by gates "
                        f"{', '.join(names)}"
                    ),
                    nets=(net,),
                )
            )
    if require_driven_outputs:
        for net in netlist.primary_outputs:
            if net not in sources:
                diagnostics.append(
                    Diagnostic(
                        severity="warning",
                        kind=KIND_UNDRIVEN_OUTPUT,
                        message=f"primary output {net!r} has no driver",
                        nets=(net,),
                    )
                )
    cycle = _find_combinational_cycle(netlist)
    if cycle:
        diagnostics.append(
            Diagnostic(
                severity="error",
                kind=KIND_COMBINATIONAL_LOOP,
                message=(
                    "combinational cycle detected: "
                    + " -> ".join(cycle + (cycle[0],))
                ),
                nets=cycle,
            )
        )
    return diagnostics


def _find_combinational_cycle(netlist: Netlist) -> Tuple[str, ...]:
    """Output nets of one combinational cycle (empty tuple if acyclic).

    Kahn's algorithm over the combinational gates (flip-flops are
    sources, as in :meth:`Netlist.topological_order`); the gates left
    unordered all sit on or downstream of cycles, and walking their
    graph until a net repeats recovers one concrete cycle to report.
    """
    leaves = netlist.cone_leaf_nets()
    comb_driver: Dict[str, object] = {}
    for gate in netlist.gates_in_file_order():
        if not gate.is_ff:
            comb_driver[gate.output] = gate

    def comb_inputs(gate) -> List[str]:
        return [
            net
            for net in gate.inputs
            if net not in leaves and net in comb_driver
        ]

    in_degree: Dict[str, int] = {}
    waiting: Dict[str, List[str]] = {}
    ready: List[str] = []
    for out, gate in comb_driver.items():
        pending = comb_inputs(gate)
        in_degree[out] = len(pending)
        for net in pending:
            waiting.setdefault(net, []).append(out)
        if not pending:
            ready.append(out)
    cursor = 0
    while cursor < len(ready):
        out = ready[cursor]
        cursor += 1
        for consumer in waiting.get(out, ()):
            in_degree[consumer] -= 1
            if in_degree[consumer] == 0:
                ready.append(consumer)
    remaining = {out for out, deg in in_degree.items() if deg > 0}
    if not remaining:
        return ()
    # Walk within the remaining set until a net repeats: the walk can
    # only move between gates still blocked on each other, so it must
    # close a cycle.
    start = min(remaining)  # deterministic entry point
    path: List[str] = []
    seen: Dict[str, int] = {}
    net = start
    while net not in seen:
        seen[net] = len(path)
        path.append(net)
        gate = comb_driver[net]
        net = next(n for n in comb_inputs(gate) if n in remaining)
    return tuple(reversed(path[seen[net]:]))


def validate(netlist: Netlist, require_driven_outputs: bool = True) -> ValidationReport:
    """Check structural invariants; returns a report, never raises."""
    diagnostics = diagnose(
        netlist, require_driven_outputs=require_driven_outputs
    )
    return ValidationReport(
        problems=[d.message for d in diagnostics],
        diagnostics=diagnostics,
    )


@dataclass(frozen=True)
class NetlistStats:
    """The benchmark-description columns of the paper's Table 1."""

    name: str
    num_gates: int
    num_nets: int
    num_ffs: int

    def row(self) -> str:
        return (
            f"{self.name:>6}  {self.num_gates:>7} gates  "
            f"{self.num_nets:>7} nets  {self.num_ffs:>5} FFs"
        )


def stats(netlist: Netlist) -> NetlistStats:
    """Gate/net/FF counts as reported in Table 1 columns 2-4."""
    return NetlistStats(
        name=netlist.name,
        num_gates=netlist.num_gates,
        num_ffs=netlist.num_ffs,
        num_nets=netlist.num_nets,
    )
