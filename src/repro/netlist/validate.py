"""Netlist consistency checking and summary statistics.

:func:`validate` is run by the synthesis flow after every pass and by the
test-suite on every generated benchmark, so structural corruption (dangling
drivers, multiply-driven nets, combinational cycles, arity violations) is
caught where it is introduced rather than deep inside the matching code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from .netlist import Netlist, NetlistError

__all__ = ["ValidationReport", "validate", "NetlistStats", "stats"]


@dataclass
class ValidationReport:
    """Outcome of :func:`validate`: empty ``problems`` means a clean netlist."""

    problems: List[str]

    @property
    def ok(self) -> bool:
        return not self.problems

    def raise_if_failed(self) -> None:
        if self.problems:
            raise NetlistError(
                "invalid netlist:\n  " + "\n  ".join(self.problems)
            )


def validate(netlist: Netlist, require_driven_outputs: bool = True) -> ValidationReport:
    """Check structural invariants; returns a report, never raises."""
    problems: List[str] = []
    sources = set(netlist.primary_inputs)
    for gate in netlist.gates_in_file_order():
        sources.add(gate.output)
    for gate in netlist.gates_in_file_order():
        for net in gate.inputs:
            if net not in sources:
                problems.append(
                    f"gate {gate.name}: input net {net!r} has no driver"
                )
        try:
            gate.cell._check_arity(len(gate.inputs))
        except ValueError as exc:
            problems.append(f"gate {gate.name}: {exc}")
    if require_driven_outputs:
        for net in netlist.primary_outputs:
            if net not in sources:
                problems.append(f"primary output {net!r} has no driver")
    try:
        netlist.topological_order()
    except NetlistError as exc:
        problems.append(str(exc))
    return ValidationReport(problems)


@dataclass(frozen=True)
class NetlistStats:
    """The benchmark-description columns of the paper's Table 1."""

    name: str
    num_gates: int
    num_nets: int
    num_ffs: int

    def row(self) -> str:
        return (
            f"{self.name:>6}  {self.num_gates:>7} gates  "
            f"{self.num_nets:>7} nets  {self.num_ffs:>5} FFs"
        )


def stats(netlist: Netlist) -> NetlistStats:
    """Gate/net/FF counts as reported in Table 1 columns 2-4."""
    return NetlistStats(
        name=netlist.name,
        num_gates=netlist.num_gates,
        num_nets=netlist.num_nets,
        num_ffs=netlist.num_ffs,
    )
