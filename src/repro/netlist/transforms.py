"""Generic structural netlist transformations.

These are the connectivity-level edits shared by the synthesis optimizer
(:mod:`repro.synth.optimize`) and the reduction engine
(:mod:`repro.core.reduction`): rewiring consumers from one net to another
and sweeping logic that drives nothing observable.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .netlist import Gate, Netlist, NetlistError

__all__ = ["rewire_consumers", "sweep_dead_logic", "reorder_gates"]


def rewire_consumers(netlist: Netlist, old_net: str, new_net: str) -> int:
    """Point every consumer of ``old_net`` at ``new_net`` instead.

    Returns the number of gates rewired.  The driver of ``old_net`` (if
    any) is left in place — pair with :func:`sweep_dead_logic` to drop it
    once nothing reads it.  Primary-output membership is a property of the
    net name and is deliberately not transferred.
    """
    if old_net == new_net:
        return 0
    rewired = 0
    for gate in list(netlist.fanouts(old_net)):
        new_inputs = [new_net if n == old_net else n for n in gate.inputs]
        netlist.replace_gate(gate.name, gate.cell, new_inputs)
        rewired += 1
    return rewired


def reorder_gates(
    netlist: Netlist,
    order: Sequence[str],
    name: Optional[str] = None,
) -> Netlist:
    """Rebuild ``netlist`` with its gates in the given file order.

    ``order`` must be a permutation of the existing gate names; ports and
    connectivity are preserved, only line order changes.  This is the
    transform behind the metamorphic fuzz oracles: the identification
    pipeline's first-level grouping reads file adjacency, so only
    *structured* reorderings (whole-file reversal, permutations within a
    word's root-gate run) are behaviour-preserving — the oracles in
    :mod:`repro.fuzz.oracles` pick those.
    """
    if len(order) != len(netlist) or len(set(order)) != len(order):
        raise NetlistError(
            f"order has {len(set(order))} distinct names, "
            f"netlist has {len(netlist)} gates"
        )
    rebuilt = Netlist(name or netlist.name)
    for net in netlist.primary_inputs:
        rebuilt.add_input(net)
    for gate_name in order:
        if gate_name not in netlist:
            raise NetlistError(f"unknown gate {gate_name!r} in order")
        gate = netlist.gate(gate_name)
        rebuilt.add_gate(gate.name, gate.cell, gate.inputs, gate.output)
    for net in netlist.primary_outputs:
        rebuilt.add_output(net)
    return rebuilt


def sweep_dead_logic(netlist: Netlist) -> int:
    """Remove gates whose outputs drive nothing observable.

    Observable sinks are primary outputs and any gate input (flip-flops
    included).  Returns the number of gates removed.  Iterates to a
    fixpoint so whole dead cones disappear.
    """
    removed = 0
    protected = set(netlist.primary_outputs)
    while True:
        dead: List[Gate] = [
            gate
            for gate in netlist.gates_in_file_order()
            if not gate.is_ff
            and gate.output not in protected
            and not netlist.fanouts(gate.output)
        ]
        if not dead:
            return removed
        for gate in dead:
            netlist.remove_gate(gate.name)
            removed += 1
