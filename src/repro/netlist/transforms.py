"""Generic structural netlist transformations.

These are the connectivity-level edits shared by the synthesis optimizer
(:mod:`repro.synth.optimize`) and the reduction engine
(:mod:`repro.core.reduction`): rewiring consumers from one net to another
and sweeping logic that drives nothing observable.
"""

from __future__ import annotations

from typing import List

from .netlist import Gate, Netlist

__all__ = ["rewire_consumers", "sweep_dead_logic"]


def rewire_consumers(netlist: Netlist, old_net: str, new_net: str) -> int:
    """Point every consumer of ``old_net`` at ``new_net`` instead.

    Returns the number of gates rewired.  The driver of ``old_net`` (if
    any) is left in place — pair with :func:`sweep_dead_logic` to drop it
    once nothing reads it.  Primary-output membership is a property of the
    net name and is deliberately not transferred.
    """
    if old_net == new_net:
        return 0
    rewired = 0
    for gate in list(netlist.fanouts(old_net)):
        new_inputs = [new_net if n == old_net else n for n in gate.inputs]
        netlist.replace_gate(gate.name, gate.cell, new_inputs)
        rewired += 1
    return rewired


def sweep_dead_logic(netlist: Netlist) -> int:
    """Remove gates whose outputs drive nothing observable.

    Observable sinks are primary outputs and any gate input (flip-flops
    included).  Returns the number of gates removed.  Iterates to a
    fixpoint so whole dead cones disappear.
    """
    removed = 0
    protected = set(netlist.primary_outputs)
    while True:
        dead: List[Gate] = [
            gate
            for gate in netlist.gates_in_file_order()
            if not gate.is_ff
            and gate.output not in protected
            and not netlist.fanouts(gate.output)
        ]
        if not dead:
            return removed
        for gate in dead:
            netlist.remove_gate(gate.name)
            removed += 1
