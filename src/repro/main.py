"""The ``repro`` umbrella command: one entry point, four subcommands.

::

    repro identify design.v --score        # == repro-identify design.v --score
    repro table1 b03 b12 --jobs 4          # == repro-table1 b03 b12 --jobs 4
    repro fuzz --seed 0 --samples 8        # == repro-fuzz --seed 0 --samples 8
    repro batch designs/*.v --store .cache # corpus analysis (new in this CLI)

Each subcommand dispatches to the exact ``main`` the historical script
entry points call, so ``repro identify ...`` and ``repro-identify ...``
are the same code path with the same output and the same exit codes (the
alias scripts remain installed for back compatibility).  Subcommand
modules are imported lazily; ``repro --help`` stays instant.
"""

from __future__ import annotations

import sys
from typing import Callable, Dict, Optional, Sequence, Tuple

from .exitcodes import EXIT_OK, EXIT_USAGE

__all__ = ["main", "COMMANDS"]


def _identify_main():
    from .cli import main

    return main


def _table1_main():
    from .eval.runner import main

    return main


def _fuzz_main():
    from .fuzz.harness import main

    return main


def _batch_main():
    from .batch import main

    return main


def _serve_main():
    from .serve.server import main

    return main


def _scoreboard_main():
    from .eval.scoreboard import main

    return main


def _triage_main():
    from .triage.cli import main

    return main


#: Subcommand name -> (one-line help, loader returning its ``main``).
COMMANDS: Dict[str, Tuple[str, Callable[[], Callable]]] = {
    "identify": (
        "identify words in one netlist (alias: repro-identify)",
        _identify_main,
    ),
    "table1": (
        "reproduce the paper's Table 1 sweep (alias: repro-table1)",
        _table1_main,
    ),
    "fuzz": (
        "run a metamorphic fuzzing campaign (alias: repro-fuzz)",
        _fuzz_main,
    ),
    "batch": (
        "analyze a corpus with shared caching and worker processes",
        _batch_main,
    ),
    "serve": (
        "run the long-lived analysis HTTP service (alias: repro-serve)",
        _serve_main,
    ),
    "scoreboard": (
        "score identification backends against exact fuzz ground truth",
        _scoreboard_main,
    ),
    "triage": (
        "rank gates by Trojan-region anomaly against identified words",
        _triage_main,
    ),
}


def _usage() -> str:
    lines = [
        "usage: repro <command> [options]",
        "",
        "Word-level identification in gate-level netlists "
        "(Tashjian & Davoodi, DAC 2015).",
        "",
        "commands:",
    ]
    for name, (summary, _) in COMMANDS.items():
        lines.append(f"  {name:<10} {summary}")
    lines.append("")
    lines.append("run `repro <command> --help` for command options")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        print(_usage())
        return EXIT_OK if argv else EXIT_USAGE
    if argv[0] == "--version":
        from . import __version__
        from .schema import PIPELINE_VERSION, SCHEMA_VERSION

        print(
            f"repro {__version__} "
            f"(pipeline {PIPELINE_VERSION}, schema {SCHEMA_VERSION})"
        )
        return EXIT_OK
    command, rest = argv[0], argv[1:]
    entry = COMMANDS.get(command)
    if entry is None:
        print(f"error: unknown command {command!r}", file=sys.stderr)
        print(_usage(), file=sys.stderr)
        return EXIT_USAGE
    return entry[1]()(rest)


if __name__ == "__main__":
    sys.exit(main())
