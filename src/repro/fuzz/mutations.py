"""Test-only injected bugs for measuring oracle sensitivity.

The fuzzing subsystem's own correctness claim is "the oracles would catch
a real pipeline regression".  That claim is tested the same way the
pipeline's are: each mutation below re-introduces a plausible bug class
behind a context manager that monkeypatches one seam, and the mutation
smoke test (``tests/fuzz/test_mutation.py``) asserts the oracle suite
flags it on a suitable sample.

The five bug classes, and the oracle expected to catch each:

``no-controls``
    Control-signal discovery returns nothing (a Section 2.4 regression).
    Healable words stop healing → ``expectation``.
``singles-only``
    The assignment search never tries pairs (a Section 2.5 regression —
    the paper's Figure 1 case needs two signals).  Crossed words stop
    healing → ``expectation``.
``overeager-propagation``
    Constant propagation assigns one extra unassigned net (an unsound
    simplification).  The committed reduction no longer preserves the
    word-bit functions → ``reduction_functional``.
``unstable-parallel-merge``
    Parallel subgroup outcomes come back rotated (a scheduling-order
    leak).  ``jobs=4`` no longer matches ``jobs=1`` → ``jobs``.
``name-sensitive-grouping``
    Stage-1 runs break on a property of the *net name* (a classic
    accidental-dependence bug).  Results differ between the original and
    hostile-renamed namespaces → ``rename`` (or ``expectation`` when the
    original namespace is affected too — either way it is caught).

These are deliberately *not* importable from the package root and never
run unless a test asks for them.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Sequence

from ..core import reduction as _reduction
from ..core import stages as _stages

__all__ = ["MUTATION_NAMES", "apply_mutation"]


@contextmanager
def _patched(owner, attribute: str, replacement) -> Iterator[None]:
    original = getattr(owner, attribute)
    setattr(owner, attribute, replacement)
    try:
        yield
    finally:
        setattr(owner, attribute, original)


@contextmanager
def _no_controls() -> Iterator[None]:
    def nothing(subgroup, context=None):
        return []

    with _patched(_stages, "find_control_signals", nothing):
        yield


@contextmanager
def _singles_only() -> Iterator[None]:
    original = _stages._assignments

    def only_singles(candidates, max_simultaneous):
        return original(candidates, 1)

    with _patched(_stages, "_assignments", only_singles):
        yield


@contextmanager
def _overeager_propagation() -> Iterator[None]:
    original = _reduction.propagate_constants

    def extra_net(netlist, assignments):
        values = original(netlist, assignments)
        for gate in netlist.gates_in_file_order():
            if gate.is_ff or gate.cell.is_constant:
                continue
            if gate.output in values:
                continue
            values[gate.output] = 0
            break
        return values

    with _patched(_reduction, "propagate_constants", extra_net):
        yield


@contextmanager
def _unstable_parallel_merge() -> Iterator[None]:
    original = _stages.ReductionStage._run_parallel

    def rotated(self, art, tasks, jobs):
        outcomes = original(self, art, tasks, jobs)
        if len(outcomes) > 1:
            outcomes = outcomes[1:] + outcomes[:1]
        return outcomes

    with _patched(_stages.ReductionStage, "_run_parallel", rotated):
        yield


@contextmanager
def _name_sensitive_grouping() -> Iterator[None]:
    original = _stages.group_by_adjacency

    def split_on_odd_names(netlist) -> List[List[str]]:
        groups: List[List[str]] = []
        for group in original(netlist):
            run: List[str] = []
            for net in group:
                run.append(net)
                if len(net) % 2:
                    groups.append(run)
                    run = []
            if run:
                groups.append(run)
        return groups

    with _patched(_stages, "group_by_adjacency", split_on_odd_names):
        yield


_MUTATIONS: Dict[str, Callable[[], Iterator[None]]] = {
    "no-controls": _no_controls,
    "singles-only": _singles_only,
    "overeager-propagation": _overeager_propagation,
    "unstable-parallel-merge": _unstable_parallel_merge,
    "name-sensitive-grouping": _name_sensitive_grouping,
}

MUTATION_NAMES: Sequence[str] = tuple(_MUTATIONS)


def apply_mutation(name: str):
    """Context manager installing the named bug for the enclosed block."""
    try:
        factory = _MUTATIONS[name]
    except KeyError:
        raise ValueError(
            f"unknown mutation {name!r}; choose from {', '.join(_MUTATIONS)}"
        ) from None
    return factory()
