"""The corpus runner behind the ``repro-fuzz`` CLI.

A campaign is fully determined by ``(seed, samples, generator config)``:
per-sample seeds come from :func:`repro.fuzz.generator.sample_seed`, so
the same invocation always produces the same corpus, the same verdicts
and the same report digest — which is itself one of the acceptance
checks (re-running a campaign must reproduce its digest byte for byte).

When a sample fails an oracle, the harness *shrinks* it: greedy passes
over the sample's :class:`~repro.fuzz.generator.SamplePlan` (drop a word,
drop the decoys, drop a condition, zero the datapath, halve a width)
keeping each edit only if a originally-failing oracle still fails on the
rebuilt sample.  Because plans are pure data and building is
deterministic, edits compose without RNG-stream coupling.  The shrunk
sample is emitted as a reproducer directory::

    fuzz_failures/s<campaign>-i<index>/
        original.v   # the failing netlist as synthesized
        shrunk.v     # the minimized netlist
        report.json  # seeds, verdicts, original + shrunk plans

Re-running a reproducer needs no corpus state:
``repro-fuzz --seed <campaign> --index <index>``.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, List, Optional, Sequence, Tuple

from ..core.resilience import Deadline
from ..exitcodes import EXIT_FAILURE, EXIT_OK
from ..netlist.verilog import write_verilog
from .generator import (
    FuzzSample,
    GeneratorConfig,
    SamplePlan,
    build_sample,
    plan_sample,
    sample_seed,
)
from .oracles import DEFAULT_ORACLES, OracleVerdict, run_oracles

__all__ = [
    "HarnessConfig",
    "SampleVerdicts",
    "FailureRecord",
    "FuzzReport",
    "run_campaign",
    "main",
]


@dataclass(frozen=True)
class HarnessConfig:
    """One campaign's knobs (see ``repro-fuzz --help``)."""

    seed: int = 0
    samples: int = 50
    index: Optional[int] = None  # run a single corpus index
    depth: int = 4
    shrink: bool = True
    max_shrink_builds: int = 150
    time_budget: Optional[float] = None  # wall-clock seconds for the run
    output_dir: Path = Path("fuzz_failures")
    generator: GeneratorConfig = field(default_factory=GeneratorConfig)


@dataclass
class SampleVerdicts:
    """All oracle verdicts for one corpus sample."""

    index: int
    seed: int
    num_gates: int
    verdicts: List[OracleVerdict]

    @property
    def passed(self) -> bool:
        return all(v.passed for v in self.verdicts)

    @property
    def failed_oracles(self) -> List[str]:
        return [v.oracle for v in self.verdicts if not v.passed]

    def as_dict(self) -> dict:
        return {
            "index": self.index,
            "seed": self.seed,
            "num_gates": self.num_gates,
            "verdicts": [v.as_dict() for v in self.verdicts],
        }


@dataclass
class FailureRecord:
    """A failing sample plus its shrunk reproducer."""

    sample: SampleVerdicts
    plan: SamplePlan
    shrunk_plan: SamplePlan
    shrunk_gates: int
    shrink_builds: int
    reproducer: Optional[Path] = None


@dataclass
class FuzzReport:
    """Everything one campaign produced."""

    config: HarnessConfig
    results: List[SampleVerdicts] = field(default_factory=list)
    failures: List[FailureRecord] = field(default_factory=list)
    stopped_early: bool = False

    @property
    def passed(self) -> bool:
        return not self.failures and not self.stopped_early

    def digest(self) -> str:
        """Deterministic fingerprint of the campaign's verdicts."""
        payload = json.dumps(
            [r.as_dict() for r in self.results],
            sort_keys=True, separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def summary(self) -> str:
        total = len(self.results)
        failing = len(self.failures)
        status = "PASS" if self.passed else "FAIL"
        extra = " (stopped early: time budget)" if self.stopped_early else ""
        return (
            f"{status}: {total - failing}/{total} samples clean{extra}; "
            f"digest {self.digest()[:16]}"
        )


# ----------------------------------------------------------------------
# shrinking
# ----------------------------------------------------------------------

def _plan_edits(plan: SamplePlan) -> List[SamplePlan]:
    """Candidate one-step reductions of ``plan``, most aggressive first."""
    edits: List[SamplePlan] = []
    n = len(plan.words)
    if n > 1:
        for drop in range(n):
            edits.append(replace(
                plan,
                words=plan.words[:drop] + plan.words[drop + 1:],
                separators=(plan.separators[:drop]
                            + plan.separators[drop + 1:]),
            ))
    if plan.decoys:
        edits.append(replace(plan, decoys=()))
    if plan.datapath_rounds:
        edits.append(replace(plan, datapath_rounds=0))
    if len(plan.conditions) > 1:
        for drop in range(len(plan.conditions)):
            edits.append(replace(
                plan,
                conditions=(plan.conditions[:drop]
                            + plan.conditions[drop + 1:]),
            ))
    for i, word in enumerate(plan.words):
        if word.width > 3:
            smaller = replace(word, width=max(3, word.width // 2))
            edits.append(replace(
                plan, words=plan.words[:i] + (smaller,) + plan.words[i + 1:]
            ))
    return edits


def shrink_failure(
    plan: SamplePlan,
    failed_oracles: Sequence[str],
    depth: int,
    max_builds: int,
    deadline: Optional[Deadline] = None,
) -> Tuple[SamplePlan, int]:
    """Greedily minimize ``plan`` while an originally-failing oracle fails.

    Returns the smallest preserving plan found and the number of rebuilds
    spent.  Oracles outside ``failed_oracles`` are not run — a shrink step
    may legitimately fix one failure mode while preserving another.
    """
    watched = [
        (name, check) for name, check in DEFAULT_ORACLES
        if name in set(failed_oracles)
    ]

    def still_fails(candidate: SamplePlan) -> bool:
        try:
            sample = build_sample(candidate)
            verdicts = run_oracles(sample, watched, depth=depth)
        except Exception:
            # A plan edit that breaks generation shrinks nothing — the
            # violation we are preserving is an oracle failure, not a
            # generator crash.
            return False
        return any(not v.passed for v in verdicts)

    builds = 0
    current = plan
    progress = True
    while progress and builds < max_builds:
        progress = False
        for candidate in _plan_edits(current):
            if builds >= max_builds:
                break
            if deadline is not None and deadline.expired():
                return current, builds
            builds += 1
            if still_fails(candidate):
                current = candidate
                progress = True
                break  # restart edits from the smaller plan
    return current, builds


# ----------------------------------------------------------------------
# the campaign loop
# ----------------------------------------------------------------------

def _emit_reproducer(
    record: FailureRecord, campaign_seed: int, out_dir: Path
) -> Path:
    directory = out_dir / f"s{campaign_seed}-i{record.sample.index}"
    directory.mkdir(parents=True, exist_ok=True)
    original = build_sample(record.plan)
    shrunk = build_sample(record.shrunk_plan)
    (directory / "original.v").write_text(write_verilog(original.netlist))
    (directory / "shrunk.v").write_text(write_verilog(shrunk.netlist))
    (directory / "report.json").write_text(json.dumps(
        {
            "campaign_seed": campaign_seed,
            "sample": record.sample.as_dict(),
            "failed_oracles": record.sample.failed_oracles,
            "plan": record.plan.as_dict(),
            "shrunk_plan": record.shrunk_plan.as_dict(),
            "shrunk_gates": record.shrunk_gates,
            "shrink_builds": record.shrink_builds,
            "rerun": (
                f"repro-fuzz --seed {campaign_seed} "
                f"--index {record.sample.index}"
            ),
        },
        indent=2,
    ) + "\n")
    return directory


def run_campaign(
    config: HarnessConfig,
    log: Optional[Callable[[str], None]] = None,
) -> FuzzReport:
    """Run one seeded campaign; emit reproducers for every failure."""
    say = log or (lambda message: None)
    report = FuzzReport(config=config)
    deadline = Deadline.after(config.time_budget)
    indices = (
        [config.index] if config.index is not None
        else list(range(config.samples))
    )
    for index in indices:
        if deadline is not None and deadline.expired():
            say(f"time budget exhausted after {len(report.results)} samples")
            report.stopped_early = True
            break
        seed = sample_seed(config.seed, index)
        plan = plan_sample(seed, config.generator)
        sample = build_sample(plan)
        verdicts = run_oracles(sample, depth=config.depth)
        result = SampleVerdicts(
            index=index, seed=seed,
            num_gates=len(sample.netlist), verdicts=verdicts,
        )
        report.results.append(result)
        if result.passed:
            continue
        say(f"sample {index} (seed {seed:#x}) FAILED: "
            f"{', '.join(result.failed_oracles)}")
        shrunk_plan, builds = (plan, 0)
        if config.shrink:
            shrunk_plan, builds = shrink_failure(
                plan, result.failed_oracles, config.depth,
                config.max_shrink_builds, deadline,
            )
        record = FailureRecord(
            sample=result,
            plan=plan,
            shrunk_plan=shrunk_plan,
            shrunk_gates=len(build_sample(shrunk_plan).netlist),
            shrink_builds=builds,
        )
        record.reproducer = _emit_reproducer(
            record, config.seed, config.output_dir
        )
        say(f"  reproducer: {record.reproducer} "
            f"({result.num_gates} -> {record.shrunk_gates} gates, "
            f"{builds} shrink builds)")
        report.failures.append(record)
    return report


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-fuzz",
        description=(
            "Seeded metamorphic fuzzing of the word-identification "
            "pipeline on generated ground-truth netlists."
        ),
    )
    parser.add_argument("--seed", type=int, default=0,
                        help="campaign seed (default 0)")
    parser.add_argument("--samples", type=int, default=50,
                        help="corpus size (default 50)")
    parser.add_argument("--index", type=int, default=None,
                        help="run a single corpus index (reproducer mode)")
    parser.add_argument("--depth", type=int, default=4,
                        help="pipeline cone depth (default 4)")
    parser.add_argument("--time-budget", type=float, default=None,
                        metavar="SECONDS",
                        help="stop the campaign after this many seconds")
    parser.add_argument("--no-shrink", action="store_true",
                        help="emit failing samples without minimizing them")
    parser.add_argument("--out", type=Path, default=Path("fuzz_failures"),
                        help="reproducer directory (default fuzz_failures/)")
    parser.add_argument("--mutate", default=None, metavar="NAME",
                        help="run with a known bug injected (oracle "
                             "sensitivity check; see repro.fuzz.mutations)")
    parser.add_argument("--quiet", action="store_true",
                        help="print only the final summary line")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    options = _parser().parse_args(argv)
    if options.samples < 1 and options.index is None:
        _parser().error("--samples must be at least 1")
    config = HarnessConfig(
        seed=options.seed,
        samples=options.samples,
        index=options.index,
        depth=options.depth,
        shrink=not options.no_shrink,
        time_budget=options.time_budget,
        output_dir=options.out,
    )
    say = (lambda message: None) if options.quiet else print

    if options.mutate is not None:
        from .mutations import apply_mutation

        with apply_mutation(options.mutate):
            report = run_campaign(config, log=say)
        # Under an injected bug the *expected* outcome is failure; exit 0
        # when the oracles caught it, 1 when they missed it.
        caught = bool(report.failures)
        print(f"mutation {options.mutate}: "
              f"{'caught' if caught else 'MISSED'} "
              f"({len(report.failures)}/{len(report.results)} samples)")
        return EXIT_OK if caught else EXIT_FAILURE

    report = run_campaign(config, log=say)
    print(report.summary())
    return EXIT_OK if report.passed else EXIT_FAILURE


if __name__ == "__main__":
    sys.exit(main())
