"""Fuzzing and metamorphic-oracle subsystem.

The Table 1 benchmarks pin the pipeline to 12 fixed designs; this package
turns its correctness claims into continuously-tested properties on an
unbounded corpus:

:mod:`generator`
    A seeded random word-oriented design generator.  Every sample lowers
    through the real synthesis flow (:mod:`repro.synth.flow`) and carries
    its exact word ground truth, so differential oracles have labels to
    check against — the same move WordRev-style tools use to validate
    recovery on synthetic designs with labelled registers.
:mod:`oracles`
    Metamorphic and differential oracles: identified words must be
    invariant under net renaming, structured gate reordering and bit-order
    permutation; ``jobs=N`` must equal ``jobs=1`` byte for byte; words
    fully found by the baseline must be fully found by the control-signal
    technique; every control-signal reduction must preserve circuit
    function under simulation; serialization must round-trip.
:mod:`harness`
    The corpus runner behind the ``repro-fuzz`` CLI: seed-driven sample
    loop, greedy failure shrinking, reproducer emission and wall-clock
    budgets from :mod:`repro.core.resilience`.
:mod:`mutations`
    Test-only injected bugs used to measure that the oracles actually
    catch regressions (the mutation smoke test).
"""

from .generator import (
    FuzzSample,
    GeneratorConfig,
    SamplePlan,
    TrueWord,
    build_sample,
    generate,
    plan_sample,
    sample_seed,
)
from .harness import FuzzReport, HarnessConfig, main, run_campaign
from .oracles import (
    DEFAULT_ORACLES,
    OracleContext,
    OracleVerdict,
    run_oracles,
    verify_reductions,
)

__all__ = [
    "FuzzSample",
    "GeneratorConfig",
    "SamplePlan",
    "TrueWord",
    "build_sample",
    "generate",
    "plan_sample",
    "sample_seed",
    "FuzzReport",
    "HarnessConfig",
    "main",
    "run_campaign",
    "DEFAULT_ORACLES",
    "OracleContext",
    "OracleVerdict",
    "run_oracles",
    "verify_reductions",
]
