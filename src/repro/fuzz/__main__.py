"""``python -m repro.fuzz`` — alias for the ``repro-fuzz`` CLI."""

import sys

from .harness import main

sys.exit(main())
