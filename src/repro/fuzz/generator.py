"""Seeded random word-oriented design generator with exact ground truth.

Generation is split into two deterministic halves:

``plan_sample(rng, config)``
    Draws a :class:`SamplePlan` — pure data (regimes, widths, operand
    offsets, condition indices).  All randomness happens here, so a plan
    can be edited (words dropped, widths halved) and rebuilt without
    disturbing any other word's derivation — exactly what the shrinker in
    :mod:`repro.fuzz.harness` needs.

``build_sample(plan)``
    Deterministically turns a plan into RTL (the word idioms of
    :mod:`repro.synth.designs.common` over a shared control-condition
    pool, mirroring the validated ``wordmix`` construction), lowers it
    through the full synthesis flow, and reads the word ground truth back
    off the flip-flop naming convention the flow preserves.

Each :class:`TrueWord` carries the regime's expected recovery:
``expect_ours="full"`` for the regimes the paper's technique provably
heals (data/counter/selected/alternating/crossed, plus the sram
decoder/wordline array, which is the selected class behind a deep
address decode) and ``expect_base`` likewise for the baseline (data
only).  The cam regime (per-bit heterogeneous match comparators held
behind one shared wordline mux) stresses the backends differently:
shape hashing fragments it outright (every comparator differs), the
control-signal technique usually heals it by assigning the shared
wordline its controlling value, and feature-vector aggregation (the
``regfeat`` backend) must lean on shared-control features alone — the
per-backend scoreboard in :mod:`repro.eval.scoreboard` quantifies the
spread.  The expectation oracle checks
those labels on every sample; regimes with data-dependent recovery
(adder carries, concatenations, status/shift registers) are labelled
``"any"`` and only participate in the metamorphic oracles.

Consecutive words are always separated by a one-bit glue register so two
words' subgroups cannot merge into one unhealable subgroup; with
``boundary_noise`` the generator additionally appends decoy glue
registers that imitate word-bit cones (word-boundary obfuscation).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace as dc_replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..eval.reference import extract_reference_words
from ..netlist.netlist import Netlist
from ..synth.designs.common import (
    adder_word,
    alternating_word,
    concat_word,
    crossed_word,
    data_word,
    selected_word,
    shift_word,
    status_word,
)
from ..synth.flow import synthesize
from ..synth.rtl import Concat, Const, Expr, Module, Mux
from ..synth.trojan import TrojanSpec, insert_trojan

__all__ = [
    "REGIMES",
    "OURS_FULL_REGIMES",
    "BASE_FULL_REGIMES",
    "GeneratorConfig",
    "WordPlan",
    "SamplePlan",
    "TrueWord",
    "FuzzSample",
    "plan_sample",
    "build_sample",
    "generate",
    "sample_seed",
]

#: Structural regimes the generator can emit (see designs/common.py).
REGIMES = (
    "data",
    "counter",
    "selected",
    "alternating",
    "crossed",
    "adder",
    "concat",
    "status",
    "shift",
    "sram",
    "cam",
)

#: Regimes the control-signal technique recovers fully by construction.
#: ``sram`` is the selected-word proof class behind a hierarchical
#: decoder, so the same controlling-value argument applies.
OURS_FULL_REGIMES = frozenset(
    {"data", "counter", "selected", "alternating", "crossed", "sram"}
)

#: Regimes plain shape hashing recovers fully by construction.
BASE_FULL_REGIMES = frozenset({"data"})

#: Shapes of the shared control conditions, drawn per sample.
_COND_KINDS = ("enable", "opeq", "bitxor", "oremix", "less", "bitandnot")


@dataclass(frozen=True)
class GeneratorConfig:
    """Corpus knobs.  Defaults target ~150–500 gate samples, small enough
    that a 50-sample campaign with its ~8 pipeline runs per sample stays
    interactive while still mixing every regime."""

    min_words: int = 3
    max_words: int = 7
    min_width: int = 3
    max_width: int = 10
    bus_width: int = 16
    max_datapath_rounds: int = 2
    max_conditions: int = 8
    min_conditions: int = 4
    boundary_noise: float = 0.3  # probability of appending decoy registers
    #: Probability of arming a sample with rare-trigger Trojans
    #: (:func:`repro.synth.trojan.insert_trojan`, inserted after synthesis
    #: with exact gate-level labels).  Off by default: the expectation
    #: oracles assume untampered designs, and a spliced payload can
    #: legitimately defeat recovery of its victim's word.  The triage
    #: evaluation (``repro scoreboard --triage``) turns it on.
    trojan_rate: float = 0.0
    max_trojans: int = 2
    trojan_min_width: int = 3
    trojan_max_width: int = 5
    regime_weights: Tuple[Tuple[str, float], ...] = (
        ("data", 0.18),
        ("counter", 0.13),
        ("selected", 0.13),
        ("alternating", 0.09),
        ("crossed", 0.09),
        ("adder", 0.09),
        ("concat", 0.05),
        ("status", 0.09),
        ("shift", 0.05),
        ("sram", 0.05),
        ("cam", 0.05),
    )

    def __post_init__(self):
        if not 2 <= self.min_width <= self.max_width:
            raise ValueError("need 2 <= min_width <= max_width")
        if self.max_width > self.bus_width:
            raise ValueError("max_width must not exceed bus_width (bit "
                             "slices would wrap and duplicate source nets)")
        if not 1 <= self.min_words <= self.max_words:
            raise ValueError("need 1 <= min_words <= max_words")
        unknown = {r for r, _ in self.regime_weights} - set(REGIMES)
        if unknown:
            raise ValueError(f"unknown regimes in weights: {sorted(unknown)}")
        if not 0.0 <= self.trojan_rate <= 1.0:
            raise ValueError("trojan_rate must be in [0, 1]")
        if self.max_trojans < 1:
            raise ValueError("max_trojans must be >= 1")
        if not 2 <= self.trojan_min_width <= self.trojan_max_width:
            raise ValueError(
                "need 2 <= trojan_min_width <= trojan_max_width"
            )


@dataclass(frozen=True)
class WordPlan:
    """Everything needed to build one word, as plain data.

    ``conds`` are indices into the sample's condition pool; ``offsets``
    are bit offsets into the operand buses; ``aux`` holds per-regime
    extras (mux constant patterns, crossed-guard opcode bits, concat
    field count).
    """

    name: str
    regime: str
    width: int
    conds: Tuple[int, ...] = ()
    offsets: Tuple[int, ...] = ()
    aux: Tuple[int, ...] = ()


@dataclass(frozen=True)
class SamplePlan:
    """One sample's complete recipe — JSON-serializable for reproducers."""

    seed: int
    bus_width: int
    datapath_rounds: int
    conditions: Tuple[Tuple[str, int, int], ...]  # (kind, p, q) specs
    words: Tuple[WordPlan, ...]
    separators: Tuple[Tuple[int, int, int], ...]  # (form, cond, bus bit)
    decoys: Tuple[Tuple[int, int], ...] = ()  # (cond, bus bit) appended
    #: Rare-trigger Trojans to splice in after synthesis, as
    #: (trigger_width, insertion seed) pairs; empty for clean samples.
    trojans: Tuple[Tuple[int, int], ...] = ()

    def as_dict(self) -> Dict:
        return {
            "seed": self.seed,
            "bus_width": self.bus_width,
            "datapath_rounds": self.datapath_rounds,
            "conditions": [list(c) for c in self.conditions],
            "words": [
                {
                    "name": w.name,
                    "regime": w.regime,
                    "width": w.width,
                    "conds": list(w.conds),
                    "offsets": list(w.offsets),
                    "aux": list(w.aux),
                }
                for w in self.words
            ],
            "separators": [list(s) for s in self.separators],
            "decoys": [list(d) for d in self.decoys],
            "trojans": [list(t) for t in self.trojans],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "SamplePlan":
        return cls(
            seed=data["seed"],
            bus_width=data["bus_width"],
            datapath_rounds=data["datapath_rounds"],
            conditions=tuple(tuple(c) for c in data["conditions"]),
            words=tuple(
                WordPlan(
                    name=w["name"],
                    regime=w["regime"],
                    width=w["width"],
                    conds=tuple(w["conds"]),
                    offsets=tuple(w["offsets"]),
                    aux=tuple(w["aux"]),
                )
                for w in data["words"]
            ),
            separators=tuple(tuple(s) for s in data["separators"]),
            decoys=tuple(tuple(d) for d in data.get("decoys", ())),
            trojans=tuple(tuple(t) for t in data.get("trojans", ())),
        )


@dataclass(frozen=True)
class TrueWord:
    """Ground truth for one generated word.

    ``bits`` are the flip-flop D-input nets in bit order — the nets the
    identification pipeline groups (and the same convention the golden
    reference of :mod:`repro.eval.reference` uses).
    """

    register: str
    regime: str
    width: int
    bits: Tuple[str, ...]
    expect_ours: str  # "full" | "any"
    expect_base: str  # "full" | "any"


@dataclass
class FuzzSample:
    """A generated netlist plus its exact word-level ground truth.

    ``trojan_specs`` records every Trojan spliced in (empty for clean
    samples); ``trojan_gates`` flattens their gate names — the exact
    positive labels the triage ROC evaluation scores against.
    """

    plan: SamplePlan
    netlist: Netlist
    truth: Tuple[TrueWord, ...]
    trojan_specs: Tuple["TrojanSpec", ...] = ()

    @property
    def seed(self) -> int:
        return self.plan.seed

    @property
    def trojan_gates(self) -> Tuple[str, ...]:
        return tuple(
            gate for spec in self.trojan_specs for gate in spec.gates
        )

    def words_by_name(self) -> Dict[str, TrueWord]:
        return {w.register: w for w in self.truth}


def sample_seed(campaign_seed: int, index: int) -> int:
    """The per-sample seed: a splitmix-style hop from the campaign seed.

    Deterministic and decorrelated, so ``--seed S --samples N`` always
    produces the same corpus and each sample is independently
    reproducible via ``--seed S --index i``.
    """
    x = (campaign_seed * 0x9E3779B97F4A7C15 + index * 0xBF58476D1CE4E5B9)
    x &= (1 << 64) - 1
    x ^= x >> 31
    x = (x * 0x94D049BB133111EB) & ((1 << 64) - 1)
    x ^= x >> 29
    return x & 0x7FFFFFFF


# ----------------------------------------------------------------------
# planning — all randomness lives here
# ----------------------------------------------------------------------

def _draw_regime(rng: random.Random, config: GeneratorConfig) -> str:
    total = sum(weight for _, weight in config.regime_weights)
    roll = rng.random() * total
    for regime, weight in config.regime_weights:
        roll -= weight
        if roll <= 0:
            return regime
    return config.regime_weights[-1][0]


def _plan_conditions(
    rng: random.Random, config: GeneratorConfig
) -> Tuple[Tuple[str, int, int], ...]:
    count = rng.randint(config.min_conditions, config.max_conditions)
    specs: List[Tuple[str, int, int]] = []
    for _ in range(count):
        kind = rng.choice(_COND_KINDS)
        specs.append((kind, rng.randint(0, 5), rng.randint(0, 5)))
    return tuple(specs)


def _plan_word(
    rng: random.Random,
    config: GeneratorConfig,
    index: int,
    n_conditions: int,
) -> WordPlan:
    regime = _draw_regime(rng, config)
    width = rng.randint(config.min_width, config.max_width)
    name = f"{regime}{index:03d}"
    bus = config.bus_width

    def cond() -> int:
        return rng.randrange(n_conditions)

    def cond_pair() -> Tuple[int, int]:
        # Distinct indices: a word whose two selects are the same net has
        # an unreachable mux arm, which is a different (degenerate) regime.
        first = rng.randrange(n_conditions)
        second = (first + rng.randint(1, n_conditions - 1)) % n_conditions
        return first, second

    def off() -> int:
        return rng.randrange(bus)

    if regime == "data":
        return WordPlan(name, regime, width, (cond(),), (off(),))
    if regime == "counter":
        return WordPlan(name, regime, width, (cond(),), ())
    if regime == "selected":
        c1, c2 = cond_pair()
        zero_bits = max(1, width // 4)
        return WordPlan(
            name, regime, width, (c1, c2), (off(), off(), off()),
            (zero_bits,),
        )
    if regime == "alternating":
        c1, c2 = cond_pair()
        pattern = (0x5555555555, 0x2AAAAAAAAA)[rng.randint(0, 1)]
        return WordPlan(
            name, regime, width, (c1, c2), (off(), off()), (pattern,)
        )
    if regime == "crossed":
        e1 = rng.randrange(6)
        e2 = (e1 + rng.randint(1, 5)) % 6
        mask = (1 << max(1, width // 2)) - 1
        # The guards g1/g2 are built opcode-free in _build_word (last two
        # aux entries pick bus bits): if a guard's cone contained the
        # e1/e2 opcode bits, those nets would appear in *matching*
        # subtrees and the pipeline would rightly refuse to assign them —
        # the hazard common.crossed_word documents.
        return WordPlan(
            name, regime, width, (),
            (off(), off(), off(), off()),
            (e1, e2, mask, off(), off()),
        )
    if regime == "adder":
        return WordPlan(name, regime, width, (), (off(),))
    if regime == "concat":
        fields = rng.randint(2, min(3, max(2, width // 2)))
        return WordPlan(
            name, regime, width, (),
            tuple(off() for _ in range(2 * fields)), (fields,),
        )
    if regime == "status":
        return WordPlan(name, regime, width, (cond(), cond()), (off(),))
    if regime == "shift":
        return WordPlan(name, regime, width, (), (), (rng.randrange(6),))
    if regime == "sram":
        # Hierarchical decoder + wordline-driver array: the wordline is a
        # decoded opcode match (deep AND chain), the selected arm is a
        # column mux whose fallback carries zero-padded bits — the
        # selected_word proof class behind an SRAM-style address decode.
        zero_bits = max(1, width // 4)
        return WordPlan(
            name, regime, width, (cond(),), (off(), off(), off()),
            (zero_bits, rng.randrange(16), rng.randrange(4)),
        )
    if regime == "cam":
        # Column-mux/sense-amp bank: every bit holds behind the same
        # wordline mux, but the captured match line mixes key/tag bits
        # through per-bit heterogeneous comparators.
        return WordPlan(name, regime, width, (cond(),), (off(), off()))
    raise AssertionError(f"unplanned regime {regime!r}")


def plan_sample(seed: int, config: GeneratorConfig = GeneratorConfig()) -> SamplePlan:
    """Draw a complete sample recipe from ``seed``."""
    rng = random.Random(seed)
    conditions = _plan_conditions(rng, config)
    n_words = rng.randint(config.min_words, config.max_words)
    words = tuple(
        _plan_word(rng, config, i, len(conditions)) for i in range(n_words)
    )
    # One separator after every word keeps neighbouring words' subgroups
    # apart (see module docstring).  Form cycles and the condition is
    # drawn independently of the word's own conditions.
    separators = tuple(
        (rng.randrange(3), rng.randrange(len(conditions)),
         rng.randrange(config.bus_width))
        for _ in range(n_words)
    )
    decoys: Tuple[Tuple[int, int], ...] = ()
    if rng.random() < config.boundary_noise:
        decoys = tuple(
            (rng.randrange(len(conditions)), rng.randrange(config.bus_width))
            for _ in range(rng.randint(1, 4))
        )
    # Trojans are drawn last, and only when armed: a clean-config plan
    # consumes exactly the historical rng sequence, so enabling
    # ``trojan_rate`` on a new campaign never perturbs existing corpora.
    trojans: Tuple[Tuple[int, int], ...] = ()
    if config.trojan_rate and rng.random() < config.trojan_rate:
        trojans = tuple(
            (
                rng.randint(
                    config.trojan_min_width, config.trojan_max_width
                ),
                rng.randrange(1 << 31),
            )
            for _ in range(rng.randint(1, config.max_trojans))
        )
    return SamplePlan(
        seed=seed,
        bus_width=config.bus_width,
        datapath_rounds=rng.randint(0, config.max_datapath_rounds),
        conditions=conditions,
        words=words,
        separators=separators,
        decoys=decoys,
        trojans=trojans,
    )


# ----------------------------------------------------------------------
# building — deterministic in the plan
# ----------------------------------------------------------------------

def _slice_of(bus: Expr, offset: int, width: int) -> Expr:
    """A ``width``-bit window of ``bus``, wrapping via concatenation."""
    n = bus.width
    lo = offset % n
    if lo + width <= n:
        return bus.slice(lo, lo + width - 1)
    head = bus.slice(lo, n - 1)
    tail = bus.slice(0, width - (n - lo) - 1)
    return Concat((head, tail))


def _build_condition(
    spec: Tuple[str, int, int],
    bus_a: Expr,
    bus_b: Expr,
    opcode: Expr,
    valid: Expr,
    stall: Expr,
) -> Expr:
    kind, p, q = spec
    if kind == "enable":
        return valid & ~stall if p % 2 == 0 else (valid & opcode.bit(p)) | stall
    if kind == "opeq":
        lo = p % 4
        return opcode.slice(lo, lo + 2).eq(Const(q % 8, 3))
    # For the two-bit kinds the bits must differ, or the condition folds
    # to a constant and the word it enables folds to a plain hold (D = Q,
    # no combinational gates, nothing to identify).
    lhs, rhs = p % 6, q % 6
    if rhs == lhs:
        rhs = (rhs + 1) % 6
    if kind == "bitxor":
        return opcode.bit(lhs) ^ opcode.bit(rhs)
    if kind == "oremix":
        return (valid & opcode.bit(rhs)) | (stall & opcode.bit(lhs))
    if kind == "less":
        return bus_a.lt(bus_b) if p % 2 == 0 else bus_a.slice(0, 5).eq(opcode)
    if kind == "bitandnot":
        return opcode.bit(lhs) & ~opcode.bit(rhs)
    raise AssertionError(f"unknown condition kind {kind!r}")


def _build_word(
    m: Module,
    plan: WordPlan,
    conditions: Sequence[Expr],
    bus_a: Expr,
    bus_b: Expr,
    opcode: Expr,
    valid: Expr,
    stall: Expr,
) -> None:
    w = plan.width
    name = plan.name

    def cond(i: int) -> Expr:
        return conditions[plan.conds[i] % len(conditions)]

    def src(i: int) -> Expr:
        return _slice_of(bus_a, plan.offsets[i], w)

    def alt(i: int) -> Expr:
        return _slice_of(bus_b, plan.offsets[i], w)

    if plan.regime == "data":
        data_word(m, name, w, cond(0), src(0))
    elif plan.regime == "counter":
        r = m.register(name, w)
        r.next = Mux(cond(0), r.ref() + Const(1, w), r.ref())
    elif plan.regime == "selected":
        zero_bits = plan.aux[0]
        z = Concat((
            _slice_of(bus_b, plan.offsets[2], w - zero_bits),
            Const(0, zero_bits),
        ))
        selected_word(m, name, w, cond(0), cond(1), src(0), alt(1), z)
    elif plan.regime == "alternating":
        alternating_word(
            m, name, w, cond(0), cond(1), src(0), alt(1),
            pattern=plan.aux[0],
        )
    elif plan.regime == "crossed":
        e1_bit, e2_bit, mask, gb1, gb2 = plan.aux
        bus_n = bus_a.width
        crossed_word(
            m, name, w,
            e1=opcode.bit(e1_bit % 6),
            e2=opcode.bit(e2_bit % 6),
            g1=valid & bus_b.bit(gb1 % bus_n),
            g2=~stall & bus_a.bit(gb2 % bus_n),
            u=src(0), v=alt(1),
            t=_slice_of(bus_a, plan.offsets[2], w),
            k=_slice_of(bus_b, plan.offsets[3], w),
            mask=mask,
        )
    elif plan.regime == "adder":
        adder_word(m, name, w, src(0))
    elif plan.regime == "concat":
        fields = plan.aux[0]
        ops = ("and", "xor", "or")
        parts: List[Expr] = []
        base = w // fields
        used = 0
        for f in range(fields):
            fw = base if f < fields - 1 else w - used
            used += fw
            a = _slice_of(bus_a, plan.offsets[2 * f], fw)
            b = _slice_of(bus_b, plan.offsets[2 * f + 1], fw)
            op = ops[f % 3]
            if op == "and":
                parts.append(a & b)
            elif op == "xor":
                parts.append(a ^ b)
            else:
                parts.append(a | b)
        concat_word(m, name, parts=parts)
    elif plan.regime == "status":
        anchor = _slice_of(bus_a, plan.offsets[0], 8)
        c_base, c_step = plan.conds
        bits: List[Expr] = []
        for i in range(w):
            c1 = conditions[(c_base + i) % len(conditions)]
            c2 = conditions[(c_base + c_step + i + 1) % len(conditions)]
            if i % 4 == 0:
                bits.append((c1 & anchor.bit(i % 8)) | c2)
            elif i % 4 == 1:
                bits.append(c1 ^ (anchor.bit(i % 8) | c2))
            elif i % 4 == 2:
                bits.append(~(c1 | (c2 & anchor.bit(i % 8))))
            else:
                bits.append((c1 ^ c2) & anchor.bit(i % 8))
        status_word(m, name, bits)
    elif plan.regime == "shift":
        shift_word(m, name, w, valid & opcode.bit(plan.aux[0] % 6))
    elif plan.regime == "sram":
        zero_bits, addr, lo = plan.aux
        lo %= 4
        # Dedicated address port (idempotent across sram words).  The
        # decoder must not share nets with the pool conditions: a shared
        # opcode bit would sit inside *matching* subtrees and the
        # pipeline would rightly refuse the wordline assignment — the
        # crossed_word hazard.
        address = m.input("addr_bus", 8)
        wordline = address.slice(lo, lo + 3).eq(Const(addr % 16, 4))
        z = Concat((
            _slice_of(bus_b, plan.offsets[2], w - zero_bits),
            Const(0, zero_bits),
        ))
        selected_word(m, name, w, wordline, cond(0), src(0), alt(1), z)
    elif plan.regime == "cam":
        wordline = cond(0)
        key = src(0)
        tag = alt(1)
        r = m.register(name, w)
        q = r.ref()
        match_bits: List[Expr] = []
        for i in range(w):
            if i % 4 == 0:
                f = key.bit(i) ^ tag.bit(i)
            elif i % 4 == 1:
                f = ~(key.bit(i) & tag.bit(i))
            elif i % 4 == 2:
                f = key.bit(i) | ~tag.bit(i)
            else:
                f = ~(key.bit(i) ^ tag.bit(i))
            match_bits.append(Mux(wordline, f, q.bit(i)))
        r.next = Concat(tuple(match_bits))
    else:
        raise AssertionError(f"unbuildable regime {plan.regime!r}")


def build_module(plan: SamplePlan) -> Module:
    """The RTL for a plan (exposed for tests; most callers want
    :func:`build_sample`)."""
    m = Module(f"fuzz{plan.seed:08x}", reset_input="reset")
    bus_a = m.input("bus_a", plan.bus_width)
    bus_b = m.input("bus_b", plan.bus_width)
    opcode = m.input("opcode", 6)
    valid = m.input("valid")
    stall = m.input("stall")

    conditions = [
        _build_condition(spec, bus_a, bus_b, opcode, valid, stall)
        for spec in plan.conditions
    ]

    acc = bus_a
    for round_index in range(plan.datapath_rounds):
        mixed = acc + _slice_of(bus_b, round_index * 3, plan.bus_width)
        acc = mixed ^ _slice_of(acc, 7, plan.bus_width)

    for index, word in enumerate(plan.words):
        _build_word(m, word, conditions, bus_a, bus_b, opcode, valid, stall)
        form, cond_index, bit_index = plan.separators[index]
        sep = m.register(f"sep{index:02d}", 1)
        guard = conditions[cond_index % len(conditions)]
        bus_bit = bus_a.bit(bit_index % plan.bus_width)
        if form % 3 == 0:
            sep.next = guard & bus_bit
        elif form % 3 == 1:
            sep.next = guard | ~bus_bit
        else:
            sep.next = guard ^ bus_bit

    for index, (cond_index, bit_index) in enumerate(plan.decoys):
        decoy = m.register(f"decoy{index:02d}", 1)
        guard = conditions[cond_index % len(conditions)]
        decoy.next = guard & bus_b.bit(bit_index % plan.bus_width)

    m.output("acc_out", acc.parity())
    m.output("flags_out", Concat((bus_a.eq(bus_b), conditions[0])))
    return m


def _derive_truth(plan: SamplePlan, netlist: Netlist) -> Tuple[TrueWord, ...]:
    """Read the word ground truth back off the synthesized netlist.

    The synthesis flow names every flip-flop output ``<register>_reg_<i>``;
    the reference extractor groups those, and the plan labels each with
    its regime and expected recovery.  A plan word missing from the
    netlist (or missing bits) means the flow broke its own contract —
    that is an assertion, not a sample property.
    """
    reference = {
        w.register: w for w in extract_reference_words(netlist, min_width=2)
    }
    truth: List[TrueWord] = []
    for word in plan.words:
        found = reference.get(word.name)
        if found is None:
            raise AssertionError(
                f"plan word {word.name!r} missing from synthesized netlist"
            )
        distinct = len(set(found.bits))
        truth.append(
            TrueWord(
                register=word.name,
                regime=word.regime,
                width=distinct,
                bits=found.bits,
                expect_ours=(
                    "full" if word.regime in OURS_FULL_REGIMES else "any"
                ),
                expect_base=(
                    "full" if word.regime in BASE_FULL_REGIMES else "any"
                ),
            )
        )
    return tuple(truth)


def _forward_reach(netlist: Netlist, roots: set) -> set:
    """Nets reachable from ``roots`` through combinational gates only."""
    reached = set(roots)
    worklist = list(roots)
    while worklist:
        net = worklist.pop()
        for gate in netlist.fanouts(net):
            if gate.is_ff or gate.output in reached:
                continue
            reached.add(gate.output)
            worklist.append(gate.output)
    return reached


def build_sample(plan: SamplePlan) -> FuzzSample:
    """Build, synthesize, (optionally) tamper with, and label one sample.

    Trojans are spliced in *after* synthesis — the threat model is a
    malicious CAD step — and the word truth is derived after that, so a
    payload rewiring a register's D pin is reflected in the labels.
    """
    netlist = synthesize(build_module(plan))
    specs = tuple(
        insert_trojan(
            netlist, trigger_width=width, seed=troj_seed,
            prefix=f"_troj{index}",
        )
        for index, (width, troj_seed) in enumerate(plan.trojans)
    )
    truth = _derive_truth(plan, netlist)
    if specs:
        # Everything combinationally downstream of a payload has a
        # tampered fanin cone — those words are no longer the clean
        # construction the regime labels promise recovery for.
        tainted = _forward_reach(
            netlist, {spec.payload_output for spec in specs}
        )
        truth = tuple(
            dc_replace(word, expect_ours="any", expect_base="any")
            if set(word.bits) & tainted
            else word
            for word in truth
        )
    return FuzzSample(
        plan=plan,
        netlist=netlist,
        truth=truth,
        trojan_specs=specs,
    )


def generate(
    seed: int, config: GeneratorConfig = GeneratorConfig()
) -> FuzzSample:
    """One-call generation: plan from ``seed``, then build."""
    return build_sample(plan_sample(seed, config))
