"""Metamorphic and differential oracles over generated samples.

Each oracle is a function ``(OracleContext) -> Optional[str]`` returning
``None`` on pass or a human-readable failure detail.  They fall into three
families:

*Metamorphic* — transform the netlist in a way the identification result
provably must not care about, re-run, compare:

``rename``
    Hostile anonymization (:func:`repro.synth.anonymize.anonymize` with
    escaped-identifier-requiring names).  No stage may read name spelling.
``reversal``
    Whole-file gate reversal.  Stage 1 groups *adjacent* lines, and every
    adjacency predicate in the pipeline is symmetric, so reversing the
    file reverses each run without changing any word's bit set.  (An
    arbitrary shuffle is *not* an invariant — adjacency is load-bearing —
    which is why the transform menu is structured, not random.)
``bit_permutation``
    Shuffling a healable word's root gates among their own file slots.
    All bits of a healable word pairwise partial-match through their
    shared hold/guard subtrees, so any order chains into one subgroup.
``jobs``
    ``jobs=4`` must equal ``jobs=1`` byte for byte: same words in the
    same order, same control assignments, same stage counters.
``store``
    cache-on ≡ cache-off: a result committed to the artifact store and
    probed back is byte-identical to the computed one (the persistence
    sibling of ``jobs``).
``kernel``
    The vectorized array kernel (:mod:`repro.core.kernels`) ≡ the python
    reference path: identical result digest and stage counters on every
    sample.  Skipped (vacuously passing) when numpy is unavailable.
``triage``
    Trojan triage (:mod:`repro.triage`) is deterministic across re-runs
    and its ``(position, score)`` ranking is invariant under hostile
    renaming — no anomaly feature may read name spelling.

*Differential* — compare techniques/labels:

``serve``
    In-process ``POST /v1/identify`` ≡ direct ``Session.analyze``: the
    HTTP service's JSON answer carries exactly the words and result
    digest of a library call.
``ours_superset``
    Any reference word FULL under the baseline is FULL under Ours.
``backend``
    Resolving ``"ours"`` through the backend registry is byte-identical
    to running the staged engine directly, and the ``regfeat`` backend
    emits a deterministic, ground-truth-evaluable partition covering
    the candidate flip-flop D nets.
``expectation``
    The generator's per-regime labels hold (data/counter/selected/
    alternating/crossed ⇒ Ours FULL; data ⇒ Base FULL).

*Functional* —

``reduction_functional``
    Every control-signal reduction the pipeline committed preserves the
    simulated word-bit functions on random vectors consistent with the
    assignment (:func:`verify_reductions`).
``partition`` / ``roundtrip``
    Identified words are disjoint sets of real nets; the netlist survives
    a Verilog write→parse round-trip unchanged.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..core import kernels as _kernels
from ..core.baseline import baseline_config
from ..core.pipeline import PipelineConfig, identify_words
from ..core.reduction import reduce_netlist
from ..core.words import IdentificationResult
from ..eval.metrics import FULL, evaluate
from ..eval.reference import extract_reference_words
from ..netlist.cone import extract_subcircuit
from ..netlist.netlist import Netlist
from ..netlist.simulate import evaluate_combinational
from ..netlist.transforms import reorder_gates
from ..netlist.verilog import parse_verilog, write_verilog
from ..synth.anonymize import anonymize
from .generator import FuzzSample

__all__ = [
    "OracleContext",
    "OracleVerdict",
    "DEFAULT_ORACLES",
    "run_oracles",
    "verify_reductions",
]


@dataclass(frozen=True)
class OracleVerdict:
    """One oracle's outcome on one sample."""

    oracle: str
    passed: bool
    detail: str = ""

    def as_dict(self) -> Dict[str, object]:
        return {"oracle": self.oracle, "passed": self.passed,
                "detail": self.detail}


class OracleContext:
    """Shared per-sample state: the pipeline runs every oracle needs.

    Identification results are cached so the full oracle suite costs
    ~8 pipeline runs per sample instead of ~16.
    """

    def __init__(self, sample: FuzzSample, depth: int = 4):
        self.sample = sample
        self.depth = depth
        self.ours_config = PipelineConfig(depth=depth)
        self.base_config = baseline_config(depth=depth)
        self._results: Dict[str, IdentificationResult] = {}

    # -- cached pipeline runs -----------------------------------------

    def identify(self, key: str, netlist: Netlist,
                 config: PipelineConfig) -> IdentificationResult:
        result = self._results.get(key)
        if result is None:
            result = identify_words(netlist, config)
            self._results[key] = result
        return result

    @property
    def ours(self) -> IdentificationResult:
        return self.identify("ours", self.sample.netlist, self.ours_config)

    @property
    def base(self) -> IdentificationResult:
        return self.identify("base", self.sample.netlist, self.base_config)

    # -- shared views -------------------------------------------------

    def word_sets(self, result: IdentificationResult) -> Set[FrozenSet[str]]:
        return {word.bit_set for word in result.words}

    def full_registers(self, result: IdentificationResult) -> Set[str]:
        reference = extract_reference_words(self.sample.netlist)
        metrics = evaluate(reference, result)
        return {
            outcome.reference.register
            for outcome in metrics.outcomes
            if outcome.status == FULL
        }

    def rng(self, salt: int) -> random.Random:
        return random.Random((self.sample.seed << 4) ^ salt)


# ----------------------------------------------------------------------
# functional verification of committed reductions
# ----------------------------------------------------------------------

def verify_reductions(
    netlist: Netlist,
    result: IdentificationResult,
    seed: int = 0,
    vectors: int = 24,
    depth: int = 4,
) -> List[str]:
    """Re-check every committed control-signal reduction functionally.

    For each word the pipeline unlocked via an assignment, re-extract the
    word's subcircuit, re-reduce it under the recorded assignment, and
    compare the word-bit nets between original and reduced subcircuits on
    random source vectors *consistent* with the assignment.  Assigned nets
    that are subcircuit sources are forced directly; internal ones are
    satisfied by rejection sampling (the reduction only promises
    equivalence on consistent inputs, so inconsistent draws are skipped).

    Returns a list of problem descriptions, empty when all reductions
    check out.
    """
    problems: List[str] = []
    boundary = netlist.cone_leaf_nets()
    rng = random.Random(seed)
    for word, control in result.control_assignments.items():
        assignment = control.as_dict()
        if not assignment:
            continue
        sub = extract_subcircuit(
            netlist, list(word.bits), depth, boundary=boundary
        )
        reduced = reduce_netlist(sub, assignment).netlist
        sources = list(sub.primary_inputs)
        forced = {n: v for n, v in assignment.items() if n in set(sources)}
        checked = 0
        # Internally-assigned nets are satisfied by rejection sampling,
        # and a legitimate assignment can sit behind a decoded compare
        # (P(hit) ~ 2^-k for a k-bit decode), so the draw budget must be
        # generous before "no consistent vector" can mean "infeasible":
        # at p = 1/64, 4096 draws miss with probability ~1e-28, where a
        # 4*vectors budget missed one draw in five.  The early exit
        # keeps the common case at ~``vectors`` evaluations.
        draws = max(vectors * 4, 4096)
        for _ in range(draws):
            if checked >= vectors:
                break
            vec = {net: rng.randint(0, 1) for net in sources}
            vec.update(forced)
            original_values = evaluate_combinational(sub, vec)
            if any(original_values.get(n) != v for n, v in assignment.items()):
                continue  # inconsistent with an internally-assigned net
            checked += 1
            reduced_values = evaluate_combinational(reduced, vec)
            for bit in word.bits:
                if original_values.get(bit) != reduced_values.get(bit):
                    problems.append(
                        f"word {word}: reduction under {control} changes "
                        f"bit {bit}: {original_values.get(bit)} -> "
                        f"{reduced_values.get(bit)}"
                    )
                    break
        if checked == 0:
            problems.append(
                f"word {word}: no random vector consistent with {control} "
                f"in {draws} draws — assignment looks infeasible"
            )
    return problems


# ----------------------------------------------------------------------
# the oracles
# ----------------------------------------------------------------------

def _check_partition(ctx: OracleContext) -> Optional[str]:
    for label, result in (("ours", ctx.ours), ("base", ctx.base)):
        seen: Set[str] = set()
        for word in result.all_generated_words():
            for bit in word.bits:
                if bit in seen:
                    return f"{label}: net {bit} appears in two words"
                seen.add(bit)
                if not ctx.sample.netlist.has_net(bit):
                    return f"{label}: word bit {bit} is not a netlist net"
    return None


def _check_roundtrip(ctx: OracleContext) -> Optional[str]:
    netlist = ctx.sample.netlist
    reparsed = parse_verilog(write_verilog(netlist))
    if reparsed != netlist:
        return "write_verilog -> parse_verilog is not the identity"
    hostile = anonymize(netlist, naming="hostile").netlist
    if parse_verilog(write_verilog(hostile)) != hostile:
        return ("write_verilog -> parse_verilog is not the identity "
                "on hostile (escaped-identifier) names")
    return None


def _check_rename(ctx: OracleContext) -> Optional[str]:
    anonymized = anonymize(ctx.sample.netlist, naming="hostile")
    inverse = {v: k for k, v in anonymized.net_map.items()}
    for label, config in (
        ("ours", ctx.ours_config), ("base", ctx.base_config)
    ):
        renamed = ctx.identify(
            f"rename-{label}", anonymized.netlist, config
        )
        translated = {
            frozenset(inverse[bit] for bit in word.bits)
            for word in renamed.words
        }
        original = ctx.word_sets(ctx.ours if label == "ours" else ctx.base)
        if translated != original:
            return (
                f"{label}: words changed under hostile renaming "
                f"(lost {len(original - translated)}, "
                f"gained {len(translated - original)})"
            )
    return None


def _check_reversal(ctx: OracleContext) -> Optional[str]:
    netlist = ctx.sample.netlist
    order = [g.name for g in netlist.gates_in_file_order()][::-1]
    reversed_netlist = reorder_gates(netlist, order)
    for label, config in (
        ("ours", ctx.ours_config), ("base", ctx.base_config)
    ):
        result = ctx.identify(
            f"reversal-{label}", reversed_netlist, config
        )
        original = ctx.word_sets(ctx.ours if label == "ours" else ctx.base)
        if ctx.word_sets(result) != original:
            return f"{label}: words changed under whole-file reversal"
    return None


def _check_bit_permutation(ctx: OracleContext) -> Optional[str]:
    netlist = ctx.sample.netlist
    rng = ctx.rng(0xBEEF)
    positions = netlist.file_positions()
    order = [g.name for g in netlist.gates_in_file_order()]
    permuted_words: List[str] = []
    for true_word in ctx.sample.truth:
        if true_word.expect_ours != "full" or len(set(true_word.bits)) < 3:
            continue
        roots: List[str] = []
        for bit in true_word.bits:
            driver = netlist.driver(bit)
            if driver is None or driver.is_ff:
                roots = []
                break
            roots.append(driver.name)
        if len(set(roots)) != len(true_word.bits):
            continue  # bits share drivers; permutation is ill-defined
        slots = sorted(positions[name] for name in roots)
        shuffled = list(roots)
        rng.shuffle(shuffled)
        for slot, name in zip(slots, shuffled):
            order[slot] = name
        permuted_words.append(true_word.register)
    if not permuted_words:
        return None  # nothing healable to permute — trivially passes
    permuted = reorder_gates(netlist, order)
    result = identify_words(permuted, ctx.ours_config)
    metrics = evaluate(extract_reference_words(permuted), result)
    full = {
        o.reference.register for o in metrics.outcomes if o.status == FULL
    }
    lost = [name for name in permuted_words if name not in full]
    if lost:
        return (
            f"words no longer FULL after permuting their root-gate "
            f"order: {', '.join(lost)}"
        )
    return None


def _check_jobs(ctx: OracleContext) -> Optional[str]:
    parallel_config = PipelineConfig(depth=ctx.depth, jobs=4)
    parallel = ctx.identify("jobs", ctx.sample.netlist, parallel_config)
    serial = ctx.ours

    def canon(result: IdentificationResult):
        return (
            [word.bits for word in result.words],
            list(result.singletons),
            {
                word.bits: control.assignments
                for word, control in result.control_assignments.items()
            },
        )

    if canon(parallel) != canon(serial):
        return "jobs=4 produced different words than jobs=1"
    if (parallel.trace.counter_dict() != serial.trace.counter_dict()):
        return "jobs=4 produced different stage counters than jobs=1"
    return None


def _check_kernel(ctx: OracleContext) -> Optional[str]:
    """array kernel ≡ python reference on every campaign sample.

    Runs the sample once under each ``REPRO_KERNEL`` setting and compares
    the full result digest (words, singletons, assignments, counters) —
    the same byte-identity contract ``tests/core/test_kernels.py`` pins
    on the ITC99 corpus, here exercised against adversarial generated
    designs.  Vacuously passes when numpy is absent (the array kernel is
    gated off and both runs would take the python path).
    """
    from ..store import result_digest

    if not _kernels.numpy_available():
        return None
    previous = os.environ.get(_kernels.KERNEL_ENV)
    try:
        os.environ[_kernels.KERNEL_ENV] = "array"
        array = ctx.identify(
            "kernel_array", ctx.sample.netlist, ctx.ours_config
        )
        os.environ[_kernels.KERNEL_ENV] = "python"
        python = ctx.identify(
            "kernel_python", ctx.sample.netlist, ctx.ours_config
        )
    finally:
        if previous is None:
            os.environ.pop(_kernels.KERNEL_ENV, None)
        else:
            os.environ[_kernels.KERNEL_ENV] = previous
    if array.trace.kernel != "array":
        return "REPRO_KERNEL=array did not select the array kernel"
    if python.trace.kernel != "python":
        return "REPRO_KERNEL=python did not select the python kernel"
    if result_digest(array) != result_digest(python):
        return "array kernel result digest differs from python reference"
    if array.trace.counter_dict() != python.trace.counter_dict():
        return "array kernel stage counters differ from python reference"
    return None


def _check_backend(ctx: OracleContext) -> Optional[str]:
    """Registry dispatch ≡ direct engine; regfeat output is well-formed.

    Differential check (a): resolving backend ``"ours"`` through
    :mod:`repro.core.backends` must be byte-identical — result digest
    and stage counters — to instantiating the staged
    :class:`~repro.core.stages.AnalysisEngine` directly.  The dispatch
    layer is pure plumbing and may not perturb results.

    Functional check (b): the ``regfeat`` backend must emit a valid
    partition (each bit in at most one word, every bit a real net)
    covering every candidate flip-flop D net exactly once, must be
    deterministic across re-runs, and must evaluate cleanly against the
    sample's ground truth.
    """
    from ..core.stages import AnalysisEngine
    from ..store import result_digest

    direct = AnalysisEngine(ctx.ours_config).run(ctx.sample.netlist)
    if result_digest(direct) != result_digest(ctx.ours):
        return "registry-dispatched ours differs from direct AnalysisEngine"
    if direct.trace.counter_dict() != ctx.ours.trace.counter_dict():
        return "registry dispatch changed ours stage counters"

    netlist = ctx.sample.netlist
    regfeat_config = PipelineConfig(depth=ctx.depth, backend="regfeat")
    first = ctx.identify("regfeat", netlist, regfeat_config)
    again = identify_words(netlist, regfeat_config)
    if result_digest(first) != result_digest(again):
        return "regfeat is not deterministic across re-runs"

    candidates = set()
    for ff in netlist.flip_flops():
        candidates.add(ff.inputs[0])
    seen: Set[str] = set()
    for word in first.all_generated_words():
        for bit in word.bits:
            if bit in seen:
                return f"regfeat: net {bit} appears in two words"
            seen.add(bit)
            if not netlist.has_net(bit):
                return f"regfeat: word bit {bit} is not a netlist net"
    if seen != candidates:
        missing = sorted(candidates - seen)[:3]
        extra = sorted(seen - candidates)[:3]
        return (f"regfeat does not cover the candidate FF D nets "
                f"(missing {missing}, extra {extra})")

    reference = extract_reference_words(netlist)
    metrics = evaluate(reference, first)
    if len(metrics.outcomes) != len(reference):
        return "regfeat evaluation dropped reference words"
    return None


def _check_ours_superset(ctx: OracleContext) -> Optional[str]:
    base_full = ctx.full_registers(ctx.base)
    ours_full = ctx.full_registers(ctx.ours)
    lost = base_full - ours_full
    if lost:
        return (
            f"baseline finds {', '.join(sorted(lost))} FULL but the "
            f"control-signal technique does not"
        )
    return None


def _check_expectation(ctx: OracleContext) -> Optional[str]:
    ours_full = ctx.full_registers(ctx.ours)
    base_full = ctx.full_registers(ctx.base)
    broken: List[str] = []
    for word in ctx.sample.truth:
        if word.expect_ours == "full" and word.register not in ours_full:
            broken.append(f"{word.register} ({word.regime}) not FULL by ours")
        if word.expect_base == "full" and word.register not in base_full:
            broken.append(f"{word.register} ({word.regime}) not FULL by base")
    if broken:
        return "; ".join(broken)
    return None


def _check_store(ctx: OracleContext) -> Optional[str]:
    """cache-on ≡ cache-off: the artifact store must round-trip the run.

    Commits the already-computed result to a throwaway store and probes
    it back; the cached result must be byte-identical to the computed one
    on words, singletons, assignments, and trace counters (the sibling of
    the ``jobs=N ≡ jobs=1`` determinism oracle, for the persistence
    layer).
    """
    import tempfile

    from ..store import ArtifactStore, result_digest

    serial = ctx.ours

    def canon(result: IdentificationResult):
        return (
            [word.bits for word in result.words],
            list(result.singletons),
            {
                word.bits: control.assignments
                for word, control in result.control_assignments.items()
            },
            result.trace.counter_dict(),
        )

    with tempfile.TemporaryDirectory(prefix="fuzz-store-") as root:
        store = ArtifactStore(root)
        key = store.commit(ctx.sample.netlist, ctx.ours_config, serial)
        if key is None:
            return "store refused to commit a clean result"
        cached = store.probe(ctx.sample.netlist, ctx.ours_config)
    if cached is None:
        return "committed result did not probe back (miss after commit)"
    if canon(cached) != canon(serial):
        return "cached result differs from the computed one"
    if result_digest(cached) != result_digest(serial):
        return "cached result digest differs from the computed one"
    return None


def _check_serve(ctx: OracleContext) -> Optional[str]:
    """HTTP path ≡ library path: ``POST /v1/identify`` on an in-process
    :class:`~repro.serve.service.AnalysisService` must return exactly the
    words and result digest a direct analysis produces.

    Exercises the whole serve stack short of the socket — request JSON
    decode, admission, thread-pool offload, ``Session.analyze_text``,
    report serialization — against generated designs, so a serialization
    or text-digest bug shows up long before an integration test would.
    """
    from ..api import Session
    from ..serve.service import AnalysisService
    from ..store import result_digest

    session = Session(config=ctx.ours_config)
    service = AnalysisService(session, workers=1, queue_size=1)
    try:
        response = service.call(
            "POST", "/v1/identify",
            {"verilog": write_verilog(ctx.sample.netlist)},
        )
    finally:
        service.close()
    if response.status != 200:
        return f"serve answered {response.status}: {response.body[:160]!r}"
    served = response.json
    direct = ctx.ours
    if served["words"] != [list(word.bits) for word in direct.words]:
        return "served words differ from direct Session.analyze"
    if served["singletons"] != list(direct.singletons):
        return "served singletons differ from direct Session.analyze"
    if served["result_digest"] != result_digest(direct):
        return "served result digest differs from the direct analysis"
    return None


def _check_cone_cache(ctx: OracleContext) -> Optional[str]:
    """cone-cache-on ≡ cone-cache-off, plus incremental ≡ from-scratch.

    Three comparisons per sample, all against the same canonicalization
    the ``store`` and ``jobs`` oracles use (words, singletons,
    assignments, trace counters):

    1. a cold run through a private cone-cache tier equals the plain run;
    2. a warm rerun through the same tier equals it too, *and* actually
       replayed from the cache whenever the cold run committed anything
       (otherwise the oracle silently stops testing replay);
    3. a one-gate-edited variant analyzed with the warm tier — the
       incremental path — equals the same edit analyzed from scratch.
    """
    from ..core.conecache import ProcessConeCache
    from ..netlist.cells import AND, OR

    def canon(result: IdentificationResult):
        return (
            [word.bits for word in result.words],
            list(result.singletons),
            {
                word.bits: control.assignments
                for word, control in result.control_assignments.items()
            },
            result.trace.counter_dict(),
        )

    plain = ctx.ours
    tier = ProcessConeCache()
    cold = identify_words(
        ctx.sample.netlist, ctx.ours_config, cone_cache=[tier]
    )
    if canon(cold) != canon(plain):
        return "cone-cache-on (cold) differs from cone-cache-off"
    warm = identify_words(
        ctx.sample.netlist, ctx.ours_config, cone_cache=[tier]
    )
    if canon(warm) != canon(plain):
        return "cone-cache-on (warm) differs from cone-cache-off"
    committed = cold.trace.cache.cone_tier_commits
    replayed = (
        warm.trace.cache.cone_tier_process_hits
        + warm.trace.cache.cone_tier_store_hits
    )
    if committed and not replayed:
        return (
            f"warm run replayed nothing ({committed} entries committed "
            f"by the cold run)"
        )

    # Incremental ≡ from-scratch on a one-gate edit (cell swap keeps the
    # netlist valid and the file order identical).
    edited = ctx.sample.netlist.copy()
    swappable = [
        g for g in edited.gates_in_file_order()
        if not g.is_ff and g.cell.name in ("AND", "OR")
        and len(g.inputs) >= 2
    ]
    if not swappable:
        return None  # nothing safely editable; first two checks stand
    gate = swappable[ctx.rng(0xC03E).randrange(len(swappable))]
    edited.replace_gate(
        gate.name, OR if gate.cell.name == "AND" else AND, gate.inputs
    )
    incremental = identify_words(edited, ctx.ours_config, cone_cache=[tier])
    scratch = identify_words(edited.copy(), ctx.ours_config)
    if canon(incremental) != canon(scratch):
        return "incremental (warm-tier) run differs from from-scratch"
    return None


def _check_triage(ctx: OracleContext) -> Optional[str]:
    """Trojan triage is deterministic and blind to name spelling.

    Two invariants over :func:`repro.triage.triage_netlist` against the
    sample's "ours" identification:

    1. re-running produces the identical ranking digest;
    2. hostile renaming (the :func:`anonymize` transform the ``rename``
       oracle uses) leaves the ``(file position, score)`` multiset
       unchanged — gate *names* change, so scores are compared by
       position, proving no feature reads name spelling.

    Also checks the ranking covers every gate exactly once.
    """
    from ..triage import TriageConfig, triage_netlist

    config = TriageConfig()
    netlist = ctx.sample.netlist
    first = triage_netlist(netlist, ctx.ours, config)
    again = triage_netlist(netlist, ctx.ours, config)
    if first.digest() != again.digest():
        return "triage is not deterministic across re-runs"
    names = sorted(s.gate for s in first.scores)
    if names != sorted(g.name for g in netlist.gates_in_file_order()):
        return "triage ranking does not cover every gate exactly once"

    anonymized = anonymize(netlist, naming="hostile")
    renamed_result = ctx.identify(
        "rename-ours", anonymized.netlist, ctx.ours_config
    )
    renamed = triage_netlist(anonymized.netlist, renamed_result, config)

    def shape(result):
        return sorted((s.position, s.score) for s in result.scores)

    if shape(first) != shape(renamed):
        return "triage scores changed under hostile renaming"
    return None


def _check_reduction_functional(ctx: OracleContext) -> Optional[str]:
    problems = verify_reductions(
        ctx.sample.netlist, ctx.ours,
        seed=ctx.sample.seed, depth=ctx.depth,
    )
    if problems:
        return "; ".join(problems[:3])
    return None


#: The full suite, in the order they run (cheap structural checks first).
DEFAULT_ORACLES: Tuple[Tuple[str, Callable[[OracleContext], Optional[str]]], ...] = (
    ("partition", _check_partition),
    ("roundtrip", _check_roundtrip),
    ("expectation", _check_expectation),
    ("ours_superset", _check_ours_superset),
    ("jobs", _check_jobs),
    ("kernel", _check_kernel),
    ("backend", _check_backend),
    ("store", _check_store),
    ("cone_cache", _check_cone_cache),
    ("serve", _check_serve),
    ("rename", _check_rename),
    ("reversal", _check_reversal),
    ("bit_permutation", _check_bit_permutation),
    ("triage", _check_triage),
    ("reduction_functional", _check_reduction_functional),
)


def run_oracles(
    sample: FuzzSample,
    oracles: Sequence[Tuple[str, Callable[[OracleContext], Optional[str]]]] = DEFAULT_ORACLES,
    depth: int = 4,
) -> List[OracleVerdict]:
    """Run the oracle suite on one sample, sharing pipeline runs."""
    ctx = OracleContext(sample, depth=depth)
    verdicts: List[OracleVerdict] = []
    for name, check in oracles:
        try:
            detail = check(ctx)
        except Exception as error:  # an oracle crash is itself a finding
            verdicts.append(OracleVerdict(
                name, False, f"oracle crashed: {type(error).__name__}: {error}"
            ))
            continue
        verdicts.append(OracleVerdict(name, detail is None, detail or ""))
    return verdicts
