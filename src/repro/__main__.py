"""``python -m repro`` — the umbrella CLI (see :mod:`repro.main`)."""

import sys

from .main import main

sys.exit(main())
