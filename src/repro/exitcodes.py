"""Process exit codes shared by every ``repro`` command.

One namespace for the exit contract the CLIs (identify, batch, serve,
fuzz, scoreboard, triage) had been restating as scattered literals:

======  ====================  ============================================
code    name                  meaning
======  ====================  ============================================
0       ``EXIT_OK``           completed; results are trustworthy
1       ``EXIT_FAILURE``      the tool itself failed (oracle failure,
                              fatal serve error)
2       ``EXIT_USAGE``        bad invocation or unreadable/unparsable
                              input — nothing was analyzed
3       ``EXIT_STRICT``       ``--strict`` turned a degradation into an
                              abort (budget, deadline, pre-flight)
4       ``EXIT_CHECK_FAILED`` an explicit verification pass found a
                              functional problem (``--verify-reductions``)
5       ``EXIT_DEGRADED``     analysis completed but some results are
                              partial; automation must not treat the run
                              as clean
======  ====================  ============================================

Scripts should import the names, not repeat the numbers.
"""

from __future__ import annotations

__all__ = [
    "EXIT_OK",
    "EXIT_FAILURE",
    "EXIT_USAGE",
    "EXIT_STRICT",
    "EXIT_CHECK_FAILED",
    "EXIT_DEGRADED",
]

EXIT_OK = 0
EXIT_FAILURE = 1
EXIT_USAGE = 2
EXIT_STRICT = 3
EXIT_CHECK_FAILED = 4
EXIT_DEGRADED = 5
