"""repro — word-level identification in gate-level netlists.

A faithful, self-contained reproduction of

    Edward Tashjian and Azadeh Davoodi,
    "On Using Control Signals for Word-Level Identification in A
    Gate-Level Netlist", DAC 2015.

Subpackages
-----------
:mod:`repro.api`
    **The stable public facade** — start here.  ``Session`` /
    ``AnalysisReport`` wrap everything below behind one versioned front
    door.
:mod:`repro.netlist`
    Gate-level substrate: cell library, netlist model, Verilog/BENCH I/O,
    fanin cones, simulation, validation.
:mod:`repro.core`
    The paper's algorithm: adjacency grouping, hash-key partial matching,
    relevant-control-signal discovery, circuit reduction, the Figure 2
    pipeline — plus the shape-hashing baseline [6].
:mod:`repro.store`
    Content-addressed artifact store: cached parses, results, and traces
    keyed by (content SHA-256, config fingerprint, pipeline version).
:mod:`repro.batch`
    Multi-process corpus analysis over a shared store (``repro batch``).
:mod:`repro.synth`
    The synthesis flow and ITC99-like benchmark designs standing in for
    the paper's commercial netlists.
:mod:`repro.eval`
    Golden-reference extraction, the full/partial/not-found metrics, and
    the Table 1 runner (``repro table1``).

Quick start
-----------
::

    from repro.api import Session

    session = Session(store=".repro-cache")   # store=None disables caching
    report = session.analyze("design.v")      # a path or a Netlist
    report.words, report.cache                # ..., "miss" ("hit" on rerun)

The historical entry points ``repro.identify_words`` and
``repro.shape_hashing`` are deprecated Session-backed shims slated for
removal in repro 2.0 (the un-deprecated originals live on in
:mod:`repro.core`).
"""

import warnings as _warnings

from .api import AnalysisReport, Session
from .core import (
    IdentificationResult,
    PipelineConfig,
    Word,
)
from .eval import evaluate, extract_reference_words, run_benchmark
from .netlist import Netlist, NetlistBuilder, parse_verilog, write_verilog
from .store import ArtifactStore

__version__ = "1.0.0"

__all__ = [
    "AnalysisReport",
    "ArtifactStore",
    "IdentificationResult",
    "PipelineConfig",
    "Session",
    "Word",
    "identify_words",
    "shape_hashing",
    "evaluate",
    "extract_reference_words",
    "run_benchmark",
    "Netlist",
    "NetlistBuilder",
    "parse_verilog",
    "write_verilog",
    "__version__",
]


def identify_words(netlist, config=None, **kwargs):
    """Deprecated Session-backed alias; removed in repro 2.0.

    Runs through :class:`repro.api.Session` (so a ``store`` argument
    gets the same caching and netlist-commit behaviour as the facade)
    and returns the report's raw
    :class:`~repro.core.words.IdentificationResult`, preserving the
    historical return type.  Power-user keyword arguments (``context``,
    ``cone_cache``) forward to :func:`repro.core.identify_words`, which
    is the un-deprecated library entry point.
    """
    _warnings.warn(
        "repro.identify_words is deprecated and will be removed in "
        "repro 2.0; use repro.api.Session.analyze (or "
        "repro.core.identify_words)",
        DeprecationWarning,
        stacklevel=2,
    )
    store = kwargs.pop("store", None)
    if kwargs:
        from .core import identify_words as _core_identify_words

        return _core_identify_words(netlist, config, store=store, **kwargs)
    return Session(config=config, store=store).analyze(netlist).result


def shape_hashing(netlist, config=None, store=None):
    """Deprecated Session-backed alias; removed in repro 2.0.

    Equivalent to ``Session(config=config, baseline=True)
    .analyze(netlist).result``; a ``config`` with partial matching
    enabled is rejected exactly as :func:`repro.core.shape_hashing`
    rejects it.
    """
    _warnings.warn(
        "repro.shape_hashing is deprecated and will be removed in "
        "repro 2.0; use repro.api.Session(baseline=True).analyze (or "
        "repro.core.shape_hashing)",
        DeprecationWarning,
        stacklevel=2,
    )
    return (
        Session(config=config, store=store, baseline=True)
        .analyze(netlist)
        .result
    )
