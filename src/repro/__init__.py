"""repro — word-level identification in gate-level netlists.

A faithful, self-contained reproduction of

    Edward Tashjian and Azadeh Davoodi,
    "On Using Control Signals for Word-Level Identification in A
    Gate-Level Netlist", DAC 2015.

Subpackages
-----------
:mod:`repro.netlist`
    Gate-level substrate: cell library, netlist model, Verilog/BENCH I/O,
    fanin cones, simulation, validation.
:mod:`repro.core`
    The paper's algorithm: adjacency grouping, hash-key partial matching,
    relevant-control-signal discovery, circuit reduction, the Figure 2
    pipeline — plus the shape-hashing baseline [6].
:mod:`repro.synth`
    The synthesis flow and ITC99-like benchmark designs standing in for
    the paper's commercial netlists (word-level RTL IR, lowering,
    optimization, mapping, flattening, Trojan insertion).
:mod:`repro.eval`
    Golden-reference extraction, the full/partial/not-found metrics, and
    the Table 1 runner (``python -m repro.eval.runner``).

Quick start
-----------
>>> from repro import identify_words, shape_hashing
>>> from repro.synth.designs import BENCHMARKS
>>> netlist = BENCHMARKS["b03"]()
>>> ours = identify_words(netlist)      # the paper's technique
>>> base = shape_hashing(netlist)       # the comparison baseline
"""

from .core import (
    IdentificationResult,
    PipelineConfig,
    Word,
    identify_words,
    shape_hashing,
)
from .eval import evaluate, extract_reference_words, run_benchmark
from .netlist import Netlist, NetlistBuilder, parse_verilog, write_verilog

__version__ = "1.0.0"

__all__ = [
    "IdentificationResult",
    "PipelineConfig",
    "Word",
    "identify_words",
    "shape_hashing",
    "evaluate",
    "extract_reference_words",
    "run_benchmark",
    "Netlist",
    "NetlistBuilder",
    "parse_verilog",
    "write_verilog",
    "__version__",
]
